file(REMOVE_RECURSE
  "CMakeFiles/satproof_checker.dir/breadth_first.cpp.o"
  "CMakeFiles/satproof_checker.dir/breadth_first.cpp.o.d"
  "CMakeFiles/satproof_checker.dir/common.cpp.o"
  "CMakeFiles/satproof_checker.dir/common.cpp.o.d"
  "CMakeFiles/satproof_checker.dir/depth_first.cpp.o"
  "CMakeFiles/satproof_checker.dir/depth_first.cpp.o.d"
  "CMakeFiles/satproof_checker.dir/drup.cpp.o"
  "CMakeFiles/satproof_checker.dir/drup.cpp.o.d"
  "CMakeFiles/satproof_checker.dir/hybrid.cpp.o"
  "CMakeFiles/satproof_checker.dir/hybrid.cpp.o.d"
  "CMakeFiles/satproof_checker.dir/resolution.cpp.o"
  "CMakeFiles/satproof_checker.dir/resolution.cpp.o.d"
  "CMakeFiles/satproof_checker.dir/use_count.cpp.o"
  "CMakeFiles/satproof_checker.dir/use_count.cpp.o.d"
  "libsatproof_checker.a"
  "libsatproof_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
