file(REMOVE_RECURSE
  "CMakeFiles/ablation_trim.dir/ablation_trim.cpp.o"
  "CMakeFiles/ablation_trim.dir/ablation_trim.cpp.o.d"
  "ablation_trim"
  "ablation_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
