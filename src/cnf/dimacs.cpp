#include "src/cnf/dimacs.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace satproof::dimacs {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("dimacs: line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

Formula parse(std::istream& in) {
  Formula f;
  bool saw_header = false;
  std::int64_t declared_vars = 0;
  std::int64_t declared_clauses = 0;
  std::vector<Lit> current;
  std::size_t line_no = 0;
  std::string line;

  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate Windows line endings.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == 'c') continue;
    // SATLIB files end with a '%' line followed by a lone '0'; everything
    // after the marker is trailer, not clauses.
    if (line[0] == '%') break;
    if (line[0] == 'p') {
      if (saw_header) fail(line_no, "duplicate header");
      std::istringstream hs(line);
      std::string p, fmt;
      hs >> p >> fmt >> declared_vars >> declared_clauses;
      if (!hs || fmt != "cnf" || declared_vars < 0 || declared_clauses < 0) {
        fail(line_no, "malformed header (expected 'p cnf <vars> <clauses>')");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) fail(line_no, "literals before 'p cnf' header");
    std::istringstream ls(line);
    std::int64_t d = 0;
    while (ls >> d) {
      if (d == 0) {
        f.add_clause(current);
        current.clear();
      } else {
        const std::int64_t v = d < 0 ? -d : d;
        if (v > declared_vars) fail(line_no, "literal exceeds declared vars");
        current.push_back(Lit::from_dimacs(d));
      }
    }
    if (!ls.eof()) fail(line_no, "non-integer token");
  }
  if (!current.empty()) {
    throw std::runtime_error("dimacs: unterminated final clause (missing 0)");
  }
  if (saw_header) {
    f.ensure_var(static_cast<Var>(declared_vars == 0 ? 0 : declared_vars - 1));
    if (static_cast<std::int64_t>(f.num_clauses()) != declared_clauses) {
      throw std::runtime_error(
          "dimacs: clause count mismatch: header declares " +
          std::to_string(declared_clauses) + ", file contains " +
          std::to_string(f.num_clauses()));
    }
  } else if (in.bad()) {
    throw std::runtime_error("dimacs: stream read error");
  } else {
    throw std::runtime_error("dimacs: missing 'p cnf' header");
  }
  return f;
}

Formula parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

Formula parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dimacs: cannot open " + path);
  return parse(in);
}

void write(std::ostream& out, const Formula& f, const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream cs(comment);
    std::string cl;
    while (std::getline(cs, cl)) out << "c " << cl << '\n';
  }
  out << "p cnf " << f.num_vars() << ' ' << f.num_clauses() << '\n';
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    for (const Lit lit : f.clause(id)) out << lit.to_dimacs() << ' ';
    out << "0\n";
  }
}

void write_file(const std::string& path, const Formula& f,
                const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("dimacs: cannot open " + path);
  write(out, f, comment);
  if (!out) throw std::runtime_error("dimacs: write error on " + path);
}

}  // namespace satproof::dimacs
