#pragma once

#include <cstdint>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// Uniform random k-SAT: `m` clauses of `k` distinct variables each, signs
/// fair coins. At clause/variable ratios above the phase transition
/// (~4.27 for k = 3) instances are unsatisfiable with high probability —
/// the property sweeps solve them and check whichever answer comes back
/// (model verification for SAT, proof checking for UNSAT).
[[nodiscard]] Formula random_ksat(unsigned n, unsigned m, unsigned k,
                                  std::uint64_t seed);

}  // namespace satproof::encode
