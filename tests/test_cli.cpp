// Tests for the satproof command-line interface, driven in-process.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/temp_file.hpp"
#include "tools/cli.hpp"

namespace satproof::cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

class CliTest : public ::testing::Test {
 protected:
  util::TempFile cnf_{"cli-cnf"};
  util::TempFile aux_{"cli-aux"};
  util::TempFile aux2_{"cli-aux2"};

  std::string cnf() const { return cnf_.path().string(); }
  std::string aux() const { return aux_.path().string(); }
  std::string aux2() const { return aux2_.path().string(); }

  void write_cnf(const std::string& text) {
    std::ofstream(cnf_.path()) << text;
  }

  void gen_php(unsigned holes) {
    const CliRun g =
        run({"gen", "php", std::to_string(holes), "-o", cnf()});
    ASSERT_EQ(g.exit_code, 0) << g.err;
  }
};

TEST_F(CliTest, HelpPrintsUsage) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("satproof solve"), std::string::npos);
}

TEST_F(CliTest, NoArgsFailsWithUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.exit_code, kExitError);
  EXPECT_NE(r.out.find("usage"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.exit_code, kExitError);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, SolveSatInstance) {
  write_cnf("p cnf 2 2\n1 2 0\n-1 0\n");
  const CliRun r = run({"solve", cnf(), "--model"});
  EXPECT_EQ(r.exit_code, kExitSat);
  EXPECT_NE(r.out.find("s SATISFIABLE"), std::string::npos);
  EXPECT_NE(r.out.find("v -1 2 0"), std::string::npos);
}

TEST_F(CliTest, SolveUnsatWithChecks) {
  gen_php(5);
  const CliRun r = run({"solve", cnf(), "--check", "both", "--stats"});
  EXPECT_EQ(r.exit_code, kExitUnsat);
  EXPECT_NE(r.out.find("s UNSATISFIABLE"), std::string::npos);
  EXPECT_NE(r.out.find("depth-first check ok"), std::string::npos);
  EXPECT_NE(r.out.find("breadth-first check ok"), std::string::npos);
  EXPECT_NE(r.out.find("conflicts"), std::string::npos);
}

TEST_F(CliTest, SolveTraceThenCheckRoundTrip) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat) << s.err;

  const CliRun c = run({"check", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
  EXPECT_NE(c.out.find("VERIFIED"), std::string::npos);

  const CliRun cb = run({"check", "--bf", cnf(), aux()});
  EXPECT_EQ(cb.exit_code, 0) << cb.err;
}

TEST_F(CliTest, BinaryTraceRoundTrip) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux(), "--binary"});
  ASSERT_EQ(s.exit_code, kExitUnsat) << s.err;
  const CliRun c = run({"check", "--binary", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
}

TEST_F(CliTest, CheckStatsReportsArenaTraffic) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux(), "--binary"});
  ASSERT_EQ(s.exit_code, kExitUnsat) << s.err;
  const CliRun c = run({"check", "--binary", "--stats", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
  EXPECT_NE(c.out.find("stats: arena "), std::string::npos);
  EXPECT_NE(c.out.find("bytes allocated"), std::string::npos);
  EXPECT_NE(c.out.find("peak total"), std::string::npos);
  // The breadth-first window recycles released blocks; its stats line must
  // be present too (a nonzero recycled figure is exercised in unit tests).
  const CliRun bf = run({"check", "--bf", "--binary", "--stats", cnf(), aux()});
  EXPECT_EQ(bf.exit_code, 0) << bf.err;
  EXPECT_NE(bf.out.find("stats: arena "), std::string::npos);
}

TEST_F(CliTest, CheckStatsJsonEmitsMachineReadableCounters) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat) << s.err;
  const CliRun c = run({"check", "--stats=json", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
  // Human verdict line first, then one JSON object with the counters the
  // service stats reply also serializes.
  EXPECT_NE(c.out.find("VERIFIED"), std::string::npos);
  EXPECT_NE(c.out.find("{\"total_derivations\":"), std::string::npos);
  EXPECT_NE(c.out.find("\"resolutions\":"), std::string::npos);
  EXPECT_NE(c.out.find("\"arena_peak_bytes\":"), std::string::npos);
  // The plain-text stats line must not leak into JSON mode.
  EXPECT_EQ(c.out.find("stats: arena "), std::string::npos);

  const CliRun bad = run({"check", "--stats=yaml", cnf(), aux()});
  EXPECT_EQ(bad.exit_code, kExitError);
  EXPECT_NE(bad.err.find("--stats"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsMismatchedTrace) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat);
  // Check the trace against a different formula.
  const CliRun g2 = run({"gen", "php", "6", "-o", aux2()});
  ASSERT_EQ(g2.exit_code, 0);
  const CliRun c = run({"check", aux2(), aux()});
  EXPECT_EQ(c.exit_code, kExitError);
  EXPECT_NE(c.err.find("CHECK FAILED"), std::string::npos);
}

TEST_F(CliTest, CoreExtractionWritesDimacs) {
  const CliRun g =
      run({"gen", "routing", "8", "3", "12", "5", "-o", cnf()});
  ASSERT_EQ(g.exit_code, 0) << g.err;
  const CliRun r = run({"core", cnf(), "-o", aux()});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("core sizes:"), std::string::npos);

  // The written core must itself be UNSAT.
  const CliRun s = run({"solve", aux()});
  EXPECT_EQ(s.exit_code, kExitUnsat);
}

TEST_F(CliTest, MinimalCoreSmallerOrEqual) {
  const CliRun g =
      run({"gen", "routing", "8", "3", "12", "5", "-o", cnf()});
  ASSERT_EQ(g.exit_code, 0);
  const CliRun r = run({"core", "--minimal", cnf(), "-o", aux()});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("minimal core:"), std::string::npos);
  const CliRun s = run({"solve", aux()});
  EXPECT_EQ(s.exit_code, kExitUnsat);
}

TEST_F(CliTest, ProofExportsWriteFiles) {
  gen_php(4);
  const CliRun r = run({"solve", cnf(), "--proof-dot", aux(),
                        "--tracecheck", aux2()});
  ASSERT_EQ(r.exit_code, kExitUnsat) << r.err;
  EXPECT_NE(r.out.find("proof DAG:"), std::string::npos);
  std::ifstream dot(aux());
  std::string first_line;
  std::getline(dot, first_line);
  EXPECT_EQ(first_line, "digraph proof {");
  EXPECT_GT(std::filesystem::file_size(aux2()), 0u);
}

TEST_F(CliTest, SolverOptionFlagsAccepted) {
  gen_php(5);
  const CliRun r = run({"solve", cnf(), "--minimize", "--luby",
                        "--no-deletion", "--stats"});
  EXPECT_EQ(r.exit_code, kExitUnsat) << r.err;
}

TEST_F(CliTest, BudgetYieldsUnknown) {
  gen_php(7);
  const CliRun r = run({"solve", cnf(), "--budget", "1"});
  EXPECT_EQ(r.exit_code, kExitUnknown);
  EXPECT_NE(r.out.find("s UNKNOWN"), std::string::npos);
}

TEST_F(CliTest, GenValidatesFamilyAndParams) {
  const CliRun bad = run({"gen", "nosuch", "-o", aux()});
  EXPECT_EQ(bad.exit_code, kExitError);
  EXPECT_NE(bad.err.find("unknown family"), std::string::npos);

  const CliRun nan = run({"gen", "php", "abc", "-o", aux()});
  EXPECT_EQ(nan.exit_code, kExitError);
  EXPECT_NE(nan.err.find("expected a number"), std::string::npos);

  const CliRun noout = run({"gen", "php", "4"});
  EXPECT_EQ(noout.exit_code, kExitError);
}

TEST_F(CliTest, GenBmcFamilies) {
  const CliRun rot = run({"gen", "rotator", "4", "5", "-o", cnf()});
  ASSERT_EQ(rot.exit_code, 0) << rot.err;
  EXPECT_EQ(run({"solve", cnf()}).exit_code, kExitUnsat);

  const CliRun cnt = run({"gen", "counter", "4", "3", "2", "-o", cnf()});
  ASSERT_EQ(cnt.exit_code, 0) << cnt.err;
  EXPECT_EQ(run({"solve", cnf()}).exit_code, kExitUnsat);

  const CliRun cnt2 = run({"gen", "counter", "4", "3", "5", "-o", cnf()});
  ASSERT_EQ(cnt2.exit_code, 0) << cnt2.err;
  EXPECT_EQ(run({"solve", cnf()}).exit_code, kExitSat);
}

TEST_F(CliTest, AssumptionsSatAndUnsat) {
  // x0 -> x1 chain.
  write_cnf("p cnf 2 1\n-1 2 0\n");
  const CliRun sat = run({"solve", cnf(), "--assume", "1 2"});
  EXPECT_EQ(sat.exit_code, kExitSat);

  const CliRun unsat =
      run({"solve", cnf(), "--assume", "1 -2", "--check", "both"});
  EXPECT_EQ(unsat.exit_code, kExitUnsat) << unsat.err;
  EXPECT_NE(unsat.out.find("failed assumptions:"), std::string::npos);
  EXPECT_NE(unsat.out.find("depth-first check ok"), std::string::npos);
}

TEST_F(CliTest, AssumptionTraceRoundTripsThroughCheckCommand) {
  write_cnf("p cnf 3 2\n-1 2 0\n-2 3 0\n");
  const CliRun s =
      run({"solve", cnf(), "--assume", "1 -3", "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat) << s.err;
  const CliRun c = run({"check", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
}

TEST_F(CliTest, AssumeRejectsMalformedInput) {
  write_cnf("p cnf 1 1\n1 0\n");
  EXPECT_EQ(run({"solve", cnf(), "--assume", "0"}).exit_code, kExitError);
  EXPECT_EQ(run({"solve", cnf(), "--assume", "x"}).exit_code, kExitError);
  EXPECT_EQ(run({"solve", cnf(), "--assume", ""}).exit_code, kExitError);
}

TEST_F(CliTest, SimplifySolveAndTraceCheck) {
  const CliRun g = run({"gen", "rotator", "4", "6", "-o", cnf()});
  ASSERT_EQ(g.exit_code, 0);
  const CliRun s = run({"solve", cnf(), "--simplify", "--trace", aux(),
                        "--check", "both", "--stats"});
  EXPECT_EQ(s.exit_code, kExitUnsat) << s.err;
  EXPECT_NE(s.out.find("c preprocessing:"), std::string::npos);
  // The file trace must also validate standalone.
  const CliRun c = run({"check", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
}

TEST_F(CliTest, SimplifySatModelVerified) {
  write_cnf("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n");
  const CliRun s = run({"solve", cnf(), "--simplify", "--model"});
  EXPECT_EQ(s.exit_code, kExitSat) << s.err;
  EXPECT_NE(s.out.find("c model verified"), std::string::npos);
}

TEST_F(CliTest, SimplifyWithAssumeRejected) {
  write_cnf("p cnf 1 1\n1 0\n");
  const CliRun s = run({"solve", cnf(), "--simplify", "--assume", "1"});
  EXPECT_EQ(s.exit_code, kExitError);
}

TEST_F(CliTest, SimplifyWithDrupRejected) {
  write_cnf("p cnf 1 1\n1 0\n");
  const CliRun s = run({"solve", cnf(), "--simplify", "--drup", aux()});
  EXPECT_EQ(s.exit_code, kExitError);
}

TEST_F(CliTest, CheckCommandVariants) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat);
  EXPECT_EQ(run({"check", "--hybrid", cnf(), aux()}).exit_code, 0);
  const CliRun rup = run({"check", "--rup", cnf(), aux()});
  EXPECT_EQ(rup.exit_code, 0) << rup.err;
  EXPECT_NE(rup.out.find("VERIFIED (RUP)"), std::string::npos);
  EXPECT_EQ(run({"check", "--bf", "--rup", cnf(), aux()}).exit_code,
            kExitError);
}

TEST_F(CliTest, CheckerOptionSelectsBackend) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat);
  for (const char* mode : {"df", "bf", "hybrid", "parallel"}) {
    const CliRun c = run({"check", "--checker", mode, cnf(), aux()});
    EXPECT_EQ(c.exit_code, 0) << mode << ": " << c.err;
    EXPECT_NE(c.out.find("VERIFIED"), std::string::npos) << mode;
  }
  // --opt=value spelling, as in the issue's `--checker=parallel --jobs=4`.
  const CliRun eq = run({"check", "--checker=parallel", "--jobs=4", cnf(),
                         aux()});
  EXPECT_EQ(eq.exit_code, 0) << eq.err;
  EXPECT_EQ(run({"check", "--checker", "warp", cnf(), aux()}).exit_code,
            kExitError);
  EXPECT_EQ(
      run({"check", "--checker", "df", "--bf", cnf(), aux()}).exit_code,
      kExitError);
  EXPECT_EQ(run({"check", "--checker=parallel", "--jobs=0", cnf(), aux()})
                .exit_code,
            kExitError);
}

TEST_F(CliTest, SolveWithParallelCheck) {
  gen_php(5);
  const CliRun r = run({"solve", cnf(), "--check", "parallel", "--jobs", "2"});
  EXPECT_EQ(r.exit_code, kExitUnsat);
  EXPECT_NE(r.out.find("parallel check ok"), std::string::npos);
}

TEST_F(CliTest, TrimCommandRoundTrip) {
  gen_php(6);
  const CliRun s = run({"solve", cnf(), "--trace", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat);
  const CliRun t = run({"trim", aux(), aux2()});
  EXPECT_EQ(t.exit_code, 0) << t.err;
  EXPECT_NE(t.out.find("trimmed"), std::string::npos);
  const CliRun c = run({"check", cnf(), aux2()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
}

TEST_F(CliTest, DrupEmitAndCheckRoundTrip) {
  gen_php(5);
  const CliRun s = run({"solve", cnf(), "--drup", aux()});
  ASSERT_EQ(s.exit_code, kExitUnsat) << s.err;
  const CliRun c = run({"drup", cnf(), aux()});
  EXPECT_EQ(c.exit_code, 0) << c.err;
  EXPECT_NE(c.out.find("VERIFIED (DRUP)"), std::string::npos);
  // Against the wrong formula the proof must fail.
  const CliRun g2 = run({"gen", "php", "6", "-o", aux2()});
  ASSERT_EQ(g2.exit_code, 0);
  EXPECT_EQ(run({"drup", aux2(), aux()}).exit_code, kExitError);
}

TEST_F(CliTest, InterpolateCommand) {
  gen_php(4);
  // A = the 5 at-least-one clauses, B = the rest.
  const CliRun r =
      run({"interpolate", cnf(), "--split", "5", "-o", aux()});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("verified: A implies I"), std::string::npos);
  std::ifstream dot(aux());
  std::string first;
  std::getline(dot, first);
  EXPECT_EQ(first, "digraph interpolant {");

  // A satisfiable formula has no interpolant.
  write_cnf("p cnf 1 1\n1 0\n");
  const CliRun sat = run({"interpolate", cnf(), "--split", "1"});
  EXPECT_EQ(sat.exit_code, kExitError);
  // Split out of range.
  gen_php(4);
  EXPECT_EQ(run({"interpolate", cnf(), "--split", "999"}).exit_code,
            kExitError);
}

TEST_F(CliTest, SolveMissingFileFails) {
  const CliRun r = run({"solve", "/nonexistent/file.cnf"});
  EXPECT_EQ(r.exit_code, kExitError);
  EXPECT_FALSE(r.err.empty());
}

TEST_F(CliTest, UnexpectedArgumentRejected) {
  gen_php(4);
  const CliRun r = run({"solve", cnf(), "bogus-extra"});
  EXPECT_EQ(r.exit_code, kExitError);
  EXPECT_NE(r.err.find("unexpected argument"), std::string::npos);
}

TEST_F(CliTest, BwGenReportsOptimal) {
  const CliRun g = run({"gen", "bw", "4", "-1", "9", "-o", cnf()});
  ASSERT_EQ(g.exit_code, 0) << g.err;
  EXPECT_EQ(run({"solve", cnf()}).exit_code, kExitUnsat);
}

}  // namespace
}  // namespace satproof::cli
