// Reproduces Table 1 of the paper: per-instance statistics of the solver
// with trace generation turned off and on.
//
// Paper columns: Instance Name | Num. Variables | Orig. Num. Clauses |
// Num. Learned Clauses | Runtime Trace Off (s) | Runtime Trace On (s) |
// Trace Gen. Overhead.
//
// The paper measures 1.7-12% overhead, smaller on harder instances. The
// trace-on configuration writes the human-readable ASCII format to a real
// file, as zchaff did.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "src/encode/suite.hpp"
#include "src/obs/trace.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace satproof;

  // --trace-out FILE: record per-instance solve spans under an
  // obs::TraceSession and write the Chrome-trace JSON artifact.
  std::string trace_out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else {
      std::cerr << "usage: table1_trace_overhead [--trace-out FILE]\n";
      return 1;
    }
  }
  std::optional<obs::TraceSession> trace_session;
  if (!trace_out_path.empty()) trace_session.emplace();

  util::Table table({"Instance", "Family", "Num. Vars", "Orig. Cls",
                     "Learned Cls", "Trace Off (s)", "Trace On (s)",
                     "Overhead"});

  // Best of three runs per configuration: at generated-suite scale the
  // per-instance runtimes are milliseconds to seconds, so one-shot timing
  // would be dominated by scheduler noise (the paper's instances ran for
  // minutes, where a single measurement suffices).
  constexpr int kRuns = 3;

  double total_off = 0.0, total_on = 0.0;
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    // Trace off: exactly the plain solver.
    double secs_off = 1e100;
    for (int run = 0; run < kRuns; ++run) {
      obs::Span span("solve_trace_off");
      solver::Solver off;
      off.add_formula(inst.formula);
      util::Timer t_off;
      if (off.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
        return 1;
      }
      secs_off = std::min(secs_off, t_off.elapsed_seconds());
    }

    // Trace on: ASCII trace to a real file.
    double secs_on = 1e100;
    std::uint64_t learned = 0;
    for (int run = 0; run < kRuns; ++run) {
      obs::Span span("solve_trace_on");
      util::TempFile trace_file("table1-trace");
      std::ofstream out(trace_file.path());
      trace::AsciiTraceWriter writer(out);
      solver::Solver on;
      on.add_formula(inst.formula);
      on.set_trace_writer(&writer);
      util::Timer t_on;
      if (on.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT with trace\n";
        return 1;
      }
      secs_on = std::min(secs_on, t_on.elapsed_seconds());
      learned = on.stats().learned_clauses;
    }

    total_off += secs_off;
    total_on += secs_on;
    table.add_row({inst.name, inst.family,
                   std::to_string(inst.formula.num_vars()),
                   std::to_string(inst.formula.num_clauses()),
                   std::to_string(learned), util::format_double(secs_off, 3),
                   util::format_double(secs_on, 3),
                   util::format_percent(secs_on - secs_off, secs_off)});
  }

  std::cout << "Table 1: zchaff-style solver with trace generation off/on\n"
            << "(paper: 1.7-12% overhead, smaller on harder instances)\n\n"
            << table.to_string() << "\nTotal: trace off "
            << util::format_double(total_off, 2) << "s, trace on "
            << util::format_double(total_on, 2) << "s, overall overhead "
            << util::format_percent(total_on - total_off, total_off) << "\n";

  if (trace_session) {
    obs::flush_this_thread();
    if (!trace_session->sink().write_file(trace_out_path)) {
      std::cerr << "FATAL: cannot write trace " << trace_out_path << "\n";
      return 1;
    }
    std::cout << "Chrome trace written to " << trace_out_path << "\n";
  }
  return 0;
}
