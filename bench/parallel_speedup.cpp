// Sequential vs wavefront-parallel proof checking on the bundled UNSAT
// suite: wall-clock for the depth-first checker and for the parallel
// checker at 1, 2 and 4 workers, plus the speedup of 4 workers over
// sequential depth-first. Checking — not solving — is the throughput
// bottleneck at scale, so this is the number the parallel backend exists
// to move. Every run also cross-checks that the parallel core is
// byte-identical to the depth-first core.
//
// Note: speedup tracks the machine. On a single-hardware-thread host the
// parallel rows measure pure scheduling overhead (expect ~1.0x or below);
// the wavefront structure only pays off with real cores to spread across.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/checker/depth_first.hpp"
#include "src/checker/parallel.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/json.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace {

/// One measured instance, kept for the optional JSON dump.
struct Row {
  std::string name;
  std::size_t derivations = 0;
  std::size_t built = 0;
  double df_seconds = 0.0;
  double par_seconds[3] = {0.0, 0.0, 0.0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace satproof;

  // --quick: the small suite, for CI smoke runs where the point is that
  // the harness works, not the absolute numbers. --json FILE writes the
  // measurements for tools/bench_compare.py.
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: parallel_speedup [--quick] [--json FILE]\n";
      return 2;
    }
  }

  util::Table table({"Instance", "Derivs", "Built", "DF (s)",
                     "Par j=1 (s)", "Par j=2 (s)", "Par j=4 (s)",
                     "Speedup j=4"});

  const encode::SuiteScale scale =
      quick ? encode::SuiteScale::Small : encode::SuiteScale::Standard;
  std::vector<Row> rows;
  for (const auto& inst : encode::unsat_suite(scale)) {
    trace::MemoryTraceWriter writer;
    solver::Solver s;
    s.add_formula(inst.formula);
    s.set_trace_writer(&writer);
    if (s.solve() != solver::SolveResult::Unsatisfiable) {
      std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
      return 1;
    }
    const trace::MemoryTrace t = writer.take();

    checker::CheckResult df;
    double df_secs = 0.0;
    {
      trace::MemoryTraceReader reader(t);
      util::Timer timer;
      df = checker::check_depth_first(inst.formula, reader);
      df_secs = timer.elapsed_seconds();
      if (!df.ok) {
        std::cerr << "FATAL: depth-first check failed on " << inst.name
                  << ": " << df.error << "\n";
        return 1;
      }
    }

    double par_secs[3] = {0.0, 0.0, 0.0};
    const unsigned jobs_grid[3] = {1, 2, 4};
    for (int j = 0; j < 3; ++j) {
      trace::MemoryTraceReader reader(t);
      checker::ParallelOptions opts;
      opts.jobs = jobs_grid[j];
      util::Timer timer;
      const checker::CheckResult par =
          checker::check_parallel(inst.formula, reader, opts);
      par_secs[j] = timer.elapsed_seconds();
      if (!par.ok) {
        std::cerr << "FATAL: parallel check failed on " << inst.name << ": "
                  << par.error << "\n";
        return 1;
      }
      if (par.core != df.core) {
        std::cerr << "FATAL: parallel core differs from depth-first on "
                  << inst.name << " at jobs=" << jobs_grid[j] << "\n";
        return 1;
      }
    }

    table.add_row({inst.name, std::to_string(df.stats.total_derivations),
                   std::to_string(df.stats.clauses_built),
                   util::format_double(df_secs, 3),
                   util::format_double(par_secs[0], 3),
                   util::format_double(par_secs[1], 3),
                   util::format_double(par_secs[2], 3),
                   util::format_double(
                       par_secs[2] > 0.0 ? df_secs / par_secs[2] : 0.0, 2)});
    Row row;
    row.name = inst.name;
    row.derivations = df.stats.total_derivations;
    row.built = df.stats.clauses_built;
    row.df_seconds = df_secs;
    for (int j = 0; j < 3; ++j) row.par_seconds[j] = par_secs[j];
    rows.push_back(std::move(row));
  }

  std::cout << "Parallel wavefront checking vs sequential depth-first\n"
            << "(hardware threads on this host: "
            << std::thread::hardware_concurrency() << ")\n\n"
            << table.to_string();

  if (json_path.empty()) return 0;

  double tot_df = 0.0, tot_par[3] = {0.0, 0.0, 0.0};
  for (const Row& r : rows) {
    tot_df += r.df_seconds;
    for (int j = 0; j < 3; ++j) tot_par[j] += r.par_seconds[j];
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("parallel_speedup");
  w.key("quick");
  w.value(quick);
  w.key("suite");
  w.value(quick ? "small" : "standard");
  w.key("hardware_threads");
  w.value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("instances");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("name");
    w.value(r.name);
    w.key("derivations");
    w.value(static_cast<std::uint64_t>(r.derivations));
    w.key("clauses_built");
    w.value(static_cast<std::uint64_t>(r.built));
    w.key("df_seconds");
    w.value(r.df_seconds);
    w.key("par1_seconds");
    w.value(r.par_seconds[0]);
    w.key("par2_seconds");
    w.value(r.par_seconds[1]);
    w.key("par4_seconds");
    w.value(r.par_seconds[2]);
    w.end_object();
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.key("df_seconds");
  w.value(tot_df);
  w.key("par1_seconds");
  w.value(tot_par[0]);
  w.key("par2_seconds");
  w.value(tot_par[1]);
  w.key("par4_seconds");
  w.value(tot_par[2]);
  w.end_object();
  w.end_object();
  std::ofstream js(json_path);
  if (!js) {
    std::cerr << "FATAL: cannot open " << json_path << "\n";
    return 1;
  }
  js << w.take() << "\n";
  std::cout << "\nJSON written to " << json_path << "\n";
  return 0;
}
