// Tests for the sequential-counter cardinality encoders, validated against
// brute-force counting over all assignments of the constrained literals.

#include <gtest/gtest.h>

#include "src/checker/depth_first.hpp"
#include "src/cnf/model.hpp"
#include "src/encode/cardinality.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

namespace satproof::encode {
namespace {

/// Brute-force check: over every assignment of the first `n` variables,
/// the encoding must be extendable (via the auxiliaries) iff the predicate
/// holds on the popcount. Uses the solver with assumptions per point.
template <typename Predicate>
void exhaustive_cardinality_check(const Formula& f, unsigned n,
                                  Predicate holds) {
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<Lit> assume;
    unsigned ones = 0;
    for (unsigned i = 0; i < n; ++i) {
      const bool bit = ((mask >> i) & 1) != 0;
      ones += bit ? 1 : 0;
      assume.push_back(Lit(static_cast<Var>(i), !bit));
    }
    solver::Solver s;
    s.add_formula(f);
    const auto res = s.solve(assume);
    const bool expected = holds(ones);
    EXPECT_EQ(res == solver::SolveResult::Satisfiable, expected)
        << "mask " << mask << " (popcount " << ones << ")";
  }
}

TEST(Cardinality, AtMostKExhaustive) {
  for (const unsigned n : {3u, 5u, 6u}) {
    for (unsigned k = 0; k <= n; ++k) {
      Formula f(n);
      std::vector<Lit> lits;
      for (Var v = 0; v < n; ++v) lits.push_back(Lit::pos(v));
      add_at_most_k(f, lits, k);
      exhaustive_cardinality_check(
          f, n, [k](unsigned ones) { return ones <= k; });
    }
  }
}

TEST(Cardinality, AtLeastKExhaustive) {
  for (const unsigned n : {3u, 5u}) {
    for (unsigned k = 0; k <= n; ++k) {
      Formula f(n);
      std::vector<Lit> lits;
      for (Var v = 0; v < n; ++v) lits.push_back(Lit::pos(v));
      add_at_least_k(f, lits, k);
      exhaustive_cardinality_check(
          f, n, [k](unsigned ones) { return ones >= k; });
    }
  }
}

TEST(Cardinality, ExactlyKExhaustive) {
  constexpr unsigned n = 5;
  for (unsigned k = 0; k <= n; ++k) {
    Formula f(n);
    std::vector<Lit> lits;
    for (Var v = 0; v < n; ++v) lits.push_back(Lit::pos(v));
    add_exactly_k(f, lits, k);
    exhaustive_cardinality_check(f, n,
                                 [k](unsigned ones) { return ones == k; });
  }
}

TEST(Cardinality, MixedPolaritiesWork) {
  // At most 1 of {x0, ~x1, x2}.
  Formula f(3);
  const std::vector<Lit> lits{Lit::pos(0), Lit::neg(1), Lit::pos(2)};
  add_at_most_k(f, lits, 1);
  for (unsigned mask = 0; mask < 8; ++mask) {
    std::vector<Lit> assume;
    for (unsigned i = 0; i < 3; ++i) {
      assume.push_back(Lit(static_cast<Var>(i), ((mask >> i) & 1) == 0));
    }
    const unsigned count = (((mask >> 0) & 1) != 0 ? 1 : 0) +
                           (((mask >> 1) & 1) == 0 ? 1 : 0) +
                           (((mask >> 2) & 1) != 0 ? 1 : 0);
    solver::Solver s;
    s.add_formula(f);
    EXPECT_EQ(s.solve(assume) == solver::SolveResult::Satisfiable,
              count <= 1)
        << mask;
  }
}

TEST(Cardinality, AtLeastMoreThanNIsUnsat) {
  Formula f(2);
  const std::vector<Lit> lits{Lit::pos(0), Lit::pos(1)};
  add_at_least_k(f, lits, 3);
  solver::Solver s;
  s.add_formula(f);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(Cardinality, SequentialPigeonholeUnsatWithCheckedProof) {
  const Formula f = pigeonhole_sequential(4);
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  EXPECT_TRUE(checker::check_depth_first(f, r).ok);
}

TEST(Cardinality, SequentialEncodingIsSmallerThanPairwiseForLargeN) {
  // Pairwise at-most-one of n literals is n(n-1)/2 clauses; sequential is
  // ~3n. The encodings cross over quickly.
  const Formula pairwise = pigeonhole(9);
  const Formula sequential = pigeonhole_sequential(9);
  EXPECT_LT(sequential.num_clauses(), pairwise.num_clauses());
}

}  // namespace
}  // namespace satproof::encode
