#pragma once

#include <cstdint>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// XOR-chain instance: constraints x_i XOR x_{i+1} = c_i around a cycle of
/// `n` variables, with the parities c_i drawn pseudo-randomly and then
/// adjusted so their total parity is odd. Summing all constraints gives
/// 0 = 1 — unsatisfiable. XOR structure is the paper's explanation for the
/// long proofs of the `longmult` family ("xor gates often require long
/// proofs by resolution").
[[nodiscard]] Formula xor_chain(unsigned n, std::uint64_t seed);

/// Random 3-XOR (Tseitin-style) instance: `m` constraints, each the XOR of
/// 3 distinct variables out of `n`, equal to a random parity; the last
/// constraint's parity is flipped if needed to make the system
/// inconsistent over GF(2) — checked by Gaussian elimination, so the
/// returned formula is always unsatisfiable. Hard for resolution even at
/// moderate sizes; keep `n` small.
[[nodiscard]] Formula random_xor3(unsigned n, unsigned m, std::uint64_t seed);

/// Tseitin parity contradiction on a rows x cols torus grid: one variable
/// per edge (2*rows*cols edges, every vertex degree 4), one XOR constraint
/// per vertex with pseudo-random charges summing to odd — so the formula
/// is unsatisfiable by the handshake argument. Tseitin formulas on
/// well-connected graphs are the classic family of provably long
/// resolution proofs; this is the structured stand-in for the paper's
/// longmult observation that "xor gates often require long proofs by
/// resolution". Requires rows >= 3 and cols >= 3 (so edges are distinct).
[[nodiscard]] Formula tseitin_torus(unsigned rows, unsigned cols,
                                    std::uint64_t seed);

}  // namespace satproof::encode
