#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace satproof::util {

/// RAII owner of one socket file descriptor, plus the handful of blocking
/// I/O helpers the proof-checking service needs. POSIX-only in
/// implementation (Unix-domain and localhost TCP sockets); on platforms
/// without BSD sockets every factory throws std::runtime_error, keeping
/// the rest of the service code portable to compile.
///
/// All I/O is blocking with EINTR retried. Sends use MSG_NOSIGNAL (a peer
/// that disappeared yields an error return, never SIGPIPE).
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Closes the descriptor (idempotent).
  void close() noexcept;

  /// shutdown(2) both directions; errors ignored. Used to wake a peer (or
  /// our own thread) blocked in recv.
  void shutdown_both() noexcept;

  /// shutdown(2) the read side only: wakes a thread blocked in recv while
  /// leaving in-flight sends (e.g. a final result frame) intact.
  void shutdown_read() noexcept;

  /// Writes all `n` bytes; returns false on any error (including a closed
  /// peer).
  bool send_all(const void* data, std::size_t n) noexcept;

  /// Reads up to `n` bytes. Returns the byte count (> 0), 0 on orderly
  /// close, or -1 on error/timeout.
  std::ptrdiff_t recv_some(void* data, std::size_t n) noexcept;

  /// Reads exactly `n` bytes unless the peer closes or errors first;
  /// returns the number of bytes actually read (== n on success).
  std::size_t recv_exact(void* data, std::size_t n) noexcept;

  /// Sets SO_RCVTIMEO; a blocked recv then fails instead of hanging
  /// forever on a stalled peer. 0 disables the timeout.
  void set_recv_timeout_ms(unsigned ms) noexcept;

  /// Puts the descriptor in O_NONBLOCK mode (the event-loop server runs
  /// every accepted connection and listener non-blocking). Returns false
  /// on failure.
  bool set_nonblocking() noexcept;

  /// Non-blocking read for event-loop use. Returns the byte count (> 0),
  /// 0 on orderly close, kWouldBlock when no data is available, or
  /// kIoError on a hard error. EINTR is retried.
  std::ptrdiff_t recv_nonblocking(void* data, std::size_t n) noexcept;

  /// Non-blocking write for event-loop use. Returns the number of bytes
  /// accepted (>= 0; 0 means the send buffer is full, try again on the
  /// next writable event), or kIoError on a hard error. EINTR is retried.
  std::ptrdiff_t send_nonblocking(const void* data, std::size_t n) noexcept;

  /// recv_nonblocking: no data available right now.
  static constexpr std::ptrdiff_t kWouldBlock = -1;
  /// recv_nonblocking / send_nonblocking: unrecoverable socket error.
  static constexpr std::ptrdiff_t kIoError = -2;

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path`, replacing a stale
/// socket file if one exists. Throws std::runtime_error on failure.
Socket listen_unix(const std::string& path, int backlog = 64);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Throws
/// std::runtime_error on failure.
Socket listen_tcp_localhost(std::uint16_t port, int backlog = 64);

/// Actual bound port of a TCP listener (resolves port 0).
std::uint16_t local_port(const Socket& listener);

/// Accepts one connection; an invalid Socket means the listener was
/// closed/shut down or accept failed.
Socket accept_connection(Socket& listener);

/// Connects to a Unix-domain socket. Throws std::runtime_error on failure.
Socket connect_unix(const std::string& path);

/// Connects to 127.0.0.1:`port`. Throws std::runtime_error on failure.
Socket connect_tcp_localhost(std::uint16_t port);

/// poll(2) for readability over up to three descriptors (listener fds plus
/// the drain-notification pipe). Returns a bitmask: bit i set when fds[i]
/// is readable or in an error/hup state. Negative fds are skipped.
/// timeout_ms < 0 blocks indefinitely.
unsigned poll_readable(const int (&fds)[3], int timeout_ms);

/// Anonymous pipe for async-signal-safe wakeups: a signal handler write()s
/// one byte to `write_fd`, the poll loop sees `read_fd` readable.
struct WakePipe {
  WakePipe();  ///< throws std::runtime_error on failure
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// Async-signal-safe: writes one byte, ignoring errors (a full pipe
  /// still means the reader has a pending wakeup).
  void notify() noexcept;
  /// Drains any pending bytes.
  void drain() noexcept;

  int read_fd = -1;
  int write_fd = -1;
};

}  // namespace satproof::util
