// Tests for the hybrid checker (the paper's future-work design): it must
// agree with depth-first on what gets built, with breadth-first on what is
// accepted, and sit at or below depth-first memory.

#include <gtest/gtest.h>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/hybrid.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/fault_injector.hpp"
#include "src/trace/memory.hpp"

namespace satproof::checker {
namespace {

struct SolvedUnsat {
  Formula formula;
  trace::MemoryTrace trace;
  solver::SolverStats stats;
};

SolvedUnsat solve_unsat(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), w.take(), s.stats()};
}

TEST(Hybrid, AcceptsGenuineTraces) {
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    const SolvedUnsat su = solve_unsat(inst.formula);
    trace::MemoryTraceReader r(su.trace);
    const CheckResult hy = check_hybrid(su.formula, r);
    EXPECT_TRUE(hy.ok) << inst.name << ": " << hy.error;
  }
}

TEST(Hybrid, BuildsExactlyTheDepthFirstSubgraph) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(6));
  trace::MemoryTraceReader r1(su.trace);
  const CheckResult df = check_depth_first(su.formula, r1);
  trace::MemoryTraceReader r2(su.trace);
  const CheckResult hy = check_hybrid(su.formula, r2);
  ASSERT_TRUE(df.ok);
  ASSERT_TRUE(hy.ok);
  EXPECT_EQ(hy.stats.total_derivations, df.stats.total_derivations);
  // Reachability from {final conflict, level-0 antecedents} can exceed
  // reachability from the final conflict alone by at most the pinned
  // antecedents themselves; on these traces they coincide.
  EXPECT_GE(hy.stats.clauses_built, df.stats.clauses_built);
  EXPECT_LE(hy.stats.clauses_built,
            df.stats.clauses_built + su.trace.level0.size() + 1);
  EXPECT_LT(hy.stats.clauses_built, hy.stats.total_derivations);
}

TEST(Hybrid, MemoryAtOrBelowDepthFirst) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(7));
  trace::MemoryTraceReader r1(su.trace);
  const CheckResult df = check_depth_first(su.formula, r1);
  trace::MemoryTraceReader r2(su.trace);
  const CheckResult hy = check_hybrid(su.formula, r2);
  ASSERT_TRUE(df.ok);
  ASSERT_TRUE(hy.ok);
  // The hybrid holds the DAG structure but no clause memo; on large traces
  // it must undercut the depth-first peak.
  EXPECT_LT(hy.stats.peak_mem_bytes, df.stats.peak_mem_bytes);
}

TEST(Hybrid, AgreesWithBreadthFirstOnResults) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(5));
  trace::MemoryTraceReader r1(su.trace);
  const CheckResult bf = check_breadth_first(su.formula, r1);
  trace::MemoryTraceReader r2(su.trace);
  const CheckResult hy = check_hybrid(su.formula, r2);
  ASSERT_TRUE(bf.ok);
  ASSERT_TRUE(hy.ok);
  // Hybrid performs a subset of breadth-first's work.
  EXPECT_LE(hy.stats.resolutions, bf.stats.resolutions);
  EXPECT_LE(hy.stats.clauses_built, bf.stats.clauses_built);
}

TEST(Hybrid, FileBackedCountsWork) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(5));
  HybridOptions opts;
  opts.use_counts = UseCountMode::FileBacked;
  trace::MemoryTraceReader r(su.trace);
  const CheckResult hy = check_hybrid(su.formula, r, opts);
  EXPECT_TRUE(hy.ok) << hy.error;
}

TEST(Hybrid, RejectsSatRunTrace) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  EXPECT_FALSE(check_hybrid(f, r).ok);
}

TEST(Hybrid, RejectsCorruptedTraces) {
  const Formula f = encode::pigeonhole(5);
  for (const auto kind :
       {trace::FaultKind::DropSource, trace::FaultKind::WrongSource,
        trace::FaultKind::FlipLevel0Value, trace::FaultKind::DropDerivation,
        trace::FaultKind::TruncateTrace}) {
    bool fired_any = false;
    for (const std::uint64_t target : {5ull, 0ull}) {
      solver::Solver s;
      s.add_formula(f);
      trace::MemoryTraceWriter inner;
      trace::FaultInjector injector(inner, kind, 7, target);
      s.set_trace_writer(&injector);
      ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
      if (!injector.fired()) continue;
      fired_any = true;
      const trace::MemoryTrace t = inner.take();
      trace::MemoryTraceReader r(t);
      const CheckResult hy = check_hybrid(f, r);
      EXPECT_FALSE(hy.ok) << trace::to_string(kind);
      break;
    }
    EXPECT_TRUE(fired_any) << trace::to_string(kind);
  }
}

TEST(Hybrid, TrivialPreprocessingConflictAccepted) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  const SolvedUnsat su = solve_unsat(std::move(f));
  trace::MemoryTraceReader r(su.trace);
  EXPECT_TRUE(check_hybrid(su.formula, r).ok);
}

/// Property: hybrid agrees with both classic checkers across random
/// instances.
class HybridSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridSweep, ThreeCheckersAgree) {
  const Formula f = encode::random_ksat(28, 150, 3, GetParam());
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  if (s.solve() != solver::SolveResult::Unsatisfiable) {
    GTEST_SKIP() << "satisfiable draw";
  }
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t), r2(t), r3(t);
  const CheckResult df = check_depth_first(f, r1);
  const CheckResult bf = check_breadth_first(f, r2);
  const CheckResult hy = check_hybrid(f, r3);
  EXPECT_TRUE(df.ok) << df.error;
  EXPECT_TRUE(bf.ok) << bf.error;
  EXPECT_TRUE(hy.ok) << hy.error;
  EXPECT_LE(hy.stats.clauses_built, bf.stats.clauses_built);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridSweep,
                         ::testing::Values(5, 23, 71, 400, 1234));

}  // namespace
}  // namespace satproof::checker
