file(REMOVE_RECURSE
  "CMakeFiles/proof_export.dir/proof_export.cpp.o"
  "CMakeFiles/proof_export.dir/proof_export.cpp.o.d"
  "proof_export"
  "proof_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
