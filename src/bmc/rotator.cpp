#include "src/bmc/rotator.hpp"

#include "src/circuit/words.hpp"

namespace satproof::bmc {

SequentialCircuit make_rotator(unsigned width, bool break_invariant) {
  using circuit::Wire;
  using circuit::Word;

  SequentialCircuit seq;
  circuit::Netlist& n = seq.comb;

  // Register outputs are primary inputs of the combinational core.
  Word state(width);
  for (auto& w : state) w = n.add_input();

  // Free inputs: enable, a 2-bit rotate amount, and optionally the
  // invariant breaker.
  const Wire enable = n.add_input();
  Word amount(2);
  for (auto& w : amount) w = n.add_input();
  const Wire corrupt =
      break_invariant ? n.add_input() : circuit::kInvalidWire;

  const Word rotated = circuit::barrel_rotate_left(n, state, amount);
  Word next(width);
  for (unsigned i = 0; i < width; ++i) {
    next[i] = n.make_mux(enable, rotated[i], state[i]);
  }
  if (break_invariant) {
    next[0] = n.make_or(next[0], corrupt);
  }

  // bad = popcount(state) != 1 = (no bit set) | (some pair both set).
  std::vector<Wire> pair_hits;
  for (unsigned i = 0; i < width; ++i) {
    for (unsigned j = i + 1; j < width; ++j) {
      pair_hits.push_back(n.make_and(state[i], state[j]));
    }
  }
  const Wire two_or_more = n.reduce_or(pair_hits);
  const Wire none = n.make_not(n.reduce_or(state));
  seq.bad = n.make_or(none, two_or_more);

  seq.registers.resize(width);
  for (unsigned i = 0; i < width; ++i) {
    seq.registers[i] = {state[i], next[i], i == 0};
  }
  return seq;
}

}  // namespace satproof::bmc
