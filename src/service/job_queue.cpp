#include "src/service/job_queue.hpp"

namespace satproof::service {

void JobTicket::complete(JobOutcome o, bool was_timeout) {
  {
    std::lock_guard lock(mutex);
    outcome = std::move(o);
    timed_out = was_timeout;
    done = true;
  }
  cv.notify_all();
}

void JobTicket::wait() {
  std::unique_lock lock(mutex);
  cv.wait(lock, [this] { return done; });
}

JobQueue::EnqueueResult JobQueue::try_enqueue(
    JobRequest&& request, std::shared_ptr<JobTicket>& ticket_out) {
  std::lock_guard lock(mutex_);
  if (closed_) return EnqueueResult::kClosed;
  if (queue_.size() >= capacity_) return EnqueueResult::kFull;
  ticket_out = std::make_shared<JobTicket>();
  queue_.emplace_back(std::move(request), ticket_out);
  return EnqueueResult::kAccepted;
}

std::optional<std::pair<JobRequest, std::shared_ptr<JobTicket>>>
JobQueue::try_pop() {
  std::lock_guard lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  auto item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

void JobQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
}

bool JobQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace satproof::service
