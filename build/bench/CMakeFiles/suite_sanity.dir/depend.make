# Empty dependencies file for suite_sanity.
# This may be replaced when dependencies are built.
