#include "src/checker/window.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "src/obs/trace.hpp"

namespace satproof::checker {

namespace {

class WindowChecker {
 public:
  WindowChecker(const Formula& f, trace::TraceReader& reader,
                const WindowOptions& options)
      : formula_(&f),
        reader_(&reader),
        options_(options),
        level0_(reader.num_vars()),
        counts_(make_use_count_store(options.use_counts)),
        store_(options.recycle_arena) {}

  CheckResult run() {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      window_budget_ = options_.mem_limit_bytes == 0
                           ? std::numeric_limits<std::size_t>::max()
                           : std::max<std::size_t>(
                                 options_.mem_limit_bytes / 4, 1024);
      {
        obs::Span span("parse");
        scan_and_partition();
      }
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      {
        obs::Span span("index");
        mark_reachable_and_count();
      }
      chain_.reserve_vars(reader_->num_vars());
      {
        obs::Span span("replay");
        replay_windows();
      }
      const ClauseFetcher fetch = [this](ClauseId id) {
        return fetch_clause(id);
      };
      SortedClause remaining;
      std::vector<ClauseId> used_antecedents;
      std::uint64_t final_resolutions = 0;
      {
        obs::Span span("final_derivation");
        const std::uint64_t before = stats_.resolutions;
        remaining = derive_final_clause(*final_id_, fetch, level0_, stats_,
                                        &used_antecedents);
        final_resolutions = stats_.resolutions - before;
      }
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      {
        // The replay above covered the cones of *every* implied
        // antecedent (only known to be a superset of what the final
        // derivation would use). When the final derivation used them all,
        // the replay-tracked numbers are already the depth-first
        // checker's; otherwise recompute the exact depth-first cone with
        // one more backward windowed sweep over the structure.
        obs::Span span("core");
        std::sort(used_antecedents.begin(), used_antecedents.end());
        used_antecedents.erase(
            std::unique(used_antecedents.begin(), used_antecedents.end()),
            used_antecedents.end());
        if (used_antecedents != implied_ants_) {
          recompute_exact_cone(used_antecedents, final_resolutions);
        }
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    // The resident index only grows and the clause frontier lives entirely
    // in the arena, so the two peaks compose additively (as in the hybrid
    // checker).
    const util::ClauseArena& arena = store_.arena();
    stats_.peak_mem_bytes = mem_.peak_bytes() + arena.peak_bytes();
    stats_.arena_allocated_bytes = arena.allocated_bytes();
    stats_.arena_recycled_bytes = arena.recycled_bytes();
    stats_.arena_peak_bytes = arena.peak_bytes();
    stats_.core_original_clauses = core_count_;
    result.stats = stats_;
    if (result.ok && options_.collect_core) {
      result.core.reserve(core_count_);
      for (ClauseId id = 0; id < core_seen_.size(); ++id) {
        if (core_seen_[id] != 0) result.core.push_back(id);
      }
    }
    return result;
  }

 private:
  /// One derivation window: a contiguous run of derivation records whose
  /// source lists fit the window budget together.
  struct Window {
    std::uint64_t pos = 0;           ///< reader position of the first record
    std::uint64_t record_index = 0;  ///< records preceding it (seek fallback)
    std::size_t first = 0;           ///< index into ids_ of its first deriv
    std::uint32_t count = 0;         ///< derivations it covers
  };

  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  [[nodiscard]] std::uint64_t ordinal(ClauseId id) const {
    return id - num_original();
  }

  /// Index of a learned clause in ids_, or ~0 when absent. IDs are usually
  /// consecutive (solvers assign them densely), which pass A detects so
  /// the replay's id->index mapping is a subtraction, not a binary search.
  [[nodiscard]] std::size_t index_of(ClauseId id) const {
    if (dense_ids_) {
      if (ids_.empty() || id < ids_.front() || id > ids_.back()) {
        return ~std::size_t{0};
      }
      return static_cast<std::size_t>(id - ids_.front());
    }
    const std::uint32_t needle = static_cast<std::uint32_t>(id);
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), needle);
    if (it == ids_.end() || *it != needle) return ~std::size_t{0};
    return static_cast<std::size_t>(it - ids_.begin());
  }

  [[noreturn]] void fail_budget_record(ClauseId id, std::size_t need) const {
    throw CheckFailure(
        "mem limit " + std::to_string(options_.mem_limit_bytes) +
        " bytes is too small: derivation of clause " + std::to_string(id) +
        " alone needs " + std::to_string(need) +
        " bytes of window structure, but the window budget is " +
        std::to_string(window_budget_) + " bytes; increase --mem-limit");
  }

  /// Pass A: one streaming read validating trace structure (the same
  /// checks as the hybrid checker's pass 1), keeping only the derivation
  /// IDs resident and recording window boundaries so that each window's
  /// source lists fit the window budget.
  void scan_and_partition() {
    reader_->rewind();
    seekable_ = reader_->seekable();
    trace::Record rec;
    bool ended = false;
    std::optional<ClauseId> last_id;
    std::uint64_t record_index = 0;
    std::size_t cur_window_bytes = 0;
    while (!ended) {
      const std::uint64_t pos = seekable_ ? reader_->tell() : record_index;
      if (!reader_->next(rec)) break;
      switch (rec.kind) {
        case trace::RecordKind::Derivation: {
          if (rec.id < num_original()) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " reuses an original clause ID");
          }
          if (last_id.has_value() && rec.id <= *last_id) {
            throw CheckFailure(
                "derivation IDs must be strictly increasing (clause " +
                std::to_string(rec.id) + " after " +
                std::to_string(*last_id) + ")");
          }
          if (rec.sources.size() < 2) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " has fewer than two resolve sources");
          }
          for (const ClauseId s : rec.sources) {
            if (s >= rec.id) {
              throw CheckFailure(
                  "derivation " + std::to_string(rec.id) +
                  " references source " + std::to_string(s) +
                  " that does not precede it");
            }
          }
          // Sources precede rec.id, so bounding the ID makes the 32-bit
          // narrowing below lossless (same policy as DerivationIndex).
          if (rec.id > std::numeric_limits<std::uint32_t>::max()) {
            throw CheckFailure("trace too large: clause IDs exceed 2^32");
          }
          const std::size_t cost =
              derivation_record_bytes(rec.sources.size());
          if (cost > window_budget_) fail_budget_record(rec.id, cost);
          if (windows_.empty() ||
              cur_window_bytes + cost > window_budget_) {
            windows_.push_back({pos, record_index, ids_.size(), 0});
            cur_window_bytes = 0;
          }
          cur_window_bytes += cost;
          ++windows_.back().count;
          if (dense_ids_ && !ids_.empty() &&
              rec.id != static_cast<ClauseId>(ids_.back()) + 1) {
            dense_ids_ = false;
          }
          last_id = rec.id;
          ids_.push_back(static_cast<std::uint32_t>(rec.id));
          ++stats_.total_derivations;
          break;
        }
        case trace::RecordKind::FinalConflict:
          if (final_id_.has_value()) {
            throw CheckFailure(
                "trace has more than one final conflict record");
          }
          final_id_ = rec.id;
          break;
        case trace::RecordKind::Level0:
          level0_.add(rec.var, rec.value, rec.antecedent);
          break;
        case trace::RecordKind::Assumption:
          level0_.add_assumption(rec.var, rec.value);
          break;
        case trace::RecordKind::End:
          ended = true;
          break;
      }
      ++record_index;
    }
    if (!ended) throw CheckFailure("trace truncated: missing end record");
    end_pos_ = seekable_ ? reader_->tell() : record_index;
    mem_.add(ids_.size() * sizeof(std::uint32_t) +
             windows_.size() * sizeof(Window));
  }

  /// Pass B: backward sweep over the windows settling reachability and use
  /// counts. Sources always precede their consumers, so visiting windows
  /// last-to-first (and derivations in reverse within each) means every
  /// derivation's reachability is final before its own sources are walked
  /// — one fused sweep, no global source pool.
  void mark_reachable_and_count() {
    reachable_.assign(ids_.size(), false);
    mem_.add(ids_.size() / 8 + 16);

    const auto seed = [this](ClauseId id, const std::string& what) {
      if (id < num_original()) return;
      const std::size_t idx = index_of(id);
      if (idx == ~std::size_t{0}) {
        throw CheckFailure(what + " " + std::to_string(id) +
                           " is never derived in the trace");
      }
      reachable_[idx] = true;
    };
    seed(*final_id_, "final conflicting clause");
    for (Var v = 0; v < reader_->num_vars(); ++v) {
      if (level0_.implied(v)) {
        seed(level0_.antecedent(v), "level-0 antecedent");
        implied_ants_.push_back(level0_.antecedent(v));
      }
    }
    std::sort(implied_ants_.begin(), implied_ants_.end());
    implied_ants_.erase(
        std::unique(implied_ants_.begin(), implied_ants_.end()),
        implied_ants_.end());

    const std::uint64_t slots =
        ids_.empty() ? 0 : ordinal(ids_.back()) + 1;
    counts_->resize(slots);
    mem_.add(counts_->memory_bytes());
    mem_.add(level0_.size() * 16);
    core_seen_.assign(num_original(), 0);
    mem_.add(core_seen_.size());

    // The resident index is now complete; a budget it already exceeds
    // (plus one window) can never be honored — fail before doing the
    // expensive passes, with the shortfall spelled out.
    if (options_.mem_limit_bytes != 0 &&
        mem_.current_bytes() + window_budget_ > options_.mem_limit_bytes) {
      throw CheckFailure(
          "mem limit " + std::to_string(options_.mem_limit_bytes) +
          " bytes is too small for this trace: the resident index needs " +
          std::to_string(mem_.current_bytes()) + " bytes plus a " +
          std::to_string(window_budget_) +
          "-byte shifting window; increase --mem-limit");
    }

    for (std::size_t w = windows_.size(); w-- > 0;) {
      load_window(w);
      const Window& win = windows_[w];
      for (std::uint32_t i = win.count; i-- > 0;) {
        if (!reachable_[win.first + i]) continue;
        for (const std::uint32_t s : window_sources(i)) {
          if (s < num_original()) continue;
          const std::size_t idx = index_of(s);
          if (idx == ~std::size_t{0}) {
            throw CheckFailure("clause " + std::to_string(s) +
                               " is referenced but never derived in the "
                               "trace");
          }
          reachable_[idx] = true;
          counts_->increment(ordinal(s));
        }
      }
      release_window(w);
    }

    // Pin what the final derivation needs.
    if (*final_id_ >= num_original()) counts_->increment(ordinal(*final_id_));
    for (Var v = 0; v < reader_->num_vars(); ++v) {
      if (level0_.implied(v) && level0_.antecedent(v) >= num_original()) {
        counts_->increment(ordinal(level0_.antecedent(v)));
      }
    }
  }

  /// Pass C: forward streaming replay. Re-reads the trace in order,
  /// folding each reachable derivation against the frontier and releasing
  /// clauses (and shifted-past trace pages) as soon as their reachable
  /// uses are exhausted.
  void replay_windows() {
    reader_->rewind();
    trace::Record rec;
    std::size_t idx = 0;
    std::size_t widx = 0;
    while (reader_->next(rec)) {
      if (rec.kind == trace::RecordKind::End) break;
      if (rec.kind != trace::RecordKind::Derivation) continue;
      const std::size_t i = idx++;
      if (widx + 1 < windows_.size() &&
          i == windows_[widx + 1].first) {
        reader_->release_hint(windows_[widx].pos, windows_[widx + 1].pos);
        ++widx;
      }
      if (!reachable_[i]) continue;
      chain_.start(fetch_clause(rec.sources[0]));
      for (std::size_t k = 1; k < rec.sources.size(); ++k) {
        const ResolveResult r = chain_.step(fetch_clause(rec.sources[k]));
        ++stats_.resolutions;
        if (r.status != ResolveStatus::Ok) {
          throw CheckFailure(
              "derivation of clause " + std::to_string(rec.id) +
              ": resolving with source " + std::to_string(rec.sources[k]) +
              " (step " + std::to_string(k) + ") failed: " +
              (r.status == ResolveStatus::NoClash
                   ? "no clashing variable"
                   : "more than one clashing variable"));
        }
      }
      ++stats_.clauses_built;
      // One batched decrement per chain, exactly as in the hybrid replay,
      // so release order — and hence free-list state and recycled-bytes —
      // matches it for the same reachable set.
      ord_scratch_.clear();
      for (const ClauseId s : rec.sources) {
        if (s >= num_original()) ord_scratch_.push_back(ordinal(s));
      }
      exhausted_scratch_.clear();
      counts_->decrement_batch(ord_scratch_, exhausted_scratch_);
      for (const std::uint64_t ord : exhausted_scratch_) {
        const ClauseId victim = static_cast<ClauseId>(ord) + num_original();
        if (store_.contains(victim)) store_.release(victim);
      }
      if (counts_->get(ordinal(rec.id)) > 0) {
        store_.put(rec.id, chain_.lits());
      }
    }
  }

  /// The final derivation may use fewer antecedents than were pinned, in
  /// which case the depth-first checker would have built a smaller cone.
  /// Recompute that exact cone — clauses_built, resolutions, core — with
  /// one more backward windowed sweep over the structure (no literals are
  /// touched; the verdict is already settled).
  void recompute_exact_cone(const std::vector<ClauseId>& used,
                            std::uint64_t final_resolutions) {
    reachable_.assign(ids_.size(), false);
    core_seen_.assign(core_seen_.size(), 0);
    core_count_ = 0;
    const auto seed = [this](ClauseId id) {
      if (id < num_original()) {
        mark_core(id);
        return;
      }
      reachable_[index_of(id)] = true;  // seeded ids were validated earlier
    };
    seed(*final_id_);
    for (const ClauseId a : used) seed(a);

    std::uint64_t built = 0;
    std::uint64_t resolutions = final_resolutions;
    for (std::size_t w = windows_.size(); w-- > 0;) {
      load_window(w);
      const Window& win = windows_[w];
      for (std::uint32_t i = win.count; i-- > 0;) {
        if (!reachable_[win.first + i]) continue;
        const auto sources = window_sources(i);
        ++built;
        resolutions += sources.size() - 1;
        for (const std::uint32_t s : sources) {
          if (s < num_original()) {
            mark_core(s);
          } else {
            reachable_[index_of(s)] = true;
          }
        }
      }
      release_window(w);
    }
    stats_.clauses_built = built;
    stats_.resolutions = resolutions;
  }

  /// Seeks to window `w` and loads its derivations' source lists into the
  /// (reused) window CSR. Non-seekable readers rewind and skip — a
  /// correctness fallback for tests; file-backed traces seek directly.
  void load_window(std::size_t w) {
    const Window& win = windows_[w];
    if (seekable_) {
      reader_->seek(win.pos);
    } else {
      reader_->rewind();
      trace::Record skip;
      for (std::uint64_t i = 0; i < win.record_index; ++i) {
        if (!reader_->next(skip)) break;
      }
    }
    win_offset_.clear();
    win_pool_.clear();
    win_offset_.push_back(0);
    std::uint32_t seen = 0;
    trace::Record rec;
    while (seen < win.count && reader_->next(rec)) {
      if (rec.kind != trace::RecordKind::Derivation) continue;
      for (const ClauseId s : rec.sources) {
        win_pool_.push_back(static_cast<std::uint32_t>(s));
      }
      win_offset_.push_back(static_cast<std::uint32_t>(win_pool_.size()));
      ++seen;
    }
    if (seen < win.count) {
      throw CheckFailure("trace shrank between checking passes");
    }
    mem_.remove(win_bytes_);
    win_bytes_ = (win_pool_.size() + win_offset_.size()) *
                 sizeof(std::uint32_t);
    mem_.add(win_bytes_);
  }

  /// Source list of the i-th derivation of the currently loaded window.
  [[nodiscard]] std::span<const std::uint32_t> window_sources(
      std::uint32_t i) const {
    return {win_pool_.data() + win_offset_[i],
            win_offset_[i + 1] - win_offset_[i]};
  }

  /// Drops window `w`'s trace pages from memory after a backward-sweep
  /// visit; the next pass faults them back in on demand.
  void release_window(std::size_t w) {
    if (!seekable_) return;
    const std::uint64_t end =
        w + 1 < windows_.size() ? windows_[w + 1].pos : end_pos_;
    reader_->release_hint(windows_[w].pos, end);
  }

  void mark_core(ClauseId original) {
    if (core_seen_[original] == 0) {
      core_seen_[original] = 1;
      ++core_count_;
    }
  }

  ClauseView fetch_clause(ClauseId id) {
    if (id < num_original()) {
      // Canonicalize in place so the scratch buffer's capacity is reused
      // across original-clause fetches.
      const ClauseView raw = formula_->clause(id);
      scratch_.assign(raw.begin(), raw.end());
      std::sort(scratch_.begin(), scratch_.end());
      scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                     scratch_.end());
      if (is_tautology(scratch_)) {
        throw CheckFailure(
            "original clause " + std::to_string(id) +
            " is tautological and cannot be a resolution source");
      }
      mark_core(id);
      return scratch_;
    }
    if (!store_.contains(id)) {
      throw CheckFailure(
          "clause " + std::to_string(id) +
          " is not available: it was never derived, or its use count was "
          "exhausted earlier than the trace implies");
    }
    return store_.view(id);
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  WindowOptions options_;
  Level0Table level0_;
  std::unique_ptr<UseCountStore> counts_;
  std::optional<ClauseId> final_id_;

  // Resident index (pass A): derivation IDs (32-bit, bounded at scan
  // time) and the window table — a few bytes per derivation, never the
  // source lists.
  std::vector<std::uint32_t> ids_;
  std::vector<Window> windows_;
  std::vector<bool> reachable_;
  bool dense_ids_ = true;
  bool seekable_ = false;
  std::uint64_t end_pos_ = 0;
  std::size_t window_budget_ = 0;

  // One window's source lists (reused CSR buffers).
  std::vector<std::uint32_t> win_offset_;
  std::vector<std::uint32_t> win_pool_;
  std::size_t win_bytes_ = 0;

  std::vector<ClauseId> implied_ants_;  ///< sorted unique pinned antecedents
  std::vector<std::uint8_t> core_seen_;  ///< per-original core membership
  std::uint64_t core_count_ = 0;

  ClauseStore store_;
  SortedClause scratch_;
  std::vector<std::uint64_t> ord_scratch_;        ///< per-chain ordinals
  std::vector<std::uint64_t> exhausted_scratch_;  ///< zeroed this chain
  ChainResolver chain_;
  util::MemTracker mem_;
  CheckStats stats_;
};

}  // namespace

CheckResult check_window(const Formula& f, trace::TraceReader& reader,
                         const WindowOptions& options) {
  WindowChecker checker(f, reader, options);
  return checker.run();
}

}  // namespace satproof::checker
