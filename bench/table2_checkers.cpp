// Reproduces Table 2 of the paper: depth-first vs breadth-first vs hybrid
// checking of the trace of every suite instance, and emits the numbers as
// JSON so regressions of the checker hot path are visible in review.
//
// Paper columns: Instance Name | Trace Size (KB) | Depth First {Num. Cls
// Built, Built%, Runtime (s), Peak Mem (KB)} | Breadth First {Runtime (s),
// Peak Mem (KB)}.
//
// Expected shape (paper): checking is always much cheaper than solving;
// depth-first is ~2x faster but much more memory-hungry (it holds the
// whole trace plus every built clause, and runs out of memory on the two
// hardest instances under an 800 MB cap); breadth-first finishes
// everything in a small, bounded clause window; built% is 19-90%.
//
// The timed path reads the *binary* trace format from disk — the
// production configuration — so both trace decoding and clause storage
// are inside the measurement.
//
// usage: table2_checkers [--quick] [--json FILE] [--baseline FILE]
//                        [--trace-out FILE]
//   --quick      run the Small suite (CI smoke; seconds in total)
//   --json FILE  write the measurements as JSON; also measures the cost of
//                span tracing (an extra DF sweep with a live TraceSession)
//                and records it as the "tracing_overhead" block, plus the
//                cost of LRAT certificate emission (an extra DF sweep with
//                a live LratEmitter streaming text LRAT to a temp file)
//                recorded as the "lrat_overhead" block
//   --baseline FILE
//                embed a previous --json run as the "baseline" block and
//                emit a baseline-vs-current comparison (DF speedup, peak
//                reduction)
//   --trace-out FILE
//                record the whole run under an obs::TraceSession and write
//                the Chrome-trace JSON (per-stage checker spans) to FILE.
//                Note: this keeps tracing live during the timed runs, so
//                don't combine an artifact run with a regression-gate run.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/cert/lrat_emitter.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/window.hpp"
#include "src/encode/suite.hpp"
#include "src/obs/trace.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/binary.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace satproof;

constexpr int kTimingRuns = 3;  // wall time is the best of these

// The window backend's budget for the timed column: big enough that every
// suite trace's resident index fits, small enough that the largest traces
// shift through several windows (the configuration the >= 0.5x-of-DF
// speed expectation is stated against).
constexpr std::size_t kWindowBenchBudget = 4u << 20;

struct BackendNumbers {
  double seconds = 0.0;
  std::size_t peak_bytes = 0;  ///< checker-reported (MemTracker + arena)
  std::size_t rss_bytes = 0;   ///< OS-reported peak RSS delta (getrusage)
  checker::CheckResult result;
};

struct InstanceNumbers {
  std::string name;
  std::uintmax_t trace_bytes = 0;
  double solve_seconds = 0.0;
  BackendNumbers df, bf, hybrid, window;
};

/// Runs `fn` in a forked child and returns the child's peak RSS in bytes
/// (0 on fork/measure failure). fork() resets the child's RSS high-water
/// mark to its current RSS, so the measurement starts from the inherited
/// image — callers subtract a no-op child's reading to isolate what `fn`
/// itself touched. The child leaves via _exit so no parent-owned
/// destructor (TempFile unlinks!) or stdio flush runs twice.
template <typename Fn>
std::size_t forked_peak_rss(Fn fn) {
  int fds[2];
  if (::pipe(fds) != 0) return 0;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return 0;
  }
  if (pid == 0) {
    ::close(fds[0]);
    try {
      fn();
    } catch (...) {
      ::_exit(1);
    }
    struct rusage ru {};
    ::getrusage(RUSAGE_SELF, &ru);
    const auto bytes =
        static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // Linux: KB
    const ssize_t wrote = ::write(fds[1], &bytes, sizeof bytes);
    ::_exit(wrote == sizeof bytes ? 0 : 1);
  }
  ::close(fds[1]);
  std::uint64_t bytes = 0;
  const ssize_t got = ::read(fds[0], &bytes, sizeof bytes);
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof bytes || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return 0;
  }
  return static_cast<std::size_t>(bytes);
}

/// Opens the binary trace for one timed checking run.
std::unique_ptr<trace::TraceReader> open_trace(std::ifstream& in,
                                               const std::string& path) {
  in.open(path, std::ios::in | std::ios::binary);
  if (!in) {
    std::cerr << "FATAL: cannot reopen trace " << path << "\n";
    std::exit(1);
  }
  return std::make_unique<trace::BinaryTraceReader>(in);
}

template <typename CheckFn>
BackendNumbers time_backend(const std::string& trace_path, const char* name,
                            const std::string& instance, CheckFn check) {
  BackendNumbers out;
  out.seconds = 1e100;
  for (int run = 0; run < kTimingRuns; ++run) {
    std::ifstream in;
    const auto reader = open_trace(in, trace_path);
    util::Timer t;
    checker::CheckResult r = check(*reader);
    const double secs = t.elapsed_seconds();
    if (!r.ok) {
      std::cerr << "FATAL: " << name << " check failed on " << instance
                << ": " << r.error << "\n";
      std::exit(1);
    }
    out.seconds = std::min(out.seconds, secs);
    out.peak_bytes = r.stats.peak_mem_bytes;
    out.result = std::move(r);
  }
  return out;
}

void json_backend(std::ostream& os, const char* key,
                  const BackendNumbers& b) {
  os << "\"" << key << "\": {\"seconds\": " << b.seconds
     << ", \"peak_bytes\": " << b.peak_bytes << "}";
}

/// Extracts the number following `"key": ` in a JSON blob emitted by this
/// bench. Returns -1 when absent. (The baseline file is our own output, so
/// a targeted scan is enough — no JSON library in the toolchain.)
double extract_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, baseline_path, trace_out_path;
  auto scale = encode::SuiteScale::Standard;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      scale = encode::SuiteScale::Small;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else {
      std::cerr << "usage: table2_checkers [--quick] [--json FILE] "
                   "[--baseline FILE] [--trace-out FILE]\n";
      return 1;
    }
  }

  std::optional<obs::TraceSession> trace_session;
  if (!trace_out_path.empty()) trace_session.emplace();

  util::Table table({"Instance", "Trace (KB)", "Solve (s)", "DF Cls Built",
                     "Built%", "DF Time (s)", "DF Peak (KB)", "BF Time (s)",
                     "BF Peak (KB)", "HY Time (s)", "HY Peak (KB)",
                     "WN Time (s)", "WN Peak (KB)"});

  // Tracing-overhead probe: when emitting JSON (and not already recording
  // a --trace-out artifact), re-time the DF sweep with a live TraceSession
  // so BENCH_checkers.json documents what span recording costs. The main
  // table numbers are the tracing-disabled configuration.
  const bool measure_overhead = !json_path.empty() && !trace_session;
  double traced_df_secs = 0.0;
  // LRAT-emission probe (same conditions): re-time the DF sweep with a
  // live certificate emitter streaming text LRAT to disk, so
  // BENCH_checkers.json documents what `export-lrat` costs over a plain
  // check. The main table numbers stay the emission-off configuration —
  // the null-observer default the <5%-overhead claim is gated on.
  double lrat_df_secs = 0.0;
  std::uintmax_t lrat_bytes_total = 0;

  std::vector<InstanceNumbers> rows;
  for (const auto& inst : encode::unsat_suite(scale)) {
    InstanceNumbers row;
    row.name = inst.name;

    util::TempFile trace_file("table2-trace");
    {
      std::ofstream out(trace_file.path(),
                        std::ios::out | std::ios::binary);
      trace::BinaryTraceWriter writer(out);
      solver::Solver s;
      s.add_formula(inst.formula);
      s.set_trace_writer(&writer);
      util::Timer t;
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
        return 1;
      }
      row.solve_seconds = t.elapsed_seconds();
    }
    row.trace_bytes = std::filesystem::file_size(trace_file.path());
    const std::string path = trace_file.path().string();

    row.df = time_backend(path, "depth-first", inst.name,
                          [&](trace::TraceReader& r) {
                            return checker::check_depth_first(inst.formula, r);
                          });
    row.bf = time_backend(path, "breadth-first", inst.name,
                          [&](trace::TraceReader& r) {
                            return checker::check_breadth_first(inst.formula,
                                                                r);
                          });
    row.hybrid = time_backend(path, "hybrid", inst.name,
                              [&](trace::TraceReader& r) {
                                return checker::check_hybrid(inst.formula, r);
                              });
    checker::WindowOptions wopts;
    wopts.mem_limit_bytes = kWindowBenchBudget;
    row.window = time_backend(path, "window", inst.name,
                              [&](trace::TraceReader& r) {
                                return checker::check_window(inst.formula, r,
                                                             wopts);
                              });

    // OS-level peak-RSS per backend, one forked child each, against a
    // no-op child's baseline — so BENCH_checkers.json records what each
    // backend really costs the machine, not just what MemTracker counts.
    {
      const std::size_t base_rss = forked_peak_rss([] {});
      const auto measure = [&](auto check) {
        const std::size_t rss = forked_peak_rss([&] {
          std::ifstream in;
          const auto reader = open_trace(in, path);
          if (!check(*reader).ok) throw std::runtime_error("check failed");
        });
        return rss > base_rss ? rss - base_rss : 0;
      };
      row.df.rss_bytes = measure([&](trace::TraceReader& r) {
        return checker::check_depth_first(inst.formula, r);
      });
      row.bf.rss_bytes = measure([&](trace::TraceReader& r) {
        return checker::check_breadth_first(inst.formula, r);
      });
      row.hybrid.rss_bytes = measure([&](trace::TraceReader& r) {
        return checker::check_hybrid(inst.formula, r);
      });
      row.window.rss_bytes = measure([&](trace::TraceReader& r) {
        return checker::check_window(inst.formula, r, wopts);
      });
    }
    if (measure_overhead) {
      {
        obs::TraceSession probe;
        const BackendNumbers traced =
            time_backend(path, "depth-first (traced)", inst.name,
                         [&](trace::TraceReader& r) {
                           return checker::check_depth_first(inst.formula, r);
                         });
        obs::flush_this_thread();
        traced_df_secs += traced.seconds;
      }
      util::TempFile lrat_file("table2-lrat");
      const BackendNumbers emitting = time_backend(
          path, "depth-first (lrat)", inst.name,
          [&](trace::TraceReader& r) {
            std::ofstream sink(lrat_file.path(),
                               std::ios::out | std::ios::trunc);
            cert::TextLratWriter writer(sink);
            cert::LratEmitter emitter(writer, inst.formula.num_clauses());
            checker::DepthFirstOptions opts;
            opts.observer = &emitter;
            return checker::check_depth_first(inst.formula, r, opts);
          });
      lrat_df_secs += emitting.seconds;
      lrat_bytes_total += std::filesystem::file_size(lrat_file.path());
    }

    const auto& df = row.df.result;
    table.add_row(
        {row.name, util::format_kb(row.trace_bytes),
         util::format_double(row.solve_seconds, 3),
         std::to_string(df.stats.clauses_built),
         util::format_percent(static_cast<double>(df.stats.clauses_built),
                              static_cast<double>(df.stats.total_derivations)),
         util::format_double(row.df.seconds, 3),
         util::format_kb(row.df.peak_bytes),
         util::format_double(row.bf.seconds, 3),
         util::format_kb(row.bf.peak_bytes),
         util::format_double(row.hybrid.seconds, 3),
         util::format_kb(row.hybrid.peak_bytes),
         util::format_double(row.window.seconds, 3),
         util::format_kb(row.window.peak_bytes)});
    rows.push_back(std::move(row));
  }

  std::cout
      << "Table 2: depth-first vs breadth-first proof checking\n"
      << "(paper: check time << solve time; DF faster but memory-hungry;\n"
      << " BF bounded memory; DF builds only 19-90% of learned clauses.\n"
      << " HY columns: the hybrid checker the paper's conclusion calls for —\n"
      << " builds only the DF subgraph inside a BF-style clause window.\n"
      << " WN columns: the window-shifting checker replaying under a "
      << (kWindowBenchBudget >> 20) << " MB\n"
      << " --mem-limit budget)\n\n"
      << table.to_string();

  if (trace_session) {
    obs::flush_this_thread();
    if (!trace_session->sink().write_file(trace_out_path)) {
      std::cerr << "FATAL: cannot write trace " << trace_out_path << "\n";
      return 1;
    }
    std::cout << "\nChrome trace written to " << trace_out_path << "\n";
  }

  if (json_path.empty()) return 0;

  // Totals drive the baseline comparison.
  double df_secs = 0, bf_secs = 0, hy_secs = 0, wn_secs = 0;
  std::size_t df_peak = 0, bf_peak = 0, hy_peak = 0, wn_peak = 0;
  std::size_t df_rss = 0, bf_rss = 0, hy_rss = 0, wn_rss = 0;
  std::uintmax_t trace_total = 0;
  for (const auto& row : rows) {
    df_secs += row.df.seconds;
    bf_secs += row.bf.seconds;
    hy_secs += row.hybrid.seconds;
    wn_secs += row.window.seconds;
    df_peak += row.df.peak_bytes;
    bf_peak += row.bf.peak_bytes;
    hy_peak += row.hybrid.peak_bytes;
    wn_peak += row.window.peak_bytes;
    df_rss += row.df.rss_bytes;
    bf_rss += row.bf.rss_bytes;
    hy_rss += row.hybrid.rss_bytes;
    wn_rss += row.window.rss_bytes;
    trace_total += row.trace_bytes;
  }

  std::ostringstream current;
  current << "{\n    \"suite\": \""
          << (scale == encode::SuiteScale::Small ? "small" : "standard")
          << "\",\n    \"trace_format\": \"binary\",\n    \"instances\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    current << "      {\"name\": \"" << row.name
            << "\", \"trace_bytes\": " << row.trace_bytes
            << ", \"solve_seconds\": " << row.solve_seconds << ", ";
    json_backend(current, "df", row.df);
    current << ", ";
    json_backend(current, "bf", row.bf);
    current << ", ";
    json_backend(current, "hybrid", row.hybrid);
    current << ", ";
    json_backend(current, "window", row.window);
    current << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  current << "    ],\n    \"window_budget_bytes\": " << kWindowBenchBudget
          << ",\n    \"totals\": {\"trace_bytes\": " << trace_total
          << ", \"df_seconds\": " << df_secs << ", \"bf_seconds\": "
          << bf_secs << ", \"hybrid_seconds\": " << hy_secs
          << ", \"window_seconds\": " << wn_secs
          << ", \"df_peak_bytes\": " << df_peak << ", \"bf_peak_bytes\": "
          << bf_peak << ", \"hybrid_peak_bytes\": " << hy_peak
          << ", \"window_peak_bytes\": " << wn_peak
          << "},\n    \"memory\": {\"df_rss_bytes\": " << df_rss
          << ", \"bf_rss_bytes\": " << bf_rss
          << ", \"hybrid_rss_bytes\": " << hy_rss
          << ", \"window_rss_bytes\": " << wn_rss << "}\n  }";

  std::ofstream js(json_path);
  if (!js) {
    std::cerr << "FATAL: cannot open " << json_path << "\n";
    return 1;
  }
  js << "{\n  \"bench\": \"table2_checkers\",\n  \"arena\": "
     << current.str();

  if (measure_overhead) {
    js << ",\n  \"tracing_overhead\": {\"df_seconds_disabled\": " << df_secs
       << ", \"df_seconds_traced\": " << traced_df_secs
       << ", \"traced_overhead_pct\": "
       << (df_secs > 0 ? (traced_df_secs - df_secs) / df_secs * 100.0 : 0.0)
       << "}";
    js << ",\n  \"lrat_overhead\": {\"df_seconds_off\": " << df_secs
       << ", \"df_seconds_emitting\": " << lrat_df_secs
       << ", \"emitting_overhead_pct\": "
       << (df_secs > 0 ? (lrat_df_secs - df_secs) / df_secs * 100.0 : 0.0)
       << ", \"certificate_bytes\": " << lrat_bytes_total << "}";
  }

  if (!baseline_path.empty()) {
    std::ifstream bl(baseline_path);
    if (!bl) {
      std::cerr << "FATAL: cannot open baseline " << baseline_path << "\n";
      return 1;
    }
    std::ostringstream blob;
    blob << bl.rdbuf();
    const std::string text = blob.str();
    // The baseline file is a previous --json output; embed its "arena"
    // block (the measurement of whatever the tree looked like then).
    const auto begin = text.find("\"arena\": ");
    const auto end = text.rfind('}');  // closes the outer object
    std::string base_block = "null";
    if (begin != std::string::npos && end != std::string::npos) {
      base_block = text.substr(begin + 9, end - begin - 9);
      while (!base_block.empty() &&
             (base_block.back() == '\n' || base_block.back() == ' ' ||
              base_block.back() == ',')) {
        base_block.pop_back();
      }
    }
    js << ",\n  \"baseline\": " << base_block;

    const double base_df_secs = extract_number(text, "df_seconds");
    const double base_df_peak = extract_number(text, "df_peak_bytes");
    const double base_bf_peak = extract_number(text, "bf_peak_bytes");
    if (base_df_secs > 0 && base_df_peak > 0) {
      js << ",\n  \"comparison\": {\"df_speedup\": "
         << base_df_secs / df_secs << ", \"df_peak_reduction\": "
         << 1.0 - static_cast<double>(df_peak) / base_df_peak
         << ", \"bf_peak_reduction\": "
         << (base_bf_peak > 0
                 ? 1.0 - static_cast<double>(bf_peak) / base_bf_peak
                 : 0.0)
         << "}";
    }
  }
  js << "\n}\n";
  std::cout << "\nJSON written to " << json_path << "\n";
  return 0;
}
