#include "src/trace/fault_injector.hpp"

#include <algorithm>
#include <vector>

namespace satproof::trace {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::None:
      return "none";
    case FaultKind::DropSource:
      return "drop-source";
    case FaultKind::DuplicateSource:
      return "duplicate-source";
    case FaultKind::ShuffleSources:
      return "shuffle-sources";
    case FaultKind::WrongSource:
      return "wrong-source";
    case FaultKind::DropDerivation:
      return "drop-derivation";
    case FaultKind::WrongFinal:
      return "wrong-final";
    case FaultKind::FlipLevel0Value:
      return "flip-level0-value";
    case FaultKind::WrongAntecedent:
      return "wrong-antecedent";
    case FaultKind::DropLevel0:
      return "drop-level0";
    case FaultKind::TruncateTrace:
      return "truncate-trace";
  }
  return "unknown";
}

FaultInjector::FaultInjector(TraceWriter& inner, FaultKind kind,
                             std::uint64_t seed, std::uint64_t target_index)
    : inner_(&inner), kind_(kind), rng_(seed), target_index_(target_index) {}

bool FaultInjector::should_fire() {
  if (fired_) return false;
  if (opportunities_++ == target_index_) {
    fired_ = true;
    return true;
  }
  return false;
}

void FaultInjector::begin(Var num_vars, ClauseId num_original) {
  inner_->begin(num_vars, num_original);
}

void FaultInjector::derivation(ClauseId id,
                               std::span<const ClauseId> sources) {
  if (truncated_) return;
  switch (kind_) {
    case FaultKind::DropSource:
      if (sources.size() > 2 && should_fire()) {
        std::vector<ClauseId> corrupt(sources.begin(), sources.end());
        corrupt.erase(corrupt.begin() +
                      static_cast<std::ptrdiff_t>(
                          rng_.next_below(corrupt.size())));
        inner_->derivation(id, corrupt);
        return;
      }
      break;
    case FaultKind::DuplicateSource:
      if (should_fire()) {
        std::vector<ClauseId> corrupt(sources.begin(), sources.end());
        corrupt.push_back(corrupt.back());
        inner_->derivation(id, corrupt);
        return;
      }
      break;
    case FaultKind::ShuffleSources:
      if (sources.size() > 2 && should_fire()) {
        std::vector<ClauseId> corrupt(sources.begin(), sources.end());
        std::reverse(corrupt.begin(), corrupt.end());
        inner_->derivation(id, corrupt);
        return;
      }
      break;
    case FaultKind::WrongSource:
      if (should_fire()) {
        std::vector<ClauseId> corrupt(sources.begin(), sources.end());
        const std::size_t pos = rng_.next_below(corrupt.size());
        // Swap in a different clause that exists (an original clause),
        // modelling an off-by-one in ID bookkeeping.
        corrupt[pos] = corrupt[pos] == 0 ? 1 : corrupt[pos] - 1;
        inner_->derivation(id, corrupt);
        return;
      }
      break;
    case FaultKind::DropDerivation:
      if (should_fire()) return;  // swallow the record entirely
      break;
    case FaultKind::TruncateTrace:
      if (should_fire()) {
        truncated_ = true;
        return;
      }
      break;
    default:
      break;
  }
  inner_->derivation(id, sources);
}

void FaultInjector::final_conflict(ClauseId id) {
  if (truncated_) return;
  if (kind_ == FaultKind::WrongFinal && should_fire()) {
    // Point at a different clause; original clause 0 exists in any
    // non-empty formula and is essentially never the real final conflict.
    inner_->final_conflict(id == 0 ? 1 : id - 1);
    return;
  }
  if (kind_ == FaultKind::TruncateTrace && should_fire()) {
    truncated_ = true;
    return;
  }
  inner_->final_conflict(id);
}

void FaultInjector::level0(Var var, bool value, ClauseId antecedent) {
  if (truncated_) return;
  switch (kind_) {
    case FaultKind::FlipLevel0Value:
      if (should_fire()) {
        inner_->level0(var, !value, antecedent);
        return;
      }
      break;
    case FaultKind::WrongAntecedent:
      if (should_fire()) {
        inner_->level0(var, value, antecedent == 0 ? 1 : antecedent - 1);
        return;
      }
      break;
    case FaultKind::DropLevel0:
      if (should_fire()) return;
      break;
    case FaultKind::TruncateTrace:
      if (should_fire()) {
        truncated_ = true;
        return;
      }
      break;
    default:
      break;
  }
  inner_->level0(var, value, antecedent);
}

void FaultInjector::assumption(Var var, bool value) {
  if (truncated_) return;
  if (kind_ == FaultKind::FlipLevel0Value && should_fire()) {
    inner_->assumption(var, !value);
    return;
  }
  inner_->assumption(var, value);
}

void FaultInjector::end() {
  if (kind_ == FaultKind::TruncateTrace && fired_) {
    // A crashed solver never writes the end marker; readers must cope.
    return;
  }
  inner_->end();
}

}  // namespace satproof::trace
