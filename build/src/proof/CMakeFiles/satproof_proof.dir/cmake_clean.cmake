file(REMOVE_RECURSE
  "CMakeFiles/satproof_proof.dir/export.cpp.o"
  "CMakeFiles/satproof_proof.dir/export.cpp.o.d"
  "CMakeFiles/satproof_proof.dir/interpolant.cpp.o"
  "CMakeFiles/satproof_proof.dir/interpolant.cpp.o.d"
  "CMakeFiles/satproof_proof.dir/proof_dag.cpp.o"
  "CMakeFiles/satproof_proof.dir/proof_dag.cpp.o.d"
  "CMakeFiles/satproof_proof.dir/rup.cpp.o"
  "CMakeFiles/satproof_proof.dir/rup.cpp.o.d"
  "CMakeFiles/satproof_proof.dir/trim.cpp.o"
  "CMakeFiles/satproof_proof.dir/trim.cpp.o.d"
  "libsatproof_proof.a"
  "libsatproof_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
