file(REMOVE_RECURSE
  "libsatproof_cnf.a"
)
