#pragma once

#include <cstdint>
#include <utility>

namespace satproof::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All workload generators and solver tie-breaking use this PRNG so that
/// every experiment in the repository is bit-reproducible across platforms,
/// unlike std::mt19937 whose distributions are implementation-defined.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64();

  /// Returns a uniformly distributed integer in [0, bound). `bound` > 0.
  /// Uses rejection sampling so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Returns a double uniformly distributed in [0, 1).
  double next_double();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = next_below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace satproof::util
