#include "src/service/protocol.hpp"

#include <cstring>

namespace satproof::service {

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> encode_submit_header(const SubmitHeader& h) {
  std::vector<std::uint8_t> out;
  out.reserve(18);
  out.push_back(h.backend);
  out.push_back(h.flags);
  append_u32le(out, h.timeout_ms);
  append_u32le(out, h.jobs);
  append_u64le(out, h.declared_bytes);
  return out;
}

bool decode_submit_header(std::span<const std::uint8_t> payload,
                          SubmitHeader& out) {
  // 18 bytes = current header; 10 = pre-declared_bytes clients.
  if (payload.size() != 18 && payload.size() != 10) return false;
  out.backend = payload[0];
  out.flags = payload[1];
  out.timeout_ms = read_u32le(payload.data() + 2);
  out.jobs = read_u32le(payload.data() + 6);
  out.declared_bytes = payload.size() == 18 ? read_u64le(payload.data() + 10) : 0;
  return true;
}

std::vector<std::uint8_t> encode_error(ErrorCode code,
                                       std::string_view message) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + message.size());
  out.push_back(static_cast<std::uint8_t>(code));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

bool decode_error(std::span<const std::uint8_t> payload, ErrorCode& code,
                  std::string& message) {
  if (payload.empty()) return false;
  code = static_cast<ErrorCode>(payload[0]);
  message.assign(payload.begin() + 1, payload.end());
  return true;
}

std::vector<std::uint8_t> encode_result(JobStatus status, std::uint64_t job_id,
                                        std::string_view verdict,
                                        std::string_view json) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + 4 + verdict.size() + json.size());
  out.push_back(static_cast<std::uint8_t>(status));
  append_u64le(out, job_id);
  append_u32le(out, static_cast<std::uint32_t>(verdict.size()));
  out.insert(out.end(), verdict.begin(), verdict.end());
  out.insert(out.end(), json.begin(), json.end());
  return out;
}

bool decode_result(std::span<const std::uint8_t> payload, JobStatus& status,
                   std::uint64_t& job_id, std::string& verdict,
                   std::string& json) {
  if (payload.size() < 1 + 8 + 4) return false;
  status = static_cast<JobStatus>(payload[0]);
  job_id = read_u64le(payload.data() + 1);
  const std::uint32_t vlen = read_u32le(payload.data() + 9);
  if (payload.size() < 13 + static_cast<std::size_t>(vlen)) return false;
  verdict.assign(payload.begin() + 13, payload.begin() + 13 + vlen);
  json.assign(payload.begin() + 13 + vlen, payload.end());
  return true;
}

std::vector<std::uint8_t> encode_result_cert(std::uint64_t job_id,
                                             bool binary_format,
                                             std::string_view cert) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 1 + 4 + cert.size());
  append_u64le(out, job_id);
  out.push_back(binary_format ? 1 : 0);
  append_u32le(out, static_cast<std::uint32_t>(cert.size()));
  out.insert(out.end(), cert.begin(), cert.end());
  return out;
}

bool decode_result_cert(std::span<const std::uint8_t> payload,
                        std::uint64_t& job_id, bool& binary_format,
                        std::string& cert) {
  if (payload.size() < 8 + 1 + 4) return false;
  job_id = read_u64le(payload.data());
  if (payload[8] > 1) return false;
  binary_format = payload[8] == 1;
  const std::uint32_t clen = read_u32le(payload.data() + 9);
  if (payload.size() != 13 + static_cast<std::size_t>(clen)) return false;
  cert.assign(payload.begin() + 13, payload.end());
  return true;
}

bool write_frame(util::Socket& sock, FrameTag tag,
                 std::span<const std::uint8_t> payload) {
  std::uint8_t header[kFrameHeaderBytes];
  header[0] = static_cast<std::uint8_t>(tag);
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[1] = static_cast<std::uint8_t>(len);
  header[2] = static_cast<std::uint8_t>(len >> 8);
  header[3] = static_cast<std::uint8_t>(len >> 16);
  header[4] = static_cast<std::uint8_t>(len >> 24);
  if (!sock.send_all(header, sizeof(header))) return false;
  if (!payload.empty() && !sock.send_all(payload.data(), payload.size())) {
    return false;
  }
  return true;
}

bool write_frame(util::Socket& sock, FrameTag tag, std::string_view payload) {
  return write_frame(
      sock, tag,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size()));
}

bool write_frame(util::Socket& sock, FrameTag tag) {
  return write_frame(sock, tag, std::span<const std::uint8_t>());
}

ReadStatus read_frame(util::Socket& sock, Frame& out,
                      std::uint32_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t got = sock.recv_exact(header, sizeof(header));
  if (got == 0) return ReadStatus::kClosed;
  if (got < sizeof(header)) return ReadStatus::kTruncated;
  out.tag = static_cast<FrameTag>(header[0]);
  const std::uint32_t len = read_u32le(header + 1);
  if (len > max_payload) return ReadStatus::kOversized;
  out.payload.resize(len);
  if (len > 0 && sock.recv_exact(out.payload.data(), len) < len) {
    return ReadStatus::kTruncated;
  }
  return ReadStatus::kFrame;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Drop the consumed prefix before growing; amortized O(1) per byte.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Result::kNeedMore;
  const std::uint8_t* p = buf_.data() + consumed_;
  const std::uint32_t len = read_u32le(p + 1);
  if (len > max_payload_) return Result::kOversized;
  if (avail < kFrameHeaderBytes + len) return Result::kNeedMore;
  out.tag = static_cast<FrameTag>(p[0]);
  out.payload.assign(p + kFrameHeaderBytes, p + kFrameHeaderBytes + len);
  consumed_ += kFrameHeaderBytes + len;
  if (consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  }
  return Result::kFrame;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed frame";
    case ErrorCode::kOversizedFrame: return "oversized frame";
    case ErrorCode::kUnknownTag: return "unknown tag";
    case ErrorCode::kProtocolViolation: return "protocol violation";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kBadRequest: return "bad request";
  }
  return "unknown error code";
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kCheckFailed: return "check-failed";
    case JobStatus::kError: return "error";
    case JobStatus::kTimeout: return "timeout";
  }
  return "unknown status";
}

}  // namespace satproof::service
