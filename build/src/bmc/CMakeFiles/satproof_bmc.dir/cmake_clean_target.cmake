file(REMOVE_RECURSE
  "libsatproof_bmc.a"
)
