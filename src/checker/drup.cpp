#include "src/checker/drup.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/checker/resolution.hpp"
#include "src/obs/trace.hpp"
#include "src/util/arena.hpp"

namespace satproof::checker {

namespace {

/// Hash of a canonical clause, for deletion lookup by content.
std::size_t clause_hash(const SortedClause& c) {
  std::size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Lit lit : c) {
    h ^= lit.code() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

/// Propagation engine with clause deletion: watched literals over live
/// clauses, a persistent top-level prefix rebuilt lazily after deletions,
/// and per-check rollback.
class DrupEngine {
 public:
  explicit DrupEngine(Var num_vars)
      : assign_(num_vars, LBool::Undef), watches_(2 * num_vars) {}

  void add_clause(const SortedClause& lits) {
    const std::uint32_t index = static_cast<std::uint32_t>(clauses_.size());
    // Clauses live in the arena; deleted clauses release their block, so a
    // proof with interleaved additions and deletions recycles space.
    const util::ClauseArena::Ref ref = arena_.put(lits);
    clauses_.push_back({ref, true});
    by_hash_.emplace(clause_hash(lits), index);
    const std::span<Lit> stored = arena_.mutable_view(ref);
    if (stored.empty()) {
      has_empty_ = true;
      return;
    }
    if (stored.size() == 1) {
      units_.push_back(index);
      if (!prefix_dirty_) settle_clause(index);
      return;
    }
    // Watch two non-false literals where possible; a clause that is unit
    // (or conflicting) under the persistent prefix is settled into the
    // prefix instead, so the two-watch invariant holds for every live
    // multi-literal clause. (After a prefix rebuild all assignments reset,
    // so any watch positions become valid again.)
    if (!prefix_dirty_) {
      std::size_t non_false = 0;
      for (std::size_t i = 0; i < stored.size() && non_false < 2; ++i) {
        if (value(stored[i]) != LBool::False) {
          std::swap(stored[non_false], stored[i]);
          ++non_false;
        }
      }
    }
    watches_[(~stored[0]).code()].push_back(index);
    watches_[(~stored[1]).code()].push_back(index);
    if (!prefix_dirty_) settle_clause(index);
  }

  /// Deletes one live clause with exactly these literals (as a set;
  /// `lits` canonical); returns false if none exists.
  bool delete_clause(const SortedClause& lits) {
    const auto [lo, hi] = by_hash_.equal_range(clause_hash(lits));
    for (auto it = lo; it != hi; ++it) {
      Clause& c = clauses_[it->second];
      // The engine reorders literals while propagating; compare as sets.
      if (c.live && canonicalize(arena_.view(c.ref)) == lits) {
        c.live = false;
        // Dead clauses are never read again (every access is guarded by
        // `live`), so the block can back a future addition.
        arena_.release(c.ref);
        by_hash_.erase(it);
        // Top-level implications may have depended on this clause.
        prefix_dirty_ = true;
        return true;
      }
    }
    return false;
  }

  /// RUP check of `lits` against the current live database.
  [[nodiscard]] bool rup_check(const SortedClause& lits,
                               std::uint64_t& propagations) {
    if (prefix_dirty_) rebuild_prefix(propagations);
    if (has_conflict_ || has_empty_) return true;
    bool conflict = false;
    for (const Lit lit : lits) {
      if (!enqueue(~lit)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) conflict = propagate(propagations);
    while (trail_.size() > persistent_size_) {
      assign_[trail_.back().var()] = LBool::Undef;
      trail_.pop_back();
    }
    qhead_ = persistent_size_;
    return conflict;
  }

 private:
  struct Clause {
    util::ClauseArena::Ref ref;
    bool live;
  };

  [[nodiscard]] LBool value(Lit p) const {
    const LBool v = assign_[p.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return p.negated() ? ~v : v;
  }

  bool enqueue(Lit p) {
    const LBool v = value(p);
    if (v == LBool::False) return false;
    if (v == LBool::True) return true;
    assign_[p.var()] = p.negated() ? LBool::False : LBool::True;
    trail_.push_back(p);
    return true;
  }

  /// Extends the persistent prefix with the effects of a new clause.
  void settle_clause(std::uint32_t index) {
    const std::span<const Lit> lits = arena_.view(clauses_[index].ref);
    if (lits.empty()) return;
    // Unit under the prefix?
    Lit unassigned = Lit::invalid();
    std::size_t free_count = 0;
    for (const Lit lit : lits) {
      const LBool v = value(lit);
      if (v == LBool::True) return;  // satisfied: nothing to settle
      if (v == LBool::Undef) {
        unassigned = lit;
        ++free_count;
        if (free_count > 1) return;  // two free literals: watches handle it
      }
    }
    std::uint64_t sink = 0;
    if (free_count == 0) {
      has_conflict_ = true;
    } else if (!enqueue(unassigned) || propagate(sink)) {
      has_conflict_ = true;
    }
    persistent_size_ = trail_.size();
    qhead_ = persistent_size_;
  }

  /// Recomputes the persistent prefix from scratch (after deletions).
  void rebuild_prefix(std::uint64_t& propagations) {
    for (const Lit lit : trail_) assign_[lit.var()] = LBool::Undef;
    trail_.clear();
    qhead_ = 0;
    has_conflict_ = false;
    bool conflict = false;
    for (const std::uint32_t ui : units_) {
      if (clauses_[ui].live && !enqueue(arena_.view(clauses_[ui].ref)[0])) {
        conflict = true;
        break;
      }
    }
    if (!conflict) conflict = propagate(propagations);
    has_conflict_ = conflict;
    persistent_size_ = trail_.size();
    qhead_ = persistent_size_;
    prefix_dirty_ = false;
  }

  bool propagate(std::uint64_t& propagations) {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++propagations;
      auto& ws = watches_[p.code()];
      std::size_t i = 0, j = 0;
      while (i < ws.size()) {
        const std::uint32_t ci = ws[i];
        Clause& entry = clauses_[ci];
        if (!entry.live) {
          ++i;  // drop the stale watcher
          continue;
        }
        const std::span<Lit> c = arena_.mutable_view(entry.ref);
        const Lit false_lit = ~p;
        if (c[0] == false_lit) std::swap(c[0], c[1]);
        ++i;
        if (value(c[0]) == LBool::True) {
          ws[j++] = ci;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value(c[k]) != LBool::False) {
            std::swap(c[1], c[k]);
            watches_[(~c[1]).code()].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        ws[j++] = ci;
        if (!enqueue(c[0])) {
          while (i < ws.size()) ws[j++] = ws[i++];
          ws.resize(j);
          return true;
        }
      }
      ws.resize(j);
    }
    return false;
  }

  std::vector<LBool> assign_;
  std::vector<std::vector<std::uint32_t>> watches_;
  util::ClauseArena arena_;
  std::vector<Clause> clauses_;
  std::vector<std::uint32_t> units_;
  std::unordered_multimap<std::size_t, std::uint32_t> by_hash_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::size_t persistent_size_ = 0;
  bool prefix_dirty_ = false;
  bool has_conflict_ = false;
  bool has_empty_ = false;
};

}  // namespace

DrupCheckResult check_drup(const Formula& f, std::istream& proof) {
  DrupCheckResult result;

  // Find the variable bound: the proof may mention fresh variables only if
  // the solver introduced them, which ours does not; still, parse first
  // into memory-light records while tracking the max var.
  Var num_vars = f.num_vars();
  struct Line {
    bool deletion;
    SortedClause lits;
  };
  std::vector<Line> lines;
  std::string text;
  obs::Span parse_span_holder("parse");
  while (std::getline(proof, text)) {
    if (text.empty() || text[0] == 'c') continue;
    std::istringstream ls(text);
    Line line{false, {}};
    std::string first;
    ls >> first;
    if (first == "d") {
      line.deletion = true;
    } else {
      ls.clear();
      ls.seekg(0);
    }
    std::int64_t d = 0;
    bool terminated = false;
    std::vector<Lit> raw;
    while (ls >> d) {
      if (d == 0) {
        terminated = true;
        break;
      }
      raw.push_back(Lit::from_dimacs(d));
      num_vars = std::max(num_vars, raw.back().var() + 1);
    }
    if (!terminated) {
      result.error = "DRUP line not terminated by 0: '" + text + "'";
      return result;
    }
    line.lits = canonicalize(raw);
    lines.push_back(std::move(line));
  }
  parse_span_holder.finish();

  DrupEngine engine(num_vars);
  {
    obs::Span span("index");
    for (ClauseId id = 0; id < f.num_clauses(); ++id) {
      const SortedClause canon = canonicalize(f.clause(id));
      if (!is_tautology(canon)) engine.add_clause(canon);
    }
  }

  obs::Span replay_span("replay");
  for (const Line& line : lines) {
    if (line.deletion) {
      if (!engine.delete_clause(line.lits)) {
        result.error = "deletion of a clause not in the database";
        return result;
      }
      ++result.deletions;
      continue;
    }
    if (!engine.rup_check(line.lits, result.propagations)) {
      result.error = "added clause is not RUP at its position in the proof";
      return result;
    }
    ++result.clauses_checked;
    if (line.lits.empty()) {
      result.ok = true;  // empty clause verified: UNSAT proven
      return result;
    }
    engine.add_clause(line.lits);
  }
  result.error = "proof ended without deriving the empty clause";
  return result;
}

}  // namespace satproof::checker
