// Unit tests for src/cnf: literals, formulas, DIMACS I/O, model checking.

#include <gtest/gtest.h>

#include <sstream>

#include "src/cnf/dimacs.hpp"
#include "src/cnf/formula.hpp"
#include "src/cnf/model.hpp"
#include "src/cnf/types.hpp"

namespace satproof {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit p = Lit::pos(5);
  EXPECT_EQ(p.var(), 5u);
  EXPECT_FALSE(p.negated());
  const Lit n = ~p;
  EXPECT_EQ(n.var(), 5u);
  EXPECT_TRUE(n.negated());
  EXPECT_EQ(~n, p);
  EXPECT_EQ(Lit::from_code(p.code()), p);
}

TEST(Lit, DimacsConversion) {
  EXPECT_EQ(Lit::pos(0).to_dimacs(), 1);
  EXPECT_EQ(Lit::neg(0).to_dimacs(), -1);
  EXPECT_EQ(Lit::pos(41).to_dimacs(), 42);
  EXPECT_EQ(Lit::from_dimacs(42), Lit::pos(41));
  EXPECT_EQ(Lit::from_dimacs(-7), Lit::neg(6));
  for (const std::int64_t d : {1, -1, 5, -5, 1000, -1000}) {
    EXPECT_EQ(Lit::from_dimacs(d).to_dimacs(), d);
  }
}

TEST(Lit, OrderingFollowsCodes) {
  EXPECT_LT(Lit::pos(0), Lit::neg(0));
  EXPECT_LT(Lit::neg(0), Lit::pos(1));
}

TEST(Lit, ToStringForms) {
  EXPECT_EQ(to_string(Lit::pos(3)), "x3");
  EXPECT_EQ(to_string(Lit::neg(3)), "~x3");
  EXPECT_EQ(to_string(Lit::invalid()), "<invalid>");
}

TEST(LBool, NegationTable) {
  EXPECT_EQ(~LBool::True, LBool::False);
  EXPECT_EQ(~LBool::False, LBool::True);
  EXPECT_EQ(~LBool::Undef, LBool::Undef);
}

TEST(Formula, AddClauseAssignsSequentialIds) {
  Formula f;
  EXPECT_EQ(f.add_clause({Lit::pos(0)}), 0u);
  EXPECT_EQ(f.add_clause({Lit::neg(1), Lit::pos(2)}), 1u);
  EXPECT_EQ(f.num_clauses(), 2u);
  EXPECT_EQ(f.num_vars(), 3u);
  EXPECT_EQ(f.num_literals(), 3u);
}

TEST(Formula, ClauseAccessPreservesLiterals) {
  Formula f;
  f.add_clause({Lit::pos(2), Lit::neg(0), Lit::pos(1)});
  const auto c = f.clause(0);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], Lit::pos(2));
  EXPECT_EQ(c[1], Lit::neg(0));
  EXPECT_EQ(c[2], Lit::pos(1));
}

TEST(Formula, EmptyClauseAllowed) {
  Formula f;
  f.add_clause(std::initializer_list<Lit>{});
  EXPECT_EQ(f.clause(0).size(), 0u);
}

TEST(Formula, InvalidLiteralRejected) {
  Formula f;
  EXPECT_THROW(f.add_clause({Lit::invalid()}), std::invalid_argument);
}

TEST(Formula, OutOfRangeClauseIdThrows) {
  Formula f;
  EXPECT_THROW(f.clause(0), std::out_of_range);
}

TEST(Formula, NumUsedVarsIgnoresDeclaredButUnused) {
  Formula f(10);
  f.add_clause({Lit::pos(0), Lit::neg(9)});
  EXPECT_EQ(f.num_vars(), 10u);
  EXPECT_EQ(f.num_used_vars(), 2u);
}

TEST(Formula, SubformulaSelectsClausesInOrder) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::pos(1)});
  f.add_clause({Lit::pos(2)});
  const ClauseId ids[] = {2, 0};
  const Formula sub = f.subformula(ids);
  EXPECT_EQ(sub.num_clauses(), 2u);
  EXPECT_EQ(sub.clause(0)[0], Lit::pos(2));
  EXPECT_EQ(sub.clause(1)[0], Lit::pos(0));
  EXPECT_EQ(sub.num_vars(), f.num_vars());
}

TEST(Dimacs, ParsesStandardFormat) {
  const Formula f = dimacs::parse_string(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "-1 2 3 0\n");
  EXPECT_EQ(f.num_vars(), 3u);
  ASSERT_EQ(f.num_clauses(), 2u);
  EXPECT_EQ(f.clause(0)[0], Lit::pos(0));
  EXPECT_EQ(f.clause(0)[1], Lit::neg(1));
  EXPECT_EQ(f.clause(1)[2], Lit::pos(2));
}

TEST(Dimacs, ClauseMaySpanLines) {
  const Formula f = dimacs::parse_string("p cnf 2 1\n1\n-2\n0\n");
  ASSERT_EQ(f.num_clauses(), 1u);
  EXPECT_EQ(f.clause(0).size(), 2u);
}

TEST(Dimacs, HonoursDeclaredVarCountAboveUsage) {
  const Formula f = dimacs::parse_string("p cnf 10 1\n1 0\n");
  EXPECT_EQ(f.num_vars(), 10u);
}

TEST(Dimacs, RejectsMissingHeader) {
  EXPECT_THROW(dimacs::parse_string("1 2 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsLiteralBeyondDeclared) {
  EXPECT_THROW(dimacs::parse_string("p cnf 2 1\n3 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_THROW(dimacs::parse_string("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(Dimacs, RejectsClauseCountMismatch) {
  EXPECT_THROW(dimacs::parse_string("p cnf 2 2\n1 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsNonInteger) {
  EXPECT_THROW(dimacs::parse_string("p cnf 2 1\n1 x 0\n"), std::runtime_error);
}

TEST(Dimacs, SatlibTrailerIgnored) {
  // SATLIB benchmark files end with "%\n0\n"; the trailer must not be read
  // as an empty clause.
  const Formula f = dimacs::parse_string("p cnf 2 1\n1 -2 0\n%\n0\n");
  ASSERT_EQ(f.num_clauses(), 1u);
  EXPECT_EQ(f.clause(0).size(), 2u);
}

TEST(Dimacs, WindowsLineEndingsAccepted) {
  const Formula f = dimacs::parse_string("p cnf 2 1\r\n1 -2 0\r\n");
  ASSERT_EQ(f.num_clauses(), 1u);
  EXPECT_EQ(f.num_vars(), 2u);
}

TEST(Dimacs, WriteParseRoundTrip) {
  Formula f(4);
  f.add_clause({Lit::pos(0), Lit::neg(3)});
  f.add_clause({Lit::neg(1)});
  f.add_clause({Lit::pos(2), Lit::pos(1), Lit::neg(0)});
  std::ostringstream out;
  dimacs::write(out, f, "round trip\nsecond line");
  const Formula back = dimacs::parse_string(out.str());
  ASSERT_EQ(back.num_clauses(), f.num_clauses());
  EXPECT_EQ(back.num_vars(), f.num_vars());
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    const auto a = f.clause(id), b = back.clause(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Model, ValueOfRespectsPhase) {
  Model m(2, LBool::Undef);
  m[0] = LBool::True;
  EXPECT_EQ(value_of(Lit::pos(0), m), LBool::True);
  EXPECT_EQ(value_of(Lit::neg(0), m), LBool::False);
  EXPECT_EQ(value_of(Lit::pos(1), m), LBool::Undef);
  EXPECT_EQ(value_of(Lit::pos(5), m), LBool::Undef);  // out of range
}

TEST(Model, SatisfiesDetectsFalsifiedClause) {
  Formula f;
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  f.add_clause({Lit::neg(0)});
  Model m(2, LBool::False);
  m[0] = LBool::True;
  const auto bad = first_falsified_clause(f, m);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, 1u);
  EXPECT_FALSE(satisfies(f, m));
}

TEST(Model, UnassignedLiteralDoesNotSatisfy) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  const Model m(1, LBool::Undef);
  EXPECT_FALSE(satisfies(f, m));
}

TEST(Model, SatisfiesAcceptsGoodModel) {
  Formula f;
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  f.add_clause({Lit::neg(1), Lit::pos(0)});
  Model m(2, LBool::Undef);
  m[0] = LBool::True;
  m[1] = LBool::False;
  EXPECT_TRUE(satisfies(f, m));
}

}  // namespace
}  // namespace satproof
