# Empty dependencies file for ablation_drup.
# This may be replaced when dependencies are built.
