// "Other applications" analysis: the shape of the resolution proofs behind
// the suite — the resolution graph of Section 3.1 made explicit. Shows the
// structural differences the paper alludes to: XOR-heavy instances
// (tseitin, multiplier miters — the longmult effect) produce much deeper
// and wider proofs per original clause than the pigeonhole-like rows.

#include <iostream>

#include "bench/suite_runner.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Leaves", "Derived", "Resolutions", "Depth",
                     "Max Width", "Avg Width"});

  for (auto& solved : bench::solve_suite(encode::SuiteScale::Standard)) {
    trace::MemoryTraceReader reader(solved.trace);
    proof::ProofDag dag;
    try {
      dag = proof::extract_proof(solved.instance.formula, reader);
    } catch (const proof::ProofError& e) {
      std::cerr << "FATAL: " << solved.instance.name << ": " << e.what()
                << "\n";
      return 1;
    }
    const proof::ProofStats st = proof::compute_stats(dag);
    table.add_row({solved.instance.name, std::to_string(st.leaves),
                   std::to_string(st.derived),
                   std::to_string(st.resolutions), std::to_string(st.depth),
                   std::to_string(st.max_clause_width),
                   util::format_double(st.avg_clause_width, 1)});
  }

  std::cout << "Proof DAG structure across the suite (the resolution graph "
               "of paper Section 3.1)\n\n"
            << table.to_string();
  return 0;
}
