#include "src/trace/binary.hpp"

#include <ostream>
#include <stdexcept>

#include "src/util/varint.hpp"

namespace satproof::trace {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'R', 'F'};
constexpr std::uint8_t kVersion = 0x01;

constexpr std::uint8_t kTagDerivation = 0x01;
constexpr std::uint8_t kTagFinalConflict = 0x02;
constexpr std::uint8_t kTagLevel0 = 0x03;
constexpr std::uint8_t kTagEnd = 0x04;
constexpr std::uint8_t kTagAssumption = 0x05;

constexpr int kMaxVarintBytes = 10;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("binary trace: " + what);
}

}  // namespace

void BinaryTraceWriter::begin(Var num_vars, ClauseId num_original) {
  buf_.clear();
  buf_.insert(buf_.end(), kMagic, kMagic + sizeof kMagic);
  buf_.push_back(kVersion);
  util::append_varint(buf_, num_vars);
  util::append_varint(buf_, num_original);
  flush_buf();
}

void BinaryTraceWriter::derivation(ClauseId id,
                                   std::span<const ClauseId> sources) {
  buf_.clear();
  buf_.push_back(kTagDerivation);
  util::append_varint(buf_, id);
  util::append_varint(buf_, sources.size());
  for (const ClauseId s : sources) {
    if (s >= id) fail("derivation source id must precede the derived id");
    util::append_varint(buf_, id - s);
  }
  flush_buf();
}

void BinaryTraceWriter::final_conflict(ClauseId id) {
  buf_.clear();
  buf_.push_back(kTagFinalConflict);
  util::append_varint(buf_, id);
  flush_buf();
}

void BinaryTraceWriter::level0(Var var, bool value, ClauseId antecedent) {
  buf_.clear();
  buf_.push_back(kTagLevel0);
  util::append_varint(buf_, (static_cast<std::uint64_t>(var) << 1) |
                                (value ? 1u : 0u));
  util::append_varint(buf_, antecedent);
  flush_buf();
}

void BinaryTraceWriter::assumption(Var var, bool value) {
  buf_.clear();
  buf_.push_back(kTagAssumption);
  util::append_varint(buf_, (static_cast<std::uint64_t>(var) << 1) |
                                (value ? 1u : 0u));
  flush_buf();
}

void BinaryTraceWriter::end() {
  out_->put(static_cast<char>(kTagEnd));
  out_->flush();
}

void BinaryTraceWriter::flush_buf() {
  out_->write(reinterpret_cast<const char*>(buf_.data()),
              static_cast<std::streamsize>(buf_.size()));
}

BinaryTraceReader::BinaryTraceReader(std::istream& in)
    : BinaryTraceReader(std::make_unique<util::StreamByteSource>(in)) {}

BinaryTraceReader::BinaryTraceReader(std::unique_ptr<util::ByteSource> source)
    : source_(std::move(source)) {
  char magic[4] = {};
  for (char& c : magic) {
    const int b = get();
    if (b < 0) fail("bad magic (not a satproof binary trace)");
    c = static_cast<char>(b);
  }
  if (magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
      magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    fail("bad magic (not a satproof binary trace)");
  }
  const int version = get();
  if (version != kVersion) fail("unsupported version");
  num_vars_ = static_cast<Var>(read_u64("num_vars"));
  num_original_ = read_u64("num_original");
  body_start_ = win_pos_ + static_cast<std::uint64_t>(p_ - win_begin_);
}

bool BinaryTraceReader::refill() {
  const std::uint64_t pos =
      win_pos_ + static_cast<std::uint64_t>(p_ - win_begin_);
  const auto w = source_->window(pos);
  win_pos_ = pos;
  win_begin_ = p_ = w.begin;
  end_ = w.end;
  return p_ != end_;
}

int BinaryTraceReader::get() {
  if (p_ == end_ && !refill()) return -1;
  return *p_++;
}

std::uint64_t BinaryTraceReader::read_u64(const char* what) {
  // Fast path: the whole (≤ 10 byte) varint is inside the current window,
  // so decode with raw pointer bumps. For mmap'd or in-memory traces this
  // is every varint in the file.
  if (end_ - p_ >= kMaxVarintBytes) return util::decode_varint(p_, end_);

  // Window-boundary slow path: gather the encoding byte by byte (refilling
  // as needed), then decode the gathered bytes with the same strict
  // decoder so both paths accept exactly the same encodings.
  std::uint8_t buf[kMaxVarintBytes];
  int n = 0;
  while (n < kMaxVarintBytes) {
    const int c = get();
    if (c < 0) {
      if (n == 0) fail(std::string("truncated while reading ") + what);
      break;  // mid-varint EOF: decode below reports the truncation
    }
    buf[n++] = static_cast<std::uint8_t>(c);
    if ((c & 0x80) == 0) break;
  }
  const std::uint8_t* q = buf;
  return util::decode_varint(q, buf + n);
}

bool BinaryTraceReader::next(Record& out) {
  if (done_) return false;
  const int tag = get();
  if (tag < 0) {
    fail("trace truncated: no end record");
  }
  switch (static_cast<std::uint8_t>(tag)) {
    case kTagDerivation: {
      out.kind = RecordKind::Derivation;
      out.id = read_u64("derivation id");
      const std::uint64_t k = read_u64("source count");
      if (k < 2) fail("derivation needs at least two sources");
      out.sources.clear();
      out.sources.reserve(k);
      for (std::uint64_t i = 0; i < k; ++i) {
        const std::uint64_t delta = read_u64("source delta");
        if (delta == 0 || delta > out.id) fail("source delta out of range");
        out.sources.push_back(out.id - delta);
      }
      return true;
    }
    case kTagFinalConflict:
      out.kind = RecordKind::FinalConflict;
      out.id = read_u64("final conflict id");
      out.sources.clear();
      return true;
    case kTagLevel0: {
      out.kind = RecordKind::Level0;
      const std::uint64_t packed = read_u64("level-0 literal");
      out.var = static_cast<Var>(packed >> 1);
      out.value = (packed & 1) != 0;
      out.antecedent = read_u64("level-0 antecedent");
      out.sources.clear();
      return true;
    }
    case kTagAssumption: {
      out.kind = RecordKind::Assumption;
      const std::uint64_t packed = read_u64("assumption literal");
      out.var = static_cast<Var>(packed >> 1);
      out.value = (packed & 1) != 0;
      out.antecedent = kInvalidClauseId;
      out.sources.clear();
      return true;
    }
    case kTagEnd:
      out.kind = RecordKind::End;
      out.sources.clear();
      done_ = true;
      return true;
    default:
      fail("unknown record tag " + std::to_string(tag));
  }
}

void BinaryTraceReader::rewind() {
  try {
    const auto w = source_->window(body_start_);
    win_pos_ = body_start_;
    win_begin_ = p_ = w.begin;
    end_ = w.end;
  } catch (const std::exception&) {
    fail("rewind failed");
  }
  done_ = false;
}

void BinaryTraceReader::seek(std::uint64_t pos) {
  if (pos < body_start_) fail("seek before first record");
  try {
    const auto w = source_->window(pos);
    win_pos_ = pos;
    win_begin_ = p_ = w.begin;
    end_ = w.end;
  } catch (const std::exception&) {
    fail("seek failed");
  }
  done_ = false;
}

void BinaryTraceReader::release_hint(std::uint64_t begin, std::uint64_t end) {
  if (end > begin) source_->release(begin, end - begin);
}

std::unique_ptr<BinaryTraceReader> open_binary_trace_file(
    const std::string& path) {
  return std::make_unique<BinaryTraceReader>(util::ByteSource::map_file(path));
}

}  // namespace satproof::trace
