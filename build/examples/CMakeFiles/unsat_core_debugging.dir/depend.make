# Empty dependencies file for unsat_core_debugging.
# This may be replaced when dependencies are built.
