#include "src/util/varint.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace satproof::util {

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void write_varint(std::ostream& os, std::uint64_t value) {
  while (value >= 0x80) {
    os.put(static_cast<char>(static_cast<std::uint8_t>(value) | 0x80));
    value >>= 7;
  }
  os.put(static_cast<char>(value));
}

std::optional<std::uint64_t> read_varint(std::istream& is) {
  std::uint64_t value = 0;
  int shift = 0;
  bool first = true;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      if (first) return std::nullopt;
      throw std::runtime_error("varint: truncated encoding at end of stream");
    }
    first = false;
    const auto byte = static_cast<std::uint8_t>(c);
    if (shift >= 63 && (byte >> (70 - shift)) != 0) {
      throw std::runtime_error("varint: value exceeds 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 70) throw std::runtime_error("varint: over-long encoding");
  }
}

std::uint64_t decode_varint(const std::vector<std::uint8_t>& data,
                            std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size()) {
      throw std::runtime_error("varint: truncated encoding in buffer");
    }
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 70) throw std::runtime_error("varint: over-long encoding");
  }
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace satproof::util
