#pragma once

#include <span>
#include <vector>

#include "src/cnf/formula.hpp"
#include "src/cnf/model.hpp"
#include "src/solver/clause_db.hpp"
#include "src/solver/options.hpp"
#include "src/solver/var_order.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/events.hpp"
#include "src/util/rng.hpp"

namespace satproof::solver {

/// A zchaff-style CDCL SAT solver with resolution-trace generation.
///
/// The engine implements the algorithm of Fig. 1 of the paper: decide /
/// BCP with two-literal watching / 1UIP conflict analysis by
/// reverse-chronological resolution (Fig. 2) / assertion-based
/// backtracking, plus VSIDS decisions, geometric restarts, and
/// activity-driven learned-clause deletion that never deletes the
/// antecedent of an assigned variable.
///
/// When a trace::TraceWriter is attached, the solver emits the checkable
/// trace of Section 3.1: every learned clause's resolve sources, the final
/// conflicting clause, and the decision-level-0 assignments. The paper
/// quantifies the cost of these hooks at 1.7-12% runtime overhead
/// (Table 1); bench/table1_trace_overhead reproduces that measurement.
///
/// A Solver instance is single-shot: build it, add clauses, call solve()
/// once.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Adds the variables and clauses of `f`. Clause IDs are assigned in
  /// order of appearance, matching the Formula's own numbering — the ID
  /// contract shared with the checker.
  void add_formula(const Formula& f);

  /// Creates a fresh unassigned variable and returns it.
  Var new_var();

  /// Adds one clause (before solve()). Returns its ID.
  ClauseId add_clause(std::span<const Lit> lits);

  /// Switches the solver to external ID management (for use behind a
  /// trace-emitting preprocessor): the trace header will declare
  /// `num_original` original clauses, and clauses are then added with
  /// explicit IDs via add_clause_with_id(). Must be called before any
  /// clause is added.
  void begin_external_ids(ClauseId num_original);

  /// Adds a clause under an explicit ID (strictly increasing across
  /// calls). IDs below the begin_external_ids() count are original
  /// clauses; higher IDs are preprocessor-derived clauses whose derivation
  /// records the caller has already emitted. Learned-clause IDs continue
  /// after the highest ID seen.
  void add_clause_with_id(std::span<const Lit> lits, ClauseId id);

  /// Reserves all IDs below `next_id` (external-ID mode): the
  /// preprocessor may have derived-and-then-discarded clauses whose IDs
  /// are not among the active set but are already spoken for in the trace.
  void reserve_clause_ids(ClauseId next_id);

 private:
  void add_clause_internal(std::span<const Lit> lits, ClauseId id);

 public:

  /// Attaches a trace writer (may be nullptr to disable tracing, the
  /// "trace off" configuration of Table 1). Must be set before solve().
  void set_trace_writer(trace::TraceWriter* writer) { trace_ = writer; }

  /// Attaches a DRUP proof writer (may be nullptr). Independent of the
  /// resolution trace: DRUP records clause literals and deletions only.
  /// Emits the final empty clause on unconditional UNSAT; an
  /// UNSAT-under-assumptions outcome produces no DRUP claim (the format
  /// cannot express conditional refutations).
  void set_drup_writer(trace::DrupWriter* writer) { drup_ = writer; }

  /// Runs the search to completion (or to the conflict budget).
  [[nodiscard]] SolveResult solve() { return solve({}); }

  /// Solves under the given assumption literals (incremental-query style):
  /// the result is relative to the conjunction of `assumptions`.
  /// Assumptions must be over distinct variables (a contradictory pair
  /// like x and ~x would make the refutation a tautology, which resolution
  /// cannot derive — throws std::invalid_argument instead).
  ///
  /// On Unsatisfiable, failed_assumptions() tells the two cases apart:
  /// empty means the formula is unsatisfiable outright (classic proof
  /// trace); non-empty names an assumption subset the formula refutes, and
  /// the emitted trace proves exactly that — the checkers return the
  /// refuted subset as CheckResult::failed_assumption_clause (negated).
  [[nodiscard]] SolveResult solve(std::span<const Lit> assumptions);

  /// After solve(assumptions) returned Unsatisfiable: the subset of the
  /// assumptions whose conjunction the formula refutes (empty when the
  /// formula is unsatisfiable without any assumptions).
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const {
    return failed_assumptions_;
  }

  /// The satisfying assignment; valid only after solve() returned
  /// Satisfiable. Every variable is assigned.
  [[nodiscard]] const Model& model() const { return model_; }

  /// Search statistics.
  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Number of variables known to the solver.
  [[nodiscard]] Var num_vars() const { return static_cast<Var>(assign_.size()); }

  /// Number of original (non-learned) clauses added.
  [[nodiscard]] ClauseId num_original_clauses() const { return num_original_; }

 private:
  struct Watcher {
    ClauseSlot slot;
    Lit blocker;  ///< some other literal of the clause; if true, skip scan
  };

  // -- assignment ----------------------------------------------------------
  [[nodiscard]] LBool value(Lit p) const {
    const LBool v = assign_[p.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return p.negated() ? ~v : v;
  }
  [[nodiscard]] std::uint32_t level_of(Var v) const { return level_[v]; }
  [[nodiscard]] std::uint32_t decision_level() const {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  void assign(Lit p, ClauseSlot antecedent);
  void backtrack(std::uint32_t target_level);

  // -- search --------------------------------------------------------------
  [[nodiscard]] ClauseSlot propagate();
  enum class DecideOutcome : std::uint8_t {
    Decided,           ///< a new decision (or assumption) was assigned
    AllAssigned,       ///< no free variable left: satisfiable
    AssumptionFailed,  ///< an assumption is falsified by the current trail
  };
  [[nodiscard]] DecideOutcome decide();
  void handle_failed_assumption(Lit p);
  void compute_failed_assumptions(Lit p);
  struct AnalysisResult {
    std::vector<Lit> learned;  ///< learned[0] is the asserting literal
    std::uint32_t backtrack_level = 0;
    std::vector<ClauseId> sources;  ///< conflict id + antecedent ids in order
    bool reuse_conflict = false;    ///< conflict clause was already asserting
  };
  [[nodiscard]] AnalysisResult analyze(ClauseSlot conflict);
  void attach(ClauseSlot slot);
  void detach(ClauseSlot slot);
  void reduce_learned_db();
  [[nodiscard]] bool clause_locked(ClauseSlot slot) const;
  void bump_clause(ClauseSlot slot);

  // -- trace ---------------------------------------------------------------
  void emit_unsat_trace(ClauseSlot conflict);

  SolverOptions options_;
  SolverStats stats_;
  util::Rng rng_;
  trace::TraceWriter* trace_ = nullptr;
  trace::DrupWriter* drup_ = nullptr;

  ClauseDb db_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::code()
  std::vector<LBool> assign_;
  std::vector<std::uint32_t> level_;
  std::vector<ClauseSlot> antecedent_;
  std::vector<std::uint32_t> trail_pos_;
  std::vector<bool> saved_phase_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  VarOrder order_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> failed_assumptions_;

  ClauseId num_original_ = 0;
  ClauseId next_id_ = 0;
  bool external_ids_ = false;
  std::vector<ClauseSlot> pending_units_;
  ClauseId empty_clause_id_ = kInvalidClauseId;
  bool solved_ = false;

  double clause_inc_ = 1.0;
  std::vector<bool> seen_;       // scratch for analyze()
  std::vector<bool> in_clause_;  // scratch for clause minimization

  Model model_;
};

}  // namespace satproof::solver
