// Unit tests for src/util: PRNG, varint codec, memory tracker, temp files,
// table formatting, thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/thread_pool.hpp"

#include "src/util/mem_tracker.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"
#include "src/util/varint.hpp"

namespace satproof::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += a.next_u64() != b.next_u64();
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(10)];
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo = hit_lo || v == -2;
    hit_hi = hit_hi || v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t values[] = {0,    1,    127,  128,   129,
                                  1000, 1u << 14, (1u << 14) + 1,
                                  0xffffffffULL, ~std::uint64_t{0}};
  for (const auto v : values) {
    std::stringstream ss;
    write_varint(ss, v);
    EXPECT_EQ(static_cast<std::size_t>(ss.str().size()), varint_size(v));
    const auto back = read_varint(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(Varint, ReadAtEofReturnsNullopt) {
  std::stringstream ss;
  EXPECT_FALSE(read_varint(ss).has_value());
}

TEST(Varint, TruncatedEncodingThrows) {
  std::stringstream ss;
  ss.put(static_cast<char>(0x80));  // continuation bit, then EOF
  EXPECT_THROW(read_varint(ss), std::runtime_error);
}

TEST(Varint, BufferDecodeMatchesStream) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 300);
  append_varint(buf, 0);
  append_varint(buf, ~std::uint64_t{0});
  std::size_t pos = 0;
  EXPECT_EQ(decode_varint(buf, pos), 300u);
  EXPECT_EQ(decode_varint(buf, pos), 0u);
  EXPECT_EQ(decode_varint(buf, pos), ~std::uint64_t{0});
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, BufferTruncationThrows) {
  std::vector<std::uint8_t> buf{0x80};
  std::size_t pos = 0;
  EXPECT_THROW(decode_varint(buf, pos), std::runtime_error);
}

TEST(MemTracker, TracksCurrentAndPeak) {
  MemTracker m;
  m.add(100);
  m.add(50);
  EXPECT_EQ(m.current_bytes(), 150u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.remove(120);
  EXPECT_EQ(m.current_bytes(), 30u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.add(10);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.reset();
  EXPECT_EQ(m.current_bytes(), 0u);
  EXPECT_EQ(m.peak_bytes(), 0u);
}

TEST(MemTracker, RemoveClampsAtZero) {
  MemTracker m;
  m.add(10);
  m.remove(100);
  EXPECT_EQ(m.current_bytes(), 0u);
}

TEST(ClauseFootprint, GrowsWithLength) {
  EXPECT_LT(clause_footprint_bytes(1), clause_footprint_bytes(100));
  EXPECT_GT(clause_footprint_bytes(0), 0u);
}

TEST(TempFile, CreatesAndRemovesFile) {
  std::filesystem::path p;
  {
    TempFile tf("satproof-test");
    p = tf.path();
    EXPECT_TRUE(std::filesystem::exists(p));
    std::ofstream(p) << "data";
  }
  EXPECT_FALSE(std::filesystem::exists(p));
}

TEST(TempFile, MoveTransfersOwnership) {
  TempFile a("satproof-test");
  const auto p = a.path();
  TempFile b = std::move(a);
  EXPECT_EQ(b.path(), p);
  EXPECT_TRUE(a.path().empty());
  EXPECT_TRUE(std::filesystem::exists(p));
}

TEST(TempFile, DistinctPaths) {
  TempFile a("x"), b("x");
  EXPECT_NE(a.path(), b.path());
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 23    |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_kb(2048), "2.0");
  EXPECT_EQ(format_percent(1, 4), "25.0%");
  EXPECT_EQ(format_percent(1, 0), "n/a");
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.elapsed_seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdlePublishesTaskWrites) {
  // wait_idle() must establish happens-before: plain (non-atomic) writes
  // from the tasks are readable afterwards. TSan validates this for real.
  ThreadPool pool(3);
  std::vector<int> results(256, 0);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      pool.submit([&results, i] { results[i] += static_cast<int>(i); });
    }
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 4);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructionWithQueuedWorkDoesNotHang) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // Destructor joins; tasks not yet started may be discarded, but the
    // pool must shut down cleanly either way.
  }
  EXPECT_LE(count.load(), 100);
}

}  // namespace
}  // namespace satproof::util
