# Empty dependencies file for ablation_minimization.
# This may be replaced when dependencies are built.
