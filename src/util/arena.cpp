#include "src/util/arena.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace satproof::util {

ClauseArena::Ref ClauseArena::bump(std::uint32_t slots) {
  if (slots > kMaxChunkSlots) {
    // A clause longer than a whole chunk gets a dedicated exact-size
    // chunk. Refs can only address the first 2^16 slots of a chunk, but
    // the block *starts* at offset 0, and block() only needs the start.
    if (chunks_.size() >= kMaxChunks) {
      throw std::runtime_error("clause arena: chunk table exhausted");
    }
    Chunk chunk;
    chunk.data = std::make_unique<Lit[]>(slots);
    chunk.capacity = slots;
    chunk.used = slots;
    chunks_.push_back(std::move(chunk));
    return static_cast<Ref>((chunks_.size() - 1) << 16);
  }

  // Advance past chunks that cannot fit this block. After a reset() the
  // walk revisits retained chunks in order; refs can only address the
  // first 2^16 slots of a chunk, so an oversized (exact-size) chunk only
  // exposes that prefix when reused as bump space.
  while (active_ < chunks_.size()) {
    const Chunk& c = chunks_[active_];
    const std::uint32_t usable = std::min(c.capacity, kMaxChunkSlots);
    if (c.used + slots <= usable) break;
    ++active_;
  }

  if (active_ == chunks_.size()) {
    if (chunks_.size() >= kMaxChunks) {
      throw std::runtime_error("clause arena: chunk table exhausted");
    }
    // Geometric growth: small arenas (per-wave parallel shards, tiny
    // traces) stay small; big replays converge to full 2^16-slot chunks.
    const std::uint32_t capacity = std::max(next_chunk_slots_, slots);
    next_chunk_slots_ = std::min(next_chunk_slots_ * 2, kMaxChunkSlots);
    Chunk chunk;
    chunk.data = std::make_unique<Lit[]>(capacity);
    chunk.capacity = capacity;
    chunks_.push_back(std::move(chunk));
  }

  Chunk& chunk = chunks_[active_];
  const auto offset = chunk.used;
  chunk.used += slots;
  return static_cast<Ref>((active_ << 16) | offset);
}

void ClauseArena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  free_lists_.clear();
  tracker_.reset();
  allocated_ = 0;
  recycled_ = 0;
  live_clauses_ = 0;
  // next_chunk_slots_ keeps its growth state: a worker that has already
  // checked a large trace should not re-grow from tiny chunks.
}

ClauseArena::Ref ClauseArena::put(std::span<const Lit> lits) {
  const auto len = static_cast<std::uint32_t>(lits.size());
  const std::size_t bytes = block_bytes(len);

  Ref ref = kNullRef;
  if (len < free_lists_.size() && !free_lists_[len].empty()) {
    ref = free_lists_[len].back();
    free_lists_[len].pop_back();
    recycled_ += bytes;
  } else {
    ref = bump(len + 1);
  }

  Lit* dst = const_cast<Lit*>(block(ref));
  dst[0] = Lit::from_code(len);
  if (len > 0) {
    std::memcpy(dst + 1, lits.data(), len * sizeof(Lit));
  }
  allocated_ += bytes;
  tracker_.add(bytes);
  ++live_clauses_;
  return ref;
}

void ClauseArena::release(Ref ref) {
  const std::uint32_t len = block(ref)[0].code();
  if (len >= free_lists_.size()) {
    free_lists_.resize(len + 1);
  }
  free_lists_[len].push_back(ref);
  tracker_.remove(block_bytes(len));
  --live_clauses_;
}

}  // namespace satproof::util
