#include "src/util/byte_source.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define SATPROOF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SATPROOF_HAVE_MMAP 0
#endif

namespace satproof::util {

namespace {

std::vector<std::uint8_t> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) {
    throw std::runtime_error("byte source: cannot open " + path);
  }
  std::vector<std::uint8_t> data;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    data.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!in) {
      throw std::runtime_error("byte source: short read on " + path);
    }
  }
  return data;
}

}  // namespace

std::unique_ptr<ByteSource> ByteSource::map_file(const std::string& path) {
#if SATPROOF_HAVE_MMAP
  return std::make_unique<MmapByteSource>(path);
#else
  return std::make_unique<MemoryByteSource>(read_whole_file(path));
#endif
}

ByteSource::Window MemoryByteSource::window(std::uint64_t pos) {
  if (pos >= data_.size()) return {};
  const std::uint8_t* base = data_.data();
  return {base + pos, base + data_.size()};
}

#if SATPROOF_HAVE_MMAP

MmapByteSource::MmapByteSource(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("byte source: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("byte source: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("byte source: mmap failed on " + path);
    }
    base_ = static_cast<const std::uint8_t*>(map);
    // Trace checking streams the file front to back (possibly more than
    // once); tell the kernel so readahead stays aggressive.
    ::posix_madvise(const_cast<std::uint8_t*>(base_), size_,
                    POSIX_MADV_SEQUENTIAL);
  }
  ::close(fd);  // the mapping keeps the file alive
}

MmapByteSource::~MmapByteSource() {
  if (base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), size_);
  }
}

void MmapByteSource::release(std::uint64_t pos, std::uint64_t len) {
  if (base_ == nullptr || len == 0 || pos >= size_) return;
  static const std::uint64_t kPage =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  // Round the range inward to whole pages: DONTNEED on a partial page
  // would also drop bytes the caller did not release.
  std::uint64_t begin = (pos + kPage - 1) / kPage * kPage;
  std::uint64_t end = pos + len < size_ ? pos + len : size_;
  end = end / kPage * kPage;
  if (begin >= end) return;
  ::posix_madvise(const_cast<std::uint8_t*>(base_) + begin,
                  static_cast<std::size_t>(end - begin), POSIX_MADV_DONTNEED);
}

#else  // !SATPROOF_HAVE_MMAP

MmapByteSource::MmapByteSource(const std::string& path) {
  (void)path;
  throw std::runtime_error("byte source: mmap unavailable on this platform");
}

MmapByteSource::~MmapByteSource() = default;

void MmapByteSource::release(std::uint64_t, std::uint64_t) {}

#endif

ByteSource::Window MmapByteSource::window(std::uint64_t pos) {
  if (pos >= size_) return {};
  return {base_ + pos, base_ + size_};
}

StreamByteSource::StreamByteSource(std::istream& is, std::size_t buffer_bytes)
    : is_(is), buf_(buffer_bytes == 0 ? 1 : buffer_bytes) {
  const auto here = is_.tellg();
  origin_ = here >= 0 ? static_cast<std::uint64_t>(here) : 0;
}

ByteSource::Window StreamByteSource::window(std::uint64_t pos) {
  // Serve from the current buffer when possible.
  if (pos >= buf_pos_ && pos < buf_pos_ + buf_len_) {
    const std::uint8_t* base = buf_.data();
    return {base + (pos - buf_pos_), base + buf_len_};
  }

  if (pos != next_read_) {
    // Random access: reposition the underlying stream. This is the
    // rewind path; pipes land here only on rewind and fail loudly.
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(origin_ + pos), std::ios::beg);
    if (!is_) {
      throw std::runtime_error(
          "byte source: stream is not seekable (rewind unsupported)");
    }
    next_read_ = pos;
  }

  is_.read(reinterpret_cast<char*>(buf_.data()),
           static_cast<std::streamsize>(buf_.size()));
  const auto got = is_.gcount();
  if (got < 0 || (got == 0 && is_.bad())) {
    throw std::runtime_error("byte source: stream read error");
  }
  buf_pos_ = pos;
  buf_len_ = static_cast<std::size_t>(got);
  next_read_ = pos + buf_len_;
  if (buf_len_ == 0) return {};
  const std::uint8_t* base = buf_.data();
  return {base, base + buf_len_};
}

}  // namespace satproof::util
