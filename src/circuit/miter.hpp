#pragma once

#include <span>

#include "src/circuit/netlist.hpp"
#include "src/circuit/words.hpp"
#include "src/cnf/formula.hpp"

namespace satproof::circuit {

/// Builds a miter over two output vectors inside one netlist: a wire that
/// is true iff the vectors differ on at least one bit. Both implementations
/// must share the same primary inputs (build them into the same Netlist).
[[nodiscard]] Wire build_miter(Netlist& n, std::span<const Wire> outs_a,
                               std::span<const Wire> outs_b);

/// Convenience: Tseitin-encodes the netlist with the miter wire asserted
/// true. The resulting CNF is unsatisfiable iff the two implementations are
/// functionally equivalent — the combinational equivalence checking flow of
/// the paper's Table 1 (c5315 / c7225 rows).
[[nodiscard]] Formula miter_to_cnf(const Netlist& n, Wire miter_out);

}  // namespace satproof::circuit
