#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/checker/resolution.hpp"
#include "src/cnf/formula.hpp"
#include "src/trace/events.hpp"

namespace satproof::proof {

/// The resolution proof as an explicit DAG — what the checker traverses
/// implicitly, materialized for analysis and export.
///
/// This is the "resolution graph" of Section 3.1 of the paper: "a directed
/// acyclic graph that describes the sequence of resolutions starting from
/// the original clauses at the leaves and ending with the empty clause at
/// the root". Only the part reachable from the empty clause is included
/// (the same subgraph the depth-first checker builds). The final
/// empty-clause derivation of Proposition 3 appears as the root node.
struct ProofDag {
  struct Node {
    /// Clause ID; the root (empty clause) gets the first unused ID.
    ClauseId id = kInvalidClauseId;
    /// Resolve sources in replay order; empty for original-clause leaves.
    std::vector<ClauseId> sources;
    /// Canonical literals of the clause (empty for the root).
    checker::SortedClause lits;
    /// Longest leaf-to-node path; 0 for leaves.
    unsigned depth = 0;
  };

  /// Nodes in topological order (every source precedes its consumer);
  /// the root is last.
  std::vector<Node> nodes;
  /// Number of original clauses of the underlying formula.
  ClauseId num_original = 0;
  /// ID of the root (empty clause) node.
  ClauseId root_id = kInvalidClauseId;

  /// Index of a node by clause ID, or ~0 if the ID is not in the proof.
  [[nodiscard]] std::size_t index_of(ClauseId id) const;
};

/// Aggregate metrics of a proof DAG.
struct ProofStats {
  std::size_t leaves = 0;           ///< original clauses used
  std::size_t derived = 0;          ///< derived clauses incl. the root
  std::size_t resolutions = 0;      ///< total resolution steps
  unsigned depth = 0;               ///< longest chain of derivations
  std::size_t max_clause_width = 0; ///< longest clause in the proof
  double avg_clause_width = 0.0;    ///< mean derived-clause length
};

/// Computes the metrics of `dag`.
[[nodiscard]] ProofStats compute_stats(const ProofDag& dag);

/// Extraction failure (trace invalid or not an UNSAT trace).
class ProofError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Builds the proof DAG from a formula and its trace, validating every
/// resolution step along the way (the same checks as the depth-first
/// checker). Throws ProofError on an invalid trace.
[[nodiscard]] ProofDag extract_proof(const Formula& f,
                                     trace::TraceReader& reader);

}  // namespace satproof::proof
