#include "src/util/arena.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace satproof::util {

std::size_t ClauseArena::grow(std::uint32_t slots) {
  if (chunks_.size() >= kMaxChunks) {
    throw std::runtime_error("clause arena: chunk table exhausted");
  }
  // Geometric growth: small arenas (per-wave parallel shards, tiny
  // traces) stay small; big replays converge to full 2^16-slot chunks.
  const std::uint32_t capacity = std::max(next_chunk_slots_, slots);
  next_chunk_slots_ = std::min(next_chunk_slots_ * 2, kMaxChunkSlots);
  Chunk chunk;
  chunk.data = std::make_unique<Lit[]>(capacity);
  chunk.capacity = capacity;
  chunks_.push_back(std::move(chunk));
  return chunks_.size() - 1;
}

ClauseArena::Ref ClauseArena::bump(std::uint32_t slots) {
  if (slots > kMaxChunkSlots) {
    // A clause longer than a whole chunk gets a dedicated exact-size
    // chunk. Refs can only address the first 2^16 slots of a chunk, but
    // the block *starts* at offset 0, and block() only needs the start.
    if (chunks_.size() >= kMaxChunks) {
      throw std::runtime_error("clause arena: chunk table exhausted");
    }
    Chunk chunk;
    chunk.data = std::make_unique<Lit[]>(slots);
    chunk.capacity = slots;
    chunk.used = slots;
    chunks_.push_back(std::move(chunk));
    return static_cast<Ref>((chunks_.size() - 1) << 16);
  }

  // Advance past chunks that cannot fit this block. After a reset() the
  // walk revisits retained chunks in order; an untouched chunk is claimed
  // for the headered layout (its previous tier no longer matters once no
  // ref points into it), a binary-tier chunk in use is skipped, and an
  // oversized (exact-size) chunk only exposes its first 2^16 slots when
  // reused as bump space.
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    if (c.used == 0) c.binary = false;
    const std::uint32_t usable = std::min(c.capacity, kMaxChunkSlots);
    if (!c.binary && c.used + slots <= usable) break;
    ++active_;
  }

  if (active_ == chunks_.size()) grow(slots);

  Chunk& chunk = chunks_[active_];
  const auto offset = chunk.used;
  chunk.used += slots;
  return static_cast<Ref>((active_ << 16) | offset);
}

ClauseArena::Ref ClauseArena::bump_binary() {
  // Mirror image of bump()'s walk, claiming untouched chunks for the
  // binary tier and skipping headered chunks in use. The two walks share
  // the chunk table (refs address either kind uniformly) but never share
  // a chunk that holds data.
  while (binary_active_ < chunks_.size()) {
    Chunk& c = chunks_[binary_active_];
    if (c.used == 0) c.binary = true;
    const std::uint32_t usable = std::min(c.capacity, kMaxChunkSlots);
    if (c.binary && c.used + 2 <= usable) break;
    ++binary_active_;
  }

  if (binary_active_ == chunks_.size()) {
    chunks_[grow(2)].binary = true;
  }

  Chunk& chunk = chunks_[binary_active_];
  const auto offset = chunk.used;
  chunk.used += 2;
  return static_cast<Ref>((binary_active_ << 16) | offset);
}

void ClauseArena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  binary_active_ = 0;
  free_lists_.clear();
  tracker_.reset();
  allocated_ = 0;
  recycled_ = 0;
  live_clauses_ = 0;
  // next_chunk_slots_ keeps its growth state: a worker that has already
  // checked a large trace should not re-grow from tiny chunks.
}

ClauseArena::Ref ClauseArena::put(std::span<const Lit> lits) {
  const auto len = static_cast<std::uint32_t>(lits.size());
  const std::size_t bytes = block_bytes(len);

  Ref ref = kNullRef;
  if (len < free_lists_.size() && !free_lists_[len].empty()) {
    ref = free_lists_[len].back();
    free_lists_[len].pop_back();
    recycled_ += bytes;
  } else if (len == 2 && binary_tier_) {
    ref = bump_binary();
  } else {
    ref = bump(len + 1);
  }

  // The reused block's chunk, not the current tier setting, decides the
  // layout to write: a recycled ref keeps the layout it was born with.
  const Chunk& c = chunks_[ref >> 16];
  Lit* dst = c.data.get() + (ref & 0xffffu);
  if (c.binary) {
    dst[0] = lits[0];
    dst[1] = lits[1];
  } else {
    dst[0] = Lit::from_code(len);
    if (len > 0) {
      std::memcpy(dst + 1, lits.data(), len * sizeof(Lit));
    }
  }
  allocated_ += bytes;
  tracker_.add(bytes);
  ++live_clauses_;
  return ref;
}

void ClauseArena::release(Ref ref) {
  const Chunk& c = chunks_[ref >> 16];
  const std::uint32_t len =
      c.binary ? 2 : (c.data.get() + (ref & 0xffffu))[0].code();
  if (len >= free_lists_.size()) {
    free_lists_.resize(len + 1);
  }
  free_lists_[len].push_back(ref);
  tracker_.remove(block_bytes(len));
  --live_clauses_;
}

}  // namespace satproof::util
