# Empty dependencies file for satproof_cli.
# This may be replaced when dependencies are built.
