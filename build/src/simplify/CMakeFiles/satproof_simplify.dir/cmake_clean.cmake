file(REMOVE_RECURSE
  "CMakeFiles/satproof_simplify.dir/pipeline.cpp.o"
  "CMakeFiles/satproof_simplify.dir/pipeline.cpp.o.d"
  "CMakeFiles/satproof_simplify.dir/preprocessor.cpp.o"
  "CMakeFiles/satproof_simplify.dir/preprocessor.cpp.o.d"
  "libsatproof_simplify.a"
  "libsatproof_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
