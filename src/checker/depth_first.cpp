#include "src/checker/depth_first.hpp"

#include <algorithm>
#include <optional>

#include "src/obs/trace.hpp"

namespace satproof::checker {

namespace {

class DepthFirstChecker {
 public:
  DepthFirstChecker(const Formula& f, trace::TraceReader& reader,
                    util::ClauseArena* recycle_arena)
      : formula_(&f),
        reader_(&reader),
        level0_(reader.num_vars()),
        derivations_(reader.num_original()),
        store_(recycle_arena) {}

  CheckResult run(const DepthFirstOptions& options) {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      final_id_ =
          load_full_trace(*reader_, derivations_, level0_, mem_, stats_);
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      {
        obs::Span span("index");
        store_.reserve(std::max<ClauseId>(num_original(),
                                          derivations_.num_records() != 0
                                              ? derivations_.max_id() + 1
                                              : 0));
      }
      const ClauseFetcher fetch = [this](ClauseId id) { return build(id); };
      SortedClause remaining;
      {
        obs::Span replay_span("replay");
        remaining = derive_final_clause(*final_id_, fetch, level0_, stats_);
      }
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    const util::ClauseArena& arena = store_.arena();
    stats_.peak_mem_bytes = mem_.peak_bytes() + arena.peak_bytes();
    stats_.arena_allocated_bytes = arena.allocated_bytes();
    stats_.arena_recycled_bytes = arena.recycled_bytes();
    stats_.arena_peak_bytes = arena.peak_bytes();
    obs::Span core_span("core");
    // The ref table is ID-ordered, so one ascending scan of the original-ID
    // prefix yields the core already sorted.
    const ClauseId originals =
        std::min<ClauseId>(num_original(), store_.id_limit());
    for (ClauseId id = 0; id < originals; ++id) {
      if (store_.contains(id)) ++stats_.core_original_clauses;
    }
    result.stats = stats_;
    if (result.ok && options.collect_core) {
      result.core.reserve(stats_.core_original_clauses);
      for (ClauseId id = 0; id < originals; ++id) {
        if (store_.contains(id)) result.core.push_back(id);
      }
    }
    return result;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  /// Returns the canonical clause for `id`, building it (and, recursively,
  /// its sources) on demand — recursive_build() of Fig. 3, with an explicit
  /// stack so pathological traces cannot overflow the call stack.
  ClauseView build(ClauseId id) {
    if (store_.contains(id)) return store_.view(id);
    if (id < num_original()) return build_original(id);

    struct Frame {
      ClauseId id;
      std::span<const std::uint32_t> sources;
      std::size_t scan = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({id, derivations_.sources_of(id)});
    while (!stack.empty()) {
      Frame& f = stack.back();
      bool descended = false;
      while (f.scan < f.sources.size()) {
        const ClauseId s = f.sources[f.scan];
        if (store_.contains(s)) {
          ++f.scan;
          continue;
        }
        if (s < num_original()) {
          build_original(s);
          ++f.scan;
          continue;
        }
        // Sources strictly precede the derived ID (validated at load), so
        // this descent terminates.
        stack.push_back({s, derivations_.sources_of(s)});
        descended = true;
        break;
      }
      if (descended) continue;
      fold_sources(f.id, f.sources);
      stack.pop_back();
    }
    return store_.view(id);
  }

  ClauseView build_original(ClauseId id) {
    const SortedClause canon = canonicalize(formula_->clause(id));
    if (is_tautology(canon)) {
      throw CheckFailure("original clause " + std::to_string(id) +
                         " is tautological and cannot be a resolution source");
    }
    store_.put(id, canon);
    return store_.view(id);
  }

  /// Replays one derivation: left-fold resolution over the sources, which
  /// must all be stored by now.
  void fold_sources(ClauseId id, std::span<const std::uint32_t> sources) {
    chain_.start(store_.view(sources[0]));
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const ResolveResult r = chain_.step(store_.view(sources[i]));
      ++stats_.resolutions;
      if (r.status != ResolveStatus::Ok) {
        throw CheckFailure(
            "derivation of clause " + std::to_string(id) + ": resolving with "
            "source " + std::to_string(sources[i]) + " (step " +
            std::to_string(i) + ") failed: " +
            (r.status == ResolveStatus::NoClash
                 ? "no clashing variable"
                 : "more than one clashing variable"));
      }
    }
    // Sort the resolver's buffer in place and copy straight into the
    // arena — no per-derivation vector allocation.
    const std::span<Lit> derived = chain_.lits_mutable();
    std::sort(derived.begin(), derived.end());
    store_.put(id, derived);
    ++stats_.clauses_built;
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  Level0Table level0_;
  std::optional<ClauseId> final_id_;
  DerivationIndex derivations_;
  ClauseStore store_;
  ChainResolver chain_;
  util::MemTracker mem_;
  CheckStats stats_;
};

}  // namespace

CheckResult check_depth_first(const Formula& f, trace::TraceReader& reader,
                              const DepthFirstOptions& options) {
  DepthFirstChecker checker(f, reader, options.recycle_arena);
  return checker.run(options);
}

}  // namespace satproof::checker
