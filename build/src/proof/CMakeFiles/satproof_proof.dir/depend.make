# Empty dependencies file for satproof_proof.
# This may be replaced when dependencies are built.
