#include "src/util/temp_file.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace satproof::util {

namespace {
std::atomic<std::uint64_t> g_counter{0};
}

TempFile::TempFile(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto id = g_counter.fetch_add(1, std::memory_order_relaxed);
  path_ = dir / (tag + "." + std::to_string(static_cast<unsigned long long>(
                           ::getpid())) +
                 "." + std::to_string(id) + ".tmp");
  std::ofstream create(path_, std::ios::binary | std::ios::trunc);
  if (!create) {
    throw std::runtime_error("TempFile: cannot create " + path_.string());
  }
}

TempFile::TempFile(TempFile&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempFile& TempFile::operator=(TempFile&& other) noexcept {
  if (this != &other) {
    cleanup();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempFile::~TempFile() { cleanup(); }

void TempFile::cleanup() noexcept {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    path_.clear();
  }
}

}  // namespace satproof::util
