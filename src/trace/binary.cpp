#include "src/trace/binary.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/util/varint.hpp"

namespace satproof::trace {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'R', 'F'};
constexpr std::uint8_t kVersion = 0x01;

constexpr std::uint8_t kTagDerivation = 0x01;
constexpr std::uint8_t kTagFinalConflict = 0x02;
constexpr std::uint8_t kTagLevel0 = 0x03;
constexpr std::uint8_t kTagEnd = 0x04;
constexpr std::uint8_t kTagAssumption = 0x05;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("binary trace: " + what);
}

std::uint64_t must_read_varint(std::istream& in, const char* what) {
  const auto v = util::read_varint(in);
  if (!v) fail(std::string("truncated while reading ") + what);
  return *v;
}

}  // namespace

void BinaryTraceWriter::begin(Var num_vars, ClauseId num_original) {
  buf_.clear();
  buf_.insert(buf_.end(), kMagic, kMagic + sizeof kMagic);
  buf_.push_back(kVersion);
  util::append_varint(buf_, num_vars);
  util::append_varint(buf_, num_original);
  flush_buf();
}

void BinaryTraceWriter::derivation(ClauseId id,
                                   std::span<const ClauseId> sources) {
  buf_.clear();
  buf_.push_back(kTagDerivation);
  util::append_varint(buf_, id);
  util::append_varint(buf_, sources.size());
  for (const ClauseId s : sources) {
    if (s >= id) fail("derivation source id must precede the derived id");
    util::append_varint(buf_, id - s);
  }
  flush_buf();
}

void BinaryTraceWriter::final_conflict(ClauseId id) {
  buf_.clear();
  buf_.push_back(kTagFinalConflict);
  util::append_varint(buf_, id);
  flush_buf();
}

void BinaryTraceWriter::level0(Var var, bool value, ClauseId antecedent) {
  buf_.clear();
  buf_.push_back(kTagLevel0);
  util::append_varint(buf_, (static_cast<std::uint64_t>(var) << 1) |
                                (value ? 1u : 0u));
  util::append_varint(buf_, antecedent);
  flush_buf();
}

void BinaryTraceWriter::assumption(Var var, bool value) {
  buf_.clear();
  buf_.push_back(kTagAssumption);
  util::append_varint(buf_, (static_cast<std::uint64_t>(var) << 1) |
                                (value ? 1u : 0u));
  flush_buf();
}

void BinaryTraceWriter::end() {
  out_->put(static_cast<char>(kTagEnd));
  out_->flush();
}

void BinaryTraceWriter::flush_buf() {
  out_->write(reinterpret_cast<const char*>(buf_.data()),
              static_cast<std::streamsize>(buf_.size()));
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(&in) {
  char magic[4] = {};
  in_->read(magic, sizeof magic);
  if (!*in_ || magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
      magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    fail("bad magic (not a satproof binary trace)");
  }
  const int version = in_->get();
  if (version != kVersion) fail("unsupported version");
  num_vars_ = static_cast<Var>(must_read_varint(*in_, "num_vars"));
  num_original_ = must_read_varint(*in_, "num_original");
  body_start_ = in_->tellg();
}

bool BinaryTraceReader::next(Record& out) {
  if (done_) return false;
  const int tag = in_->get();
  if (tag == std::char_traits<char>::eof()) {
    fail("trace truncated: no end record");
  }
  switch (static_cast<std::uint8_t>(tag)) {
    case kTagDerivation: {
      out.kind = RecordKind::Derivation;
      out.id = must_read_varint(*in_, "derivation id");
      const std::uint64_t k = must_read_varint(*in_, "source count");
      if (k < 2) fail("derivation needs at least two sources");
      out.sources.clear();
      out.sources.reserve(k);
      for (std::uint64_t i = 0; i < k; ++i) {
        const std::uint64_t delta = must_read_varint(*in_, "source delta");
        if (delta == 0 || delta > out.id) fail("source delta out of range");
        out.sources.push_back(out.id - delta);
      }
      return true;
    }
    case kTagFinalConflict:
      out.kind = RecordKind::FinalConflict;
      out.id = must_read_varint(*in_, "final conflict id");
      out.sources.clear();
      return true;
    case kTagLevel0: {
      out.kind = RecordKind::Level0;
      const std::uint64_t packed = must_read_varint(*in_, "level-0 literal");
      out.var = static_cast<Var>(packed >> 1);
      out.value = (packed & 1) != 0;
      out.antecedent = must_read_varint(*in_, "level-0 antecedent");
      out.sources.clear();
      return true;
    }
    case kTagAssumption: {
      out.kind = RecordKind::Assumption;
      const std::uint64_t packed =
          must_read_varint(*in_, "assumption literal");
      out.var = static_cast<Var>(packed >> 1);
      out.value = (packed & 1) != 0;
      out.antecedent = kInvalidClauseId;
      out.sources.clear();
      return true;
    }
    case kTagEnd:
      out.kind = RecordKind::End;
      out.sources.clear();
      done_ = true;
      return true;
    default:
      fail("unknown record tag " + std::to_string(tag));
  }
}

void BinaryTraceReader::rewind() {
  in_->clear();
  in_->seekg(body_start_);
  if (!*in_) fail("rewind failed");
  done_ = false;
}

}  // namespace satproof::trace
