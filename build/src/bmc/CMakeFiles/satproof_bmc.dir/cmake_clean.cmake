file(REMOVE_RECURSE
  "CMakeFiles/satproof_bmc.dir/counter.cpp.o"
  "CMakeFiles/satproof_bmc.dir/counter.cpp.o.d"
  "CMakeFiles/satproof_bmc.dir/rotator.cpp.o"
  "CMakeFiles/satproof_bmc.dir/rotator.cpp.o.d"
  "CMakeFiles/satproof_bmc.dir/sequential.cpp.o"
  "CMakeFiles/satproof_bmc.dir/sequential.cpp.o.d"
  "CMakeFiles/satproof_bmc.dir/unroll.cpp.o"
  "CMakeFiles/satproof_bmc.dir/unroll.cpp.o.d"
  "libsatproof_bmc.a"
  "libsatproof_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
