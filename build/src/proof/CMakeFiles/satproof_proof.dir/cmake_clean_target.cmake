file(REMOVE_RECURSE
  "libsatproof_proof.a"
)
