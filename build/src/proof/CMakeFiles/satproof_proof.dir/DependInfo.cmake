
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proof/export.cpp" "src/proof/CMakeFiles/satproof_proof.dir/export.cpp.o" "gcc" "src/proof/CMakeFiles/satproof_proof.dir/export.cpp.o.d"
  "/root/repo/src/proof/interpolant.cpp" "src/proof/CMakeFiles/satproof_proof.dir/interpolant.cpp.o" "gcc" "src/proof/CMakeFiles/satproof_proof.dir/interpolant.cpp.o.d"
  "/root/repo/src/proof/proof_dag.cpp" "src/proof/CMakeFiles/satproof_proof.dir/proof_dag.cpp.o" "gcc" "src/proof/CMakeFiles/satproof_proof.dir/proof_dag.cpp.o.d"
  "/root/repo/src/proof/rup.cpp" "src/proof/CMakeFiles/satproof_proof.dir/rup.cpp.o" "gcc" "src/proof/CMakeFiles/satproof_proof.dir/rup.cpp.o.d"
  "/root/repo/src/proof/trim.cpp" "src/proof/CMakeFiles/satproof_proof.dir/trim.cpp.o" "gcc" "src/proof/CMakeFiles/satproof_proof.dir/trim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/satproof_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/satproof_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/satproof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
