# Empty dependencies file for test_rewrite_sorting.
# This may be replaced when dependencies are built.
