#include "src/checker/resolution.hpp"

#include <algorithm>

namespace satproof::checker {

SortedClause canonicalize(std::span<const Lit> lits) {
  SortedClause out(lits.begin(), lits.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool is_tautology(const SortedClause& clause) {
  for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i].var() == clause[i + 1].var()) return true;
  }
  return false;
}

ResolveResult resolve(const SortedClause& a, const SortedClause& b,
                      SortedClause& out) {
  out.clear();
  ResolveResult res;

  // First find the clashing variable(s). Literal codes sort by variable
  // first, so opposite phases of one variable are adjacent across the two
  // sorted sequences and a single merge pass finds every clash.
  std::size_t i = 0, j = 0;
  Var pivot = kInvalidVar;
  while (i < a.size() && j < b.size()) {
    const Lit la = a[i], lb = b[j];
    if (la.var() == lb.var()) {
      if (la != lb) {
        if (pivot != kInvalidVar && pivot != la.var()) {
          res.status = ResolveStatus::MultiClash;
          return res;
        }
        pivot = la.var();
      }
      ++i;
      ++j;
    } else if (la < lb) {
      ++i;
    } else {
      ++j;
    }
  }
  if (pivot == kInvalidVar) {
    res.status = ResolveStatus::NoClash;
    return res;
  }
  // Each side must contain the pivot in exactly one phase; a clause holding
  // both phases is tautological and resolving "through" it would produce a
  // clause stronger than what is actually implied.
  for (const SortedClause* side : {&a, &b}) {
    int count = 0;
    for (const Lit lit : *side) count += lit.var() == pivot ? 1 : 0;
    if (count != 1) {
      res.status = ResolveStatus::MultiClash;
      return res;
    }
  }

  // Merge, dropping both phases of the pivot.
  out.reserve(a.size() + b.size() - 2);
  i = 0;
  j = 0;
  while (i < a.size() || j < b.size()) {
    Lit next;
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      next = a[i++];
    } else if (i >= a.size() || b[j] < a[i]) {
      next = b[j++];
    } else {  // equal literals
      next = a[i++];
      ++j;
    }
    if (next.var() == pivot) continue;
    out.push_back(next);
  }
  res.status = ResolveStatus::Ok;
  res.pivot = pivot;
  return res;
}

void ChainResolver::grow_to(Lit lit) {
  if (lit.code() >= stamp_.size()) {
    stamp_.resize(lit.code() + 1, 0);
    pos_.resize(lit.code() + 1, 0);
  }
}

void ChainResolver::insert(Lit lit) {
  grow_to(lit);
  stamp_[lit.code()] = epoch_;
  pos_[lit.code()] = static_cast<std::uint32_t>(lits_.size());
  lits_.push_back(lit);
}

void ChainResolver::erase(Lit lit) {
  const std::uint32_t i = pos_[lit.code()];
  const Lit last = lits_.back();
  lits_[i] = last;
  pos_[last.code()] = i;
  lits_.pop_back();
  stamp_[lit.code()] = 0;
}

void ChainResolver::start(std::span<const Lit> first) {
  ++epoch_;
  lits_.clear();
  for (const Lit lit : first) insert(lit);
}

ResolveResult ChainResolver::step(std::span<const Lit> next) {
  ResolveResult res;
  // Pass 1: find the clashing variable(s).
  Var pivot = kInvalidVar;
  for (const Lit lit : next) {
    if (present(~lit)) {
      if (pivot != kInvalidVar && pivot != lit.var()) {
        res.status = ResolveStatus::MultiClash;
        return res;
      }
      pivot = lit.var();
    }
  }
  if (pivot == kInvalidVar) {
    res.status = ResolveStatus::NoClash;
    return res;
  }
  // `next` must contain the pivot in exactly one phase (see resolve()).
  int pivot_count = 0;
  for (const Lit lit : next) pivot_count += lit.var() == pivot ? 1 : 0;
  if (pivot_count != 1 ||
      (present(Lit::pos(pivot)) && present(Lit::neg(pivot)))) {
    res.status = ResolveStatus::MultiClash;
    return res;
  }
  // Pass 2: merge, dropping both phases of the pivot.
  erase(present(Lit::pos(pivot)) ? Lit::pos(pivot) : Lit::neg(pivot));
  for (const Lit lit : next) {
    if (lit.var() == pivot) continue;
    if (!present(lit)) insert(lit);
  }
  res.status = ResolveStatus::Ok;
  res.pivot = pivot;
  return res;
}

std::vector<Lit> ChainResolver::take() {
  // Invalidate the stamps so a future start() sees an empty set.
  ++epoch_;
  return std::move(lits_);
}

}  // namespace satproof::checker
