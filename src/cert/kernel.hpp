#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace satproof::kern {

// The trusted kernel: an LRAT certificate checker deliberately kept to a
// few hundred lines of plain standard C++ — no arena, no mmap, no
// project dependencies — so it can be audited by eye. Everything else in
// this repository (the optimized replay backends, the emitter, the
// service) is untrusted as far as a certified verdict is concerned: the
// kernel re-derives unsatisfiability from the original CNF plus the
// certificate's hints alone. tools/kernel_audit.py enforces the size and
// dependency budget in CI.

/// Outcome of a certificate check.
struct VerifyResult {
  bool verified = false;   ///< true iff the empty clause was derived
  std::string error;       ///< first rejection diagnostic ("" when verified)
  std::uint64_t line = 0;  ///< 1-based text line / binary record index; 0 = n/a
  std::uint64_t additions = 0;  ///< addition steps accepted
  std::uint64_t deletions = 0;  ///< clauses deleted
};

/// Checks an LRAT certificate (text, or the binary GRIT-style variant —
/// autodetected from the first byte) against a DIMACS CNF formula.
///
/// Each addition must be a reverse unit propagation consequence *as
/// hinted*: negate the added clause, then every hint clause in order must
/// be unit (extending the assignment) or falsified (conflict — the step
/// is accepted and any remaining hints are ignored). A hint that is
/// satisfied, or leaves two or more literals unassigned, rejects the
/// certificate; so do unknown or deleted clause IDs, non-increasing
/// addition IDs, negative (RAT) hints, and deletion of an unknown or
/// already-deleted clause. The certificate is VERIFIED once the empty
/// clause is derived; a certificate that ends without deriving it is
/// REJECTED.
VerifyResult verify_lrat(std::istream& cnf, std::istream& cert);

}  // namespace satproof::kern
