file(REMOVE_RECURSE
  "libsatproof_circuit.a"
)
