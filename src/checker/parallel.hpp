#pragma once

#include "src/checker/common.hpp"

namespace satproof::checker {

/// Options for the parallel checker.
struct ParallelOptions {
  /// Worker threads. 0 means std::thread::hardware_concurrency (≥ 1).
  unsigned jobs = 0;

  /// Collect the unsatisfiable core, exactly as the depth-first checker
  /// does. The parallel checker builds the same clause set as depth-first
  /// regardless of schedule, so the core is byte-identical.
  bool collect_core = true;
};

/// Parallel depth-first proof checking.
///
/// The proof DAG exposes natural parallelism: two learned clauses whose
/// antecedent clauses are already verified can be rebuilt concurrently.
/// This checker loads the trace like the depth-first checker, restricts
/// attention to the derivations reachable from the final conflicting clause
/// (and, later, from each level-0 antecedent the final derivation actually
/// touches — the same set depth-first builds), topologically levels that
/// subgraph into *wavefronts* (level = 1 + max level of the sources), and
/// replays each wavefront's resolution chains across a fixed worker pool.
///
/// Verified clauses are published into a lock-free slot table indexed by
/// clause ID via release stores; workers resolve against antecedents with
/// acquire loads and no locks — sources always live in a strictly earlier
/// wavefront, so a load never observes an unpublished clause. Clause
/// storage comes from per-worker arenas whose footprint feeds the shared
/// memory tracker at each wavefront barrier, keeping --stats deterministic.
///
/// Everything observable is schedule-independent: the set of clauses built,
/// the unsat core (byte-identical to check_depth_first), the resolution and
/// built counts, the peak-memory figure, and — because the first failure is
/// selected by lowest clause ID, not by which worker lost the race — the
/// diagnostic on rejection.
[[nodiscard]] CheckResult check_parallel(const Formula& f,
                                         trace::TraceReader& reader,
                                         const ParallelOptions& options = {});

}  // namespace satproof::checker
