# Empty compiler generated dependencies file for table3_unsat_core.
# This may be replaced when dependencies are built.
