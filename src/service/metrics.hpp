#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/service/job_queue.hpp"
#include "src/service/run_check.hpp"

namespace satproof::service {

/// Fixed-bucket log-scale latency histogram (microsecond resolution).
///
/// Bucket i covers latencies in [2^i, 2^(i+1)) microseconds; bucket 0 also
/// absorbs sub-microsecond samples. 40 buckets reach ~12.7 days, far past
/// any job. Percentiles are reported as the upper bound of the bucket in
/// which the requested rank falls — at most one power of two above the
/// true value, which is the right fidelity for a live counters endpoint
/// (exact percentiles would need unbounded sample storage).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double max_ms() const { return max_ms_; }
  /// Upper-bound estimate of the p-th percentile (p in (0, 100]) in
  /// milliseconds; 0 when empty.
  [[nodiscard]] double percentile_ms(double p) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double max_ms_ = 0.0;
};

/// Live counters of one server instance. All mutators are internally
/// synchronized; to_json takes a consistent snapshot under the same lock.
/// The queue depth/running gauges are owned by the scheduler and passed in
/// at snapshot time (the metrics object has no back-pointer to the queue).
class Metrics {
 public:
  void on_connection();
  void on_malformed_frame();
  void on_accepted();
  void on_rejected_busy();
  /// Records one finished job: backend, wall-clock latency, and the
  /// arena peak of its checking run (wired from the --stats accounting).
  void on_completed(Backend backend, double seconds, bool ok,
                    std::size_t arena_peak_bytes);
  void on_timeout(Backend backend);
  /// Records one job whose wall time exceeded the --slow-job-ms threshold
  /// (the span-tree dump accompanies it on stderr).
  void on_slow_job();
  /// Records one trusted-kernel certificate post-check (serve --certify):
  /// `ok` is the kernel verdict.
  void on_certified(bool ok);

  /// Structured snapshot: jobs accepted/rejected/completed/failed,
  /// per-backend latency percentiles, queue gauges, arena peak, and one
  /// entry per worker shard (lane depths, cumulative lane admissions,
  /// steal count). The shard snapshots are owned by the scheduler and
  /// passed in at snapshot time, like the queue gauges.
  [[nodiscard]] std::string to_json(
      std::size_t queue_depth, std::size_t queue_capacity,
      std::size_t running_jobs,
      const std::vector<ShardedJobQueue::ShardSnapshot>& shards) const;

  /// The same snapshot in Prometheus text exposition format
  /// (`satproofd_*` series plus the process-wide obs::MetricsRegistry).
  [[nodiscard]] std::string to_prometheus(
      std::size_t queue_depth, std::size_t queue_capacity,
      std::size_t running_jobs,
      const std::vector<ShardedJobQueue::ShardSnapshot>& shards) const;

 private:
  struct BackendCounters {
    std::uint64_t completed = 0;  ///< verdict delivered (ok or rejected)
    std::uint64_t failed = 0;     ///< verdict was not ok
    std::uint64_t timed_out = 0;
    LatencyHistogram latency;
  };

  mutable std::mutex mutex_;
  std::uint64_t connections_ = 0;
  std::uint64_t malformed_frames_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_busy_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t slow_jobs_ = 0;
  std::uint64_t certified_ = 0;       ///< kernel-verified certificates
  std::uint64_t certify_failed_ = 0;  ///< kernel REJECTs (emitter bug!)
  std::size_t arena_peak_bytes_ = 0;  ///< max over all completed jobs
  std::array<BackendCounters, kNumBackends> backends_{};
};

}  // namespace satproof::service
