#pragma once

#include "src/checker/common.hpp"
#include "src/checker/use_count.hpp"

namespace satproof::checker {

/// Options for the hybrid checker.
struct HybridOptions {
  /// Use-count storage, as in the breadth-first checker.
  UseCountMode use_counts = UseCountMode::InMemory;

  /// When non-null, clause storage borrows this arena instead of growing a
  /// private one (see DepthFirstOptions::recycle_arena).
  util::ClauseArena* recycle_arena = nullptr;

  /// When non-null, receives replay-order derivation events, including
  /// on_released() when a clause's use count exhausts (the emitter turns
  /// those into LRAT deletion records). See DepthFirstOptions::observer.
  CertObserver* observer = nullptr;
};

/// Hybrid proof checking — the checker the paper's conclusion asks for:
///
///   "It is desirable to have a checker that has the advantage of both the
///    depth-first and breadth-first approaches without suffering from
///    their respective shortcomings."
///
/// The insight: what makes depth-first fast is that it builds only the
/// clauses reachable from the final conflict (19-90%); what makes it
/// memory-hungry is *memoizing every built clause forever*. What makes
/// breadth-first memory-light is the use-count-driven clause window; what
/// makes it slow is building everything.
///
/// The hybrid therefore works in three passes:
///   1. stream the trace, keeping only the *structure* (per derivation:
///      its ID and source IDs — a few bytes per edge, no literals);
///   2. mark backward reachability from the final conflicting clause and
///      the level-0 antecedents over that structure, and count each
///      reachable clause's uses *by reachable consumers only*;
///   3. stream the trace again, building only reachable clauses
///      breadth-first and releasing each as soon as its last reachable use
///      is behind.
///
/// Memory: DAG structure + the clause window (no clause memoization), far
/// below depth-first on long traces. Work: the same resolutions depth-first
/// performs. The structure must still fit in memory — the paper's ultimate
/// answer for traces whose *structure* exceeds memory is an external-memory
/// graph traversal (Buchsbaum et al.), which is out of scope here.
[[nodiscard]] CheckResult check_hybrid(const Formula& f,
                                       trace::TraceReader& reader,
                                       const HybridOptions& options = {});

}  // namespace satproof::checker
