#include "src/simplify/preprocessor.hpp"

#include <algorithm>
#include <stdexcept>

namespace satproof::simplify {

namespace {

/// Working clause representation: canonical (sorted, duplicate-free)
/// literals. Clauses are immutable once created; strengthening replaces a
/// clause with a freshly derived one, which is what keeps the trace story
/// straight (every clause body belongs to exactly one ID forever).
struct PClause {
  ClauseId id;
  std::vector<Lit> lits;
  bool live = true;
};

class Engine {
 public:
  Engine(const Formula& f, const PreprocessOptions& options,
         trace::TraceWriter* writer)
      : formula_(&f), options_(options), writer_(writer) {}

  PreprocessResult run() {
    if (writer_ != nullptr) {
      writer_->begin(formula_->num_vars(), formula_->num_clauses());
    }
    result_.num_vars = formula_->num_vars();
    next_id_ = formula_->num_clauses();
    load();

    for (unsigned round = 0; round < options_.rounds && !proved_unsat_;
         ++round) {
      bool changed = false;
      if (options_.enable_subsumption || options_.enable_self_subsumption) {
        changed = subsumption_pass() || changed;
      }
      if (proved_unsat_) break;
      if (options_.enable_bve) changed = bve_pass() || changed;
      if (!changed) break;
    }

    finish();
    return std::move(result_);
  }

 private:
  // ------------------------------------------------------------- plumbing

  void load() {
    occur_.assign(2 * static_cast<std::size_t>(formula_->num_vars()), {});
    for (ClauseId id = 0; id < formula_->num_clauses(); ++id) {
      const auto span = formula_->clause(id);
      std::vector<Lit> canon(span.begin(), span.end());
      std::sort(canon.begin(), canon.end());
      canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
      bool tautology = false;
      for (std::size_t i = 0; i + 1 < canon.size(); ++i) {
        if (canon[i].var() == canon[i + 1].var()) {
          tautology = true;
          break;
        }
      }
      // Tautologies are inert; leaving them out of the active set is a
      // plain removal and needs no justification.
      if (tautology) continue;
      add_clause(id, std::move(canon));
    }
  }

  /// Registers a clause body under `id` and indexes its occurrences.
  std::size_t add_clause(ClauseId id, std::vector<Lit> lits) {
    const std::size_t index = clauses_.size();
    for (const Lit lit : lits) occur_[lit.code()].push_back(index);
    clauses_.push_back({id, std::move(lits), true});
    return index;
  }

  /// Emits the derivation of a fresh clause with the given sources and
  /// registers it. An empty derived clause completes the proof on the
  /// spot.
  std::size_t derive_clause(std::vector<Lit> lits,
                            std::initializer_list<ClauseId> sources) {
    const ClauseId id = next_id_++;
    if (writer_ != nullptr) {
      const std::vector<ClauseId> src(sources);
      writer_->derivation(id, src);
    }
    if (lits.empty()) {
      proved_unsat_ = true;
      if (writer_ != nullptr) {
        writer_->final_conflict(id);
        writer_->end();
      }
    }
    return add_clause(id, std::move(lits));
  }

  // ------------------------------------- subsumption / self-subsumption

  /// True iff every literal of `small` occurs in `big` (both canonical).
  static bool subset_of(const std::vector<Lit>& small,
                        const std::vector<Lit>& big) {
    std::size_t j = 0;
    for (const Lit lit : small) {
      while (j < big.size() && big[j] < lit) ++j;
      if (j == big.size() || big[j] != lit) return false;
      ++j;
    }
    return true;
  }

  /// The literal of `c` with the shortest occurrence list (fewest
  /// candidates to scan).
  [[nodiscard]] Lit rarest_literal(const PClause& c) const {
    Lit best = c.lits[0];
    for (const Lit lit : c.lits) {
      if (occur_[lit.code()].size() < occur_[best.code()].size()) best = lit;
    }
    return best;
  }

  bool subsumption_pass() {
    bool changed = false;
    // Process in increasing size order: small clauses subsume most.
    std::vector<std::size_t> order;
    order.reserve(clauses_.size());
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
      if (clauses_[i].live) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return clauses_[a].lits.size() < clauses_[b].lits.size();
    });

    for (const std::size_t di : order) {
      if (!clauses_[di].live || proved_unsat_) continue;
      if (clauses_[di].lits.empty()) continue;

      if (options_.enable_subsumption) {
        const Lit probe = rarest_literal(clauses_[di]);
        // Copy: strengthening appends to occurrence lists mid-scan.
        const std::vector<std::size_t> candidates = occur_[probe.code()];
        for (const std::size_t ci : candidates) {
          if (ci == di || !clauses_[ci].live) continue;
          const PClause& d = clauses_[di];
          const PClause& c = clauses_[ci];
          if (c.lits.size() < d.lits.size()) continue;
          if (subset_of(d.lits, c.lits)) {
            clauses_[ci].live = false;
            ++result_.stats.subsumed;
            changed = true;
          }
        }
      }

      if (options_.enable_self_subsumption) {
        // For each literal l of D: clauses containing ~l whose remainder
        // is a superset of D \ {l} lose ~l by resolving with D.
        const std::vector<Lit> d_lits = clauses_[di].lits;  // copy: stable
        for (const Lit l : d_lits) {
          if (!clauses_[di].live || proved_unsat_) break;
          std::vector<Lit> d_rest;
          d_rest.reserve(d_lits.size() - 1);
          for (const Lit x : d_lits) {
            if (x != l) d_rest.push_back(x);
          }
          const std::vector<std::size_t> candidates = occur_[(~l).code()];
          for (const std::size_t ci : candidates) {
            if (!clauses_[ci].live || ci == di || proved_unsat_) continue;
            const PClause& c = clauses_[ci];
            if (c.lits.size() < d_lits.size()) continue;
            if (!subset_of(d_rest, c.lits)) continue;
            // Strengthen C: the resolvent of C and D on var(l) is exactly
            // C without ~l.
            std::vector<Lit> strengthened;
            strengthened.reserve(c.lits.size() - 1);
            for (const Lit x : c.lits) {
              if (x != ~l) strengthened.push_back(x);
            }
            const ClauseId c_id = c.id;
            const ClauseId d_id = clauses_[di].id;
            clauses_[ci].live = false;
            derive_clause(std::move(strengthened), {c_id, d_id});
            ++result_.stats.strengthened;
            changed = true;
            if (proved_unsat_) return changed;
          }
        }
      }
    }
    return changed;
  }

  // --------------------------------------------- bounded var elimination

  /// Collects the live clauses containing `lit`, compacting the
  /// occurrence list on the way.
  std::vector<std::size_t> live_occurrences(Lit lit) {
    auto& list = occur_[lit.code()];
    std::vector<std::size_t> out;
    std::size_t j = 0;
    for (const std::size_t ci : list) {
      if (clauses_[ci].live) {
        list[j++] = ci;
        out.push_back(ci);
      }
    }
    list.resize(j);
    return out;
  }

  /// Resolves `p` and `n` on `v`; returns false when the resolvent is
  /// tautological (a second clashing variable).
  static bool resolve_on(const std::vector<Lit>& p, const std::vector<Lit>& n,
                         Var v, std::vector<Lit>& out) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < p.size() || j < n.size()) {
      Lit next;
      if (j >= n.size() || (i < p.size() && p[i] < n[j])) {
        next = p[i++];
      } else if (i >= p.size() || n[j] < p[i]) {
        next = n[j++];
      } else {
        next = p[i++];
        ++j;
      }
      if (next.var() == v) continue;
      if (!out.empty() && out.back().var() == next.var()) {
        if (out.back() != next) return false;  // tautological
        continue;                              // duplicate
      }
      out.push_back(next);
    }
    return true;
  }

  bool bve_pass() {
    bool changed = false;
    for (Var v = 0; v < formula_->num_vars() && !proved_unsat_; ++v) {
      const std::vector<std::size_t> pos = live_occurrences(Lit::pos(v));
      const std::vector<std::size_t> neg = live_occurrences(Lit::neg(v));
      if (pos.empty() && neg.empty()) continue;
      if (pos.size() + neg.size() > options_.bve_max_occurrences) continue;

      // Compute the non-tautological resolvents (pure literals have none).
      std::vector<std::vector<Lit>> resolvents;
      std::vector<std::pair<ClauseId, ClauseId>> sources;
      std::vector<Lit> scratch;
      bool too_many = false;
      for (const std::size_t pi : pos) {
        for (const std::size_t ni : neg) {
          if (!resolve_on(clauses_[pi].lits, clauses_[ni].lits, v, scratch)) {
            continue;
          }
          resolvents.push_back(scratch);
          sources.emplace_back(clauses_[pi].id, clauses_[ni].id);
          if (resolvents.size() >
              pos.size() + neg.size() +
                  static_cast<std::size_t>(
                      std::max(0, options_.bve_max_growth))) {
            too_many = true;
            break;
          }
        }
        if (too_many) break;
      }
      if (too_many) continue;

      // Eliminate: record the removed clauses for model reconstruction,
      // then swap in the resolvents.
      PreprocessResult::Elimination elim;
      elim.var = v;
      for (const std::size_t ci : pos) {
        elim.removed_clauses.push_back(clauses_[ci].lits);
        clauses_[ci].live = false;
      }
      for (const std::size_t ci : neg) {
        elim.removed_clauses.push_back(clauses_[ci].lits);
        clauses_[ci].live = false;
      }
      result_.eliminations.push_back(std::move(elim));
      result_.stats.clauses_removed += pos.size() + neg.size();
      ++result_.stats.eliminated_vars;
      changed = true;

      for (std::size_t r = 0; r < resolvents.size(); ++r) {
        derive_clause(std::move(resolvents[r]),
                      {sources[r].first, sources[r].second});
        ++result_.stats.resolvents_added;
        if (proved_unsat_) break;
      }
    }
    return changed;
  }

  // --------------------------------------------------------------- output

  void finish() {
    result_.proved_unsat = proved_unsat_;
    result_.next_id = next_id_;
    if (proved_unsat_) return;
    for (const PClause& c : clauses_) {
      if (c.live) result_.clauses.push_back({c.id, c.lits});
    }
    // The solver requires strictly increasing IDs.
    std::sort(result_.clauses.begin(), result_.clauses.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
  }

  const Formula* formula_;
  PreprocessOptions options_;
  trace::TraceWriter* writer_;

  std::vector<PClause> clauses_;
  std::vector<std::vector<std::size_t>> occur_;  // by Lit::code()
  ClauseId next_id_ = 0;
  bool proved_unsat_ = false;
  PreprocessResult result_;
};

}  // namespace

void PreprocessResult::reconstruct_model(Model& model) const {
  if (model.size() < num_vars) model.resize(num_vars, LBool::Undef);
  for (auto it = eliminations.rbegin(); it != eliminations.rend(); ++it) {
    bool need_true = false, need_false = false;
    for (const auto& clause : it->removed_clauses) {
      bool satisfied_without_v = false;
      bool has_pos = false, has_neg = false;
      for (const Lit lit : clause) {
        if (lit.var() == it->var) {
          (lit.negated() ? has_neg : has_pos) = true;
        } else if (value_of(lit, model) == LBool::True) {
          satisfied_without_v = true;
          break;
        }
      }
      if (satisfied_without_v) continue;
      if (has_pos) need_true = true;
      if (has_neg) need_false = true;
    }
    if (need_true && need_false) {
      // Both polarities demanded: impossible for a correct elimination (the
      // two demanding clauses' resolvent would be falsified, yet it was
      // added to the formula the model satisfies).
      throw std::logic_error(
          "reconstruct_model: inconsistent elimination record");
    }
    model[it->var] = need_true ? LBool::True : LBool::False;
  }
}

PreprocessResult preprocess(const Formula& f, const PreprocessOptions& options,
                            trace::TraceWriter* writer) {
  Engine engine(f, options, writer);
  return engine.run();
}

}  // namespace satproof::simplify
