#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace satproof::obs {

/// One completed span, in Chrome-trace "complete event" ("ph":"X") terms.
/// `name` must point at a string literal (or otherwise outlive the sink):
/// spans are recorded on checker hot paths and must not allocate.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_us = 0;  ///< microseconds since process start
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  ///< small dense id, assigned per OS thread
};

/// Collects finished spans from all threads. Threads buffer locally and
/// append in batches, so the mutex here is off the hot path.
class TraceSink {
 public:
  void append(const TraceEvent* events, std::size_t n);

  /// Chrome trace-event JSON (`{"traceEvents":[...]}`), loadable in
  /// chrome://tracing or Perfetto.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Writes `to_chrome_json()` to `path`; returns false on I/O error.
  bool write_file(const std::filesystem::path& path) const;

  [[nodiscard]] std::size_t event_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Builds a nested tree of spans on ONE thread, for human-readable slow-job
/// dumps. Installed per-thread via `set_thread_collector`; spans opened on
/// other threads (e.g. the parallel backend's pool) are not captured.
class SpanTreeCollector {
 public:
  void on_enter(const char* name, std::uint64_t start_us);
  void on_exit(std::uint64_t dur_us);
  /// Records an already-measured span (no nesting) under the current open
  /// span, e.g. a queue wait measured before the collector's thread ran.
  void add_leaf(const char* name, std::uint64_t start_us,
                std::uint64_t dur_us);

  /// Indented tree, one span per line with millisecond durations.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

 private:
  struct Node {
    const char* name = nullptr;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    int depth = 0;
  };

  // Pre-order list with explicit depth: append-only, so on_enter/on_exit
  // stay O(1) and render is a single pass.
  std::vector<Node> nodes_;
  std::vector<std::size_t> open_;  ///< stack of indices into nodes_
};

/// Microseconds since the process-wide monotonic epoch.
std::uint64_t now_us();

/// True when either a TraceSession sink or a thread-local collector would
/// observe a span opened on this thread.
bool tracing_active();

/// Installs (or clears, with nullptr) the slow-job collector for the
/// calling thread. The caller keeps ownership.
void set_thread_collector(SpanTreeCollector* collector);

/// Records a span measured manually (not via the RAII Span) on the calling
/// thread. No-op when tracing is inactive.
void emit(const char* name, std::uint64_t start_us, std::uint64_t dur_us);

/// Flushes the calling thread's buffered events to the installed sink.
void flush_this_thread();

/// RAII scoped span. Cost when tracing is disabled: one relaxed atomic
/// load, one thread-local read, one branch — no allocation, no clock read.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  /// Ends the span now instead of at scope exit; idempotent.
  void finish();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Installs a process-global TraceSink for its lifetime. Only one session
/// may be active at a time (last install wins). The destructor flushes the
/// calling thread and uninstalls the sink; other threads flush when their
/// buffers fill or when they exit.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] TraceSink& sink() { return *sink_; }
  [[nodiscard]] const std::shared_ptr<TraceSink>& sink_ptr() const {
    return sink_;
  }

 private:
  std::shared_ptr<TraceSink> sink_;
};

}  // namespace satproof::obs
