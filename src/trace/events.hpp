#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cnf/types.hpp"

namespace satproof::trace {

/// The resolution trace of an UNSAT run, as defined in Section 3.1 of the
/// paper. A trace is a sequence of records:
///
///  1. One *derivation* per learned clause: the clause's fresh ID plus the
///     ordered list of its *resolve sources* — the conflicting clause
///     first, then the antecedent passed to each resolve() call in
///     analyze_conflict() (Fig. 2 of the paper). Re-resolving the sources
///     left to right reproduces the learned clause.
///  2. The ID of one *final conflicting clause*: the clause found
///     conflicting at decision level 0 that triggered the UNSAT answer.
///  3. One *level-0 assignment* record per variable assigned at decision
///     level 0, in chronological (trail) order, each with its value and the
///     ID of its antecedent clause.
///
/// The checker replays (1) to rebuild learned clauses, then derives the
/// empty clause from (2) by resolving away every literal using the
/// antecedents in (3), in reverse chronological order.
///
/// Solving *under assumptions* (an extension beyond the paper, for
/// validated incremental queries) adds a fourth record kind: one
/// *assumption* record per assumed literal. When the answer is
/// UNSAT-under-assumptions, the trail dump of (3) covers every implied
/// variable up to the failing assumption level, assumption decisions are
/// recorded as Assumption records in trail order (plus one for the failed
/// assumption itself), and the final derivation no longer reaches the
/// empty clause: it stops at a clause whose literals are all negations of
/// assumed literals — a proof that the formula implies the negation of
/// that assumption subset.

/// Kind tag of a trace record.
enum class RecordKind : std::uint8_t {
  Derivation,     ///< learned clause: id + resolve sources
  FinalConflict,  ///< id of the clause conflicting at level 0
  Level0,         ///< one level-0 assignment: var, value, antecedent id
  Assumption,     ///< an assumed literal (incremental queries): var, value
  End,            ///< end-of-trace marker
};

/// One trace record. Which fields are meaningful depends on `kind`.
struct Record {
  RecordKind kind = RecordKind::End;
  /// Derivation: the learned clause's ID. FinalConflict: the conflicting
  /// clause's ID.
  ClauseId id = kInvalidClauseId;
  /// Derivation only: resolve sources, conflicting clause first.
  std::vector<ClauseId> sources;
  /// Level0 only: the assigned variable and its value.
  Var var = kInvalidVar;
  bool value = false;
  /// Level0 only: ID of the clause that implied the assignment.
  ClauseId antecedent = kInvalidClauseId;
};

/// Sink interface the solver writes the trace into.
///
/// The emission order is: begin(), any number of derivation() calls while
/// the solver runs, then — only if the solver concludes UNSAT —
/// final_conflict(), the level0() records in trail order, and end().
class TraceWriter {
 public:
  virtual ~TraceWriter() = default;

  /// Announces the instance: variable count and the number of original
  /// clauses (IDs [0, num_original) are original; learned IDs follow).
  virtual void begin(Var num_vars, ClauseId num_original) = 0;

  /// Records the derivation of learned clause `id` from `sources`.
  virtual void derivation(ClauseId id, std::span<const ClauseId> sources) = 0;

  /// Records the clause conflicting at decision level 0.
  virtual void final_conflict(ClauseId id) = 0;

  /// Records one level-0 assignment (in chronological order).
  virtual void level0(Var var, bool value, ClauseId antecedent) = 0;

  /// Records one assumed literal (var assumed to take `value`). Emitted in
  /// trail order for decided assumptions, plus once for the assumption
  /// whose enqueue failed. Default implementation: assumption-blind sinks
  /// ignore the record.
  virtual void assumption(Var var, bool value) {
    (void)var;
    (void)value;
  }

  /// Terminates and flushes the trace.
  virtual void end() = 0;
};

/// Source interface the checkers read the trace from.
///
/// The breadth-first checker makes two passes over the trace (a counting
/// pass and the resolution pass), hence rewind().
class TraceReader {
 public:
  virtual ~TraceReader() = default;

  /// Declared variable count from the trace header.
  [[nodiscard]] virtual Var num_vars() const = 0;

  /// Declared original-clause count from the trace header.
  [[nodiscard]] virtual ClauseId num_original() const = 0;

  /// Reads the next record into `out`. Returns false at end of trace
  /// (after the End record has been delivered). Throws std::runtime_error
  /// on malformed input.
  virtual bool next(Record& out) = 0;

  /// Restarts reading from the first record after the header.
  virtual void rewind() = 0;

  /// True when this reader supports tell()/seek() repositioning. The
  /// window-shifting checker uses these to revisit trace regions without
  /// re-reading everything before them; readers over pipes or other
  /// forward-only inputs report false and the checker falls back to
  /// rewind() + skipping records.
  [[nodiscard]] virtual bool seekable() const { return false; }

  /// Opaque position token for the *next* record to be read. Only
  /// meaningful when seekable(); tokens are valid for the lifetime of the
  /// reader and may only be passed back to seek() on the same reader.
  [[nodiscard]] virtual std::uint64_t tell() const { return 0; }

  /// Repositions so the next next() call reads the record whose token
  /// `pos` was obtained from tell(). Throws std::runtime_error when the
  /// reader is not seekable.
  virtual void seek(std::uint64_t pos);

  /// Advises that the record range [begin, end) (tell() tokens) will not
  /// be re-read soon; a memory-mapped reader drops the backing pages from
  /// RSS. Purely an optimization — default is a no-op.
  virtual void release_hint(std::uint64_t begin, std::uint64_t end) {
    (void)begin;
    (void)end;
  }
};

inline void TraceReader::seek(std::uint64_t pos) {
  (void)pos;
  throw std::runtime_error("trace reader does not support seeking");
}

/// Writer that discards everything; stands in for "trace generation off"
/// while keeping the same code path hot (used by the Table 1 bench to
/// isolate formatting/IO cost from hook cost).
class NullTraceWriter final : public TraceWriter {
 public:
  void begin(Var, ClauseId) override {}
  void derivation(ClauseId, std::span<const ClauseId>) override {}
  void final_conflict(ClauseId) override {}
  void level0(Var, bool, ClauseId) override {}
  void end() override {}
};

}  // namespace satproof::trace
