#include "src/checker/depth_first.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace satproof::checker {

namespace {

/// Estimated resident size of one loaded derivation record.
std::size_t derivation_record_bytes(std::size_t num_sources) {
  return num_sources * sizeof(ClauseId) + 48;
}

class DepthFirstChecker {
 public:
  DepthFirstChecker(const Formula& f, trace::TraceReader& reader)
      : formula_(&f), reader_(&reader), level0_(reader.num_vars()) {}

  CheckResult run(const DepthFirstOptions& options) {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      load_trace();
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      const ClauseFetcher fetch = [this](ClauseId id) -> const SortedClause& {
        return build(id);
      };
      SortedClause remaining =
          derive_final_clause(*final_id_, fetch, level0_, stats_);
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    stats_.peak_mem_bytes = mem_.peak_bytes();
    for (const auto& [id, clause] : memo_) {
      if (id < num_original()) ++stats_.core_original_clauses;
    }
    result.stats = stats_;
    if (result.ok && options.collect_core) {
      result.core.reserve(stats_.core_original_clauses);
      for (const auto& [id, clause] : memo_) {
        if (id < num_original()) result.core.push_back(id);
      }
      std::sort(result.core.begin(), result.core.end());
    }
    return result;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  void load_trace() {
    reader_->rewind();
    trace::Record rec;
    bool ended = false;
    while (!ended && reader_->next(rec)) {
      switch (rec.kind) {
        case trace::RecordKind::Derivation: {
          if (rec.id < num_original()) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " reuses an original clause ID");
          }
          if (rec.sources.size() < 2) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " has fewer than two resolve sources");
          }
          for (const ClauseId s : rec.sources) {
            if (s >= rec.id) {
              throw CheckFailure(
                  "derivation " + std::to_string(rec.id) +
                  " references source " + std::to_string(s) +
                  " that does not precede it; derivations must be acyclic");
            }
          }
          const auto [it, inserted] =
              derivations_.emplace(rec.id, std::move(rec.sources));
          if (!inserted) {
            throw CheckFailure("clause " + std::to_string(rec.id) +
                               " is derived twice");
          }
          mem_.add(derivation_record_bytes(it->second.size()));
          ++stats_.total_derivations;
          break;
        }
        case trace::RecordKind::FinalConflict:
          if (final_id_.has_value()) {
            throw CheckFailure("trace has more than one final conflict record");
          }
          final_id_ = rec.id;
          break;
        case trace::RecordKind::Level0:
          level0_.add(rec.var, rec.value, rec.antecedent);
          mem_.add(16);
          break;
        case trace::RecordKind::Assumption:
          level0_.add_assumption(rec.var, rec.value);
          mem_.add(16);
          break;
        case trace::RecordKind::End:
          ended = true;
          break;
      }
    }
    if (!ended) {
      throw CheckFailure("trace truncated: missing end record");
    }
  }

  /// Returns the canonical clause for `id`, building it (and, recursively,
  /// its sources) on demand — recursive_build() of Fig. 3, with an explicit
  /// stack so pathological traces cannot overflow the call stack.
  const SortedClause& build(ClauseId id) {
    if (const auto it = memo_.find(id); it != memo_.end()) return it->second;
    if (id < num_original()) return build_original(id);

    struct Frame {
      ClauseId id;
      const std::vector<ClauseId>* sources;
      std::size_t scan = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({id, &sources_of(id)});
    while (!stack.empty()) {
      Frame& f = stack.back();
      bool descended = false;
      while (f.scan < f.sources->size()) {
        const ClauseId s = (*f.sources)[f.scan];
        if (memo_.contains(s)) {
          ++f.scan;
          continue;
        }
        if (s < num_original()) {
          build_original(s);
          ++f.scan;
          continue;
        }
        // Sources strictly precede the derived ID (validated at load), so
        // this descent terminates.
        stack.push_back({s, &sources_of(s)});
        descended = true;
        break;
      }
      if (descended) continue;
      fold_sources(f.id, *f.sources);
      stack.pop_back();
    }
    return memo_.at(id);
  }

  const SortedClause& build_original(ClauseId id) {
    SortedClause canon = canonicalize(formula_->clause(id));
    if (is_tautology(canon)) {
      throw CheckFailure("original clause " + std::to_string(id) +
                         " is tautological and cannot be a resolution source");
    }
    const auto [it, inserted] = memo_.emplace(id, std::move(canon));
    if (inserted) {
      mem_.add(util::clause_footprint_bytes(it->second.size()));
    }
    return it->second;
  }

  const std::vector<ClauseId>& sources_of(ClauseId id) {
    const auto it = derivations_.find(id);
    if (it == derivations_.end()) {
      throw CheckFailure("clause " + std::to_string(id) +
                         " is referenced but never derived in the trace");
    }
    return it->second;
  }

  /// Replays one derivation: left-fold resolution over the sources, which
  /// must all be memoized by now.
  void fold_sources(ClauseId id, const std::vector<ClauseId>& sources) {
    chain_.start(memo_.at(sources[0]));
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const ResolveResult r = chain_.step(memo_.at(sources[i]));
      ++stats_.resolutions;
      if (r.status != ResolveStatus::Ok) {
        throw CheckFailure(
            "derivation of clause " + std::to_string(id) + ": resolving with "
            "source " + std::to_string(sources[i]) + " (step " +
            std::to_string(i) + ") failed: " +
            (r.status == ResolveStatus::NoClash
                 ? "no clashing variable"
                 : "more than one clashing variable"));
      }
    }
    SortedClause derived = chain_.take();
    std::sort(derived.begin(), derived.end());
    mem_.add(util::clause_footprint_bytes(derived.size()));
    memo_.emplace(id, std::move(derived));
    ++stats_.clauses_built;
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  Level0Table level0_;
  std::optional<ClauseId> final_id_;
  std::unordered_map<ClauseId, std::vector<ClauseId>> derivations_;
  std::unordered_map<ClauseId, SortedClause> memo_;
  ChainResolver chain_;
  util::MemTracker mem_;
  CheckStats stats_;
};

}  // namespace

CheckResult check_depth_first(const Formula& f, trace::TraceReader& reader,
                              const DepthFirstOptions& options) {
  DepthFirstChecker checker(f, reader);
  return checker.run(options);
}

}  // namespace satproof::checker
