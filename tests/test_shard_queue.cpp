// Unit tests for the service scheduler's building blocks: the sharded
// work-stealing job queue (lane priority, steal correctness under
// contention, drain-while-stealing shutdown), the incremental frame
// decoder behind the epoll ingest loop, the EventPoller wrapper on both
// of its backends, and the submit-header wire compatibility.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/service/job_queue.hpp"
#include "src/service/protocol.hpp"
#include "src/util/epoll.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace satproof::service {
namespace {

QueuedJob make_job(std::uint64_t id, Lane lane = Lane::kFast) {
  QueuedJob job;
  job.request.id = id;
  job.lane = lane;
  return job;
}

// ------------------------------------------------------------ ShardQueue

TEST(ShardQueue, SingleShardIsFifoWithinALane) {
  ShardedJobQueue q(1, 16);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_EQ(q.try_enqueue(make_job(id)),
              ShardedJobQueue::EnqueueResult::kAccepted);
  }
  for (std::uint64_t id = 1; id <= 5; ++id) {
    auto job = q.try_pop(0);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->request.id, id);
  }
  EXPECT_FALSE(q.try_pop(0).has_value());
}

TEST(ShardQueue, FastLaneOvertakesEarlierBulkJobs) {
  ShardedJobQueue q(1, 16);
  ASSERT_EQ(q.try_enqueue(make_job(1, Lane::kBulk)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  ASSERT_EQ(q.try_enqueue(make_job(2, Lane::kBulk)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  ASSERT_EQ(q.try_enqueue(make_job(3, Lane::kFast)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  ASSERT_EQ(q.try_enqueue(make_job(4, Lane::kFast)),
            ShardedJobQueue::EnqueueResult::kAccepted);

  std::vector<std::uint64_t> order;
  while (auto job = q.try_pop(0)) order.push_back(job->request.id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 4, 1, 2}));

  const auto snap = q.shard_snapshot(0);
  EXPECT_EQ(snap.enqueued_fast, 2u);
  EXPECT_EQ(snap.enqueued_bulk, 2u);
  EXPECT_EQ(snap.steals, 0u);
}

TEST(ShardQueue, FastJobOnAnotherShardBeatsOwnBulkJob) {
  // Round-robin placement: job 1 lands on shard 0, job 2 on shard 1.
  ShardedJobQueue q(2, 16);
  ASSERT_EQ(q.try_enqueue(make_job(1, Lane::kBulk)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  ASSERT_EQ(q.try_enqueue(make_job(2, Lane::kFast)),
            ShardedJobQueue::EnqueueResult::kAccepted);

  // Worker 0 owns the bulk job but must steal the remote fast job first.
  auto first = q.try_pop(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.id, 2u);
  EXPECT_EQ(q.shard_snapshot(0).steals, 1u);

  auto second = q.try_pop(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.id, 1u);
}

TEST(ShardQueue, CapacityIsEnforcedAcrossShards) {
  ShardedJobQueue q(4, 2);
  EXPECT_EQ(q.try_enqueue(make_job(1)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  EXPECT_EQ(q.try_enqueue(make_job(2)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  EXPECT_EQ(q.try_enqueue(make_job(3)),
            ShardedJobQueue::EnqueueResult::kFull);
  EXPECT_EQ(q.depth(), 2u);
  ASSERT_TRUE(q.try_pop(0).has_value());
  EXPECT_EQ(q.try_enqueue(make_job(4)),
            ShardedJobQueue::EnqueueResult::kAccepted);
}

TEST(ShardQueue, CloseRefusesNewWorkButDrainsQueuedJobs) {
  ShardedJobQueue q(2, 8);
  ASSERT_EQ(q.try_enqueue(make_job(1)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  ASSERT_EQ(q.try_enqueue(make_job(2)),
            ShardedJobQueue::EnqueueResult::kAccepted);
  q.close();
  EXPECT_EQ(q.try_enqueue(make_job(3)),
            ShardedJobQueue::EnqueueResult::kClosed);
  // pop_blocking drains the queued work, then reports shutdown.
  EXPECT_TRUE(q.pop_blocking(0).has_value());
  EXPECT_TRUE(q.pop_blocking(1).has_value());
  EXPECT_FALSE(q.pop_blocking(0).has_value());
  EXPECT_FALSE(q.pop_blocking(1).has_value());
}

TEST(ShardQueue, EveryJobIsExecutedExactlyOnceUnderContention) {
  constexpr unsigned kWorkers = 4;
  constexpr unsigned kProducers = 3;
  constexpr std::uint64_t kJobsPerProducer = 400;
  ShardedJobQueue q(kWorkers, kProducers * kJobsPerProducer);

  std::mutex seen_mutex;
  std::vector<std::uint64_t> seen;
  std::vector<std::thread> consumers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    consumers.emplace_back([&, w] {
      while (auto job = q.pop_blocking(w)) {
        std::lock_guard lock(seen_mutex);
        seen.push_back(job->request.id);
      }
    });
  }

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kJobsPerProducer; ++i) {
        const std::uint64_t id = p * kJobsPerProducer + i + 1;
        const Lane lane = i % 3 == 0 ? Lane::kBulk : Lane::kFast;
        ASSERT_EQ(q.try_enqueue(make_job(id, lane)),
                  ShardedJobQueue::EnqueueResult::kAccepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(seen.size(), kProducers * kJobsPerProducer);
  std::sort(seen.begin(), seen.end());
  for (std::uint64_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], i + 1) << "job lost or duplicated";
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(ShardQueue, DrainWhileStealingLosesNothing) {
  // close() races against workers that are actively popping/stealing:
  // every job admitted before the close must still be handed out exactly
  // once, and every pop_blocking must return nullopt afterwards.
  for (int round = 0; round < 20; ++round) {
    constexpr unsigned kWorkers = 4;
    ShardedJobQueue q(kWorkers, 64);
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> popped{0};

    std::vector<std::thread> consumers;
    for (unsigned w = 0; w < kWorkers; ++w) {
      consumers.emplace_back([&, w] {
        while (q.pop_blocking(w)) popped.fetch_add(1);
      });
    }
    std::thread producer([&] {
      for (std::uint64_t id = 1; id <= 200; ++id) {
        const auto res = q.try_enqueue(make_job(
            id, id % 4 == 0 ? Lane::kBulk : Lane::kFast));
        if (res == ShardedJobQueue::EnqueueResult::kAccepted) {
          accepted.fetch_add(1);
        } else if (res == ShardedJobQueue::EnqueueResult::kClosed) {
          break;
        }
        if (id == 100) q.close();  // close mid-stream, from the producer
      }
    });
    producer.join();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(popped.load(), accepted.load());
    EXPECT_EQ(q.depth(), 0u);
  }
}

// ---------------------------------------------------------- FrameDecoder

std::vector<std::uint8_t> wire_frame(FrameTag tag,
                                     const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(tag));
  append_u32le(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

TEST(FrameDecoderTest, ReassemblesAFrameFedOneByteAtATime) {
  const std::vector<std::uint8_t> wire =
      wire_frame(FrameTag::kCnfData, {1, 2, 3, 4});
  FrameDecoder dec;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(&wire[i], 1);
    EXPECT_EQ(dec.next(frame), FrameDecoder::Result::kNeedMore);
    EXPECT_TRUE(dec.mid_frame());
  }
  dec.feed(&wire.back(), 1);
  ASSERT_EQ(dec.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.tag, FrameTag::kCnfData);
  EXPECT_EQ(frame.payload, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_FALSE(dec.mid_frame());
}

TEST(FrameDecoderTest, DrainsMultiplePipelinedFramesFromOneFeed) {
  std::vector<std::uint8_t> wire = wire_frame(FrameTag::kSubmitEnd, {});
  const auto second = wire_frame(FrameTag::kStats, {});
  wire.insert(wire.end(), second.begin(), second.end());

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(dec.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.tag, FrameTag::kSubmitEnd);
  ASSERT_EQ(dec.next(frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.tag, FrameTag::kStats);
  EXPECT_EQ(dec.next(frame), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, OversizedDeclaredLengthIsRejectedFromTheHeader) {
  FrameDecoder dec(/*max_payload=*/16);
  std::vector<std::uint8_t> header;
  header.push_back(static_cast<std::uint8_t>(FrameTag::kCnfData));
  append_u32le(header, 17);  // one past the cap; no payload bytes needed
  dec.feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(dec.next(frame), FrameDecoder::Result::kOversized);
}

// ----------------------------------------------------------- EventPoller

#if !defined(_WIN32)

class EventPollerBackends
    : public ::testing::TestWithParam<util::EventPoller::Backend> {};

TEST_P(EventPollerBackends, ReportsReadableAndHonoursInterest) {
  util::EventPoller poller(GetParam());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  poller.add(fds[0], /*key=*/7, /*want_read=*/true, /*want_write=*/false);
  std::vector<util::PollEvent> events;

  // Nothing buffered: a zero timeout returns immediately with no events.
  EXPECT_EQ(poller.wait(0, events), 0u);

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  ASSERT_EQ(poller.wait(1000, events), 1u);
  EXPECT_EQ(events[0].key, 7u);
  EXPECT_TRUE(events[0].readable);

  // Dropping read interest silences the (still readable) descriptor.
  poller.modify(fds[0], /*want_read=*/false, /*want_write=*/false);
  EXPECT_EQ(poller.wait(0, events), 0u);

  poller.remove(fds[0]);
  EXPECT_EQ(poller.size(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventPollerBackends, WriteInterestFiresOnAWritablePipe) {
  util::EventPoller poller(GetParam());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  poller.add(fds[1], /*key=*/9, /*want_read=*/false, /*want_write=*/true);
  std::vector<util::PollEvent> events;
  ASSERT_EQ(poller.wait(1000, events), 1u);
  EXPECT_EQ(events[0].key, 9u);
  EXPECT_TRUE(events[0].writable);
  poller.remove(fds[1]);
  ::close(fds[0]);
  ::close(fds[1]);
}

#if defined(__linux__)
INSTANTIATE_TEST_SUITE_P(AllBackends, EventPollerBackends,
                         ::testing::Values(util::EventPoller::Backend::kEpoll,
                                           util::EventPoller::Backend::kPoll),
                         [](const auto& info) {
                           return info.param ==
                                          util::EventPoller::Backend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });
#else
INSTANTIATE_TEST_SUITE_P(AllBackends, EventPollerBackends,
                         ::testing::Values(util::EventPoller::Backend::kPoll),
                         [](const auto&) { return std::string("poll"); });
#endif

#endif  // !_WIN32

// ---------------------------------------------------- SubmitHeader compat

TEST(SubmitHeaderCompat, DeclaredBytesRoundTripInThe18ByteEncoding) {
  SubmitHeader h;
  h.backend = 2;
  h.flags = kSubmitFlagWait;
  h.timeout_ms = 1234;
  h.jobs = 3;
  h.declared_bytes = (5u << 20) + 17;
  const std::vector<std::uint8_t> wire = encode_submit_header(h);
  ASSERT_EQ(wire.size(), 18u);

  SubmitHeader back;
  ASSERT_TRUE(decode_submit_header(wire, back));
  EXPECT_EQ(back.declared_bytes, h.declared_bytes);
  EXPECT_EQ(back.timeout_ms, h.timeout_ms);
}

TEST(SubmitHeaderCompat, Legacy10ByteHeaderStillDecodesWithZeroDeclared) {
  SubmitHeader h;
  h.backend = 1;
  h.jobs = 2;
  h.declared_bytes = 999;  // must NOT survive a legacy truncation
  std::vector<std::uint8_t> wire = encode_submit_header(h);
  wire.resize(10);  // what a pre-declared-bytes client would have sent

  SubmitHeader back;
  ASSERT_TRUE(decode_submit_header(wire, back));
  EXPECT_EQ(back.backend, 1);
  EXPECT_EQ(back.jobs, 2u);
  EXPECT_EQ(back.declared_bytes, 0u);
}

TEST(SubmitHeaderCompat, LaneThresholdClassifiesDeclaredSizes) {
  EXPECT_EQ(lane_for_bytes(0), Lane::kFast);
  EXPECT_EQ(lane_for_bytes(kBulkLaneThresholdBytes - 1), Lane::kFast);
  EXPECT_EQ(lane_for_bytes(kBulkLaneThresholdBytes), Lane::kBulk);
}

}  // namespace
}  // namespace satproof::service
