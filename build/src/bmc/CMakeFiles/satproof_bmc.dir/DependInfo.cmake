
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmc/counter.cpp" "src/bmc/CMakeFiles/satproof_bmc.dir/counter.cpp.o" "gcc" "src/bmc/CMakeFiles/satproof_bmc.dir/counter.cpp.o.d"
  "/root/repo/src/bmc/rotator.cpp" "src/bmc/CMakeFiles/satproof_bmc.dir/rotator.cpp.o" "gcc" "src/bmc/CMakeFiles/satproof_bmc.dir/rotator.cpp.o.d"
  "/root/repo/src/bmc/sequential.cpp" "src/bmc/CMakeFiles/satproof_bmc.dir/sequential.cpp.o" "gcc" "src/bmc/CMakeFiles/satproof_bmc.dir/sequential.cpp.o.d"
  "/root/repo/src/bmc/unroll.cpp" "src/bmc/CMakeFiles/satproof_bmc.dir/unroll.cpp.o" "gcc" "src/bmc/CMakeFiles/satproof_bmc.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/satproof_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
