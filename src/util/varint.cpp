#include "src/util/varint.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace satproof::util {

namespace {

// A uint64 needs at most ceil(64/7) = 10 groups; the 10th group carries
// only bit 63, so its byte must be 0x00 or 0x01 — and 0x00 would be
// redundant zero-padding, rejected like every other non-canonical
// terminator.

[[noreturn]] void throw_truncated() {
  throw std::runtime_error("varint: truncated encoding at end of stream");
}

[[noreturn]] void throw_overlong() {
  throw std::runtime_error("varint: over-long encoding");
}

[[noreturn]] void throw_overflow() {
  throw std::runtime_error("varint: value exceeds 64 bits");
}

/// Validates the terminal byte of an encoding: at shift 63 only bit 0 may
/// be set (anything else overflows uint64), and at any shift past the
/// first a zero terminator means the previous byte's continuation bit was
/// pointless padding — the same value has a shorter encoding, so reject.
void check_terminal(std::uint8_t byte, int shift) {
  if (shift == 63 && (byte >> 1) != 0) throw_overflow();
  if (shift > 0 && byte == 0) throw_overlong();
}

}  // namespace

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void write_varint(std::ostream& os, std::uint64_t value) {
  while (value >= 0x80) {
    os.put(static_cast<char>(static_cast<std::uint8_t>(value) | 0x80));
    value >>= 7;
  }
  os.put(static_cast<char>(value));
}

std::optional<std::uint64_t> read_varint(std::istream& is) {
  std::uint64_t value = 0;
  int shift = 0;
  bool first = true;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      if (first) return std::nullopt;
      throw_truncated();
    }
    first = false;
    const auto byte = static_cast<std::uint8_t>(c);
    if ((byte & 0x80) == 0) {
      check_terminal(byte, shift);
      return value | static_cast<std::uint64_t>(byte) << shift;
    }
    if (shift == 63) throw_overlong();  // continuation past the 10th byte
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    shift += 7;
  }
}

std::uint64_t decode_varint(const std::vector<std::uint8_t>& data,
                            std::size_t& pos) {
  const std::uint8_t* p = data.data() + pos;
  const std::uint64_t value = decode_varint(p, data.data() + data.size());
  pos = static_cast<std::size_t>(p - data.data());
  return value;
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace satproof::util
