#include "src/checker/common.hpp"

#include <algorithm>
#include <limits>

#include "src/obs/trace.hpp"

namespace satproof::checker {

namespace {

std::string lit_str(Lit lit) { return to_string(lit); }

}  // namespace

void DerivationIndex::add(ClauseId id, std::span<const ClauseId> sources) {
  if (id < num_original_) {
    throw CheckFailure("derivation " + std::to_string(id) +
                       " reuses an original clause ID");
  }
  if (sources.size() < 2) {
    throw CheckFailure("derivation " + std::to_string(id) +
                       " has fewer than two resolve sources");
  }
  for (const ClauseId s : sources) {
    if (s >= id) {
      throw CheckFailure(
          "derivation " + std::to_string(id) + " references source " +
          std::to_string(s) +
          " that does not precede it; derivations must be acyclic");
    }
  }
  const ClauseId ord = id - num_original_;
  if (ord >= entries_.size()) entries_.resize(ord + 1);
  Entry& e = entries_[ord];
  if (e.len != 0) {
    throw CheckFailure("clause " + std::to_string(id) + " is derived twice");
  }
  if (pool_.size() + sources.size() >
      std::numeric_limits<std::uint32_t>::max()) {
    throw CheckFailure("trace too large: derivation source pool exceeds 2^32");
  }
  // Sources precede `id` (checked above), so this bounds them too and the
  // narrowing below is lossless.
  if (id > std::numeric_limits<std::uint32_t>::max()) {
    throw CheckFailure("trace too large: clause IDs exceed 2^32");
  }
  e.begin = static_cast<std::uint32_t>(pool_.size());
  e.len = static_cast<std::uint32_t>(sources.size());
  for (const ClauseId s : sources) {
    pool_.push_back(static_cast<std::uint32_t>(s));
  }
  max_id_ = std::max(max_id_, id);
  ++num_records_;
}

void DerivationIndex::throw_never_derived(ClauseId id) {
  throw CheckFailure("clause " + std::to_string(id) +
                     " is referenced but never derived in the trace");
}

std::optional<ClauseId> load_full_trace(trace::TraceReader& reader,
                                        DerivationIndex& derivations,
                                        Level0Table& level0,
                                        util::MemTracker& mem,
                                        CheckStats& stats) {
  // Parsing and derivation-index construction share this streaming loop,
  // so one span covers both; backends add their own index/replay spans.
  obs::Span span("parse");
  reader.rewind();
  std::optional<ClauseId> final_id;
  trace::Record rec;
  bool ended = false;
  while (!ended && reader.next(rec)) {
    switch (rec.kind) {
      case trace::RecordKind::Derivation:
        derivations.add(rec.id, rec.sources);
        mem.add(derivation_record_bytes(rec.sources.size()));
        ++stats.total_derivations;
        break;
      case trace::RecordKind::FinalConflict:
        if (final_id.has_value()) {
          throw CheckFailure("trace has more than one final conflict record");
        }
        final_id = rec.id;
        break;
      case trace::RecordKind::Level0:
        level0.add(rec.var, rec.value, rec.antecedent);
        mem.add(16);
        break;
      case trace::RecordKind::Assumption:
        level0.add_assumption(rec.var, rec.value);
        mem.add(16);
        break;
      case trace::RecordKind::End:
        ended = true;
        break;
    }
  }
  if (!ended) {
    throw CheckFailure("trace truncated: missing end record");
  }
  return final_id;
}

Level0Table::Level0Table(Var num_vars) : entries_(num_vars) {}

void Level0Table::add(Var var, bool value, ClauseId antecedent) {
  if (var >= entries_.size()) {
    throw CheckFailure("level-0 record assigns variable x" +
                       std::to_string(var) + " beyond the declared range");
  }
  Entry& e = entries_[var];
  if (e.assigned) {
    throw CheckFailure("level-0 record assigns variable x" +
                       std::to_string(var) + " twice");
  }
  e.assigned = true;
  e.value = value;
  e.antecedent = antecedent;
  e.order = static_cast<std::uint32_t>(count_++);
}

void Level0Table::add_assumption(Var var, bool value) {
  if (var >= entries_.size()) {
    throw CheckFailure("assumption record names variable x" +
                       std::to_string(var) + " beyond the declared range");
  }
  Entry& e = entries_[var];
  if (e.assumed) {
    throw CheckFailure("variable x" + std::to_string(var) + " assumed twice");
  }
  e.assumed = true;
  e.assumed_value = value;
  ++num_assumed_;
  if (!e.assigned) {
    // An assumption decision: it occupies a trail slot of its own.
    e.assigned = true;
    e.value = value;
    e.antecedent = kInvalidClauseId;
    e.order = static_cast<std::uint32_t>(count_++);
  }
}

LBool Level0Table::lit_value(Lit lit) const {
  const Var v = lit.var();
  if (v >= entries_.size() || !entries_[v].assigned) return LBool::Undef;
  const bool val = lit.negated() ? !entries_[v].value : entries_[v].value;
  return val ? LBool::True : LBool::False;
}

void check_antecedent(ClauseView clause, Var var, const Level0Table& table,
                      const std::string& what) {
  // The antecedent must be unit under the prefix of the level-0 trail that
  // precedes `var`'s assignment, with `var`'s literal as the unit literal.
  bool found_unit = false;
  for (const Lit lit : clause) {
    if (lit.var() == var) {
      if (table.lit_value(lit) != LBool::True) {
        throw CheckFailure(what + " contains " + lit_str(lit) +
                           ", the opposite phase of the implied literal of x" +
                           std::to_string(var));
      }
      found_unit = true;
      continue;
    }
    const LBool v = table.lit_value(lit);
    if (v == LBool::Undef) {
      throw CheckFailure(what + " is not a valid antecedent of x" +
                         std::to_string(var) + ": literal " + lit_str(lit) +
                         " is unassigned at level 0");
    }
    if (v == LBool::True) {
      throw CheckFailure(what + " is not a valid antecedent of x" +
                         std::to_string(var) + ": literal " + lit_str(lit) +
                         " is true, so the clause never became unit");
    }
    if (table.order(lit.var()) >= table.order(var)) {
      throw CheckFailure(what + " is not a valid antecedent of x" +
                         std::to_string(var) + ": literal " + lit_str(lit) +
                         " was assigned after x" + std::to_string(var));
    }
  }
  if (!found_unit) {
    throw CheckFailure(what + " does not contain variable x" +
                       std::to_string(var) +
                       ", so it cannot be its antecedent");
  }
}

SortedClause derive_final_clause(ClauseId final_id, const ClauseFetcher& fetch,
                                 const Level0Table& table, CheckStats& stats,
                                 std::vector<ClauseId>* used_antecedents) {
  if (used_antecedents != nullptr) used_antecedents->clear();
  ChainResolver chain;
  chain.reserve_vars(table.num_vars());
  {
    const ClauseView final_clause = fetch(final_id);
    for (const Lit lit : final_clause) {
      const LBool v = table.lit_value(lit);
      if (v == LBool::Undef) {
        throw CheckFailure("final clause " + std::to_string(final_id) +
                           ": literal " + lit_str(lit) +
                           " has no final-trail assignment");
      }
      // A true literal is only legitimate over an assumed variable (the
      // failed assumption was implied to its opposite value).
      if (v == LBool::True && !table.is_assumed(lit.var())) {
        throw CheckFailure(
            "final clause " + std::to_string(final_id) +
            " is not conflicting: literal " + lit_str(lit) +
            " is true and its variable is not an assumption");
      }
    }
    chain.start(final_clause);
  }

  std::size_t steps = 0;
  const std::size_t max_steps = table.size() + 1;
  while (true) {
    // Reverse chronological choice (Fig. 2's choose_literal) among the
    // resolvable literals: false, and implied (assumption decisions have no
    // antecedent and stay in the clause).
    Lit chosen = Lit::invalid();
    for (const Lit lit : chain.lits()) {
      const Var v = lit.var();
      if (!table.assigned(v)) {
        throw CheckFailure("literal " + lit_str(lit) +
                           " in the derivation has no final-trail assignment");
      }
      if (table.lit_value(lit) != LBool::False || !table.implied(v)) continue;
      if (chosen == Lit::invalid() ||
          table.order(v) > table.order(chosen.var())) {
        chosen = lit;
      }
    }
    if (chosen == Lit::invalid()) break;
    if (++steps > max_steps) {
      throw CheckFailure(
          "final-clause derivation did not terminate within the trail "
          "length; the antecedent chain is circular");
    }
    const Var v = chosen.var();
    const ClauseId ante_id = table.antecedent(v);
    const ClauseView ante = fetch(ante_id);
    check_antecedent(ante, v, table, "antecedent clause " +
                                         std::to_string(ante_id) + " of x" +
                                         std::to_string(v));
    if (used_antecedents != nullptr) used_antecedents->push_back(ante_id);
    const ResolveResult r = chain.step(ante);
    ++stats.resolutions;
    if (r.status != ResolveStatus::Ok) {
      throw CheckFailure(
          "resolution of the running clause with antecedent " +
          std::to_string(ante_id) + " failed: " +
          (r.status == ResolveStatus::NoClash ? "no clashing variable"
                                              : "more than one clashing variable"));
    }
  }

  SortedClause remaining = chain.take();
  std::sort(remaining.begin(), remaining.end());
  if (!table.has_assumptions() && !remaining.empty()) {
    throw CheckFailure(
        "final-clause derivation stopped at a non-empty clause with no "
        "assumptions recorded; literal " + lit_str(remaining.front()) +
        " cannot be resolved away");
  }
  return remaining;
}

void validate_assumption_clause(const SortedClause& clause,
                                const Level0Table& table) {
  for (const Lit lit : clause) {
    const Var v = lit.var();
    if (!table.is_assumed(v)) {
      throw CheckFailure("derived final clause contains " + lit_str(lit) +
                         ", whose variable is not a recorded assumption");
    }
    // The literal must be the *negation* of the assumed literal.
    if (lit != Lit(v, table.assumed_value(v))) {
      throw CheckFailure("derived final clause contains " + lit_str(lit) +
                         ", which has the same polarity as the assumption "
                         "on x" + std::to_string(v) +
                         " and therefore refutes nothing");
    }
  }
}

void check_header(const Formula& f, Var trace_vars, ClauseId trace_original) {
  if (trace_original != f.num_clauses()) {
    throw CheckFailure(
        "trace header declares " + std::to_string(trace_original) +
        " original clauses but the formula has " +
        std::to_string(f.num_clauses()) +
        "; the solver and checker disagree on clause IDs");
  }
  if (trace_vars < f.num_vars()) {
    throw CheckFailure("trace header declares fewer variables (" +
                       std::to_string(trace_vars) + ") than the formula (" +
                       std::to_string(f.num_vars()) + ")");
  }
}

}  // namespace satproof::checker
