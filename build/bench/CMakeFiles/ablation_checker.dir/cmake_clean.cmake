file(REMOVE_RECURSE
  "CMakeFiles/ablation_checker.dir/ablation_checker.cpp.o"
  "CMakeFiles/ablation_checker.dir/ablation_checker.cpp.o.d"
  "ablation_checker"
  "ablation_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
