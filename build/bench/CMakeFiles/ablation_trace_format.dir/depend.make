# Empty dependencies file for ablation_trace_format.
# This may be replaced when dependencies are built.
