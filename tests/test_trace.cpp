// Tests for the trace formats: in-memory, ASCII, binary; round trips,
// error handling, rewind, and cross-format agreement.

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/events.hpp"
#include "src/trace/memory.hpp"

namespace satproof::trace {
namespace {

/// Drives a writer through a small canonical trace.
void write_sample(TraceWriter& w) {
  w.begin(6, 10);
  const ClauseId d1[] = {3, 7, 2};
  w.derivation(10, d1);
  const ClauseId d2[] = {10, 0};
  w.derivation(11, d2);
  w.final_conflict(11);
  w.level0(4, true, 10);
  w.level0(2, false, 11);
  w.end();
}

/// Reads all records from a reader.
std::vector<Record> read_all(TraceReader& r) {
  std::vector<Record> out;
  Record rec;
  while (r.next(rec)) {
    out.push_back(rec);
    if (rec.kind == RecordKind::End) break;
  }
  return out;
}

void expect_sample(TraceReader& r) {
  EXPECT_EQ(r.num_vars(), 6u);
  EXPECT_EQ(r.num_original(), 10u);
  const auto recs = read_all(r);
  ASSERT_EQ(recs.size(), 6u);

  EXPECT_EQ(recs[0].kind, RecordKind::Derivation);
  EXPECT_EQ(recs[0].id, 10u);
  EXPECT_EQ(recs[0].sources, (std::vector<ClauseId>{3, 7, 2}));

  EXPECT_EQ(recs[1].kind, RecordKind::Derivation);
  EXPECT_EQ(recs[1].id, 11u);
  EXPECT_EQ(recs[1].sources, (std::vector<ClauseId>{10, 0}));

  EXPECT_EQ(recs[2].kind, RecordKind::FinalConflict);
  EXPECT_EQ(recs[2].id, 11u);

  EXPECT_EQ(recs[3].kind, RecordKind::Level0);
  EXPECT_EQ(recs[3].var, 4u);
  EXPECT_TRUE(recs[3].value);
  EXPECT_EQ(recs[3].antecedent, 10u);

  EXPECT_EQ(recs[4].kind, RecordKind::Level0);
  EXPECT_EQ(recs[4].var, 2u);
  EXPECT_FALSE(recs[4].value);
  EXPECT_EQ(recs[4].antecedent, 11u);

  EXPECT_EQ(recs[5].kind, RecordKind::End);
}

TEST(MemoryTrace, RoundTrip) {
  MemoryTraceWriter w;
  write_sample(w);
  const MemoryTrace t = w.take();
  EXPECT_TRUE(t.finished);
  EXPECT_TRUE(t.has_final);
  MemoryTraceReader r(t);
  expect_sample(r);
}

TEST(MemoryTrace, RewindRestarts) {
  MemoryTraceWriter w;
  write_sample(w);
  const MemoryTrace t = w.take();
  MemoryTraceReader r(t);
  (void)read_all(r);
  r.rewind();
  expect_sample(r);
}

TEST(MemoryTrace, SatRunHasNoFinal) {
  MemoryTraceWriter w;
  w.begin(3, 2);
  w.end();
  const MemoryTrace t = w.take();
  EXPECT_FALSE(t.has_final);
  MemoryTraceReader r(t);
  const auto recs = read_all(r);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, RecordKind::End);
}

TEST(AsciiTrace, RoundTrip) {
  std::stringstream ss;
  AsciiTraceWriter w(ss);
  write_sample(w);
  AsciiTraceReader r(ss);
  expect_sample(r);
}

TEST(AsciiTrace, RewindRestarts) {
  std::stringstream ss;
  AsciiTraceWriter w(ss);
  write_sample(w);
  AsciiTraceReader r(ss);
  (void)read_all(r);
  r.rewind();
  expect_sample(r);
}

TEST(AsciiTrace, IsHumanReadable) {
  std::stringstream ss;
  AsciiTraceWriter w(ss);
  write_sample(w);
  const std::string text = ss.str();
  EXPECT_NE(text.find("p trace 6 10"), std::string::npos);
  EXPECT_NE(text.find("f 11"), std::string::npos);
  EXPECT_NE(text.find("e"), std::string::npos);
}

TEST(AsciiTrace, MissingHeaderThrows) {
  std::stringstream ss("d 10 1 2 0\n");
  EXPECT_THROW(AsciiTraceReader r(ss), std::runtime_error);
}

TEST(AsciiTrace, TruncatedTraceThrows) {
  std::stringstream ss("p trace 3 4\nd 4 1 2 0\n");  // no 'e'
  AsciiTraceReader r(ss);
  Record rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_THROW(r.next(rec), std::runtime_error);
}

TEST(AsciiTrace, UnterminatedDerivationThrows) {
  std::stringstream ss("p trace 3 4\nd 4 1 2\ne\n");
  AsciiTraceReader r(ss);
  Record rec;
  EXPECT_THROW(r.next(rec), std::runtime_error);
}

TEST(AsciiTrace, UnknownTagThrows) {
  std::stringstream ss("p trace 3 4\nq 1\ne\n");
  AsciiTraceReader r(ss);
  Record rec;
  EXPECT_THROW(r.next(rec), std::runtime_error);
}

TEST(AsciiTrace, CommentsSkipped) {
  std::stringstream ss("c hello\np trace 3 4\nc mid\ne\n");
  AsciiTraceReader r(ss);
  Record rec;
  ASSERT_TRUE(r.next(rec));
  EXPECT_EQ(rec.kind, RecordKind::End);
}

TEST(BinaryTrace, RoundTrip) {
  std::stringstream ss;
  BinaryTraceWriter w(ss);
  write_sample(w);
  AsciiTraceReader* unused = nullptr;
  (void)unused;
  BinaryTraceReader r(ss);
  expect_sample(r);
}

TEST(BinaryTrace, RewindRestarts) {
  std::stringstream ss;
  BinaryTraceWriter w(ss);
  write_sample(w);
  BinaryTraceReader r(ss);
  (void)read_all(r);
  r.rewind();
  expect_sample(r);
}

TEST(BinaryTrace, BadMagicThrows) {
  std::stringstream ss("not a trace at all");
  EXPECT_THROW(BinaryTraceReader r(ss), std::runtime_error);
}

TEST(BinaryTrace, TruncationThrows) {
  std::stringstream full;
  BinaryTraceWriter w(full);
  write_sample(w);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 3));
  BinaryTraceReader r(cut);
  Record rec;
  bool threw = false;
  try {
    while (r.next(rec)) {
      if (rec.kind == RecordKind::End) break;
    }
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(BinaryTrace, SmallerThanAscii) {
  std::stringstream ascii, binary;
  AsciiTraceWriter wa(ascii);
  BinaryTraceWriter wb(binary);
  // A somewhat larger trace so the size ratio is meaningful.
  wa.begin(100, 1000);
  wb.begin(100, 1000);
  std::vector<ClauseId> sources;
  for (ClauseId id = 1000; id < 1200; ++id) {
    sources.clear();
    for (ClauseId s = id - 6; s < id; ++s) sources.push_back(s);
    wa.derivation(id, sources);
    wb.derivation(id, sources);
  }
  wa.final_conflict(1199);
  wb.final_conflict(1199);
  for (Var v = 0; v < 100; ++v) {
    wa.level0(v, v % 2 == 0, 1000 + v);
    wb.level0(v, v % 2 == 0, 1000 + v);
  }
  wa.end();
  wb.end();
  // The paper predicts 2-3x from a binary encoding; delta-coded varints do
  // at least that.
  EXPECT_LT(binary.str().size() * 2, ascii.str().size());
}

TEST(CrossFormat, AllFormatsAgree) {
  MemoryTraceWriter wm;
  std::stringstream sa, sb;
  AsciiTraceWriter wa(sa);
  BinaryTraceWriter wb(sb);
  for (TraceWriter* w : std::initializer_list<TraceWriter*>{&wm, &wa, &wb}) {
    write_sample(*w);
  }
  const MemoryTrace t = wm.take();
  MemoryTraceReader rm(t);
  AsciiTraceReader ra(sa);
  BinaryTraceReader rb(sb);
  const auto recs_m = read_all(rm);
  const auto recs_a = read_all(ra);
  const auto recs_b = read_all(rb);
  ASSERT_EQ(recs_m.size(), recs_a.size());
  ASSERT_EQ(recs_m.size(), recs_b.size());
  for (std::size_t i = 0; i < recs_m.size(); ++i) {
    for (const auto* other : {&recs_a[i], &recs_b[i]}) {
      EXPECT_EQ(recs_m[i].kind, other->kind);
      EXPECT_EQ(recs_m[i].id, other->id);
      EXPECT_EQ(recs_m[i].sources, other->sources);
      if (recs_m[i].kind == RecordKind::Level0) {
        EXPECT_EQ(recs_m[i].var, other->var);
        EXPECT_EQ(recs_m[i].value, other->value);
        EXPECT_EQ(recs_m[i].antecedent, other->antecedent);
      }
    }
  }
}

TEST(AssumptionRecords, RoundTripAllFormats) {
  const auto write = [](TraceWriter& w) {
    w.begin(4, 2);
    const ClauseId src[] = {0, 1};
    w.derivation(2, src);
    w.final_conflict(2);
    w.level0(1, false, 2);
    w.assumption(0, true);
    w.assumption(3, false);
    w.end();
  };
  MemoryTraceWriter wm;
  std::stringstream sa, sb;
  AsciiTraceWriter wa(sa);
  BinaryTraceWriter wb(sb);
  for (TraceWriter* w : std::initializer_list<TraceWriter*>{&wm, &wa, &wb}) {
    write(*w);
  }
  const MemoryTrace t = wm.take();
  MemoryTraceReader rm(t);
  AsciiTraceReader ra(sa);
  BinaryTraceReader rb(sb);
  for (TraceReader* r :
       std::initializer_list<TraceReader*>{&rm, &ra, &rb}) {
    const auto recs = read_all(*r);
    ASSERT_EQ(recs.size(), 6u);
    EXPECT_EQ(recs[2].kind, RecordKind::Level0);
    EXPECT_EQ(recs[3].kind, RecordKind::Assumption);
    EXPECT_EQ(recs[3].var, 0u);
    EXPECT_TRUE(recs[3].value);
    EXPECT_EQ(recs[4].kind, RecordKind::Assumption);
    EXPECT_EQ(recs[4].var, 3u);
    EXPECT_FALSE(recs[4].value);
  }
  // The ASCII form spells assumptions as 'u' lines.
  EXPECT_NE(sa.str().find("u 1"), std::string::npos);
  EXPECT_NE(sa.str().find("u -4"), std::string::npos);
}

TEST(DrupWriter, FormatsLinesCorrectly) {
  std::ostringstream out;
  DrupWriter w(out);
  const Lit add[] = {Lit::pos(0), Lit::neg(2)};
  w.add_clause(add);
  const Lit del[] = {Lit::neg(0)};
  w.delete_clause(del);
  w.empty_clause();
  EXPECT_EQ(out.str(), "1 -3 0\nd -1 0\n0\n");
}

TEST(NullWriter, AcceptsEverything) {
  NullTraceWriter w;
  write_sample(w);  // must not crash or allocate observably
  SUCCEED();
}

}  // namespace
}  // namespace satproof::trace
