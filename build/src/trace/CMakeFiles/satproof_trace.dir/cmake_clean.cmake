file(REMOVE_RECURSE
  "CMakeFiles/satproof_trace.dir/ascii.cpp.o"
  "CMakeFiles/satproof_trace.dir/ascii.cpp.o.d"
  "CMakeFiles/satproof_trace.dir/binary.cpp.o"
  "CMakeFiles/satproof_trace.dir/binary.cpp.o.d"
  "CMakeFiles/satproof_trace.dir/drup.cpp.o"
  "CMakeFiles/satproof_trace.dir/drup.cpp.o.d"
  "CMakeFiles/satproof_trace.dir/events.cpp.o"
  "CMakeFiles/satproof_trace.dir/events.cpp.o.d"
  "CMakeFiles/satproof_trace.dir/fault_injector.cpp.o"
  "CMakeFiles/satproof_trace.dir/fault_injector.cpp.o.d"
  "CMakeFiles/satproof_trace.dir/memory.cpp.o"
  "CMakeFiles/satproof_trace.dir/memory.cpp.o.d"
  "libsatproof_trace.a"
  "libsatproof_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
