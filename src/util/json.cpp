#include "src/util/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace satproof::util {

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly after "key": — no comma
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  assert(!need_comma_.empty());
  need_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  assert(!need_comma_.empty());
  need_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += escape(name);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += escape(s);
}

void JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) {
    out_.append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  }
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

std::string JsonWriter::take() {
  assert(need_comma_.empty() && !after_key_);
  std::string result = std::move(out_);
  out_.clear();
  need_comma_.clear();
  after_key_ = false;
  return result;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace satproof::util
