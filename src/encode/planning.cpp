#include "src/encode/planning.hpp"

#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/util/rng.hpp"

namespace satproof::encode {

namespace {

/// Variable layout for the blocks-world encoding. Invalid combinations
/// (b on itself, moves with from == to, ...) own variable slots that no
/// clause ever mentions; keeping the layout dense is simpler and matches
/// the "declared but unused variables" phenomenon the paper notes about
/// real planning CNFs. At-most-one ladder auxiliaries are allocated after
/// the dense block.
class Layout {
 public:
  Layout(unsigned blocks, unsigned steps)
      : blocks_(blocks), places_(blocks + 1), steps_(steps) {}

  /// on(b, x, t): block b rests on place x at time t.
  [[nodiscard]] Var on(unsigned b, unsigned x, unsigned t) const {
    return static_cast<Var>((t * blocks_ + b) * places_ + x);
  }

  /// move(b, x, y, t): at step t, block b moves from place x to place y.
  [[nodiscard]] Var move(unsigned b, unsigned x, unsigned y, unsigned t) const {
    const unsigned on_vars = (steps_ + 1) * blocks_ * places_;
    return static_cast<Var>(
        on_vars + ((t * blocks_ + b) * places_ + x) * places_ + y);
  }

  [[nodiscard]] unsigned table() const { return places_ - 1; }
  [[nodiscard]] unsigned num_vars() const {
    return (steps_ + 1) * blocks_ * places_ +
           steps_ * blocks_ * places_ * places_;
  }

  /// True when move(b, x, y, .) is a well-formed action.
  [[nodiscard]] bool valid_move(unsigned b, unsigned x, unsigned y) const {
    return x != y && x != b && y != b;
  }

 private:
  unsigned blocks_;
  unsigned places_;
  unsigned steps_;
};

/// Ladder (sequential) at-most-one over `vars`: O(n) clauses with n-1
/// auxiliary variables, the encoding real SAT-plan generators use once the
/// pairwise form gets quadratic. `next_aux` supplies fresh variables.
void add_amo_ladder(Formula& f, const std::vector<Var>& vars, Var& next_aux) {
  if (vars.size() < 2) return;
  const std::size_t n = vars.size();
  const Var first_aux = next_aux;
  next_aux += static_cast<Var>(n - 1);
  const auto s = [first_aux](std::size_t i) {
    return static_cast<Var>(first_aux + i);
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // m_i -> s_i
    f.add_clause({Lit::neg(vars[i]), Lit::pos(s(i))});
    // s_{i-1} -> s_i
    if (i > 0) f.add_clause({Lit::neg(s(i - 1)), Lit::pos(s(i))});
  }
  for (std::size_t i = 1; i < n; ++i) {
    // s_{i-1} -> not m_i
    f.add_clause({Lit::neg(s(i - 1)), Lit::neg(vars[i])});
  }
}

void check_config(const BlocksConfig& cfg, unsigned B, const char* what) {
  if (cfg.size() != B) {
    throw std::invalid_argument(std::string("blocks_world: ") + what +
                                " has wrong size");
  }
  std::vector<unsigned> on_count(B, 0);
  for (unsigned b = 0; b < B; ++b) {
    if (cfg[b] > B || cfg[b] == b) {
      throw std::invalid_argument(std::string("blocks_world: ") + what +
                                  " has an invalid support");
    }
    if (cfg[b] < B) ++on_count[cfg[b]];
  }
  for (unsigned x = 0; x < B; ++x) {
    if (on_count[x] > 1) {
      throw std::invalid_argument(std::string("blocks_world: ") + what +
                                  " stacks two blocks on one block");
    }
  }
  // Acyclicity: following supports must reach the table.
  for (unsigned b = 0; b < B; ++b) {
    unsigned cur = b, hops = 0;
    while (cur != B) {
      cur = cfg[cur];
      if (++hops > B) {
        throw std::invalid_argument(std::string("blocks_world: ") + what +
                                    " contains a cycle");
      }
    }
  }
}

}  // namespace

Formula blocks_world(const BlocksConfig& init, const BlocksConfig& goal,
                     unsigned steps) {
  const unsigned B = static_cast<unsigned>(init.size());
  if (B < 2) throw std::invalid_argument("blocks_world: need >= 2 blocks");
  check_config(init, B, "init");
  check_config(goal, B, "goal");

  const Layout L(B, steps);
  const unsigned table = L.table();
  Formula f(L.num_vars());
  Var next_aux = static_cast<Var>(L.num_vars());

  std::vector<Lit> clause;

  // ---- state axioms, every time point ------------------------------------
  for (unsigned t = 0; t <= steps; ++t) {
    for (unsigned b = 0; b < B; ++b) {
      // Each block rests on at least one place (never on itself)...
      clause.clear();
      for (unsigned x = 0; x <= table; ++x) {
        if (x != b) clause.push_back(Lit::pos(L.on(b, x, t)));
      }
      f.add_clause(clause);
      // ...and at most one.
      for (unsigned x = 0; x <= table; ++x) {
        for (unsigned y = x + 1; y <= table; ++y) {
          if (x == b || y == b) continue;
          f.add_clause({Lit::neg(L.on(b, x, t)), Lit::neg(L.on(b, y, t))});
        }
      }
    }
    // At most one block directly on any block (the table is unbounded).
    for (unsigned x = 0; x < B; ++x) {
      for (unsigned b1 = 0; b1 < B; ++b1) {
        for (unsigned b2 = b1 + 1; b2 < B; ++b2) {
          if (b1 == x || b2 == x) continue;
          f.add_clause({Lit::neg(L.on(b1, x, t)), Lit::neg(L.on(b2, x, t))});
        }
      }
    }
  }

  // ---- action axioms, every step ------------------------------------------
  for (unsigned t = 0; t < steps; ++t) {
    for (unsigned b = 0; b < B; ++b) {
      for (unsigned x = 0; x <= table; ++x) {
        for (unsigned y = 0; y <= table; ++y) {
          if (!L.valid_move(b, x, y)) continue;
          const Lit not_m = Lit::neg(L.move(b, x, y, t));
          // Precondition: b rests on x.
          f.add_clause({not_m, Lit::pos(L.on(b, x, t))});
          // Precondition: b is clear.
          for (unsigned o = 0; o < B; ++o) {
            if (o == b) continue;
            f.add_clause({not_m, Lit::neg(L.on(o, b, t))});
          }
          // Precondition: the destination block is clear.
          if (y < B) {
            for (unsigned o = 0; o < B; ++o) {
              if (o == y) continue;
              f.add_clause({not_m, Lit::neg(L.on(o, y, t))});
            }
          }
          // Effects.
          f.add_clause({not_m, Lit::pos(L.on(b, y, t + 1))});
          f.add_clause({not_m, Lit::neg(L.on(b, x, t + 1))});
        }
      }
    }

    // At most one action per step (ladder encoding).
    std::vector<Var> moves;
    for (unsigned b = 0; b < B; ++b) {
      for (unsigned x = 0; x <= table; ++x) {
        for (unsigned y = 0; y <= table; ++y) {
          if (L.valid_move(b, x, y)) moves.push_back(L.move(b, x, y, t));
        }
      }
    }
    add_amo_ladder(f, moves, next_aux);

    // Explanatory frame axioms: position changes need a responsible move.
    for (unsigned b = 0; b < B; ++b) {
      for (unsigned x = 0; x <= table; ++x) {
        if (x == b) continue;
        // on(b,x,t) and not on(b,x,t+1) -> some move of b away from x.
        clause.clear();
        clause.push_back(Lit::neg(L.on(b, x, t)));
        clause.push_back(Lit::pos(L.on(b, x, t + 1)));
        for (unsigned y = 0; y <= table; ++y) {
          if (L.valid_move(b, x, y)) clause.push_back(Lit::pos(L.move(b, x, y, t)));
        }
        f.add_clause(clause);
        // not on(b,x,t) and on(b,x,t+1) -> some move of b onto x.
        clause.clear();
        clause.push_back(Lit::pos(L.on(b, x, t)));
        clause.push_back(Lit::neg(L.on(b, x, t + 1)));
        for (unsigned w = 0; w <= table; ++w) {
          if (L.valid_move(b, w, x)) clause.push_back(Lit::pos(L.move(b, w, x, t)));
        }
        f.add_clause(clause);
      }
    }
  }

  // ---- endpoint states ------------------------------------------------------
  for (unsigned b = 0; b < B; ++b) {
    f.add_clause({Lit::pos(L.on(b, init[b], 0))});
    f.add_clause({Lit::pos(L.on(b, goal[b], steps))});
  }
  return f;
}

Formula blocks_world_reversal(unsigned num_blocks, unsigned steps) {
  const unsigned B = num_blocks;
  BlocksConfig init(B), goal(B);
  for (unsigned b = 0; b < B; ++b) {
    init[b] = b + 1 < B ? b + 1 : B;          // 0 on 1 on ... on B-1 on table
    goal[b] = b > 0 ? b - 1 : B;              // B-1 on ... on 1 on 0 on table
  }
  return blocks_world(init, goal, steps);
}

unsigned blocks_world_optimal(const BlocksConfig& init,
                              const BlocksConfig& goal) {
  const unsigned B = static_cast<unsigned>(init.size());
  check_config(init, B, "init");
  check_config(goal, B, "goal");

  const auto key = [](const BlocksConfig& c) {
    std::string k(c.size(), '\0');
    for (std::size_t i = 0; i < c.size(); ++i) {
      k[i] = static_cast<char>(c[i]);
    }
    return k;
  };

  std::unordered_map<std::string, unsigned> dist;
  std::queue<BlocksConfig> frontier;
  dist.emplace(key(init), 0);
  frontier.push(init);
  const std::string goal_key = key(goal);
  if (key(init) == goal_key) return 0;

  while (!frontier.empty()) {
    const BlocksConfig cur = frontier.front();
    frontier.pop();
    const unsigned d = dist.at(key(cur));
    // Clear blocks: nothing rests on them.
    std::vector<bool> clear(B, true);
    for (unsigned b = 0; b < B; ++b) {
      if (cur[b] < B) clear[cur[b]] = false;
    }
    for (unsigned b = 0; b < B; ++b) {
      if (!clear[b]) continue;
      for (unsigned y = 0; y <= B; ++y) {  // destination: block or table
        if (y == b || y == cur[b]) continue;
        if (y < B && !clear[y]) continue;
        BlocksConfig nxt = cur;
        nxt[b] = y;
        const std::string k = key(nxt);
        if (dist.emplace(k, d + 1).second) {
          if (k == goal_key) return d + 1;
          frontier.push(nxt);
        }
      }
    }
  }
  throw std::logic_error("blocks_world_optimal: goal unreachable");
}

BlocksWorldInstance blocks_world_random(unsigned num_blocks, int steps_delta,
                                        std::uint64_t seed) {
  if (num_blocks < 2) {
    throw std::invalid_argument("blocks_world_random: need >= 2 blocks");
  }
  util::Rng rng(seed);

  const auto random_config = [&]() {
    const unsigned B = num_blocks;
    std::vector<unsigned> order(B);
    for (unsigned b = 0; b < B; ++b) order[b] = b;
    rng.shuffle(order.begin(), order.end());
    BlocksConfig cfg(B, B);
    std::vector<unsigned> tops;  // current tower tops
    for (const unsigned b : order) {
      // Place on the table (opening a new tower) or on a random top.
      if (tops.empty() || rng.next_bool(0.4)) {
        cfg[b] = B;
      } else {
        const std::size_t i = rng.next_below(tops.size());
        cfg[b] = tops[i];
        tops.erase(tops.begin() + static_cast<std::ptrdiff_t>(i));
      }
      tops.push_back(b);
    }
    return cfg;
  };

  BlocksWorldInstance out;
  // Re-draw until the instance is non-trivial (optimal >= 2) and the bound
  // is representable.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    out.init = random_config();
    out.goal = random_config();
    out.optimal_steps = blocks_world_optimal(out.init, out.goal);
    const int bound = static_cast<int>(out.optimal_steps) + steps_delta;
    if (out.optimal_steps >= 2 && bound >= 1) {
      out.steps = static_cast<unsigned>(bound);
      out.formula = blocks_world(out.init, out.goal, out.steps);
      return out;
    }
  }
  throw std::runtime_error("blocks_world_random: no usable instance drawn");
}

}  // namespace satproof::encode
