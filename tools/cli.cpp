#include "tools/cli.hpp"

#include <atomic>
#include <cctype>
#include <csignal>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "src/bmc/counter.hpp"
#include "src/bmc/rotator.hpp"
#include "src/bmc/unroll.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/parallel.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/obs/trace.hpp"
#include "src/cnf/model.hpp"
#include "src/core/unsat_core.hpp"
#include "src/encode/coloring.hpp"
#include "src/encode/fpga_routing.hpp"
#include "src/encode/parity.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/planning.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/proof/export.hpp"
#include "src/proof/interpolant.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/proof/rup.hpp"
#include "src/proof/trim.hpp"
#include "src/service/client.hpp"
#include "src/service/run_check.hpp"
#include "src/service/server.hpp"
#include "src/simplify/pipeline.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/memory.hpp"
#include "src/util/timer.hpp"

namespace satproof::cli {

namespace {

constexpr const char* kHelp = R"(satproof — SAT solving with independently checkable proofs
(Zhang & Malik, "Validating SAT Solvers Using an Independent
 Resolution-Based Checker", DATE 2003)

usage:
  satproof solve <file.cnf> [options]
      --trace FILE     write the resolution trace (ASCII; --binary for binary)
      --binary         binary trace format
      --check MODE     validate an UNSAT answer in-process:
                       df | bf | parallel | both
      --jobs N         worker threads for --check parallel (default: all
                       hardware threads)
      --core FILE      write the unsatisfiable core as DIMACS
      --minimal-core   shrink the core to a set-minimal one first
      --proof-dot FILE write the proof DAG in graphviz format
      --tracecheck FILE write the proof in tracecheck format
      --model          print the satisfying assignment on SAT
      --stats          print solver statistics
      --assume "LITS"  solve under assumptions (DIMACS literals, e.g. "1 -3");
                       on UNSAT the failed subset is reported, and the trace
                       proves the formula refutes it
      --simplify       SatELite-style preprocessing (subsume / strengthen /
                       eliminate); the trace still checks against the input
                       formula. Not combinable with --assume.
      --minimize       conflict-clause minimization
      --luby           Luby restart schedule
      --no-restarts    disable restarts
      --no-deletion    disable learned-clause deletion
      --budget N       give up after N conflicts
      --drup FILE      also emit a DRUP proof (modern literal-based format)
      --trace-out FILE write a Chrome-trace JSON profile of the run (open
                       in chrome://tracing or Perfetto; docs/OBSERVABILITY.md)
      exit code: 10 SAT, 20 UNSAT, 0 unknown, 1 error

  satproof check <file.cnf> <trace-file> [--checker=MODE] [--jobs=N] [--binary]
                 [--mem-limit=N] [--stats] [--trace-out FILE]
      replay a trace against the formula; exit 0 iff the proof is valid.
      --checker picks the backend: df (default) depth-first resolution
      replay; bf breadth-first; hybrid the bounded-memory hybrid; parallel
      wavefront-parallel depth-first across N worker threads (--jobs,
      default: all hardware threads; identical verdict, core and stats to
      df); rup cross-validates every derived clause by reverse unit
      propagation instead of replaying resolutions; window replays the
      trace in budget-sized windows under --mem-limit (verdict, core and
      stats identical to df at a fraction of the memory); auto picks df
      for small traces and the memory-light hybrid for large ones (the
      selection is recorded in the --stats=json "backend" field).
      --mem-limit=N caps checker memory (K/M/G suffixes accepted): it is
      the window backend's budget, steers --checker=auto by the budget
      and trace size, and downgrades df/hybrid requests that would not
      fit (see docs/CHECKERS.md). The
      flags --bf, --hybrid and --rup remain as shorthands. --stats
      appends a line with clause-arena traffic (bytes
      allocated/recycled/peak) and total peak checker memory;
      --stats=json emits the same counters as one JSON object (the same
      serializer the service stats reply uses) plus a final "backend" key
      naming the backend that actually ran. Binary traces are detected
      automatically; --binary stays accepted.
      --trace-out FILE writes a Chrome-trace JSON profile with the
      checker's stage spans (parse/index/replay/...).

  satproof export-lrat <file.cnf> <trace-file> -o cert.lrat
                       [--checker=df|hybrid|auto] [--binary-cert]
      replay the trace (df by default) and stream a hint-annotated LRAT
      certificate of unsatisfiability to the output file; exit 0 iff the
      check passed and the certificate was written. --binary-cert emits
      the compact binary GRIT-style variant instead of text. Re-verify
      with the independent trusted kernel:  satproof-kern <file.cnf>
      <cert.lrat>  (see docs/CERTIFICATES.md).

  satproof serve (--socket PATH | --tcp PORT | both) [options]
      run satproofd, the batch proof-checking daemon (see docs/SERVICE.md)
      --socket PATH    listen on a unix-domain socket (first-class)
      --tcp PORT       also listen on 127.0.0.1:PORT (0 = ephemeral)
      --workers N      checker worker threads, one queue shard each
                       (default: all hardware threads; --jobs is a
                       deprecated alias)
      --queue N        pending-job capacity before BUSY (default 64)
      --timeout-ms N   default per-job wall-clock budget (0 = unlimited)
      --idle-timeout-ms N  drop connections silent this long (default 30000)
      --slow-job-ms N  dump a span-tree profile to stderr for any job
                       slower than N ms (0 = off, the default)
      --mem-limit N    per-worker checker memory cap in bytes (K/M/G
                       suffixes accepted): df/hybrid jobs that would not
                       fit are downgraded, ultimately to the
                       window-shifting backend, so one huge upload cannot
                       OOM a worker (0 = no cap, the default)
      --certify        re-verify every certified job's LRAT output with
                       the trusted kernel before replying (counted in the
                       satproofd_certified_total metrics)
      SIGTERM/SIGINT drain gracefully: running jobs finish, new work is
      refused, then the daemon exits 0.

  satproof submit <file.cnf> <trace-file> (--socket PATH | --tcp PORT)
                  [--backend=MODE] [--jobs N] [--wait] [--timeout-ms N]
                  [--certify [--cert-out FILE]]
      submit one checking job to a running daemon. --backend picks
      df | bf | hybrid | parallel | drup | window (default df; drup
      treats the trace argument as a DRUP proof; window replays under
      the daemon's --mem-limit budget). --wait blocks for the verdict and
      exits 0 iff the proof checked out. --certify (df/hybrid only,
      implies --wait) asks the daemon for an LRAT certificate, delivered
      in a RESULT_CERT frame; --cert-out saves it to a file.

  satproof stats (--socket PATH | --tcp PORT) [--format=json|prometheus]
      print a running daemon's metrics snapshot (JSON by default;
      --format=prometheus emits Prometheus text exposition)

  satproof core <file.cnf> [--minimal] [--iterations N] [-o FILE]
      extract (and optionally minimize) an unsatisfiable core

  satproof drup <file.cnf> <proof.drup>
      forward-check a DRUP proof by reverse unit propagation

  satproof interpolate <file.cnf> --split N [-o FILE.dot]
      solve (UNSAT expected), then derive a Craig interpolant between
      A = clauses [0, N) and B = the rest (McMillan's system); verifies
      both defining properties with the solver and optionally writes the
      interpolant circuit as graphviz

  satproof trim <trace-in> <trace-out> [--binary]
      drop trace derivations unreachable from the final conflict; the
      trimmed trace checks against the same formula

  satproof gen <family> <params...> -o FILE    generate a benchmark CNF
      php H                     pigeonhole, H holes
      tseitin R C SEED          parity contradiction on an RxC torus
      ksat N M K SEED           random k-SAT
      routing NETS TRACKS COLS SEED   congested FPGA channel
      bw BLOCKS DELTA SEED      blocks world, bound = optimal+DELTA
      coloring N COLORS         clique coloring
      rotator WIDTH K           BMC of the one-hot rotator, bound K
      counter WIDTH BAD K       BMC of the gated counter, bound K

  satproof help
)";

/// Thrown for user-facing argument/IO errors.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Scoped --trace-out support: installs an obs::TraceSession for the
/// command's lifetime and writes the Chrome-trace JSON file at scope exit
/// (on every return path, including errors).
class ScopedTraceOut {
 public:
  ScopedTraceOut(const std::optional<std::string>& path, std::ostream& err)
      : err_(err) {
    if (path) {
      path_ = *path;
      session_.emplace();
    }
  }

  ~ScopedTraceOut() {
    if (!session_) return;
    const std::shared_ptr<obs::TraceSink> sink = session_->sink_ptr();
    session_.reset();  // flushes this thread and uninstalls the sink
    if (!sink->write_file(path_)) {
      err_ << "error: cannot write trace file " << path_ << "\n";
    }
  }

  ScopedTraceOut(const ScopedTraceOut&) = delete;
  ScopedTraceOut& operator=(const ScopedTraceOut&) = delete;

 private:
  std::ostream& err_;
  std::string path_;
  std::optional<obs::TraceSession> session_;
};

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string("expected a number for ") + what + ", got '" +
                   s + "'");
  }
}

/// Byte count with an optional K/M/G suffix (powers of 1024), e.g.
/// "256M", "4G", "65536". Case-insensitive; a trailing "B"/"iB" is
/// accepted ("256MiB").
std::uint64_t parse_byte_size(const std::string& s, const char* what) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  std::string suffix = s.substr(pos);
  for (char& c : suffix) c = static_cast<char>(std::tolower(c));
  std::uint64_t shift = 0;
  if (suffix == "k" || suffix == "kb" || suffix == "kib") shift = 10;
  else if (suffix == "m" || suffix == "mb" || suffix == "mib") shift = 20;
  else if (suffix == "g" || suffix == "gb" || suffix == "gib") shift = 30;
  else if (!suffix.empty() || pos == 0) {
    throw CliError(std::string("expected a byte size for ") + what +
                   " (e.g. 268435456, 256M, 4G), got '" + s + "'");
  }
  if (shift != 0 && v > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
    throw CliError(std::string("byte size for ") + what + " overflows: '" +
                   s + "'");
  }
  return static_cast<std::uint64_t>(v) << shift;
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw CliError(std::string("expected a number for ") + what + ", got '" +
                   s + "'");
  }
}

/// Simple option cursor over the argument vector.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : args_(std::move(args)) {}

  [[nodiscard]] bool empty() const { return pos_ >= args_.size(); }

  std::string next(const char* what) {
    if (empty()) throw CliError(std::string("missing ") + what);
    return args_[pos_++];
  }

  /// Consumes `flag` if present anywhere in the remaining args.
  bool take_flag(const std::string& flag) {
    for (std::size_t i = pos_; i < args_.size(); ++i) {
      if (args_[i] == flag) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  /// Consumes `--opt VALUE` or `--opt=VALUE` if present; returns the value.
  std::optional<std::string> take_option(const std::string& opt) {
    for (std::size_t i = pos_; i < args_.size(); ++i) {
      if (args_[i] == opt) {
        if (i + 1 >= args_.size()) {
          throw CliError("option " + opt + " needs a value");
        }
        std::string value = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return value;
      }
      if (args_[i].size() > opt.size() + 1 &&
          args_[i].compare(0, opt.size(), opt) == 0 &&
          args_[i][opt.size()] == '=') {
        std::string value = args_[i].substr(opt.size() + 1);
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return value;
      }
    }
    return std::nullopt;
  }

  void expect_done() {
    if (!empty()) throw CliError("unexpected argument '" + args_[pos_] + "'");
  }

 private:
  std::vector<std::string> args_;
  std::size_t pos_ = 0;
};

void write_formula_file(const std::string& path, const Formula& f,
                        const std::string& comment) {
  dimacs::write_file(path, f, comment);
}

std::unique_ptr<trace::TraceReader> open_trace_reader(std::ifstream& in,
                                                      bool binary) {
  if (binary) return std::make_unique<trace::BinaryTraceReader>(in);
  return std::make_unique<trace::AsciiTraceReader>(in);
}

// ----------------------------------------------------------------- solve

int cmd_solve(Args args, std::ostream& out, std::ostream& err) {
  solver::SolverOptions opts;
  const bool simplify_wanted = args.take_flag("--simplify");
  if (args.take_flag("--minimize")) opts.minimize_learned = true;
  if (args.take_flag("--luby")) {
    opts.restart_schedule = solver::SolverOptions::RestartSchedule::Luby;
  }
  if (args.take_flag("--no-restarts")) opts.enable_restarts = false;
  if (args.take_flag("--no-deletion")) opts.enable_clause_deletion = false;
  if (const auto v = args.take_option("--budget")) {
    opts.conflict_budget = parse_u64(*v, "--budget");
  }
  const bool binary = args.take_flag("--binary");
  const auto trace_path = args.take_option("--trace");
  const auto check_mode = args.take_option("--check");
  unsigned jobs = 0;
  if (const auto v = args.take_option("--jobs")) {
    jobs = static_cast<unsigned>(parse_u64(*v, "--jobs"));
    if (jobs == 0) throw CliError("--jobs must be at least 1");
  }
  const auto core_path = args.take_option("--core");
  const bool minimal_core_wanted = args.take_flag("--minimal-core");
  const auto dot_path = args.take_option("--proof-dot");
  const auto tracecheck_path = args.take_option("--tracecheck");
  const bool want_stats = args.take_flag("--stats");
  const bool want_model = args.take_flag("--model");
  const auto drup_path = args.take_option("--drup");
  const auto trace_out_path = args.take_option("--trace-out");
  std::vector<Lit> assumptions;
  if (const auto a = args.take_option("--assume")) {
    std::istringstream as(*a);
    std::int64_t d = 0;
    while (as >> d) {
      if (d == 0) throw CliError("--assume literals must be non-zero");
      assumptions.push_back(Lit::from_dimacs(d));
    }
    if (!as.eof()) throw CliError("--assume expects DIMACS literals");
    if (assumptions.empty()) throw CliError("--assume got no literals");
  }
  const std::string cnf_path = args.next("CNF file");
  args.expect_done();
  ScopedTraceOut scoped_trace(trace_out_path, err);

  if (check_mode && *check_mode != "df" && *check_mode != "bf" &&
      *check_mode != "parallel" && *check_mode != "both") {
    throw CliError("--check expects df, bf, parallel or both");
  }

  const Formula f = dimacs::parse_file(cnf_path);
  out << "c " << cnf_path << ": " << f.num_vars() << " vars, "
      << f.num_clauses() << " clauses\n";

  // The in-memory trace feeds checking/core/proof work; an optional file
  // trace is written simultaneously.
  trace::MemoryTraceWriter memory_writer;
  std::ofstream trace_out;
  std::unique_ptr<trace::TraceWriter> file_writer;
  struct Tee final : trace::TraceWriter {
    trace::TraceWriter* a = nullptr;
    trace::TraceWriter* b = nullptr;
    void begin(Var v, ClauseId o) override {
      a->begin(v, o);
      if (b != nullptr) b->begin(v, o);
    }
    void derivation(ClauseId id, std::span<const ClauseId> s) override {
      a->derivation(id, s);
      if (b != nullptr) b->derivation(id, s);
    }
    void final_conflict(ClauseId id) override {
      a->final_conflict(id);
      if (b != nullptr) b->final_conflict(id);
    }
    void level0(Var v, bool val, ClauseId ante) override {
      a->level0(v, val, ante);
      if (b != nullptr) b->level0(v, val, ante);
    }
    void assumption(Var v, bool val) override {
      a->assumption(v, val);
      if (b != nullptr) b->assumption(v, val);
    }
    void end() override {
      a->end();
      if (b != nullptr) b->end();
    }
  } tee;
  tee.a = &memory_writer;
  if (trace_path) {
    trace_out.open(*trace_path,
                   binary ? std::ios::out | std::ios::binary : std::ios::out);
    if (!trace_out) throw CliError("cannot open trace file " + *trace_path);
    if (binary) {
      file_writer = std::make_unique<trace::BinaryTraceWriter>(trace_out);
    } else {
      file_writer = std::make_unique<trace::AsciiTraceWriter>(trace_out);
    }
    tee.b = file_writer.get();
  }

  solver::SolveResult res = solver::SolveResult::Unknown;
  Model model;
  std::vector<Lit> failed_assumptions;
  util::Timer timer;
  if (simplify_wanted) {
    if (!assumptions.empty()) {
      throw CliError("--simplify cannot be combined with --assume");
    }
    if (drup_path) {
      throw CliError("--simplify cannot be combined with --drup");
    }
    const simplify::SimplifiedSolveResult pres =
        simplify::solve_simplified(f, opts, {}, &tee);
    res = pres.result;
    model = pres.model;
    const auto& ps = pres.preprocess_stats;
    out << "c preprocessing: " << ps.eliminated_vars
        << " vars eliminated, " << ps.subsumed << " subsumed, "
        << ps.strengthened << " strengthened, " << ps.resolvents_added
        << " resolvents\n";
    if (want_stats) {
      const auto& st = pres.solver_stats;
      out << "c time " << timer.elapsed_seconds() << "s, decisions "
          << st.decisions << ", conflicts " << st.conflicts << ", learned "
          << st.learned_clauses << "\n";
    }
  } else {
    solver::Solver solver(opts);
    solver.add_formula(f);
    solver.set_trace_writer(&tee);
    std::ofstream drup_out;
    std::unique_ptr<trace::DrupWriter> drup_writer;
    if (drup_path) {
      drup_out.open(*drup_path);
      if (!drup_out) throw CliError("cannot open DRUP file " + *drup_path);
      drup_writer = std::make_unique<trace::DrupWriter>(drup_out);
      solver.set_drup_writer(drup_writer.get());
    }
    res = solver.solve(assumptions);
    if (res == solver::SolveResult::Satisfiable) model = solver.model();
    failed_assumptions = solver.failed_assumptions();
    if (want_stats) {
      const auto& st = solver.stats();
      out << "c time " << timer.elapsed_seconds() << "s, decisions "
          << st.decisions << ", conflicts " << st.conflicts
          << ", propagations " << st.propagations << ", learned "
          << st.learned_clauses << ", deleted " << st.deleted_clauses
          << ", restarts " << st.restarts << ", minimized-lits "
          << st.minimized_literals << "\n";
    }
  }

  if (res == solver::SolveResult::Satisfiable) {
    out << "s SATISFIABLE\n";
    if (!satisfies(f, model)) {
      err << "INTERNAL ERROR: model verification failed\n";
      return kExitError;
    }
    out << "c model verified\n";
    if (want_model) {
      out << "v ";
      for (Var v = 0; v < f.num_vars(); ++v) {
        out << (model[v] == LBool::True ? static_cast<std::int64_t>(v) + 1
                                        : -(static_cast<std::int64_t>(v) + 1))
            << ' ';
      }
      out << "0\n";
    }
    return kExitSat;
  }
  if (res == solver::SolveResult::Unknown) {
    out << "s UNKNOWN\n";
    return kExitUnknown;
  }

  out << "s UNSATISFIABLE\n";
  if (!failed_assumptions.empty()) {
    out << "c failed assumptions:";
    for (const Lit l : failed_assumptions) {
      out << ' ' << l.to_dimacs();
    }
    out << "\n";
  } else if (!assumptions.empty()) {
    out << "c unsatisfiable regardless of the assumptions\n";
  }
  const trace::MemoryTrace t = memory_writer.take();

  std::optional<checker::CheckResult> df_result;
  if (check_mode && (*check_mode == "df" || *check_mode == "both")) {
    trace::MemoryTraceReader reader(t);
    util::Timer ct;
    df_result = checker::check_depth_first(f, reader);
    if (!df_result->ok) {
      err << "PROOF CHECK FAILED (depth-first): " << df_result->error << "\n";
      return kExitError;
    }
    out << "c depth-first check ok in " << ct.elapsed_seconds() << "s ("
        << df_result->stats.clauses_built << "/"
        << df_result->stats.total_derivations << " clauses built)\n";
  }
  if (check_mode && (*check_mode == "bf" || *check_mode == "both")) {
    trace::MemoryTraceReader reader(t);
    util::Timer ct;
    const checker::CheckResult bf = checker::check_breadth_first(f, reader);
    if (!bf.ok) {
      err << "PROOF CHECK FAILED (breadth-first): " << bf.error << "\n";
      return kExitError;
    }
    out << "c breadth-first check ok in " << ct.elapsed_seconds() << "s\n";
  }
  if (check_mode && *check_mode == "parallel") {
    trace::MemoryTraceReader reader(t);
    util::Timer ct;
    checker::ParallelOptions popts;
    popts.jobs = jobs;
    const checker::CheckResult pr = checker::check_parallel(f, reader, popts);
    if (!pr.ok) {
      err << "PROOF CHECK FAILED (parallel): " << pr.error << "\n";
      return kExitError;
    }
    out << "c parallel check ok in " << ct.elapsed_seconds() << "s ("
        << pr.stats.clauses_built << "/" << pr.stats.total_derivations
        << " clauses built)\n";
  }

  if (core_path) {
    std::vector<ClauseId> ids;
    if (minimal_core_wanted) {
      const core::MinimalCore mc = core::minimal_core(f, opts);
      if (!mc.ok) throw CliError("core minimization failed: " + mc.error);
      ids = mc.core_ids;
      out << "c minimal core: " << ids.size() << " clauses ("
          << mc.solver_calls << " solver calls)\n";
    } else {
      if (!df_result) {
        trace::MemoryTraceReader reader(t);
        df_result = checker::check_depth_first(f, reader);
        if (!df_result->ok) {
          throw CliError("core extraction failed: " + df_result->error);
        }
      }
      ids = df_result->core;
      out << "c proof core: " << ids.size() << " clauses\n";
    }
    write_formula_file(*core_path, f.subformula(ids),
                       "unsatisfiable core of " + cnf_path);
  }

  if (dot_path || tracecheck_path) {
    trace::MemoryTraceReader reader(t);
    const proof::ProofDag dag = proof::extract_proof(f, reader);
    const proof::ProofStats st = proof::compute_stats(dag);
    out << "c proof DAG: " << st.leaves << " leaves, " << st.derived
        << " derived, depth " << st.depth << ", " << st.resolutions
        << " resolutions\n";
    if (dot_path) {
      std::ofstream dot(*dot_path);
      if (!dot) throw CliError("cannot open " + *dot_path);
      proof::write_dot(dot, dag);
    }
    if (tracecheck_path) {
      std::ofstream tc(*tracecheck_path);
      if (!tc) throw CliError("cannot open " + *tracecheck_path);
      proof::write_tracecheck(tc, dag);
    }
  }
  return kExitUnsat;
}

// ----------------------------------------------------------------- check

/// --checker=auto: depth-first is the fast replay but keeps the whole
/// trace plus every memoized clause resident; past this trace size the
/// hybrid's bounded clause window is the safer default. The threshold is
/// a heuristic on the trace file size (the dominant memory driver), and
/// the choice is recorded in the stats "backend" field.
constexpr std::uint64_t kAutoHybridTraceBytes = 64ull << 20;

service::Backend resolve_auto_backend(const std::string& trace_path) {
  std::ifstream in(trace_path, std::ios::in | std::ios::binary | std::ios::ate);
  const std::streamoff size = in ? static_cast<std::streamoff>(in.tellg())
                                 : std::streamoff{0};
  return (size > 0 &&
          static_cast<std::uint64_t>(size) >= kAutoHybridTraceBytes)
             ? service::Backend::kHybrid
             : service::Backend::kDf;
}

int cmd_check(Args args, std::ostream& out, std::ostream& err) {
  const bool use_bf = args.take_flag("--bf");
  const bool use_hybrid = args.take_flag("--hybrid");
  const bool use_rup = args.take_flag("--rup");
  const bool binary = args.take_flag("--binary");
  bool want_stats = args.take_flag("--stats");
  bool stats_json = false;
  if (const auto v = args.take_option("--stats")) {
    if (*v != "json") throw CliError("--stats only supports --stats=json");
    want_stats = true;
    stats_json = true;
  }
  const auto checker_opt = args.take_option("--checker");
  const auto trace_out_path = args.take_option("--trace-out");
  unsigned jobs = 0;
  if (const auto v = args.take_option("--jobs")) {
    jobs = static_cast<unsigned>(parse_u64(*v, "--jobs"));
    if (jobs == 0) throw CliError("--jobs must be at least 1");
  }
  std::size_t mem_limit = 0;
  if (const auto v = args.take_option("--mem-limit")) {
    mem_limit = static_cast<std::size_t>(parse_byte_size(*v, "--mem-limit"));
    if (mem_limit == 0) throw CliError("--mem-limit must be non-zero");
  }
  const std::string cnf_path = args.next("CNF file");
  const std::string trace_path = args.next("trace file");
  args.expect_done();
  ScopedTraceOut scoped_trace(trace_out_path, err);
  if (use_bf + use_hybrid + use_rup + checker_opt.has_value() > 1) {
    throw CliError("pick at most one of --checker, --bf, --hybrid, --rup");
  }
  std::string mode = use_bf       ? "bf"
                     : use_hybrid ? "hybrid"
                     : use_rup    ? "rup"
                                  : checker_opt.value_or("df");
  if (mode != "df" && mode != "bf" && mode != "hybrid" && mode != "rup" &&
      mode != "parallel" && mode != "window" && mode != "auto") {
    throw CliError(
        "--checker expects df, bf, hybrid, rup, parallel, window or auto");
  }
  if (mem_limit != 0 && mode == "rup") {
    throw CliError("--mem-limit does not apply to the rup checker");
  }

  util::Timer timer;
  if (mode == "rup") {
    const Formula f = dimacs::parse_file(cnf_path);
    std::ifstream in(trace_path,
                     binary ? std::ios::in | std::ios::binary : std::ios::in);
    if (!in) throw CliError("cannot open trace file " + trace_path);
    std::unique_ptr<trace::TraceReader> reader;
    if (binary) {
      // Regular files go through the zero-copy mmap byte source; the stream
      // above only validated that the trace exists and is readable.
      in.close();
      reader = trace::open_binary_trace_file(trace_path);
    } else {
      reader = open_trace_reader(in, false);
    }
    const proof::RupResult result = proof::check_trace_rup(f, *reader);
    if (result.ok) {
      out << "VERIFIED (RUP): " << result.clauses_checked
          << " derived clauses re-derived by unit propagation ("
          << result.propagations << " propagations, "
          << timer.elapsed_seconds() << "s)\n";
      return 0;
    }
    err << "CHECK FAILED: " << result.error << "\n";
    return kExitError;
  }

  // The replay backends go through the same dispatch as the service daemon,
  // so a CLI verdict and a `satproof submit` verdict come from one code path.
  // Binary traces are detected by their magic; --binary stays accepted as a
  // no-op for compatibility. With both --checker=auto and --mem-limit the
  // backend is picked from the budget and the declared trace size
  // (select_backend_for_budget); run_check then re-applies the same cap to
  // explicit df/hybrid requests.
  service::Backend backend;
  if (mode == "auto" && mem_limit != 0) {
    std::ifstream in(trace_path,
                     std::ios::in | std::ios::binary | std::ios::ate);
    const std::streamoff size =
        in ? static_cast<std::streamoff>(in.tellg()) : std::streamoff{0};
    backend = service::select_backend_for_budget(
        size > 0 ? static_cast<std::uint64_t>(size) : 0, mem_limit);
  } else if (mode == "auto") {
    backend = resolve_auto_backend(trace_path);
  } else {
    backend = *service::backend_from_name(mode);
  }
  const service::JobOutcome result = service::run_check(
      cnf_path, trace_path, backend, jobs, nullptr, {}, mem_limit);
  if (result.ok) {
    if (result.failed_assumption_clause.empty()) {
      out << "VERIFIED: valid resolution proof of unsatisfiability ("
          << result.stats.resolutions << " resolutions, "
          << timer.elapsed_seconds() << "s)\n";
    } else {
      out << "VERIFIED: the formula refutes the assumption subset { ";
      for (const Lit l : result.failed_assumption_clause) {
        out << (~l).to_dimacs() << ' ';
      }
      out << "} (" << result.stats.resolutions << " resolutions, "
          << timer.elapsed_seconds() << "s)\n";
    }
    if (stats_json) {
      // The backend field reports what actually ran, so `--checker=auto`
      // records accurate certificate/stats provenance.
      out << service::check_stats_json(result.stats,
                                       service::backend_name(result.backend))
          << "\n";
    } else if (want_stats) {
      const checker::CheckStats& st = result.stats;
      out << "stats: arena " << st.arena_allocated_bytes
          << " bytes allocated, " << st.arena_recycled_bytes
          << " recycled, " << st.arena_peak_bytes << " peak; "
          << st.peak_mem_bytes << " bytes peak total\n";
    }
    return 0;
  }
  err << "CHECK FAILED: " << result.error << "\n";
  return kExitError;
}

// ----------------------------------------------------------- export-lrat

int cmd_export_lrat(Args args, std::ostream& out, std::ostream& err) {
  const auto out_path = args.take_option("-o");
  if (!out_path) throw CliError("export-lrat requires -o FILE");
  const bool binary_cert = args.take_flag("--binary-cert");
  std::string mode = "df";
  if (const auto v = args.take_option("--checker")) {
    if (*v != "df" && *v != "hybrid" && *v != "auto") {
      throw CliError("export-lrat --checker expects df, hybrid or auto");
    }
    mode = *v;
  }
  const auto trace_out_path = args.take_option("--trace-out");
  const std::string cnf_path = args.next("CNF file");
  const std::string trace_path = args.next("trace file");
  args.expect_done();
  ScopedTraceOut scoped_trace(trace_out_path, err);

  const service::Backend backend =
      mode == "auto" ? resolve_auto_backend(trace_path)
                     : *service::backend_from_name(mode);
  std::ofstream cert_out(*out_path, binary_cert
                                        ? std::ios::out | std::ios::binary
                                        : std::ios::out);
  if (!cert_out) throw CliError("cannot open certificate file " + *out_path);

  util::Timer timer;
  service::CertOptions copts;
  copts.sink = &cert_out;
  copts.binary = binary_cert;
  const service::JobOutcome result =
      service::run_check(cnf_path, trace_path, backend, 0, nullptr, copts);
  if (!result.ok) {
    err << "EXPORT FAILED: " << result.error << "\n";
    return kExitError;
  }
  out << "exported LRAT certificate (" << service::backend_name(result.backend)
      << " replay): " << result.cert_additions << " additions, "
      << result.cert_deletions << " deletions -> " << *out_path << " ("
      << timer.elapsed_seconds() << "s)\n"
      << "verify independently with: satproof-kern " << cnf_path << " "
      << *out_path << "\n";
  return 0;
}

// ------------------------------------------------------------------ core

int cmd_core(Args args, std::ostream& out, std::ostream&) {
  const bool minimal = args.take_flag("--minimal");
  std::size_t iterations = 30;
  if (const auto v = args.take_option("--iterations")) {
    iterations = parse_u64(*v, "--iterations");
  }
  const auto out_path = args.take_option("-o");
  const std::string cnf_path = args.next("CNF file");
  args.expect_done();

  const Formula f = dimacs::parse_file(cnf_path);
  Formula result_core;
  if (minimal) {
    const core::MinimalCore mc = core::minimal_core(f);
    if (!mc.ok) throw CliError(mc.error);
    out << "minimal core: " << mc.core_ids.size() << " of "
        << f.num_clauses() << " clauses (" << mc.solver_calls
        << " solver calls)\n";
    result_core = mc.core;
  } else {
    const core::CoreIteration it = core::iterate_core(f, iterations);
    if (!it.ok) throw CliError(it.error);
    out << "core sizes:";
    for (const auto& step : it.steps) out << ' ' << step.num_clauses;
    out << (it.fixed_point ? " (fixed point)\n" : " (iteration cap)\n");
    result_core = it.final_core;
  }
  if (out_path) {
    write_formula_file(*out_path, result_core,
                       "unsatisfiable core of " + cnf_path);
    out << "core written to " << *out_path << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------ drup

int cmd_drup(Args args, std::ostream& out, std::ostream& err) {
  const std::string cnf_path = args.next("CNF file");
  const std::string proof_path = args.next("DRUP proof file");
  args.expect_done();

  util::Timer timer;
  const service::JobOutcome res =
      service::run_check(cnf_path, proof_path, service::Backend::kDrup);
  if (res.ok) {
    out << "VERIFIED (DRUP): " << res.drup_clauses_checked << " clauses, "
        << res.drup_deletions << " deletions, " << res.drup_propagations
        << " propagations, " << timer.elapsed_seconds() << "s\n";
    return 0;
  }
  err << "CHECK FAILED: " << res.error << "\n";
  return kExitError;
}

// ----------------------------------------------------------------- serve

/// Server the signal handler drains; set only while `serve` is running.
std::atomic<service::Server*> g_signal_server{nullptr};

extern "C" void satproof_handle_drain_signal(int) {
  service::Server* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->notify_drain_from_signal();
}

int cmd_serve(Args args, std::ostream& out, std::ostream&) {
  service::ServerOptions opts;
  if (const auto v = args.take_option("--socket")) opts.unix_socket_path = *v;
  if (const auto v = args.take_option("--tcp")) {
    opts.enable_tcp = true;
    opts.tcp_port = static_cast<std::uint16_t>(parse_u64(*v, "--tcp"));
  }
  if (const auto v = args.take_option("--workers")) {
    opts.workers = static_cast<unsigned>(parse_u64(*v, "--workers"));
    if (opts.workers == 0) throw CliError("--workers must be at least 1");
  }
  if (const auto v = args.take_option("--jobs")) {  // deprecated alias
    opts.workers = static_cast<unsigned>(parse_u64(*v, "--jobs"));
    if (opts.workers == 0) throw CliError("--jobs must be at least 1");
  }
  if (const auto v = args.take_option("--queue")) {
    opts.queue_capacity = parse_u64(*v, "--queue");
    if (opts.queue_capacity == 0) throw CliError("--queue must be at least 1");
  }
  if (const auto v = args.take_option("--timeout-ms")) {
    opts.default_timeout_ms =
        static_cast<std::uint32_t>(parse_u64(*v, "--timeout-ms"));
  }
  if (const auto v = args.take_option("--idle-timeout-ms")) {
    opts.idle_timeout_ms =
        static_cast<std::uint32_t>(parse_u64(*v, "--idle-timeout-ms"));
  }
  if (const auto v = args.take_option("--slow-job-ms")) {
    opts.slow_job_ms = static_cast<std::uint32_t>(parse_u64(*v, "--slow-job-ms"));
  }
  if (const auto v = args.take_option("--mem-limit")) {
    opts.mem_limit_bytes =
        static_cast<std::size_t>(parse_byte_size(*v, "--mem-limit"));
    if (opts.mem_limit_bytes == 0) {
      throw CliError("--mem-limit must be non-zero");
    }
  }
  opts.certify = args.take_flag("--certify");
  args.expect_done();
  if (opts.unix_socket_path.empty() && !opts.enable_tcp) {
    throw CliError("serve needs --socket PATH and/or --tcp PORT");
  }

  service::Server server(opts);
  server.start();
  out << "c satproofd listening";
  if (!opts.unix_socket_path.empty()) {
    out << " on " << opts.unix_socket_path;
  }
  if (opts.enable_tcp) out << " (tcp 127.0.0.1:" << server.tcp_port() << ")";
  out << ", " << server.worker_count() << " workers, queue "
      << opts.queue_capacity << "\n";
  out.flush();

  g_signal_server.store(&server, std::memory_order_release);
  std::signal(SIGTERM, &satproof_handle_drain_signal);
  std::signal(SIGINT, &satproof_handle_drain_signal);
  server.wait_until_drained();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_signal_server.store(nullptr, std::memory_order_release);

  out << "c satproofd drained: " << server.metrics_json() << "\n";
  return 0;
}

// ---------------------------------------------------------------- submit

service::Client connect_client(Args& args) {
  const auto socket_path = args.take_option("--socket");
  const auto tcp_port = args.take_option("--tcp");
  if (socket_path.has_value() == tcp_port.has_value()) {
    throw CliError("pick exactly one of --socket PATH or --tcp PORT");
  }
  if (socket_path) return service::Client::connect_unix(*socket_path);
  return service::Client::connect_tcp(
      static_cast<std::uint16_t>(parse_u64(*tcp_port, "--tcp")));
}

int cmd_submit(Args args, std::ostream& out, std::ostream& err) {
  service::Backend backend = service::Backend::kDf;
  if (const auto v = args.take_option("--backend")) {
    const auto parsed = service::backend_from_name(*v);
    if (!parsed) {
      throw CliError(
          "--backend expects df, bf, hybrid, parallel, drup or window");
    }
    backend = *parsed;
  }
  unsigned jobs = 0;
  if (const auto v = args.take_option("--jobs")) {
    jobs = static_cast<unsigned>(parse_u64(*v, "--jobs"));
  }
  std::uint32_t timeout_ms = 0;
  if (const auto v = args.take_option("--timeout-ms")) {
    timeout_ms = static_cast<std::uint32_t>(parse_u64(*v, "--timeout-ms"));
  }
  bool wait = args.take_flag("--wait");
  const bool certify = args.take_flag("--certify");
  const auto cert_out_path = args.take_option("--cert-out");
  if (certify) wait = true;  // the certificate rides the result path
  if (cert_out_path && !certify) {
    throw CliError("--cert-out requires --certify");
  }
  service::Client client = connect_client(args);
  const std::string cnf_path = args.next("CNF file");
  const std::string trace_path = args.next("trace file");
  args.expect_done();

  const service::Client::SubmitReply reply = client.submit(
      cnf_path, trace_path, backend, wait, jobs, timeout_ms, certify);
  if (!reply.transport_ok) {
    err << "error: " << reply.error << "\n";
    return kExitError;
  }
  if (reply.busy) {
    err << "BUSY: job queue is full, retry later\n";
    return kExitError;
  }
  if (!reply.accepted) {
    err << "REJECTED: " << reply.error << "\n";
    return kExitError;
  }
  out << "job " << reply.job_id << " accepted\n";
  if (!wait) return 0;
  if (!reply.have_result) {
    err << "error: connection closed before the result arrived\n";
    return kExitError;
  }
  if (reply.status == service::JobStatus::kOk) {
    out << reply.verdict << "\n";
    if (certify) {
      if (!reply.have_certificate) {
        err << "error: ok certify result arrived without a certificate\n";
        return kExitError;
      }
      if (cert_out_path) {
        std::ofstream cert_file(*cert_out_path,
                                std::ios::out | std::ios::binary);
        cert_file.write(reply.certificate.data(),
                        static_cast<std::streamsize>(
                            reply.certificate.size()));
        if (!cert_file) {
          err << "error: cannot write " << *cert_out_path << "\n";
          return kExitError;
        }
        out << "certificate: " << reply.certificate.size() << " bytes -> "
            << *cert_out_path << "\n";
      } else {
        out << "certificate: " << reply.certificate.size()
            << " bytes (use --cert-out FILE to save)\n";
      }
    }
    return 0;
  }
  err << reply.verdict << "\n";
  return kExitError;
}

int cmd_stats(Args args, std::ostream& out, std::ostream& err) {
  std::string format = "json";
  if (const auto v = args.take_option("--format")) {
    if (*v != "json" && *v != "prometheus") {
      throw CliError("--format expects json or prometheus");
    }
    format = *v;
  }
  service::Client client = connect_client(args);
  args.expect_done();
  std::string error;
  const std::string body = format == "prometheus"
                               ? client.stats_prometheus(&error)
                               : client.stats_json(&error);
  if (body.empty()) {
    err << "error: " << error << "\n";
    return kExitError;
  }
  out << body;
  if (format == "json") out << "\n";
  return 0;
}

// ------------------------------------------------------------ interpolate

int cmd_interpolate(Args args, std::ostream& out, std::ostream& err) {
  const auto split_opt = args.take_option("--split");
  if (!split_opt) throw CliError("interpolate requires --split N");
  const auto out_path = args.take_option("-o");
  const std::string cnf_path = args.next("CNF file");
  args.expect_done();

  const Formula f = dimacs::parse_file(cnf_path);
  const std::uint64_t split = parse_u64(*split_opt, "--split");
  if (split > f.num_clauses()) {
    throw CliError("--split exceeds the clause count");
  }
  std::vector<bool> in_a(f.num_clauses(), false);
  for (ClauseId id = 0; id < split; ++id) in_a[id] = true;

  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  if (s.solve() != solver::SolveResult::Unsatisfiable) {
    err << "formula is not unsatisfiable; no interpolant exists\n";
    return kExitError;
  }
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader reader(t);
  const proof::ProofDag dag = proof::extract_proof(f, reader);
  const proof::Interpolant itp = proof::mcmillan_interpolant(f, dag, in_a);
  out << "interpolant: " << itp.netlist.num_wires() << " wires over "
      << itp.bindings.size() << " shared variables\n";

  // Verify both defining properties before reporting success.
  std::vector<ClauseId> a_ids, b_ids;
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    (in_a[id] ? a_ids : b_ids).push_back(id);
  }
  {
    Formula q = f.subformula(a_ids);
    const auto var_of = circuit::tseitin_into(q, itp.netlist, itp.bindings);
    q.add_clause({Lit::neg(var_of[itp.output])});
    solver::Solver check;
    check.add_formula(q);
    if (check.solve() != solver::SolveResult::Unsatisfiable) {
      err << "INTERNAL ERROR: A does not imply the interpolant\n";
      return kExitError;
    }
  }
  {
    Formula q = f.subformula(b_ids);
    if (f.num_vars() > 0) q.ensure_var(f.num_vars() - 1);
    const auto var_of = circuit::tseitin_into(q, itp.netlist, itp.bindings);
    q.add_clause({Lit::pos(var_of[itp.output])});
    solver::Solver check;
    check.add_formula(q);
    if (check.solve() != solver::SolveResult::Unsatisfiable) {
      err << "INTERNAL ERROR: interpolant does not refute B\n";
      return kExitError;
    }
  }
  out << "verified: A implies I, and I refutes B\n";

  if (out_path) {
    // Render the interpolant circuit by wrapping it in a tiny proof-free
    // netlist dump: reuse the dot exporter via a one-node DAG is overkill;
    // emit a simple gate-level dot directly.
    std::ofstream dot(*out_path);
    if (!dot) throw CliError("cannot open " + *out_path);
    dot << "digraph interpolant {\n  rankdir=BT;\n";
    for (circuit::Wire wire = 0; wire < itp.netlist.num_wires(); ++wire) {
      const circuit::Gate& g = itp.netlist.gate(wire);
      const char* label = "?";
      switch (g.kind) {
        case circuit::GateKind::Input: label = "in"; break;
        case circuit::GateKind::ConstFalse: label = "0"; break;
        case circuit::GateKind::ConstTrue: label = "1"; break;
        case circuit::GateKind::Not: label = "NOT"; break;
        case circuit::GateKind::And: label = "AND"; break;
        case circuit::GateKind::Or: label = "OR"; break;
        case circuit::GateKind::Xor: label = "XOR"; break;
        case circuit::GateKind::Mux: label = "MUX"; break;
      }
      dot << "  w" << wire << " [label=\"" << label << "\"];\n";
      for (const circuit::Wire fanin : {g.a, g.b, g.c}) {
        if (fanin != circuit::kInvalidWire) {
          dot << "  w" << fanin << " -> w" << wire << ";\n";
        }
      }
    }
    dot << "  out [shape=doublecircle];\n  w" << itp.output
        << " -> out;\n}\n";
    out << "interpolant circuit written to " << *out_path << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------ trim

int cmd_trim(Args args, std::ostream& out, std::ostream&) {
  const bool binary = args.take_flag("--binary");
  const std::string in_path = args.next("input trace");
  const std::string out_path = args.next("output trace");
  args.expect_done();

  std::ifstream in(in_path,
                   binary ? std::ios::in | std::ios::binary : std::ios::in);
  if (!in) throw CliError("cannot open trace file " + in_path);
  const auto reader = open_trace_reader(in, binary);

  std::ofstream out_file(out_path, binary ? std::ios::out | std::ios::binary
                                          : std::ios::out);
  if (!out_file) throw CliError("cannot open output file " + out_path);
  std::unique_ptr<trace::TraceWriter> writer;
  if (binary) {
    writer = std::make_unique<trace::BinaryTraceWriter>(out_file);
  } else {
    writer = std::make_unique<trace::AsciiTraceWriter>(out_file);
  }

  const proof::TrimStats stats = proof::trim_trace(*reader, *writer);
  out << "trimmed " << stats.derivations_before << " -> "
      << stats.derivations_after << " derivations ("
      << (stats.derivations_before == 0
              ? 100.0
              : 100.0 * static_cast<double>(stats.derivations_after) /
                    static_cast<double>(stats.derivations_before))
      << "% kept) -> " << out_path << "\n";
  return 0;
}

// ------------------------------------------------------------------- gen

int cmd_gen(Args args, std::ostream& out, std::ostream&) {
  const auto out_path = args.take_option("-o");
  if (!out_path) throw CliError("gen requires -o FILE");
  const std::string family = args.next("family");

  Formula f;
  std::string description = family;
  if (family == "php") {
    const auto holes = parse_u64(args.next("holes"), "holes");
    f = encode::pigeonhole(static_cast<unsigned>(holes));
  } else if (family == "tseitin") {
    const auto rows = parse_u64(args.next("rows"), "rows");
    const auto cols = parse_u64(args.next("cols"), "cols");
    const auto seed = parse_u64(args.next("seed"), "seed");
    f = encode::tseitin_torus(static_cast<unsigned>(rows),
                              static_cast<unsigned>(cols), seed);
  } else if (family == "ksat") {
    const auto n = parse_u64(args.next("n"), "n");
    const auto m = parse_u64(args.next("m"), "m");
    const auto k = parse_u64(args.next("k"), "k");
    const auto seed = parse_u64(args.next("seed"), "seed");
    f = encode::random_ksat(static_cast<unsigned>(n),
                            static_cast<unsigned>(m),
                            static_cast<unsigned>(k), seed);
  } else if (family == "routing") {
    const auto nets = parse_u64(args.next("nets"), "nets");
    const auto tracks = parse_u64(args.next("tracks"), "tracks");
    const auto cols = parse_u64(args.next("cols"), "cols");
    const auto seed = parse_u64(args.next("seed"), "seed");
    f = encode::fpga_routing(static_cast<unsigned>(nets),
                             static_cast<unsigned>(tracks),
                             static_cast<unsigned>(cols), seed);
  } else if (family == "bw") {
    const auto blocks = parse_u64(args.next("blocks"), "blocks");
    const auto delta = parse_i64(args.next("delta"), "delta");
    const auto seed = parse_u64(args.next("seed"), "seed");
    const auto inst = encode::blocks_world_random(
        static_cast<unsigned>(blocks), static_cast<int>(delta), seed);
    f = inst.formula;
    description += " (optimal " + std::to_string(inst.optimal_steps) +
                   ", bound " + std::to_string(inst.steps) + ")";
  } else if (family == "coloring") {
    const auto n = parse_u64(args.next("n"), "n");
    const auto colors = parse_u64(args.next("colors"), "colors");
    f = encode::clique_coloring(static_cast<unsigned>(n),
                                static_cast<unsigned>(colors));
  } else if (family == "rotator") {
    const auto width = parse_u64(args.next("width"), "width");
    const auto k = parse_u64(args.next("k"), "k");
    f = bmc::unroll(bmc::make_rotator(static_cast<unsigned>(width)),
                    static_cast<unsigned>(k));
  } else if (family == "counter") {
    const auto width = parse_u64(args.next("width"), "width");
    const auto bad = parse_u64(args.next("bad"), "bad");
    const auto k = parse_u64(args.next("k"), "k");
    f = bmc::unroll(bmc::make_counter(static_cast<unsigned>(width), bad),
                    static_cast<unsigned>(k));
  } else {
    throw CliError("unknown family '" + family + "' (see satproof help)");
  }
  args.expect_done();

  write_formula_file(*out_path, f, "satproof gen " + description);
  out << "wrote " << family << " instance: " << f.num_vars() << " vars, "
      << f.num_clauses() << " clauses -> " << *out_path << "\n";
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      out << kHelp;
      return args.empty() ? kExitError : 0;
    }
    Args rest(std::vector<std::string>(args.begin() + 1, args.end()));
    if (args[0] == "solve") return cmd_solve(std::move(rest), out, err);
    if (args[0] == "check") return cmd_check(std::move(rest), out, err);
    if (args[0] == "export-lrat") {
      return cmd_export_lrat(std::move(rest), out, err);
    }
    if (args[0] == "serve") return cmd_serve(std::move(rest), out, err);
    if (args[0] == "submit") return cmd_submit(std::move(rest), out, err);
    if (args[0] == "stats") return cmd_stats(std::move(rest), out, err);
    if (args[0] == "core") return cmd_core(std::move(rest), out, err);
    if (args[0] == "trim") return cmd_trim(std::move(rest), out, err);
    if (args[0] == "drup") return cmd_drup(std::move(rest), out, err);
    if (args[0] == "interpolate") {
      return cmd_interpolate(std::move(rest), out, err);
    }
    if (args[0] == "gen") return cmd_gen(std::move(rest), out, err);
    err << "unknown command '" << args[0] << "' (try: satproof help)\n";
    return kExitError;
  } catch (const CliError& e) {
    err << "error: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return kExitError;
  }
}

}  // namespace satproof::cli
