# Empty compiler generated dependencies file for ablation_checker.
# This may be replaced when dependencies are built.
