# Empty compiler generated dependencies file for satproof_cnf.
# This may be replaced when dependencies are built.
