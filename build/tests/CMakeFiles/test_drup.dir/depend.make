# Empty dependencies file for test_drup.
# This may be replaced when dependencies are built.
