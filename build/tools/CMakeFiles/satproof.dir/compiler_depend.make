# Empty compiler generated dependencies file for satproof.
# This may be replaced when dependencies are built.
