// Differential fuzzing of the certificate pipeline: every UNSAT instance
// of the 500-instance random-3SAT harness (same seeds and shape as
// test_differential.cpp) is exported to LRAT from both emitting backends
// (depth-first and hybrid, text and binary form) and re-verified by the
// trusted kernel. The kernel's verdict must agree with all five checker
// backends, and its step counts must match the emitter's — any divergence
// is a bug in the emitter, the kernel, or a checker.
//
// 500 seeded instances split into 10 shards so ctest can run them in
// parallel and a failure names its shard/seed.

#include <gtest/gtest.h>

#include <sstream>

#include "src/cert/kernel.hpp"
#include "src/cert/lrat_emitter.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/parallel.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/cnf/model.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/memory.hpp"

namespace satproof {
namespace {

constexpr int kInstancesPerShard = 50;  // x 10 shards = 500 instances

struct Export {
  checker::CheckResult check;
  std::string cert;
  std::uint64_t additions = 0;
  std::uint64_t deletions = 0;
  bool finished = false;
};

Export export_df(const Formula& f, const trace::MemoryTrace& t, bool binary) {
  Export e;
  std::ostringstream sink;
  std::unique_ptr<cert::LratWriter> w;
  if (binary) {
    w = std::make_unique<cert::BinaryLratWriter>(sink);
  } else {
    w = std::make_unique<cert::TextLratWriter>(sink);
  }
  cert::LratEmitter emitter(*w, f.num_clauses());
  trace::MemoryTraceReader r(t);
  checker::DepthFirstOptions opts;
  opts.observer = &emitter;
  e.check = checker::check_depth_first(f, r, opts);
  EXPECT_TRUE(w->ok());
  e.cert = std::move(sink).str();
  e.additions = emitter.additions();
  e.deletions = emitter.deletions();
  e.finished = emitter.finished();
  return e;
}

Export export_hybrid(const Formula& f, const trace::MemoryTrace& t,
                     bool binary) {
  Export e;
  std::ostringstream sink;
  std::unique_ptr<cert::LratWriter> w;
  if (binary) {
    w = std::make_unique<cert::BinaryLratWriter>(sink);
  } else {
    w = std::make_unique<cert::TextLratWriter>(sink);
  }
  cert::LratEmitter emitter(*w, f.num_clauses());
  trace::MemoryTraceReader r(t);
  checker::HybridOptions opts;
  opts.observer = &emitter;
  e.check = checker::check_hybrid(f, r, opts);
  EXPECT_TRUE(w->ok());
  e.cert = std::move(sink).str();
  e.additions = emitter.additions();
  e.deletions = emitter.deletions();
  e.finished = emitter.finished();
  return e;
}

kern::VerifyResult kernel_verify(const Formula& f, const std::string& cert) {
  std::ostringstream cnf;
  dimacs::write(cnf, f);
  std::istringstream cnf_in(cnf.str());
  std::istringstream cert_in(cert);
  return kern::verify_lrat(cnf_in, cert_in);
}

class CertDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CertDifferentialFuzz, KernelAgreesWithAllBackends) {
  const int shard = GetParam();
  int unsat_seen = 0;
  std::uint64_t hybrid_deletions_total = 0;
  for (int i = 0; i < kInstancesPerShard; ++i) {
    const std::uint64_t seed =
        1000 + static_cast<std::uint64_t>(shard) * kInstancesPerShard + i;
    const unsigned n = 12 + static_cast<unsigned>(seed % 14);
    const double ratio = 3.8 + 0.15 * static_cast<double>(i % 9);
    const unsigned m = static_cast<unsigned>(n * ratio);
    const Formula f = encode::random_ksat(n, m, 3, seed);

    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter trace_writer;
    s.set_trace_writer(&trace_writer);
    std::ostringstream drup_text;
    trace::DrupWriter drup_writer(drup_text);
    s.set_drup_writer(&drup_writer);
    const solver::SolveResult solved = s.solve();
    const trace::MemoryTrace t = trace_writer.take();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                 " m=" + std::to_string(m));

    if (solved == solver::SolveResult::Satisfiable) {
      // A SAT run must never yield a finished certificate: the observer
      // fires but the empty clause is never derived, so the emitter stays
      // unfinished and whatever partial output exists cannot verify.
      EXPECT_TRUE(satisfies(f, s.model()));
      const Export e = export_df(f, t, /*binary=*/false);
      EXPECT_FALSE(e.check.ok);
      EXPECT_FALSE(e.finished);
      if (!e.cert.empty()) {
        EXPECT_FALSE(kernel_verify(f, e.cert).verified);
      }
      continue;
    }
    ASSERT_EQ(solved, solver::SolveResult::Unsatisfiable);
    ++unsat_seen;

    // The five backends must still agree the proof is valid.
    trace::MemoryTraceReader r_bf(t);
    const checker::CheckResult bf = checker::check_breadth_first(f, r_bf);
    trace::MemoryTraceReader r_par(t);
    const checker::CheckResult par = checker::check_parallel(f, r_par);
    std::istringstream drup_in(drup_text.str());
    const checker::DrupCheckResult dr = checker::check_drup(f, drup_in);
    EXPECT_TRUE(bf.ok) << bf.error;
    EXPECT_TRUE(par.ok) << par.error;
    EXPECT_TRUE(dr.ok) << dr.error;

    // Depth-first export, text and binary: both must kernel-verify with
    // the emitter's own step counts.
    const Export df_text = export_df(f, t, /*binary=*/false);
    ASSERT_TRUE(df_text.check.ok) << df_text.check.error;
    ASSERT_TRUE(df_text.finished);
    const kern::VerifyResult kv_df = kernel_verify(f, df_text.cert);
    EXPECT_TRUE(kv_df.verified) << "line " << kv_df.line << ": "
                                << kv_df.error;
    EXPECT_EQ(kv_df.additions, df_text.additions);
    EXPECT_EQ(kv_df.deletions, df_text.deletions);

    const Export df_bin = export_df(f, t, /*binary=*/true);
    ASSERT_TRUE(df_bin.check.ok) << df_bin.check.error;
    const kern::VerifyResult kv_dfb = kernel_verify(f, df_bin.cert);
    EXPECT_TRUE(kv_dfb.verified) << "record " << kv_dfb.line << ": "
                                 << kv_dfb.error;
    // The binary form encodes the same proof: identical step counts.
    EXPECT_EQ(kv_dfb.additions, kv_df.additions);
    EXPECT_EQ(kv_dfb.deletions, kv_df.deletions);
    EXPECT_LT(df_bin.cert.size(), df_text.cert.size() + 16);

    // Hybrid export: same verdict, and its deletion records (absent from
    // the df path, which releases nothing) must not break verification.
    const Export hy_text = export_hybrid(f, t, /*binary=*/false);
    ASSERT_TRUE(hy_text.check.ok) << hy_text.check.error;
    ASSERT_TRUE(hy_text.finished);
    const kern::VerifyResult kv_hy = kernel_verify(f, hy_text.cert);
    EXPECT_TRUE(kv_hy.verified) << "line " << kv_hy.line << ": "
                                << kv_hy.error;
    EXPECT_EQ(kv_hy.additions, hy_text.additions);
    EXPECT_EQ(kv_hy.deletions, hy_text.deletions);
    // Hybrid replays every clause reachable in its window, df only the
    // memoized final cone — hybrid may emit a superset, never less.
    EXPECT_GE(kv_hy.additions, kv_df.additions);
    hybrid_deletions_total += kv_hy.deletions;

    const Export hy_bin = export_hybrid(f, t, /*binary=*/true);
    ASSERT_TRUE(hy_bin.check.ok) << hy_bin.check.error;
    const kern::VerifyResult kv_hyb = kernel_verify(f, hy_bin.cert);
    EXPECT_TRUE(kv_hyb.verified) << "record " << kv_hyb.line << ": "
                                 << kv_hyb.error;
    EXPECT_EQ(kv_hyb.additions, kv_hy.additions);
    EXPECT_EQ(kv_hyb.deletions, kv_hy.deletions);
  }
  // The ratio sweep straddles the phase transition, so a healthy fraction
  // of every shard must actually exercise the certificate path, and the
  // hybrid runs must exercise deletion records somewhere in the shard.
  EXPECT_GE(unsat_seen, kInstancesPerShard / 5);
  EXPECT_GT(hybrid_deletions_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shards, CertDifferentialFuzz,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace satproof
