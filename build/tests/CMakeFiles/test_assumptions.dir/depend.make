# Empty dependencies file for test_assumptions.
# This may be replaced when dependencies are built.
