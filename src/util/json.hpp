#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace satproof::util {

/// Minimal streaming JSON writer.
///
/// The service's `stats` reply and `satproof check --stats=json` both need
/// machine-readable output; hand-rolled `<<` chains get the escaping and
/// comma placement wrong sooner or later. This writer produces compact
/// (no-whitespace) JSON, handles string escaping per RFC 8259, and tracks
/// nesting so commas are emitted exactly where needed. It deliberately has
/// no reader half: the repo only ever *emits* JSON.
///
///     JsonWriter w;
///     w.begin_object();
///     w.key("jobs"); w.value(std::uint64_t{42});
///     w.key("backends");
///     w.begin_array();
///     w.value("df");
///     w.end_array();
///     w.end_object();
///     std::string out = w.take();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be followed by exactly one value (or
  /// container). Only valid directly inside an object.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  /// Doubles are emitted with enough digits to round-trip; NaN and
  /// infinities (not representable in JSON) come out as null.
  void value(double v);
  void null();

  /// Finished document. The writer must be back at nesting depth 0.
  [[nodiscard]] std::string take();

  /// Escapes `s` as a standalone JSON string literal (with quotes).
  static std::string escape(std::string_view s);

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true while the next element needs a
  /// separating comma.
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

}  // namespace satproof::util
