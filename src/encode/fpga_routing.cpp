#include "src/encode/fpga_routing.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/util/rng.hpp"

namespace satproof::encode {

Formula fpga_routing(unsigned num_nets, unsigned tracks, unsigned num_columns,
                     std::uint64_t seed, bool congested) {
  if (congested && num_nets < tracks + 1) {
    throw std::invalid_argument(
        "fpga_routing: need at least tracks+1 nets to congest the channel");
  }
  if (num_columns < 4) {
    throw std::invalid_argument("fpga_routing: need at least 4 columns");
  }
  util::Rng rng(seed);

  struct Span {
    unsigned left, right;
  };
  std::vector<Span> spans(num_nets);

  unsigned first_free = 0;
  if (congested) {
    // The hot spot: column crossed by tracks+1 nets.
    const unsigned hot = static_cast<unsigned>(
        1 + rng.next_below(num_columns - 2));
    for (unsigned i = 0; i < tracks + 1; ++i) {
      const unsigned left =
          static_cast<unsigned>(rng.next_below(hot + 1));
      const unsigned right = hot + static_cast<unsigned>(
          rng.next_below(num_columns - hot));
      spans[i] = {left, right};
    }
    first_free = tracks + 1;
  }
  // The remaining nets get arbitrary spans.
  for (unsigned i = first_free; i < num_nets; ++i) {
    unsigned a = static_cast<unsigned>(rng.next_below(num_columns));
    unsigned b = static_cast<unsigned>(rng.next_below(num_columns));
    if (a > b) std::swap(a, b);
    spans[i] = {a, b};
  }

  Formula f(num_nets * tracks);
  const auto var = [tracks](unsigned net, unsigned track) {
    return static_cast<Var>(net * tracks + track);
  };

  std::vector<Lit> clause;
  for (unsigned i = 0; i < num_nets; ++i) {
    // Each net is routed on at least one track...
    clause.clear();
    for (unsigned t = 0; t < tracks; ++t) clause.push_back(Lit::pos(var(i, t)));
    f.add_clause(clause);
    // ... and at most one.
    for (unsigned t1 = 0; t1 < tracks; ++t1) {
      for (unsigned t2 = t1 + 1; t2 < tracks; ++t2) {
        f.add_clause({Lit::neg(var(i, t1)), Lit::neg(var(i, t2))});
      }
    }
  }
  // Overlapping nets must not share a track.
  for (unsigned i = 0; i < num_nets; ++i) {
    for (unsigned j = i + 1; j < num_nets; ++j) {
      const bool overlap = spans[i].left <= spans[j].right &&
                           spans[j].left <= spans[i].right;
      if (!overlap) continue;
      for (unsigned t = 0; t < tracks; ++t) {
        f.add_clause({Lit::neg(var(i, t)), Lit::neg(var(j, t))});
      }
    }
  }
  return f;
}

}  // namespace satproof::encode
