// Reproduces Table 2 of the paper: depth-first vs breadth-first checking
// of the trace of every suite instance.
//
// Paper columns: Instance Name | Trace Size (KB) | Depth First {Num. Cls
// Built, Built%, Runtime (s), Peak Mem (KB)} | Breadth First {Runtime (s),
// Peak Mem (KB)}.
//
// Expected shape (paper): checking is always much cheaper than solving;
// depth-first is ~2x faster but much more memory-hungry (it holds the
// whole trace plus every built clause, and runs out of memory on the two
// hardest instances under an 800 MB cap); breadth-first finishes
// everything in a small, bounded clause window; built% is 19-90%.

#include <fstream>
#include <iostream>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/hybrid.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Trace (KB)", "Solve (s)", "DF Cls Built",
                     "Built%", "DF Time (s)", "DF Peak (KB)", "BF Time (s)",
                     "BF Peak (KB)", "HY Time (s)", "HY Peak (KB)"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    util::TempFile trace_file("table2-trace");
    double solve_secs = 0.0;
    {
      std::ofstream out(trace_file.path());
      trace::AsciiTraceWriter writer(out);
      solver::Solver s;
      s.add_formula(inst.formula);
      s.set_trace_writer(&writer);
      util::Timer t;
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
        return 1;
      }
      solve_secs = t.elapsed_seconds();
    }
    const auto trace_bytes = std::filesystem::file_size(trace_file.path());

    checker::CheckResult df;
    double df_secs = 0.0;
    {
      std::ifstream in(trace_file.path());
      trace::AsciiTraceReader reader(in);
      util::Timer t;
      df = checker::check_depth_first(inst.formula, reader);
      df_secs = t.elapsed_seconds();
      if (!df.ok) {
        std::cerr << "FATAL: depth-first check failed on " << inst.name
                  << ": " << df.error << "\n";
        return 1;
      }
    }

    checker::CheckResult bf;
    double bf_secs = 0.0;
    {
      std::ifstream in(trace_file.path());
      trace::AsciiTraceReader reader(in);
      util::Timer t;
      bf = checker::check_breadth_first(inst.formula, reader);
      bf_secs = t.elapsed_seconds();
      if (!bf.ok) {
        std::cerr << "FATAL: breadth-first check failed on " << inst.name
                  << ": " << bf.error << "\n";
        return 1;
      }
    }

    checker::CheckResult hy;
    double hy_secs = 0.0;
    {
      std::ifstream in(trace_file.path());
      trace::AsciiTraceReader reader(in);
      util::Timer t;
      hy = checker::check_hybrid(inst.formula, reader);
      hy_secs = t.elapsed_seconds();
      if (!hy.ok) {
        std::cerr << "FATAL: hybrid check failed on " << inst.name << ": "
                  << hy.error << "\n";
        return 1;
      }
    }

    table.add_row(
        {inst.name, util::format_kb(trace_bytes),
         util::format_double(solve_secs, 3),
         std::to_string(df.stats.clauses_built),
         util::format_percent(static_cast<double>(df.stats.clauses_built),
                              static_cast<double>(df.stats.total_derivations)),
         util::format_double(df_secs, 3),
         util::format_kb(df.stats.peak_mem_bytes),
         util::format_double(bf_secs, 3),
         util::format_kb(bf.stats.peak_mem_bytes),
         util::format_double(hy_secs, 3),
         util::format_kb(hy.stats.peak_mem_bytes)});
  }

  std::cout
      << "Table 2: depth-first vs breadth-first proof checking\n"
      << "(paper: check time << solve time; DF faster but memory-hungry;\n"
      << " BF bounded memory; DF builds only 19-90% of learned clauses.\n"
      << " HY columns: the hybrid checker the paper's conclusion calls for —\n"
      << " builds only the DF subgraph inside a BF-style clause window)\n\n"
      << table.to_string();
  return 0;
}
