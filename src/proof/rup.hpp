#pragma once

#include <cstdint>
#include <string>

#include "src/proof/proof_dag.hpp"
#include "src/trace/events.hpp"

namespace satproof::proof {

/// Result of RUP cross-validation.
struct RupResult {
  bool ok = false;
  std::string error;
  std::uint64_t clauses_checked = 0;  ///< derived clauses verified
  std::uint64_t propagations = 0;     ///< unit propagations performed
};

/// Verifies every derived clause of `dag` by **reverse unit propagation**:
/// assume the negation of the clause and unit-propagate over the original
/// clauses plus the previously verified derived clauses; a conflict must
/// follow.
///
/// This is the verification style of the paper's contemporaries — Van
/// Gelder's checkable proofs (the paper's reference [13]) and Goldberg &
/// Novikov's RUP verification — and the ancestor of today's DRUP/DRAT
/// checking. Every clause our solver derives is produced by input
/// resolution against existing clauses, and input-resolvable clauses are
/// exactly the RUP-checkable ones, so RUP must accept every DAG the
/// resolution checkers accept. Running both gives two *methodologically
/// independent* validations of the same proof: one replays the inference
/// steps, the other re-derives each conclusion semantically, sharing no
/// code path beyond the clause parser.
///
/// The propagation engine here is deliberately self-contained (its own
/// watched-literal scheme), independent of both the solver and the
/// resolution checkers.
[[nodiscard]] RupResult check_rup(const Formula& f, const ProofDag& dag);

/// Convenience: extract the proof DAG from a trace and RUP-check it.
[[nodiscard]] RupResult check_trace_rup(const Formula& f,
                                        trace::TraceReader& reader);

}  // namespace satproof::proof
