// Ablation G: solver design choices on the suite — restart schedule
// (geometric / Luby / none) and learned-clause deletion on/off. Every
// configuration's trace is checked, demonstrating the paper's point that
// the checker requirements (DLL + assertion-based backtracking) are
// agnostic to the heuristics: restarts, deletion policy and restart
// schedules all produce valid traces.

#include <iostream>

#include "src/checker/depth_first.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;
  using solver::SolverOptions;

  struct Config {
    const char* name;
    SolverOptions opts;
  };
  std::vector<Config> configs;
  {
    Config c{"geometric", {}};
    configs.push_back(c);
  }
  {
    Config c{"luby", {}};
    c.opts.restart_schedule = SolverOptions::RestartSchedule::Luby;
    configs.push_back(c);
  }
  {
    Config c{"no-restarts", {}};
    c.opts.enable_restarts = false;
    configs.push_back(c);
  }
  {
    Config c{"no-deletion", {}};
    c.opts.enable_clause_deletion = false;
    configs.push_back(c);
  }

  util::Table table({"Instance", "Config", "Solve (s)", "Conflicts",
                     "Restarts", "Deleted", "Trace Checks"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    for (const Config& cfg : configs) {
      solver::Solver s(cfg.opts);
      s.add_formula(inst.formula);
      trace::MemoryTraceWriter w;
      s.set_trace_writer(&w);
      util::Timer t;
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " (" << cfg.name
                  << ") not UNSAT\n";
        return 1;
      }
      const double secs = t.elapsed_seconds();
      const trace::MemoryTrace trace = w.take();
      trace::MemoryTraceReader r(trace);
      const checker::CheckResult check =
          checker::check_depth_first(inst.formula, r);
      if (!check.ok) {
        std::cerr << "FATAL: check failed for " << inst.name << " ("
                  << cfg.name << "): " << check.error << "\n";
        return 1;
      }
      table.add_row({inst.name, cfg.name, util::format_double(secs, 3),
                     std::to_string(s.stats().conflicts),
                     std::to_string(s.stats().restarts),
                     std::to_string(s.stats().deleted_clauses), "yes"});
    }
  }

  std::cout << "Ablation G: solver heuristics (restart schedule, deletion) — "
               "every configuration's trace validates\n\n"
            << table.to_string();
  return 0;
}
