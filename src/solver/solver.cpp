#include "src/solver/solver.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

namespace satproof::solver {

namespace {

/// The Luby "reluctant doubling" sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8...
/// luby(i) for 0-based i.
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.random_seed) {}

void Solver::add_formula(const Formula& f) {
  while (num_vars() < f.num_vars()) new_var();
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    add_clause(f.clause(id));
  }
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::Undef);
  level_.push_back(0);
  antecedent_.push_back(kInvalidSlot);
  trail_pos_.push_back(0);
  saved_phase_.push_back(options_.default_phase);
  seen_.push_back(false);
  in_clause_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  order_.grow_to(v + 1);
  return v;
}

ClauseId Solver::add_clause(std::span<const Lit> lits) {
  if (external_ids_) {
    throw std::logic_error(
        "Solver: use add_clause_with_id after begin_external_ids");
  }
  const ClauseId id = next_id_;
  add_clause_internal(lits, id);
  num_original_ = next_id_;
  return id;
}

void Solver::begin_external_ids(ClauseId num_original) {
  if (next_id_ != 0 || solved_) {
    throw std::logic_error(
        "Solver: begin_external_ids requires a fresh solver");
  }
  external_ids_ = true;
  num_original_ = num_original;
}

void Solver::add_clause_with_id(std::span<const Lit> lits, ClauseId id) {
  if (!external_ids_) {
    throw std::logic_error(
        "Solver: add_clause_with_id requires begin_external_ids");
  }
  if (id < next_id_) {
    throw std::logic_error(
        "Solver: explicit clause IDs must be strictly increasing");
  }
  next_id_ = id;  // add_clause_internal advances past it
  add_clause_internal(lits, id);
}

void Solver::reserve_clause_ids(ClauseId next_id) {
  if (!external_ids_) {
    throw std::logic_error(
        "Solver: reserve_clause_ids requires begin_external_ids");
  }
  next_id_ = std::max(next_id_, next_id);
}

void Solver::add_clause_internal(std::span<const Lit> lits, ClauseId id) {
  if (solved_) throw std::logic_error("Solver: add_clause after solve()");
  for (const Lit lit : lits) {
    while (lit.var() >= num_vars()) new_var();
  }
  next_id_ = id + 1;

  // Canonicalize the stored copy: sorted, duplicate-free. The trace refers
  // to clauses by ID and the checker treats clauses as literal sets, so
  // this is semantics-preserving.
  std::vector<Lit> canon(lits.begin(), lits.end());
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  bool tautology = false;
  for (std::size_t i = 0; i + 1 < canon.size(); ++i) {
    if (canon[i].var() == canon[i + 1].var()) {
      tautology = true;
      break;
    }
  }

  const ClauseSlot slot = db_.alloc(canon, id, /*learned=*/false);
  if (tautology) {
    // A tautological clause is permanently satisfied: it never propagates,
    // never conflicts, and can never serve as an antecedent. Keep it in the
    // database (it owns an ID) but do not watch it.
    return;
  }
  if (canon.empty()) {
    if (empty_clause_id_ == kInvalidClauseId) empty_clause_id_ = id;
  } else if (canon.size() == 1) {
    pending_units_.push_back(slot);
  } else {
    attach(slot);
  }
}

void Solver::attach(ClauseSlot slot) {
  const DbClause& c = db_[slot];
  watches_[(~c.lits[0]).code()].push_back({slot, c.lits[1]});
  watches_[(~c.lits[1]).code()].push_back({slot, c.lits[0]});
}

void Solver::detach(ClauseSlot slot) {
  const DbClause& c = db_[slot];
  for (const Lit w : {c.lits[0], c.lits[1]}) {
    auto& list = watches_[(~w).code()];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].slot == slot) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void Solver::assign(Lit p, ClauseSlot antecedent) {
  const Var v = p.var();
  // A repeated assignment would silently corrupt the trail and, with it,
  // the emitted trace; fail loudly instead (cost: one predictable branch).
  if (assign_[v] != LBool::Undef) {
    throw std::logic_error("Solver::assign: variable x" + std::to_string(v) +
                           " is already assigned");
  }
  assign_[v] = p.negated() ? LBool::False : LBool::True;
  level_[v] = decision_level();
  antecedent_[v] = antecedent;
  trail_pos_[v] = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(p);
}

void Solver::backtrack(std::uint32_t target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[v] = assign_[v] == LBool::True;
    assign_[v] = LBool::Undef;
    antecedent_[v] = kInvalidSlot;
    order_.insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

ClauseSlot Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      DbClause& c = db_[w.slot];
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      ++i;
      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = {w.slot, first};
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back({w.slot, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = {w.slot, first};
      if (value(first) == LBool::False) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return w.slot;
      }
      assign(first, w.slot);
    }
    ws.resize(j);
  }
  return kInvalidSlot;
}

Solver::DecideOutcome Solver::decide() {
  // Establish assumption levels first (one assumption per decision level).
  while (decision_level() < assumptions_.size()) {
    const Lit p = assumptions_[decision_level()];
    if (value(p) == LBool::True) {
      // Already implied: dedicate an empty pseudo-level so levels keep
      // lining up with assumption indices.
      trail_lim_.push_back(trail_.size());
      continue;
    }
    if (value(p) == LBool::False) return DecideOutcome::AssumptionFailed;
    ++stats_.decisions;
    trail_lim_.push_back(trail_.size());
    stats_.max_decision_level =
        std::max<std::uint64_t>(stats_.max_decision_level, decision_level());
    assign(p, kInvalidSlot);
    return DecideOutcome::Decided;
  }

  Var v = kInvalidVar;
  if (options_.random_decision_freq > 0.0 &&
      rng_.next_bool(options_.random_decision_freq)) {
    const Var cand = static_cast<Var>(rng_.next_below(num_vars()));
    if (assign_[cand] == LBool::Undef) v = cand;
  }
  while (v == kInvalidVar) {
    if (order_.empty()) return DecideOutcome::AllAssigned;
    const Var cand = order_.pop_max();
    if (assign_[cand] == LBool::Undef) v = cand;
  }
  ++stats_.decisions;
  trail_lim_.push_back(trail_.size());
  stats_.max_decision_level =
      std::max<std::uint64_t>(stats_.max_decision_level, decision_level());
  assign(Lit(v, !saved_phase_[v]), kInvalidSlot);
  return DecideOutcome::Decided;
}

void Solver::compute_failed_assumptions(Lit p) {
  // Which assumptions does the implication of ~p rest on? Mark the
  // antecedent cone of var(p) down the trail; decisions hit along the way
  // are exactly the responsible assumptions (level-0 implications carry no
  // assumption dependency and are skipped).
  failed_assumptions_.clear();
  failed_assumptions_.push_back(p);
  std::vector<Var> to_clear;
  seen_[p.var()] = true;
  to_clear.push_back(p.var());
  for (std::size_t i = trail_.size(); i-- > 0;) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (antecedent_[v] == kInvalidSlot) {
      if (v != p.var()) failed_assumptions_.push_back(trail_[i]);
      continue;
    }
    for (const Lit lit : db_[antecedent_[v]].lits) {
      const Var u = lit.var();
      if (u == v || level_[u] == 0 || seen_[u]) continue;
      seen_[u] = true;
      to_clear.push_back(u);
    }
  }
  for (const Var v : to_clear) seen_[v] = false;
}

void Solver::handle_failed_assumption(Lit p) {
  compute_failed_assumptions(p);
  if (trace_ == nullptr) return;
  // The proof of "formula refutes this assumption subset" starts from the
  // antecedent that implied ~p; the checker resolves its implied literals
  // away and is left with negated assumptions only.
  const ClauseSlot ante = antecedent_[p.var()];
  trace_->final_conflict(db_[ante].id);
  for (const Lit q : trail_) {
    const Var v = q.var();
    if (antecedent_[v] != kInvalidSlot) {
      trace_->level0(v, !q.negated(), db_[antecedent_[v]].id);
    } else {
      trace_->assumption(v, !q.negated());
    }
  }
  // The failed assumption itself: its variable is implied (to the opposite
  // value) on the trail, so only the assumed polarity is recorded here.
  trace_->assumption(p.var(), !p.negated());
  trace_->end();
}

void Solver::bump_clause(ClauseSlot slot) {
  DbClause& c = db_[slot];
  c.activity += static_cast<float>(clause_inc_);
  if (c.activity > 1e20f) {
    for (const ClauseSlot s : db_.live_slots()) {
      db_[s].activity *= 1e-20f;
    }
    clause_inc_ *= 1e-20;
  }
}

Solver::AnalysisResult Solver::analyze(ClauseSlot conflict) {
  AnalysisResult res;
  const bool want_sources = trace_ != nullptr;
  const bool eliminate0 = options_.eliminate_level0_lits;
  std::vector<Lit> others;   // literals below the current decision level
  std::vector<Lit> level0;   // level-0 literals queued for elimination
  std::vector<Var> to_clear;
  std::uint64_t resolutions = 0;

  if (want_sources) res.sources.push_back(db_[conflict].id);

  // Phase 1 (Fig. 2 of the paper): resolve the conflicting clause with the
  // antecedents of its current-level variables in reverse chronological
  // order until exactly one current-level literal remains (the 1UIP).
  std::uint32_t path_count = 0;
  Lit p = Lit::invalid();
  std::size_t idx = trail_.size();
  ClauseSlot cur = conflict;
  while (true) {
    DbClause& c = db_[cur];
    if (c.learned) bump_clause(cur);
    for (const Lit lit : c.lits) {
      const Var v = lit.var();
      if (p != Lit::invalid() && v == p.var()) continue;  // the pivot
      if (seen_[v]) continue;
      seen_[v] = true;
      to_clear.push_back(v);
      order_.bump(v);
      if (level_[v] == decision_level()) {
        ++path_count;
      } else if (level_[v] > 0 || !eliminate0) {
        others.push_back(lit);
      } else {
        level0.push_back(lit);
      }
    }
    do {
      --idx;
    } while (!seen_[trail_[idx].var()]);
    p = trail_[idx];
    seen_[p.var()] = false;
    --path_count;
    if (path_count == 0) break;
    cur = antecedent_[p.var()];
    ++resolutions;
    if (want_sources) res.sources.push_back(db_[cur].id);
  }

  // Phase 2: resolve away level-0 literals with their antecedents, again in
  // reverse chronological order so every step is a valid single-pivot
  // resolution. These extra steps go into the trace too, so the checker can
  // replay the learned clause exactly (SolverOptions::eliminate_level0_lits).
  if (eliminate0 && !level0.empty()) {
    std::priority_queue<std::pair<std::uint32_t, Lit>,
                        std::vector<std::pair<std::uint32_t, Lit>>>
        queue;
    for (const Lit lit : level0) queue.emplace(trail_pos_[lit.var()], lit);
    while (!queue.empty()) {
      const Lit lit = queue.top().second;
      queue.pop();
      const Var v = lit.var();
      const ClauseSlot ante = antecedent_[v];
      ++resolutions;
      ++stats_.level0_resolutions;
      if (want_sources) res.sources.push_back(db_[ante].id);
      for (const Lit l2 : db_[ante].lits) {
        const Var v2 = l2.var();
        if (v2 == v || seen_[v2]) continue;
        seen_[v2] = true;
        to_clear.push_back(v2);
        queue.emplace(trail_pos_[v2], l2);
      }
    }
  }

  for (const Var v : to_clear) seen_[v] = false;

  // Phase 3 (optional): conflict-clause minimization. A literal whose
  // antecedent's remaining literals all occur in the clause can be resolved
  // away without adding anything — one extra recorded resolution per
  // removal keeps the trace replayable. Removals are checked against the
  // *live* literal set (a removal can only disable later removals, never
  // enable them), so the recorded source order replays exactly.
  if (options_.minimize_learned && !others.empty()) {
    for (const Lit lit : others) in_clause_[lit.var()] = true;
    std::vector<Lit> kept;
    kept.reserve(others.size());
    for (const Lit lit : others) {
      const Var v = lit.var();
      const ClauseSlot ante = antecedent_[v];
      bool redundant = ante != kInvalidSlot;
      if (redundant) {
        for (const Lit l2 : db_[ante].lits) {
          if (l2.var() != v && !in_clause_[l2.var()]) {
            redundant = false;
            break;
          }
        }
      }
      if (redundant) {
        in_clause_[v] = false;
        ++resolutions;
        ++stats_.minimized_literals;
        if (want_sources) res.sources.push_back(db_[ante].id);
      } else {
        kept.push_back(lit);
      }
    }
    for (const Lit lit : kept) in_clause_[lit.var()] = false;
    others.swap(kept);
  }

  // Assemble the asserting clause: the flipped UIP literal first, then the
  // lower-level literals with the deepest one in the watch position 1.
  res.learned.reserve(others.size() + 1);
  res.learned.push_back(~p);
  std::uint32_t back_level = 0;
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < others.size(); ++i) {
    res.learned.push_back(others[i]);
    const std::uint32_t lvl = level_[others[i].var()];
    if (lvl > back_level) {
      back_level = lvl;
      deepest = i + 1;
    }
  }
  // deepest == 0 means every other literal sits at level 0 (possible only
  // when level-0 elimination is off): nothing outranks position 1, and
  // swapping would displace the asserting literal from position 0.
  if (res.learned.size() > 1 && deepest != 0) {
    std::swap(res.learned[1], res.learned[deepest]);
  }
  res.backtrack_level = back_level;
  res.reuse_conflict = resolutions == 0;
  return res;
}

bool Solver::clause_locked(ClauseSlot slot) const {
  const DbClause& c = db_[slot];
  for (const Lit lit : c.lits) {
    if (value(lit) == LBool::True && antecedent_[lit.var()] == slot) {
      return true;
    }
  }
  return false;
}

void Solver::reduce_learned_db() {
  std::vector<ClauseSlot> learned;
  for (const ClauseSlot s : db_.live_slots()) {
    if (db_[s].learned) learned.push_back(s);
  }
  std::sort(learned.begin(), learned.end(), [this](ClauseSlot a, ClauseSlot b) {
    return db_[a].activity < db_[b].activity;
  });
  const std::size_t target = learned.size() / 2;
  std::size_t removed = 0;
  for (const ClauseSlot s : learned) {
    if (removed >= target) break;
    // The paper (Section 2.1): clauses that are antecedents of currently
    // assigned variables must be kept, as they may appear in a future
    // resolution; binary clauses are cheap and valuable, keep them too.
    if (db_[s].lits.size() <= 2 || clause_locked(s)) continue;
    detach(s);
    if (drup_ != nullptr) drup_->delete_clause(db_[s].lits);
    db_.free(s);
    ++removed;
    ++stats_.deleted_clauses;
  }
}

void Solver::emit_unsat_trace(ClauseSlot conflict) {
  if (drup_ != nullptr) drup_->empty_clause();
  if (trace_ == nullptr) return;
  // Section 3.1 of the paper, items 2 and 3: record one final conflicting
  // clause, then every level-0 assignment with its antecedent, in
  // chronological order.
  trace_->final_conflict(db_[conflict].id);
  for (const Lit p : trail_) {
    trace_->level0(p.var(), !p.negated(), db_[antecedent_[p.var()]].id);
  }
  trace_->end();
}

SolveResult Solver::solve(std::span<const Lit> assumptions) {
  if (solved_) throw std::logic_error("Solver: solve() is single-shot");
  solved_ = true;

  assumptions_.assign(assumptions.begin(), assumptions.end());
  for (const Lit p : assumptions_) {
    if (p == Lit::invalid()) {
      throw std::invalid_argument("Solver: invalid assumption literal");
    }
    while (p.var() >= num_vars()) new_var();
  }
  {
    std::vector<bool> assumed_var(num_vars(), false);
    for (const Lit p : assumptions_) {
      if (assumed_var[p.var()]) {
        throw std::invalid_argument(
            "Solver: assumptions must be over distinct variables");
      }
      assumed_var[p.var()] = true;
    }
  }

  // In external-ID mode the trace header belongs to whoever assigned the
  // IDs (the preprocessor), and has been written already.
  if (trace_ != nullptr && !external_ids_) {
    trace_->begin(num_vars(), num_original_);
  }

  auto finish = [this](SolveResult r) {
    stats_.peak_clause_bytes = db_.mem().peak_bytes();
    return r;
  };

  // Preprocessing (Fig. 1 of the paper): assign unit clauses and run BCP at
  // decision level 0 before any branching.
  if (empty_clause_id_ != kInvalidClauseId) {
    if (trace_ != nullptr) {
      trace_->final_conflict(empty_clause_id_);
      trace_->end();
    }
    if (drup_ != nullptr) drup_->empty_clause();
    return finish(SolveResult::Unsatisfiable);
  }
  for (const ClauseSlot slot : pending_units_) {
    const Lit unit = db_[slot].lits[0];
    if (value(unit) == LBool::False) {
      // The unit clause's only literal is false: the clause itself is the
      // conflicting clause at level 0.
      emit_unsat_trace(slot);
      return finish(SolveResult::Unsatisfiable);
    }
    if (value(unit) == LBool::Undef) assign(unit, slot);
  }
  {
    const ClauseSlot confl = propagate();
    if (confl != kInvalidSlot) {
      emit_unsat_trace(confl);
      return finish(SolveResult::Unsatisfiable);
    }
  }

  std::uint64_t max_learned = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(static_cast<double>(num_original_) *
                                 options_.learned_size_factor),
      4000);
  std::uint64_t restart_limit = options_.restart_first;
  std::uint64_t conflicts_since_restart = 0;

  while (true) {
    const ClauseSlot confl = propagate();
    if (confl != kInvalidSlot) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        emit_unsat_trace(confl);
        return finish(SolveResult::Unsatisfiable);
      }
      AnalysisResult res = analyze(confl);
      backtrack(res.backtrack_level);
      ClauseSlot asserting_slot;
      if (res.reuse_conflict) {
        // The conflicting clause was already asserting: no resolution
        // happened, no clause is learned, and the conflicting clause itself
        // becomes the antecedent. Re-point its watches at the asserting
        // literal and the deepest remaining literal so the two-watch
        // invariant holds below the backtrack level.
        asserting_slot = confl;
        DbClause& c = db_[confl];
        if (c.lits.size() >= 2) {
          detach(confl);
          auto it = std::find(c.lits.begin(), c.lits.end(), res.learned[0]);
          std::iter_swap(c.lits.begin(), it);
          std::size_t deepest = 1;
          for (std::size_t k = 2; k < c.lits.size(); ++k) {
            if (level_[c.lits[k].var()] > level_[c.lits[deepest].var()]) {
              deepest = k;
            }
          }
          std::swap(c.lits[1], c.lits[deepest]);
          attach(confl);
        }
      } else {
        const ClauseId id = next_id_++;
        asserting_slot = db_.alloc(res.learned, id, /*learned=*/true);
        if (res.learned.size() >= 2) attach(asserting_slot);
        bump_clause(asserting_slot);
        ++stats_.learned_clauses;
        stats_.learned_literals += res.learned.size();
        if (trace_ != nullptr) trace_->derivation(id, res.sources);
        if (drup_ != nullptr) drup_->add_clause(res.learned);
      }
      assign(res.learned[0], asserting_slot);
      order_.decay(options_.var_decay);
      clause_inc_ /= options_.clause_decay;
      if (options_.conflict_budget != 0 &&
          stats_.conflicts >= options_.conflict_budget) {
        if (trace_ != nullptr) trace_->end();
        return finish(SolveResult::Unknown);
      }
      continue;
    }

    if (options_.enable_clause_deletion &&
        db_.num_learned() >= max_learned) {
      reduce_learned_db();
      max_learned = static_cast<std::uint64_t>(
          static_cast<double>(max_learned) * options_.learned_growth);
    }

    if (options_.enable_restarts &&
        conflicts_since_restart >= restart_limit) {
      conflicts_since_restart = 0;
      ++stats_.restarts;
      if (options_.restart_schedule ==
          SolverOptions::RestartSchedule::Geometric) {
        // Growing the restart period is what keeps the solver terminating
        // (paper, proof of Proposition 1).
        restart_limit = static_cast<std::uint64_t>(
            static_cast<double>(restart_limit) * options_.restart_inc);
      } else {
        restart_limit = options_.restart_first * luby(stats_.restarts);
      }
      backtrack(0);
      continue;
    }

    switch (decide()) {
      case DecideOutcome::Decided:
        break;
      case DecideOutcome::AllAssigned:
        // No free variable and no conflict: every clause is satisfied
        // (and every assumption holds — they were decided first).
        model_ = assign_;
        if (trace_ != nullptr) trace_->end();
        return finish(SolveResult::Satisfiable);
      case DecideOutcome::AssumptionFailed: {
        const Lit p = assumptions_[decision_level()];
        handle_failed_assumption(p);
        return finish(SolveResult::Unsatisfiable);
      }
    }
  }
}

}  // namespace satproof::solver
