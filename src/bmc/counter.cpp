#include "src/bmc/counter.hpp"

#include <stdexcept>

#include "src/circuit/words.hpp"

namespace satproof::bmc {

SequentialCircuit make_counter(unsigned width, std::uint64_t bad_value) {
  if (width == 0 || width > 63) {
    throw std::invalid_argument("make_counter: width must be in [1, 63]");
  }
  if (bad_value >= (std::uint64_t{1} << width)) {
    throw std::invalid_argument("make_counter: bad_value out of range");
  }

  SequentialCircuit seq;
  circuit::Netlist& n = seq.comb;

  circuit::Word state(width);
  for (auto& w : state) w = n.add_input();
  const circuit::Wire enable = n.add_input();

  const circuit::Word incremented = circuit::incrementer(n, state);
  circuit::Word next(width);
  for (unsigned i = 0; i < width; ++i) {
    next[i] = n.make_mux(enable, incremented[i], state[i]);
  }

  const circuit::Word target = circuit::constant_word(n, bad_value, width);
  seq.bad = circuit::word_equal(n, state, target);

  seq.registers.resize(width);
  for (unsigned i = 0; i < width; ++i) {
    seq.registers[i] = {state[i], next[i], false};
  }
  return seq;
}

}  // namespace satproof::bmc
