# Empty dependencies file for bmc_demo.
# This may be replaced when dependencies are built.
