# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("cnf")
subdirs("trace")
subdirs("solver")
subdirs("simplify")
subdirs("checker")
subdirs("proof")
subdirs("core")
subdirs("circuit")
subdirs("bmc")
subdirs("encode")
