#include "src/core/unsat_core.hpp"

#include <algorithm>
#include <set>

#include "src/checker/depth_first.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

namespace satproof::core {

CoreExtraction extract_core(const Formula& f,
                            const solver::SolverOptions& opts) {
  CoreExtraction out;

  solver::Solver solver(opts);
  solver.add_formula(f);
  trace::MemoryTraceWriter writer;
  solver.set_trace_writer(&writer);
  const solver::SolveResult res = solver.solve();
  if (res == solver::SolveResult::Satisfiable) {
    out.status = CoreStatus::Satisfiable;
    out.error = "formula is satisfiable; it has no unsatisfiable core";
    return out;
  }
  if (res == solver::SolveResult::Unknown) {
    out.status = CoreStatus::Unknown;
    out.error = "solver gave up before proving unsatisfiability";
    return out;
  }

  const trace::MemoryTrace trace = writer.take();
  trace::MemoryTraceReader reader(trace);
  const checker::CheckResult check = checker::check_depth_first(f, reader);
  if (!check.ok) {
    out.status = CoreStatus::CheckFailed;
    out.error = "proof check failed: " + check.error;
    return out;
  }

  out.ok = true;
  out.status = CoreStatus::Ok;
  out.core_ids = check.core;
  out.core = f.subformula(out.core_ids);
  out.num_vars_used = out.core.num_used_vars();
  return out;
}

CoreIteration iterate_core(const Formula& f, std::size_t max_iterations,
                           const solver::SolverOptions& opts) {
  CoreIteration out;
  out.steps.push_back({f.num_clauses(), f.num_used_vars()});

  Formula current = f;
  for (std::size_t i = 0; i < max_iterations; ++i) {
    CoreExtraction step = extract_core(current, opts);
    if (!step.ok) {
      // A core of an unsatisfiable formula is unsatisfiable by the Lemma of
      // Section 2.2; a SAT answer here means the input was satisfiable (or
      // a component is buggy) and must be surfaced, not iterated over.
      out.error =
          "iteration " + std::to_string(i + 1) + ": " + step.error;
      return out;
    }
    ++out.iterations;
    out.steps.push_back({step.core.num_clauses(), step.num_vars_used});
    const bool all_used = step.core.num_clauses() == current.num_clauses();
    current = std::move(step.core);
    if (all_used) {
      out.fixed_point = true;
      break;
    }
  }
  out.ok = true;
  out.final_core = std::move(current);
  return out;
}

MinimalCore minimal_core(const Formula& f, const solver::SolverOptions& opts) {
  MinimalCore out;

  // Start from the proof core: usually far smaller than the formula.
  CoreExtraction initial = extract_core(f, opts);
  ++out.solver_calls;
  if (!initial.ok) {
    out.error = initial.error;
    return out;
  }
  std::vector<ClauseId> current = std::move(initial.core_ids);

  // A clause proven necessary stays necessary for every unsatisfiable
  // subset (if S \ {c} is satisfiable then so is any subset of it), so the
  // `necessary` set never needs re-testing.
  std::set<ClauseId> necessary;
  while (true) {
    // Pick the next candidate not yet proven necessary.
    ClauseId candidate = kInvalidClauseId;
    for (const ClauseId id : current) {
      if (!necessary.contains(id)) {
        candidate = id;
        break;
      }
    }
    if (candidate == kInvalidClauseId) break;  // minimal

    std::vector<ClauseId> without;
    without.reserve(current.size() - 1);
    for (const ClauseId id : current) {
      if (id != candidate) without.push_back(id);
    }
    CoreExtraction step = extract_core(f.subformula(without), opts);
    ++out.solver_calls;
    if (step.ok) {
      // Still unsatisfiable without the candidate: adopt the (possibly much
      // smaller) new core, mapped back to the input formula's IDs.
      std::vector<ClauseId> mapped;
      mapped.reserve(step.core_ids.size());
      for (const ClauseId sub_id : step.core_ids) {
        mapped.push_back(without[sub_id]);
      }
      current = std::move(mapped);
    } else if (step.status == CoreStatus::Satisfiable) {
      necessary.insert(candidate);
    } else {
      out.error = step.error;  // budget exhausted or a checking failure
      return out;
    }
  }

  std::sort(current.begin(), current.end());
  out.core_ids = std::move(current);
  out.core = f.subformula(out.core_ids);
  out.ok = true;
  return out;
}

}  // namespace satproof::core
