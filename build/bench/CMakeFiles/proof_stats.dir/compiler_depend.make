# Empty compiler generated dependencies file for proof_stats.
# This may be replaced when dependencies are built.
