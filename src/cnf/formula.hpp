#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/cnf/types.hpp"

namespace satproof {

/// A CNF formula: a conjunction of clauses over variables [0, num_vars).
///
/// Clause storage is a flat literal pool plus per-clause offsets, so a
/// million-clause instance is two contiguous allocations. Clause IDs are
/// the order of appearance, which is exactly the numbering contract the
/// solver and checker share (paper Section 3.1).
class Formula {
 public:
  Formula() = default;

  /// Creates a formula with `num_vars` variables and no clauses.
  explicit Formula(Var num_vars) : num_vars_(num_vars) {}

  /// Number of variables. Variables may be unused by any clause (the paper
  /// notes the same about the DIMACS headers of its benchmarks).
  [[nodiscard]] Var num_vars() const { return num_vars_; }

  /// Number of clauses; also the first ID available for learned clauses.
  [[nodiscard]] std::size_t num_clauses() const { return offsets_.size(); }

  /// Ensures the variable range covers `var`.
  void ensure_var(Var var) {
    if (var >= num_vars_) num_vars_ = var + 1;
  }

  /// Appends a clause and returns its ID. Literals are stored verbatim
  /// (no sorting, no deduplication); the clause may be empty.
  ClauseId add_clause(std::span<const Lit> lits);

  /// Convenience overload for brace-enclosed literal lists.
  ClauseId add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// The literals of clause `id`. `id` must be < num_clauses().
  [[nodiscard]] std::span<const Lit> clause(ClauseId id) const;

  /// Total number of stored literals across all clauses.
  [[nodiscard]] std::size_t num_literals() const { return pool_.size(); }

  /// Number of distinct variables that occur in at least one clause. The
  /// paper's Table 3 counts involved variables this way.
  [[nodiscard]] std::size_t num_used_vars() const;

  /// Builds a sub-formula from the clauses in `ids` (in the given order),
  /// preserving the variable numbering. Used by the iterative unsat-core
  /// procedure of Table 3.
  [[nodiscard]] Formula subformula(std::span<const ClauseId> ids) const;

 private:
  Var num_vars_ = 0;
  std::vector<Lit> pool_;
  std::vector<std::uint64_t> offsets_;  // start of each clause in pool_
  std::vector<std::uint32_t> sizes_;    // length of each clause
};

}  // namespace satproof
