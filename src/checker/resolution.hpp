#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/cnf/types.hpp"

namespace satproof::checker {

/// A clause in checker-canonical form: literals sorted by code, duplicates
/// removed. Canonical form makes resolution a linear merge and makes
/// clause equality a vector comparison. The replay hot path stores derived
/// clauses merely duplicate-free (ChainResolver order) — see ClauseStore —
/// and canonicalizes only where sortedness is observable.
using SortedClause = std::vector<Lit>;

/// Canonicalizes an arbitrary literal sequence.
[[nodiscard]] SortedClause canonicalize(std::span<const Lit> lits);

/// True when the (sorted) clause contains some variable in both phases.
/// Tautological clauses are permanently satisfied and must not appear as
/// resolution sources; the checkers reject traces that reference one.
[[nodiscard]] bool is_tautology(const SortedClause& clause);

/// Outcome of attempting to resolve two clauses.
enum class ResolveStatus : std::uint8_t {
  Ok,          ///< exactly one clashing variable; resolvent produced
  NoClash,     ///< no variable occurs in both clauses with opposite phases
  MultiClash,  ///< more than one clashing variable (resolvent tautological)
};

/// Result of resolve().
struct ResolveResult {
  ResolveStatus status = ResolveStatus::NoClash;
  Var pivot = kInvalidVar;  ///< the clashing variable when status == Ok
};

/// Resolves two canonical clauses.
///
/// This is the checker's trusted kernel. Following Section 2.1 of the
/// paper, two clauses may be resolved only when *exactly one* variable
/// appears in both with different phases; the resolvent is the disjunction
/// of the remaining literals. Zero clashing variables means the trace asked
/// for a resolution that is not one; two or more means the resolvent would
/// be tautological and the inference chain is broken. Both are reported
/// rather than silently accepted — the checker must not be as trusting as
/// the solver it validates.
///
/// `out` receives the canonical resolvent when the status is Ok; otherwise
/// it is left empty. `a`, `b` and `out` must be distinct objects.
ResolveResult resolve(const SortedClause& a, const SortedClause& b,
                      SortedClause& out);

/// Incremental resolution over a chain of clauses.
///
/// Replaying a derivation left-folds resolution over its sources; doing
/// that with sorted merges costs O(steps * clause length), which on
/// circuit-style instances with long learned clauses makes the checker as
/// slow as the solver — the opposite of the paper's measurement that
/// checking is always much cheaper than solving. ChainResolver keeps the
/// running clause as a literal set with per-literal presence marks (the
/// same trick conflict analysis uses inside the solver), so each step costs
/// O(|next source|) and a whole derivation costs O(total source length).
///
/// Data layout: one flat u64 mark per literal code — the current epoch tag
/// in the high half, the literal's position in the running clause in the
/// low half — so a presence probe is a single load and a compare, and
/// clearing between chains is an epoch bump, never a memset. The clash
/// scan in step() accumulates with conditional moves instead of branching
/// per literal, which keeps the pipeline full on the replay hot loop where
/// clashes are one-in-a-clause events.
///
/// The validity checks are identical to resolve(): each step must clash on
/// exactly one variable.
///
/// One ChainResolver should be reused across derivations; its mark array
/// grows to 2 * num_vars once (reserve_vars() pre-grows it) and is
/// epoch-invalidated, not cleared.
class ChainResolver {
 public:
  /// Pre-sizes the mark array for literals of variables in [0, num_vars),
  /// so no chain over in-range literals ever grows mid-replay. Purely an
  /// optimization; start()/step() grow on demand regardless.
  void reserve_vars(Var num_vars) {
    const std::size_t want = 2 * static_cast<std::size_t>(num_vars) + 2;
    if (marks_.size() < want) marks_.resize(want, 0);
  }

  /// Begins a chain with `first` as the running clause. `first` must be
  /// duplicate-free (canonical clauses are).
  void start(std::span<const Lit> first) {
    bump_epoch();
    lits_.clear();
    std::uint32_t max_code = 0;
    for (const Lit lit : first) max_code = std::max(max_code, lit.code());
    grow_to_code(max_code);
    for (const Lit lit : first) insert(lit);
  }

  /// Resolves the running clause with `next`. On MultiClash/NoClash the
  /// running clause is left unspecified and the chain must be restarted.
  ///
  /// Defined inline (along with start() and the mark helpers): the replay
  /// hot loop makes one step() call per trace resolution — hundreds of
  /// thousands per check — and on short-chain traces the per-call overhead
  /// of an out-of-line kernel rivals the per-literal work itself.
  ResolveResult step(std::span<const Lit> next) {
    ResolveResult res;
    if (next.empty()) {
      res.status = ResolveStatus::NoClash;
      return res;
    }

    // Pass 1: clash scan. Clashes are one-in-a-clause events on the replay
    // hot loop, so accumulate count / first / last with conditional moves
    // instead of branching per literal. The bounds check folds into the
    // scan: marks_ is kept at an even size, so `c < limit` licenses the
    // complement probe `marks[c ^ 1]` too, and with reserve_vars() the grow
    // branch never fires in steady state.
    const std::uint64_t tag = tag_of(epoch_);
    std::size_t limit = marks_.size();
    const std::uint64_t* marks = marks_.data();
    std::uint32_t clashes = 0;
    std::uint32_t first_code = 0;
    std::uint32_t last_code = 0;
    for (const Lit lit : next) {
      const std::uint32_t c = lit.code();
      if (c >= limit) [[unlikely]] {
        grow_to_code(c | 1u);
        limit = marks_.size();
        marks = marks_.data();
      }
      const bool hit = (marks[c ^ 1u] & kEpochMask) == tag;
      first_code = (hit && clashes == 0) ? c : first_code;
      last_code = hit ? c : last_code;
      clashes += hit;
    }

    if (clashes == 0) {
      res.status = ResolveStatus::NoClash;
      return res;
    }
    const Var pivot = Lit::from_code(first_code).var();
    if (Lit::from_code(last_code).var() != pivot) {
      // Two clashes on distinct variables. (Distinct middle clash variables
      // with matching first/last are caught by the pivot count below: they
      // require the pivot variable to occur at least twice in `next`.)
      res.status = ResolveStatus::MultiClash;
      return res;
    }
    // The running clause must hold the pivot in exactly one phase, same as
    // resolve(): resolving "through" a tautology is not a valid inference.
    const std::uint32_t pos_code = Lit::pos(pivot).code();
    const bool has_pos = (marks[pos_code] & kEpochMask) == tag;
    const bool has_neg = (marks[pos_code | 1u] & kEpochMask) == tag;
    if (has_pos && has_neg) {
      res.status = ResolveStatus::MultiClash;
      return res;
    }

    // Pass 2: merge fused with the pivot count. On a count violation the
    // running clause has already been touched — the contract leaves it
    // unspecified after a failed step, so the mutation needs no undo.
    // Every code was bounds-checked in pass 1, so this pass indexes the
    // (possibly regrown) table through a raw pointer.
    erase(has_pos ? Lit::pos(pivot) : Lit::neg(pivot));
    std::uint64_t* const m = marks_.data();
    std::uint32_t pivot_count = 0;
    for (const Lit lit : next) {
      if (lit.var() == pivot) {
        ++pivot_count;
        continue;
      }
      const std::uint32_t c = lit.code();
      if ((m[c] & kEpochMask) != tag) {
        m[c] = tag | static_cast<std::uint32_t>(lits_.size());
        lits_.push_back(lit);
      }
    }
    if (pivot_count != 1) {
      res.status = ResolveStatus::MultiClash;
      return res;
    }
    res.status = ResolveStatus::Ok;
    res.pivot = pivot;
    return res;
  }

  /// Current literals of the running clause, in unspecified order,
  /// duplicate-free. Valid until the next start()/step().
  [[nodiscard]] std::span<const Lit> lits() const {
    return {lits_.data(), lits_.size()};
  }

  /// Mutable access to the running clause's literals, for callers that
  /// reorder in place and then copy the result elsewhere (e.g. into a
  /// clause arena) without the allocation take() implies. Reordering is
  /// safe: start() rebuilds the position marks from scratch. The span is
  /// invalidated — and its contents are unspecified — after the next
  /// start()/step()/take().
  [[nodiscard]] std::span<Lit> lits_mutable() {
    return {lits_.data(), lits_.size()};
  }

  /// Moves the running clause out (unsorted, duplicate-free).
  [[nodiscard]] std::vector<Lit> take() {
    // Invalidate the marks so a future start() sees an empty set.
    bump_epoch();
    return std::move(lits_);
  }

 private:
  /// Mark layout: current-epoch tag in bits 63..32, position in bits 31..0.
  [[nodiscard]] static constexpr std::uint64_t tag_of(std::uint32_t epoch) {
    return static_cast<std::uint64_t>(epoch) << 32;
  }

  [[nodiscard]] bool present(Lit lit) const {
    const std::uint32_t c = lit.code();
    return c < marks_.size() && (marks_[c] & kEpochMask) == tag_of(epoch_);
  }

  void insert(Lit lit) {
    marks_[lit.code()] =
        tag_of(epoch_) | static_cast<std::uint32_t>(lits_.size());
    lits_.push_back(lit);
  }

  void erase(Lit lit) {
    const auto i = static_cast<std::uint32_t>(marks_[lit.code()]);
    const Lit last = lits_.back();
    lits_[i] = last;
    marks_[last.code()] = tag_of(epoch_) | i;
    lits_.pop_back();
    marks_[lit.code()] = 0;
  }

  void grow_to_code(std::uint32_t code) {
    if (code < marks_.size()) return;
    // Always land on an even size so covering a code covers its complement
    // too (step() relies on this to probe marks_[c ^ 1] unchecked); grow
    // geometrically so a rising code sequence costs amortized O(1).
    const std::size_t want = (static_cast<std::size_t>(code) | 1) + 1;
    marks_.resize(std::max(want, marks_.size() * 2), 0);
  }

  void bump_epoch() {
    if (++epoch_ == 0) {
      // A wrapped epoch would alias tags left by chains 2^32 bumps ago (and
      // the zero-initialized marks). Wipe once and restart; this is a
      // once-per-4-billion-chains event.
      std::fill(marks_.begin(), marks_.end(), 0);
      epoch_ = 1;
    }
  }

  static constexpr std::uint64_t kEpochMask = 0xffffffff00000000ull;

  std::vector<Lit> lits_;
  std::vector<std::uint64_t> marks_;  // per literal code: epoch<<32 | pos
  std::uint32_t epoch_ = 0;
};

}  // namespace satproof::checker
