#pragma once

#include <iosfwd>

#include "src/proof/proof_dag.hpp"

namespace satproof::proof {

/// Options for Graphviz export.
struct DotOptions {
  /// Emit at most this many nodes (proofs grow to millions of nodes; the
  /// default keeps graphs renderable). Nodes closest to the root win.
  std::size_t max_nodes = 512;
  /// Print clause literals inside the nodes (off: just IDs).
  bool show_literals = true;
};

/// Writes the proof DAG in Graphviz dot format: leaves are boxes, derived
/// clauses ellipses, the empty-clause root a double circle; edges point
/// from sources to resolvents.
void write_dot(std::ostream& out, const ProofDag& dag,
               const DotOptions& options = {});

/// Writes the proof in the TraceCheck-style text format used by
/// independent proof tools (one line per clause):
///
///     <id> <lit>* 0 <antecedent-id>* 0
///
/// with 1-based clause IDs and DIMACS literals. Original clauses have an
/// empty antecedent list; the last line is the empty clause. This makes
/// proofs produced here consumable by third-party resolution checkers —
/// interoperability in the spirit of the paper's "independent checker"
/// argument: the more independent implementations agree, the stronger the
/// validation.
void write_tracecheck(std::ostream& out, const ProofDag& dag);

}  // namespace satproof::proof
