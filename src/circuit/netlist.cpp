#include "src/circuit/netlist.hpp"

#include <stdexcept>

namespace satproof::circuit {

Wire Netlist::add_gate(GateKind kind, Wire a, Wire b, Wire c) {
  const Wire w = static_cast<Wire>(gates_.size());
  for (const Wire fanin : {a, b, c}) {
    if (fanin != kInvalidWire && fanin >= w) {
      throw std::invalid_argument("Netlist: gate fanin must already exist");
    }
  }
  gates_.push_back({kind, a, b, c});
  return w;
}

Wire Netlist::add_input() {
  const Wire w = add_gate(GateKind::Input);
  inputs_.push_back(w);
  return w;
}

Wire Netlist::constant(bool value) {
  Wire& cached = value ? const_true_ : const_false_;
  if (cached == kInvalidWire) {
    cached = add_gate(value ? GateKind::ConstTrue : GateKind::ConstFalse);
  }
  return cached;
}

Wire Netlist::make_not(Wire a) { return add_gate(GateKind::Not, a); }
Wire Netlist::make_and(Wire a, Wire b) { return add_gate(GateKind::And, a, b); }
Wire Netlist::make_or(Wire a, Wire b) { return add_gate(GateKind::Or, a, b); }
Wire Netlist::make_xor(Wire a, Wire b) { return add_gate(GateKind::Xor, a, b); }

Wire Netlist::make_mux(Wire sel, Wire if_true, Wire if_false) {
  return add_gate(GateKind::Mux, sel, if_true, if_false);
}

Wire Netlist::reduce_and(std::span<const Wire> wires) {
  if (wires.empty()) return constant(true);
  // Balanced reduction keeps the tree depth logarithmic.
  std::vector<Wire> level(wires.begin(), wires.end());
  while (level.size() > 1) {
    std::vector<Wire> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(make_and(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level.swap(next);
  }
  return level[0];
}

Wire Netlist::reduce_or(std::span<const Wire> wires) {
  if (wires.empty()) return constant(false);
  std::vector<Wire> level(wires.begin(), wires.end());
  while (level.size() > 1) {
    std::vector<Wire> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(make_or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level.swap(next);
  }
  return level[0];
}

std::vector<Wire> copy_into(Netlist& dst, const Netlist& src,
                            const std::vector<Wire>& input_map) {
  std::vector<Wire> map(src.num_wires(), kInvalidWire);
  for (Wire w = 0; w < src.num_wires(); ++w) {
    const Gate& g = src.gate(w);
    switch (g.kind) {
      case GateKind::Input:
        if (w >= input_map.size() || input_map[w] == kInvalidWire) {
          throw std::invalid_argument("copy_into: unmapped primary input");
        }
        map[w] = input_map[w];
        break;
      case GateKind::ConstFalse:
        map[w] = dst.constant(false);
        break;
      case GateKind::ConstTrue:
        map[w] = dst.constant(true);
        break;
      case GateKind::Not:
        map[w] = dst.make_not(map[g.a]);
        break;
      case GateKind::And:
        map[w] = dst.make_and(map[g.a], map[g.b]);
        break;
      case GateKind::Or:
        map[w] = dst.make_or(map[g.a], map[g.b]);
        break;
      case GateKind::Xor:
        map[w] = dst.make_xor(map[g.a], map[g.b]);
        break;
      case GateKind::Mux:
        map[w] = dst.make_mux(map[g.a], map[g.b], map[g.c]);
        break;
    }
  }
  return map;
}

std::vector<bool> Netlist::simulate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("Netlist::simulate: input count mismatch");
  }
  std::vector<bool> value(gates_.size(), false);
  std::size_t next_input = 0;
  for (Wire w = 0; w < gates_.size(); ++w) {
    const Gate& g = gates_[w];
    switch (g.kind) {
      case GateKind::ConstFalse:
        value[w] = false;
        break;
      case GateKind::ConstTrue:
        value[w] = true;
        break;
      case GateKind::Input:
        value[w] = input_values[next_input++];
        break;
      case GateKind::Not:
        value[w] = !value[g.a];
        break;
      case GateKind::And:
        value[w] = value[g.a] && value[g.b];
        break;
      case GateKind::Or:
        value[w] = value[g.a] || value[g.b];
        break;
      case GateKind::Xor:
        value[w] = value[g.a] != value[g.b];
        break;
      case GateKind::Mux:
        value[w] = value[g.a] ? value[g.b] : value[g.c];
        break;
    }
  }
  return value;
}

}  // namespace satproof::circuit
