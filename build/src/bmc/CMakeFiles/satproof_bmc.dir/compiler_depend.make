# Empty compiler generated dependencies file for satproof_bmc.
# This may be replaced when dependencies are built.
