// Unit tests for the CDCL solver: small instances with known answers,
// trace invariants, options, and the clause database / VSIDS heap.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cnf/model.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/solver/clause_db.hpp"
#include "src/solver/solver.hpp"
#include "src/solver/var_order.hpp"
#include "src/trace/memory.hpp"

namespace satproof::solver {
namespace {

SolveResult solve(const Formula& f, Solver& s) {
  s.add_formula(f);
  return s.solve();
}

TEST(Solver, EmptyFormulaIsSatisfiable) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(Solver, EmptyClauseIsUnsatisfiable) {
  Formula f;
  f.add_clause(std::initializer_list<Lit>{});
  Solver s;
  EXPECT_EQ(solve(f, s), SolveResult::Unsatisfiable);
}

TEST(Solver, SingleUnitClause) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  Solver s;
  ASSERT_EQ(solve(f, s), SolveResult::Satisfiable);
  EXPECT_EQ(s.model()[0], LBool::True);
}

TEST(Solver, ContradictoryUnitsUnsat) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  Solver s;
  EXPECT_EQ(solve(f, s), SolveResult::Unsatisfiable);
}

TEST(Solver, ChainPropagationUnsat) {
  // x0, x0->x1, x1->x2, ~x2: UNSAT purely by BCP at level 0.
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0), Lit::pos(1)});
  f.add_clause({Lit::neg(1), Lit::pos(2)});
  f.add_clause({Lit::neg(2)});
  Solver s;
  EXPECT_EQ(solve(f, s), SolveResult::Unsatisfiable);
  EXPECT_EQ(s.stats().conflicts, 0u);
}

TEST(Solver, AllModelsVariablesAssigned) {
  Formula f(5);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  Solver s;
  ASSERT_EQ(solve(f, s), SolveResult::Satisfiable);
  ASSERT_EQ(s.model().size(), 5u);
  for (const LBool v : s.model()) EXPECT_NE(v, LBool::Undef);
  EXPECT_TRUE(satisfies(f, s.model()));
}

TEST(Solver, DuplicateLiteralClauseBehavesAsUnit) {
  Formula f;
  f.add_clause({Lit::pos(1), Lit::pos(1)});
  f.add_clause({Lit::neg(1)});
  Solver s;
  EXPECT_EQ(solve(f, s), SolveResult::Unsatisfiable);
}

TEST(Solver, TautologicalClauseIgnored) {
  Formula f;
  f.add_clause({Lit::pos(0), Lit::neg(0)});  // permanently satisfied
  f.add_clause({Lit::pos(1)});
  Solver s;
  ASSERT_EQ(solve(f, s), SolveResult::Satisfiable);
  EXPECT_TRUE(satisfies(f, s.model()));
}

TEST(Solver, PigeonholeNeedsSearch) {
  Solver s;
  ASSERT_EQ(solve(encode::pigeonhole(4), s), SolveResult::Unsatisfiable);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().learned_clauses, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
}

TEST(Solver, SatisfiablePigeonholeVariant) {
  // n pigeons in n holes is satisfiable.
  Formula f;
  const unsigned n = 4;
  for (unsigned i = 0; i < n; ++i) {
    std::vector<Lit> c;
    for (unsigned j = 0; j < n; ++j) {
      c.push_back(Lit::pos(static_cast<Var>(i * n + j)));
    }
    f.add_clause(c);
  }
  for (unsigned j = 0; j < n; ++j) {
    for (unsigned i1 = 0; i1 < n; ++i1) {
      for (unsigned i2 = i1 + 1; i2 < n; ++i2) {
        f.add_clause({Lit::neg(static_cast<Var>(i1 * n + j)),
                      Lit::neg(static_cast<Var>(i2 * n + j))});
      }
    }
  }
  Solver s;
  ASSERT_EQ(solve(f, s), SolveResult::Satisfiable);
  EXPECT_TRUE(satisfies(f, s.model()));
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  SolverOptions opts;
  opts.conflict_budget = 1;
  Solver s(opts);
  EXPECT_EQ(solve(encode::pigeonhole(5), s), SolveResult::Unknown);
}

TEST(Solver, SolveIsSingleShot) {
  Solver s;
  ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_THROW((void)s.solve(), std::logic_error);
}

TEST(Solver, AddClauseAfterSolveThrows) {
  Solver s;
  (void)s.solve();
  const Lit lits[] = {Lit::pos(0)};
  EXPECT_THROW(s.add_clause(lits), std::logic_error);
}

TEST(Solver, WorksWithoutRestartsAndDeletion) {
  SolverOptions opts;
  opts.enable_restarts = false;
  opts.enable_clause_deletion = false;
  Solver s(opts);
  EXPECT_EQ(solve(encode::pigeonhole(5), s), SolveResult::Unsatisfiable);
  EXPECT_EQ(s.stats().restarts, 0u);
  EXPECT_EQ(s.stats().deleted_clauses, 0u);
}

TEST(Solver, RestartsHappenOnHardInstances) {
  SolverOptions opts;
  opts.restart_first = 10;
  Solver s(opts);
  EXPECT_EQ(solve(encode::pigeonhole(6), s), SolveResult::Unsatisfiable);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(Solver, ClauseDeletionKicksIn) {
  SolverOptions opts;
  opts.learned_size_factor = 0.001;  // force an early, tiny learned limit
  Solver s(opts);
  // The limit floors at 4000 learned clauses, so use an instance that
  // learns more than that.
  EXPECT_EQ(solve(encode::pigeonhole(7), s), SolveResult::Unsatisfiable);
  EXPECT_GT(s.stats().deleted_clauses, 0u);
}

TEST(Solver, KeepLevel0LiteralsOptionStillCorrect) {
  SolverOptions opts;
  opts.eliminate_level0_lits = false;
  Solver s(opts);
  EXPECT_EQ(solve(encode::pigeonhole(5), s), SolveResult::Unsatisfiable);
}

TEST(Solver, MinimizationShortensLearnedClauses) {
  solver::SolverOptions plain;
  Solver s_plain(plain);
  ASSERT_EQ(solve(encode::pigeonhole(6), s_plain),
            SolveResult::Unsatisfiable);

  solver::SolverOptions min;
  min.minimize_learned = true;
  Solver s_min(min);
  ASSERT_EQ(solve(encode::pigeonhole(6), s_min), SolveResult::Unsatisfiable);

  EXPECT_GT(s_min.stats().minimized_literals, 0u);
  // Average learned-clause length must not grow with minimization on.
  const double avg_plain =
      static_cast<double>(s_plain.stats().learned_literals) /
      static_cast<double>(s_plain.stats().learned_clauses);
  const double avg_min =
      static_cast<double>(s_min.stats().learned_literals) /
      static_cast<double>(s_min.stats().learned_clauses);
  EXPECT_LE(avg_min, avg_plain);
}

TEST(Solver, LubyRestartsStillComplete) {
  SolverOptions opts;
  opts.restart_schedule = SolverOptions::RestartSchedule::Luby;
  opts.restart_first = 8;
  Solver s(opts);
  EXPECT_EQ(solve(encode::pigeonhole(6), s), SolveResult::Unsatisfiable);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(Solver, RandomDecisionsStillComplete) {
  SolverOptions opts;
  opts.random_decision_freq = 0.3;
  Solver s(opts);
  EXPECT_EQ(solve(encode::pigeonhole(5), s), SolveResult::Unsatisfiable);
}

TEST(Solver, StatsPopulatedAfterSearch) {
  Solver s;
  ASSERT_EQ(solve(encode::pigeonhole(5), s), SolveResult::Unsatisfiable);
  const SolverStats& st = s.stats();
  EXPECT_GT(st.propagations, 0u);
  EXPECT_GT(st.max_decision_level, 0u);
  EXPECT_GT(st.peak_clause_bytes, 0u);
  EXPECT_GT(st.learned_literals, st.learned_clauses);
}

TEST(Solver, TraceEmittedOnlyOnUnsat) {
  // SAT run: trace has derivations maybe, but no final conflict.
  Formula sat(2);
  sat.add_clause({Lit::pos(0), Lit::pos(1)});
  Solver s1;
  trace::MemoryTraceWriter w1;
  s1.set_trace_writer(&w1);
  s1.add_formula(sat);
  ASSERT_EQ(s1.solve(), SolveResult::Satisfiable);
  EXPECT_FALSE(w1.trace().has_final);
  EXPECT_TRUE(w1.trace().finished);

  Solver s2;
  trace::MemoryTraceWriter w2;
  s2.set_trace_writer(&w2);
  s2.add_formula(encode::pigeonhole(4));
  ASSERT_EQ(s2.solve(), SolveResult::Unsatisfiable);
  EXPECT_TRUE(w2.trace().has_final);
}

TEST(Solver, TraceDerivationIdsAreFreshAndOrdered) {
  Solver s;
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  s.add_formula(encode::pigeonhole(5));
  ASSERT_EQ(s.solve(), SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  ClauseId prev = t.num_original - 1;
  for (const auto& d : t.derivations) {
    EXPECT_GT(d.id, prev);
    prev = d.id;
    EXPECT_GE(d.sources.size(), 2u);
    for (const ClauseId src : d.sources) EXPECT_LT(src, d.id);
  }
}

TEST(Solver, TraceLevel0AssignmentsAreUniqueWithAntecedents) {
  Solver s;
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  s.add_formula(encode::pigeonhole(5));
  ASSERT_EQ(s.solve(), SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  std::vector<bool> seen(t.num_vars, false);
  for (const auto& a : t.level0) {
    ASSERT_LT(a.var, t.num_vars);
    EXPECT_FALSE(seen[a.var]);
    seen[a.var] = true;
    EXPECT_NE(a.antecedent, kInvalidClauseId);
  }
}

TEST(Solver, ExternalIdModeBasics) {
  Solver s;
  s.begin_external_ids(3);
  const Lit c0[] = {Lit::pos(0), Lit::pos(1)};
  const Lit c1[] = {Lit::neg(0)};
  const Lit c2[] = {Lit::neg(1)};
  s.add_clause_with_id(c0, 0);
  s.add_clause_with_id(c1, 1);
  // Skip ID 2 (a "derived then discarded" clause) and add one beyond.
  s.add_clause_with_id(c2, 5);
  s.reserve_clause_ids(10);

  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  // In external mode the caller owns the header: the solver must not have
  // written begin() (num_vars stays 0 in the memory trace).
  EXPECT_EQ(t.num_vars, 0u);
  // Learned IDs start after the reservation.
  for (const auto& d : t.derivations) EXPECT_GE(d.id, 10u);
}

TEST(Solver, ExternalIdModeRejectsMisuse) {
  Solver s;
  const Lit c[] = {Lit::pos(0)};
  EXPECT_THROW(s.add_clause_with_id(c, 0), std::logic_error);
  EXPECT_THROW(s.reserve_clause_ids(5), std::logic_error);
  (void)s.add_clause(c);
  EXPECT_THROW(s.begin_external_ids(1), std::logic_error);

  Solver s2;
  s2.begin_external_ids(2);
  EXPECT_THROW((void)s2.add_clause(c), std::logic_error);
  s2.add_clause_with_id(c, 1);
  EXPECT_THROW(s2.add_clause_with_id(c, 0), std::logic_error);  // not increasing
}

TEST(ClauseDb, AllocFreeRecyclesSlots) {
  ClauseDb db;
  const Lit lits[] = {Lit::pos(0), Lit::neg(1)};
  const ClauseSlot a = db.alloc(lits, 0, false);
  const ClauseSlot b = db.alloc(lits, 1, true);
  EXPECT_NE(a, b);
  EXPECT_EQ(db.num_learned(), 1u);
  EXPECT_GT(db.mem().current_bytes(), 0u);
  db.free(b);
  EXPECT_EQ(db.num_learned(), 0u);
  const ClauseSlot c = db.alloc(lits, 2, true);
  EXPECT_EQ(c, b);  // slot recycled
  EXPECT_EQ(db[c].id, 2u);
}

TEST(ClauseDb, LiveSlotsSkipsFreed) {
  ClauseDb db;
  const Lit lits[] = {Lit::pos(0)};
  const ClauseSlot a = db.alloc(lits, 0, false);
  const ClauseSlot b = db.alloc(lits, 1, false);
  db.free(a);
  const auto live = db.live_slots();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], b);
}

TEST(VarOrder, PopsInActivityOrder) {
  VarOrder o;
  o.grow_to(4);
  o.bump(2);
  o.bump(2);
  o.bump(1);
  EXPECT_EQ(o.pop_max(), 2u);
  EXPECT_EQ(o.pop_max(), 1u);
  // Remaining two have zero activity; both must eventually come out.
  const Var a = o.pop_max();
  const Var b = o.pop_max();
  EXPECT_TRUE((a == 0 && b == 3) || (a == 3 && b == 0));
  EXPECT_TRUE(o.empty());
}

TEST(VarOrder, ReinsertAndContains) {
  VarOrder o;
  o.grow_to(3);
  EXPECT_TRUE(o.contains(0));
  const Var popped = o.pop_max();  // ties broken arbitrarily
  EXPECT_FALSE(o.contains(popped));
  o.insert(popped);
  EXPECT_TRUE(o.contains(popped));
  o.insert(popped);  // idempotent
  int count = 0;
  while (!o.empty()) {
    o.pop_max();
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(VarOrder, DecayPreservesRelativeOrder) {
  VarOrder o;
  o.grow_to(2);
  o.bump(0);
  o.decay(0.5);
  o.bump(1);  // later bumps weigh more after decay
  EXPECT_EQ(o.pop_max(), 1u);
}

TEST(VarOrder, RescaleKeepsWorking) {
  VarOrder o;
  o.grow_to(2);
  for (int i = 0; i < 100000; ++i) {
    o.decay(0.5);  // inc explodes quickly, forcing rescales on bump
    o.bump(i % 2 == 0 ? 0u : 1u);
  }
  EXPECT_TRUE(o.contains(0));
  EXPECT_TRUE(o.contains(1));
  const double a0 = o.activity(0), a1 = o.activity(1);
  EXPECT_TRUE(std::isfinite(a0));
  EXPECT_TRUE(std::isfinite(a1));
}

}  // namespace
}  // namespace satproof::solver
