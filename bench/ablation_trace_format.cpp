// Ablation A: trace format. Section 4 of the paper observes that the
// human-readable ASCII trace is "not very space-efficient", predicts a
// 2-3x compaction from a binary encoding, and notes that a significant
// share of checker runtime goes into parsing the ASCII format. This
// harness quantifies both effects with the delta-coded varint format.

#include <fstream>
#include <iostream>

#include "src/checker/breadth_first.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "ASCII (KB)", "Binary (KB)", "Compaction",
                     "BF Check ASCII (s)", "BF Check Binary (s)", "Speedup"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    util::TempFile ascii_file("fmt-ascii");
    util::TempFile binary_file("fmt-bin");

    // Solve twice so each writer sees an identical clean run (the search is
    // deterministic, so both traces describe the same proof).
    for (int pass = 0; pass < 2; ++pass) {
      solver::Solver s;
      s.add_formula(inst.formula);
      std::ofstream out(pass == 0 ? ascii_file.path() : binary_file.path(),
                        pass == 0 ? std::ios::out
                                  : std::ios::out | std::ios::binary);
      trace::AsciiTraceWriter wa(out);
      trace::BinaryTraceWriter wb(out);
      s.set_trace_writer(pass == 0 ? static_cast<trace::TraceWriter*>(&wa)
                                   : &wb);
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
        return 1;
      }
    }

    const auto ascii_bytes = std::filesystem::file_size(ascii_file.path());
    const auto binary_bytes = std::filesystem::file_size(binary_file.path());

    double ascii_secs = 0.0, binary_secs = 0.0;
    {
      std::ifstream in(ascii_file.path());
      trace::AsciiTraceReader reader(in);
      util::Timer t;
      const auto res = checker::check_breadth_first(inst.formula, reader);
      ascii_secs = t.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: ASCII check failed on " << inst.name << ": "
                  << res.error << "\n";
        return 1;
      }
    }
    {
      std::ifstream in(binary_file.path(), std::ios::binary);
      trace::BinaryTraceReader reader(in);
      util::Timer t;
      const auto res = checker::check_breadth_first(inst.formula, reader);
      binary_secs = t.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: binary check failed on " << inst.name << ": "
                  << res.error << "\n";
        return 1;
      }
    }

    table.add_row(
        {inst.name, util::format_kb(ascii_bytes), util::format_kb(binary_bytes),
         util::format_double(static_cast<double>(ascii_bytes) /
                                 static_cast<double>(binary_bytes),
                             2) + "x",
         util::format_double(ascii_secs, 3),
         util::format_double(binary_secs, 3),
         binary_secs > 0.0
             ? util::format_double(ascii_secs / binary_secs, 2) + "x"
             : "n/a"});
  }

  std::cout << "Ablation A: ASCII vs binary trace format\n"
            << "(paper Section 4 predicts 2-3x compaction and faster "
               "checking from a binary encoding)\n\n"
            << table.to_string();
  return 0;
}
