#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/cnf/formula.hpp"

namespace satproof::checker {

/// Result of forward DRUP checking.
struct DrupCheckResult {
  bool ok = false;
  std::string error;
  std::uint64_t clauses_checked = 0;  ///< added clauses verified RUP
  std::uint64_t deletions = 0;        ///< deletion lines applied
  std::uint64_t propagations = 0;     ///< unit propagations performed
};

/// Forward DRUP proof checking — validating the modern descendant of the
/// paper's trace format.
///
/// The proof stream (see trace::DrupWriter) lists learned clauses by their
/// literals and deletions by `d` lines; no derivation information is
/// recorded. Each added clause is verified by reverse unit propagation
/// against the original formula plus the previously verified (and not yet
/// deleted) clauses; the proof is complete when the empty clause is
/// verified. Deletions are honoured, which is what makes forward DRUP
/// checking faithful: a clause deleted by the solver must not help justify
/// a later one.
///
/// The checker maintains a persistent top-level propagation prefix,
/// rebuilt lazily after deletion batches (deleting a clause can invalidate
/// implied top-level literals).
[[nodiscard]] DrupCheckResult check_drup(const Formula& f,
                                         std::istream& proof);

}  // namespace satproof::checker
