file(REMOVE_RECURSE
  "CMakeFiles/equivalence_checking.dir/equivalence_checking.cpp.o"
  "CMakeFiles/equivalence_checking.dir/equivalence_checking.cpp.o.d"
  "equivalence_checking"
  "equivalence_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
