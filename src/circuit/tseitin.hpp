#pragma once

#include <span>
#include <vector>

#include "src/circuit/netlist.hpp"
#include "src/cnf/formula.hpp"

namespace satproof::circuit {

/// Output of the Tseitin transform.
struct TseitinResult {
  Formula formula;
  /// wire_var[w] is the CNF variable standing for wire w.
  std::vector<Var> wire_var;
};

/// Converts a netlist to CNF by the Tseitin transform: one variable per
/// wire, defining clauses per gate, and a unit clause asserting each wire
/// in `asserted_true` (typically a miter output). The encoding is
/// equisatisfiable and, restricted to input variables, equivalent — the
/// tests cross-check it against Netlist::simulate.
[[nodiscard]] TseitinResult tseitin(const Netlist& n,
                                    std::span<const Wire> asserted_true);

/// Encodes `n` *into an existing formula*: every wire gets a fresh
/// variable starting at f.num_vars(), except the wires in `bindings`,
/// which map directly onto the given pre-existing variables (they must be
/// primary inputs — inputs have no defining clauses, so mapping is free).
/// Used to conjoin a circuit (e.g. an interpolant) with CNF constraints
/// over shared variables. Returns the wire-to-variable map; the caller
/// asserts output polarities with unit clauses as needed.
[[nodiscard]] std::vector<Var> tseitin_into(
    Formula& f, const Netlist& n,
    std::span<const std::pair<Wire, Var>> bindings);

}  // namespace satproof::circuit
