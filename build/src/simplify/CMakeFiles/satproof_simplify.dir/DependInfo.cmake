
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simplify/pipeline.cpp" "src/simplify/CMakeFiles/satproof_simplify.dir/pipeline.cpp.o" "gcc" "src/simplify/CMakeFiles/satproof_simplify.dir/pipeline.cpp.o.d"
  "/root/repo/src/simplify/preprocessor.cpp" "src/simplify/CMakeFiles/satproof_simplify.dir/preprocessor.cpp.o" "gcc" "src/simplify/CMakeFiles/satproof_simplify.dir/preprocessor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/satproof_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/satproof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
