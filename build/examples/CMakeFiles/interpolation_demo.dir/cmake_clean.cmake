file(REMOVE_RECURSE
  "CMakeFiles/interpolation_demo.dir/interpolation_demo.cpp.o"
  "CMakeFiles/interpolation_demo.dir/interpolation_demo.cpp.o.d"
  "interpolation_demo"
  "interpolation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
