#include "src/obs/metrics.hpp"

#include <cmath>
#include <cstdio>

#include "src/util/json.hpp"

namespace satproof::obs {
namespace {

/// Prometheus sample values are floats; counters here are u64, which stays
/// exact up to 2^53 — plenty for span/resolution counts.
void append_sample(std::string& out, const std::string& name, double value) {
  out += name;
  out += ' ';
  if (value == static_cast<double>(static_cast<std::uint64_t>(value)) &&
      value >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
  }
  out += '\n';
}

void append_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_) {
    if (c.name() == name) return c;
  }
  counters_.emplace_back(name, help);
  return counters_.back();
}

void MetricsRegistry::register_gauge(const std::string& name,
                                     const std::string& help,
                                     std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Gauge& g : gauges_) {
    if (g.name == name) {
      g.help = help;
      g.fn = std::move(fn);
      return;
    }
  }
  gauges_.push_back(Gauge{name, help, std::move(fn)});
}

void MetricsRegistry::unregister_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = gauges_.begin(); it != gauges_.end(); ++it) {
    if (it->name == name) {
      gauges_.erase(it);
      return;
    }
  }
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Counter& c : counters_) {
    append_header(out, c.name(), c.help(), "counter");
    append_sample(out, c.name(), static_cast<double>(c.value()));
  }
  for (const Gauge& g : gauges_) {
    append_header(out, g.name, g.help, "gauge");
    double v = g.fn ? g.fn() : 0.0;
    if (!std::isfinite(v)) v = 0.0;
    append_sample(out, g.name, v);
  }
  return out;
}

void MetricsRegistry::to_json(util::JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Counter& c : counters_) {
    w.key(c.name());
    w.value(c.value());
  }
  for (const Gauge& g : gauges_) {
    w.key(g.name);
    double v = g.fn ? g.fn() : 0.0;
    if (!std::isfinite(v)) v = 0.0;
    w.value(v);
  }
}

CheckerCounters& CheckerCounters::get() {
  static CheckerCounters counters{
      MetricsRegistry::instance().counter(
          "satproof_derivations_total",
          "Trace derivation records processed by checker runs."),
      MetricsRegistry::instance().counter(
          "satproof_clauses_built_total",
          "Clauses materialized while replaying resolution proofs."),
      MetricsRegistry::instance().counter(
          "satproof_resolutions_total",
          "Pairwise resolution operations performed by checker runs."),
      MetricsRegistry::instance().counter(
          "satproof_arena_allocated_bytes_total",
          "Bytes handed out by clause arenas across checker runs."),
      MetricsRegistry::instance().counter(
          "satproof_drup_propagations_total",
          "Unit propagations performed by DRUP (RUP) checks."),
      MetricsRegistry::instance().counter(
          "satproof_checks_total", "Proof-check runs completed."),
  };
  return counters;
}

}  // namespace satproof::obs
