#include "src/service/run_check.hpp"

#include <fstream>
#include <sstream>

#include "src/cert/lrat_emitter.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/parallel.hpp"
#include "src/checker/window.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/util/json.hpp"

namespace satproof::service {

std::optional<Backend> backend_from_name(std::string_view name) {
  if (name == "df") return Backend::kDf;
  if (name == "bf") return Backend::kBf;
  if (name == "hybrid") return Backend::kHybrid;
  if (name == "parallel") return Backend::kParallel;
  if (name == "drup") return Backend::kDrup;
  if (name == "window") return Backend::kWindow;
  return std::nullopt;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kDf: return "df";
    case Backend::kBf: return "bf";
    case Backend::kHybrid: return "hybrid";
    case Backend::kParallel: return "parallel";
    case Backend::kDrup: return "drup";
    case Backend::kWindow: return "window";
  }
  return "?";
}

Backend select_backend_for_budget(std::uint64_t trace_bytes,
                                  std::size_t mem_limit_bytes) {
  if (mem_limit_bytes == 0) return Backend::kDf;
  // Division, not multiplication: declared trace sizes can be large
  // enough that 6x would overflow before the compare.
  if (trace_bytes <= mem_limit_bytes / 6) return Backend::kDf;
  if (trace_bytes <= mem_limit_bytes / 3) return Backend::kHybrid;
  return Backend::kWindow;
}

std::string verdict_line(const JobOutcome& o) {
  if (!o.ok) return "CHECK FAILED: " + o.error;
  if (o.backend == Backend::kDrup) {
    std::ostringstream os;
    os << "VERIFIED (DRUP): " << o.drup_clauses_checked << " clauses, "
       << o.drup_deletions << " deletions, " << o.drup_propagations
       << " propagations";
    return os.str();
  }
  std::ostringstream os;
  if (o.failed_assumption_clause.empty()) {
    os << "VERIFIED: valid resolution proof of unsatisfiability ("
       << o.stats.resolutions << " resolutions)";
  } else {
    os << "VERIFIED: the formula refutes the assumption subset { ";
    for (const Lit l : o.failed_assumption_clause) {
      os << (~l).to_dimacs() << ' ';
    }
    os << "} (" << o.stats.resolutions << " resolutions)";
  }
  return os.str();
}

std::string check_stats_json(const checker::CheckStats& st,
                             std::string_view backend) {
  util::JsonWriter w;
  w.begin_object();
  w.key("total_derivations");
  w.value(st.total_derivations);
  w.key("clauses_built");
  w.value(st.clauses_built);
  w.key("resolutions");
  w.value(st.resolutions);
  w.key("core_original_clauses");
  w.value(st.core_original_clauses);
  w.key("peak_mem_bytes");
  w.value(static_cast<std::uint64_t>(st.peak_mem_bytes));
  w.key("arena_allocated_bytes");
  w.value(static_cast<std::uint64_t>(st.arena_allocated_bytes));
  w.key("arena_recycled_bytes");
  w.value(static_cast<std::uint64_t>(st.arena_recycled_bytes));
  w.key("arena_peak_bytes");
  w.value(static_cast<std::uint64_t>(st.arena_peak_bytes));
  // Appended last so consumers keyed on the historical field prefix (the
  // CLI tests check the leading "total_derivations") are unaffected.
  if (!backend.empty()) {
    w.key("backend");
    w.value(std::string(backend));
  }
  w.end_object();
  return w.take();
}

std::string outcome_json(const JobOutcome& o) {
  util::JsonWriter w;
  w.begin_object();
  w.key("ok");
  w.value(o.ok);
  w.key("backend");
  w.value(backend_name(o.backend));
  w.key("verdict");
  w.value(verdict_line(o));
  w.key("error");
  w.value(o.error);
  if (o.backend == Backend::kDrup) {
    w.key("drup");
    w.begin_object();
    w.key("clauses_checked");
    w.value(o.drup_clauses_checked);
    w.key("deletions");
    w.value(o.drup_deletions);
    w.key("propagations");
    w.value(o.drup_propagations);
    w.end_object();
  } else {
    // check_stats_json would be natural here, but JsonWriter has no raw
    // splice; keep one canonical field order by emitting the same fields.
    w.key("stats");
    w.begin_object();
    w.key("total_derivations");
    w.value(o.stats.total_derivations);
    w.key("clauses_built");
    w.value(o.stats.clauses_built);
    w.key("resolutions");
    w.value(o.stats.resolutions);
    w.key("core_original_clauses");
    w.value(o.stats.core_original_clauses);
    w.key("peak_mem_bytes");
    w.value(static_cast<std::uint64_t>(o.stats.peak_mem_bytes));
    w.key("arena_allocated_bytes");
    w.value(static_cast<std::uint64_t>(o.stats.arena_allocated_bytes));
    w.key("arena_recycled_bytes");
    w.value(static_cast<std::uint64_t>(o.stats.arena_recycled_bytes));
    w.key("arena_peak_bytes");
    w.value(static_cast<std::uint64_t>(o.stats.arena_peak_bytes));
    w.end_object();
  }
  w.end_object();
  return w.take();
}

namespace {

/// True when the file starts with the binary-trace magic "SPRF".
bool is_binary_trace(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  return in.gcount() == 4 && magic[0] == 'S' && magic[1] == 'P' &&
         magic[2] == 'R' && magic[3] == 'F';
}

/// Size of `path` in bytes (0 when it cannot be measured; the budget
/// selection then keeps the requested backend).
std::uint64_t trace_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  return in && size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

/// Folds one finished run's stats into the process-wide registry. Done
/// once per check (not on the replay hot path), so the counters cost
/// nothing while the proof is being verified.
void bump_global_counters(const JobOutcome& out) {
  obs::CheckerCounters& c = obs::CheckerCounters::get();
  c.checks_total.inc();
  c.derivations.inc(out.stats.total_derivations);
  c.clauses_built.inc(out.stats.clauses_built);
  c.resolutions.inc(out.stats.resolutions);
  c.arena_allocated_bytes.inc(out.stats.arena_allocated_bytes);
  c.drup_propagations.inc(out.drup_propagations);
}

}  // namespace

JobOutcome run_check(const std::string& cnf_path, const std::string& trace_path,
                     Backend backend, unsigned jobs,
                     util::ClauseArena* recycle_arena,
                     const CertOptions& cert, std::size_t mem_limit_bytes) {
  obs::Span check_span("check");
  if (recycle_arena != nullptr) recycle_arena->reset();
  JobOutcome out;
  out.backend = backend;
  const bool certify = cert.sink != nullptr;
  if (certify && backend != Backend::kDf && backend != Backend::kHybrid) {
    out.error = "certificate emission requires the df or hybrid backend";
    bump_global_counters(out);
    return out;
  }
  // Per-job memory cap: a df/hybrid request whose estimated peak exceeds
  // the budget runs under the cheapest backend that fits instead.
  // Certifying runs are exempt (emission requires df/hybrid), and a
  // budget-picked backend is never *upgraded* — hybrid stays hybrid even
  // when df would fit.
  if (mem_limit_bytes != 0 && !certify &&
      (backend == Backend::kDf || backend == Backend::kHybrid)) {
    const Backend fits = select_backend_for_budget(
        trace_file_bytes(trace_path), mem_limit_bytes);
    if (fits == Backend::kWindow ||
        (fits == Backend::kHybrid && backend == Backend::kDf)) {
      backend = fits;
    }
    out.backend = backend;
  }
  try {
    obs::Span load_span("load_formula");
    const Formula f = dimacs::parse_file(cnf_path);
    load_span.finish();

    if (backend == Backend::kDrup) {
      std::ifstream proof(trace_path);
      if (!proof) throw std::runtime_error("cannot open " + trace_path);
      const checker::DrupCheckResult res = checker::check_drup(f, proof);
      out.ok = res.ok;
      out.error = res.error;
      out.drup_clauses_checked = res.clauses_checked;
      out.drup_deletions = res.deletions;
      out.drup_propagations = res.propagations;
      bump_global_counters(out);
      return out;
    }

    std::unique_ptr<trace::TraceReader> reader;
    std::ifstream ascii_in;
    if (is_binary_trace(trace_path)) {
      reader = trace::open_binary_trace_file(trace_path);
    } else {
      ascii_in.open(trace_path);
      if (!ascii_in) throw std::runtime_error("cannot open " + trace_path);
      reader = std::make_unique<trace::AsciiTraceReader>(ascii_in);
    }

    std::unique_ptr<cert::LratWriter> writer;
    std::unique_ptr<cert::LratEmitter> emitter;
    if (certify) {
      if (cert.binary) {
        writer = std::make_unique<cert::BinaryLratWriter>(*cert.sink);
      } else {
        writer = std::make_unique<cert::TextLratWriter>(*cert.sink);
      }
      emitter = std::make_unique<cert::LratEmitter>(*writer, f.num_clauses());
    }

    checker::CheckResult res;
    switch (backend) {
      case Backend::kBf: {
        checker::BreadthFirstOptions bopts;
        bopts.recycle_arena = recycle_arena;
        res = checker::check_breadth_first(f, *reader, bopts);
        break;
      }
      case Backend::kHybrid: {
        checker::HybridOptions hopts;
        hopts.recycle_arena = recycle_arena;
        hopts.observer = emitter.get();
        res = checker::check_hybrid(f, *reader, hopts);
        break;
      }
      case Backend::kParallel: {
        checker::ParallelOptions popts;
        popts.jobs = jobs;
        res = checker::check_parallel(f, *reader, popts);
        break;
      }
      case Backend::kWindow: {
        checker::WindowOptions wopts;
        // 0 here means "no cap was set"; keep the WindowOptions default
        // budget rather than degrading to one unbounded window.
        if (mem_limit_bytes != 0) wopts.mem_limit_bytes = mem_limit_bytes;
        wopts.recycle_arena = recycle_arena;
        res = checker::check_window(f, *reader, wopts);
        break;
      }
      case Backend::kDf:
      default: {
        checker::DepthFirstOptions dopts;
        dopts.recycle_arena = recycle_arena;
        dopts.observer = emitter.get();
        res = checker::check_depth_first(f, *reader, dopts);
        break;
      }
    }
    out.ok = res.ok;
    out.error = res.error;
    out.stats = res.stats;
    out.failed_assumption_clause = std::move(res.failed_assumption_clause);
    if (certify && out.ok) {
      // A certificate proves unconditional unsatisfiability; a proof that
      // only refutes an assumption subset has no empty-clause step.
      if (!emitter->finished()) {
        out.ok = false;
        out.error =
            "trace verifies only under assumptions; LRAT certification "
            "covers unconditional unsatisfiability";
      } else if (!writer->ok()) {
        out.ok = false;
        out.error = "certificate sink write failure";
      } else {
        out.cert_additions = emitter->additions();
        out.cert_deletions = emitter->deletions();
      }
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  bump_global_counters(out);
  return out;
}

}  // namespace satproof::service
