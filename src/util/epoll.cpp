#include "src/util/epoll.hpp"

#include <stdexcept>

#if !defined(_WIN32)

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace satproof::util {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

#if defined(__linux__)
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
#endif

}  // namespace

EventPoller::EventPoller(Backend backend) {
#if defined(__linux__)
  if (backend == Backend::kAuto) backend = Backend::kEpoll;
#else
  if (backend == Backend::kAuto) backend = Backend::kPoll;
  if (backend == Backend::kEpoll) {
    throw std::runtime_error("epoll backend is only available on Linux");
  }
#endif
  backend_ = backend;
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
  }
#endif
}

EventPoller::~EventPoller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

EventPoller::Entry* EventPoller::find(int fd) {
  for (Entry& e : entries_) {
    if (e.fd == fd) return &e;
  }
  return nullptr;
}

void EventPoller::add(int fd, std::uint64_t key, bool want_read,
                      bool want_write) {
  if (find(fd) != nullptr) {
    throw std::runtime_error("EventPoller::add: fd already registered");
  }
  entries_.push_back(Entry{fd, key, want_read, want_write});
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = key;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      entries_.pop_back();
      throw_errno("epoll_ctl(ADD)");
    }
  }
#endif
}

void EventPoller::modify(int fd, bool want_read, bool want_write) {
  Entry* e = find(fd);
  if (e == nullptr) {
    throw std::runtime_error("EventPoller::modify: fd not registered");
  }
  e->want_read = want_read;
  e->want_write = want_write;
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = e->key;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(MOD)");
    }
  }
#endif
}

void EventPoller::remove(int fd) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].fd != fd) continue;
#if defined(__linux__)
    if (backend_ == Backend::kEpoll) {
      epoll_event ev{};  // non-null for pre-2.6.9 kernel ABI compatibility
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
    }
#endif
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

std::size_t EventPoller::wait(int timeout_ms, std::vector<PollEvent>& out) {
  out.clear();
#if defined(__linux__)
  if (backend_ == Backend::kEpoll) {
    epoll_event evs[64];
    int n;
    for (;;) {
      n = ::epoll_wait(epoll_fd_, evs, 64, timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    if (n < 0) throw_errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      PollEvent pe;
      pe.key = evs[i].data.u64;
      pe.readable = (evs[i].events & EPOLLIN) != 0;
      pe.writable = (evs[i].events & EPOLLOUT) != 0;
      pe.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(pe);
    }
    return out.size();
  }
#endif
  // poll(2) backend: rebuild the pollfd array from the registration table.
  std::vector<pollfd> pfds;
  pfds.reserve(entries_.size());
  for (const Entry& e : entries_) {
    pollfd p{};
    p.fd = e.fd;
    if (e.want_read) p.events |= POLLIN;
    if (e.want_write) p.events |= POLLOUT;
    pfds.push_back(p);
  }
  if (pfds.empty()) {
    // Nothing registered: honour the timeout so callers can still use the
    // wait as a sleep (matches epoll_wait on an empty interest set).
    if (timeout_ms != 0) ::poll(nullptr, 0, timeout_ms);
    return 0;
  }
  int r;
  for (;;) {
    r = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    break;
  }
  if (r < 0) throw_errno("poll");
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const short rev = pfds[i].revents;
    if (rev == 0) continue;
    PollEvent pe;
    pe.key = entries_[i].key;
    pe.readable = (rev & POLLIN) != 0;
    pe.writable = (rev & POLLOUT) != 0;
    pe.error = (rev & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(pe);
  }
  return out.size();
}

}  // namespace satproof::util

#else  // _WIN32 — no poll/epoll; keep the interface compiling.

namespace satproof::util {

EventPoller::EventPoller(Backend) {
  throw std::runtime_error("EventPoller is not supported on this platform");
}
EventPoller::~EventPoller() = default;
EventPoller::Entry* EventPoller::find(int) { return nullptr; }
void EventPoller::add(int, std::uint64_t, bool, bool) {}
void EventPoller::modify(int, bool, bool) {}
void EventPoller::remove(int) {}
std::size_t EventPoller::wait(int, std::vector<PollEvent>&) { return 0; }

}  // namespace satproof::util

#endif
