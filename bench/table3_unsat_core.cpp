// Reproduces Table 3 of the paper: unsatisfiable-core extraction by
// iterated depth-first checking.
//
// Paper columns: Benchmark | Original {Num Cls, Num Vars} | First Iteration
// {Num Cls, Num Vars} | 30 Iterations (or fixed point) {Num Cls, Num Vars,
// Iteration}.
//
// Expected shape (paper): the first proof uses only part of the formula;
// iterating shrinks the core further until (often) a fixed point where
// every clause is needed; planning and routing instances have cores much
// smaller than the original formula. Like the paper (which omits its
// hardest rows here), instances flagged core_iteration = false are skipped.

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "src/core/unsat_core.hpp"
#include "src/encode/suite.hpp"
#include "src/obs/trace.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace satproof;

  // --trace-out FILE: record the per-instance core iterations (and the
  // checker stage spans inside them) and write the Chrome-trace JSON.
  std::string trace_out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else {
      std::cerr << "usage: table3_unsat_core [--trace-out FILE]\n";
      return 1;
    }
  }
  std::optional<obs::TraceSession> trace_session;
  if (!trace_out_path.empty()) trace_session.emplace();

  util::Table table({"Instance", "Orig Cls", "Orig Vars", "1st-Iter Cls",
                     "1st-Iter Vars", "Final Cls", "Final Vars", "Iters",
                     "Fixed Point"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    if (!inst.core_iteration) continue;
    obs::Span span("core_iteration");
    const core::CoreIteration it = core::iterate_core(inst.formula, 30);
    if (!it.ok) {
      std::cerr << "FATAL: core iteration failed on " << inst.name << ": "
                << it.error << "\n";
      return 1;
    }
    const auto& orig = it.steps.front();
    const auto& first = it.steps.size() > 1 ? it.steps[1] : it.steps.front();
    const auto& last = it.steps.back();
    table.add_row({inst.name, std::to_string(orig.num_clauses),
                   std::to_string(orig.num_vars),
                   std::to_string(first.num_clauses),
                   std::to_string(first.num_vars),
                   std::to_string(last.num_clauses),
                   std::to_string(last.num_vars),
                   std::to_string(it.iterations),
                   it.fixed_point ? "yes" : "no"});
  }

  std::cout << "Table 3: unsatisfiable cores by iterated depth-first "
               "checking (30 iterations max)\n"
            << "(paper: cores shrink across iterations; planning/routing "
               "cores << original)\n\n"
            << table.to_string();

  if (trace_session) {
    obs::flush_this_thread();
    if (!trace_session->sink().write_file(trace_out_path)) {
      std::cerr << "FATAL: cannot write trace " << trace_out_path << "\n";
      return 1;
    }
    std::cout << "Chrome trace written to " << trace_out_path << "\n";
  }
  return 0;
}
