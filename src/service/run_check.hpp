#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/checker/common.hpp"

namespace satproof::service {

/// Checker backend a job runs under. The numeric values are wire format
/// (SubmitHeader::backend) — do not reorder.
enum class Backend : std::uint8_t {
  kDf = 0,        ///< depth-first resolution replay
  kBf = 1,        ///< breadth-first (bounded-memory) replay
  kHybrid = 2,    ///< reachability-pruned breadth-first window
  kParallel = 3,  ///< wavefront-parallel depth-first
  kDrup = 4,      ///< forward DRUP (trace file holds a DRUP proof)
  kWindow = 5,    ///< window-shifting replay under a memory budget
};

inline constexpr std::uint8_t kNumBackends = 6;

[[nodiscard]] std::optional<Backend> backend_from_name(std::string_view name);
[[nodiscard]] const char* backend_name(Backend b);

/// Picks the fastest replay backend whose estimated peak fits
/// `mem_limit_bytes`, from the declared trace size: depth-first while the
/// whole trace plus its memoized clauses fit (~6x the trace bytes on the
/// committed bench suite), hybrid while the resident DAG structure fits
/// (~3x), and the window-shifting backend beyond that — its resident
/// footprint is a few bytes per derivation, independent of trace length.
/// A zero budget means "no cap" and selects depth-first.
[[nodiscard]] Backend select_backend_for_budget(std::uint64_t trace_bytes,
                                                std::size_t mem_limit_bytes);

/// Everything a checking run produces, minus wall-clock time — so two runs
/// of the same job are comparable byte for byte. This is the unit the
/// service executes, the CLI `check`/`drup` commands print, and the
/// end-to-end test diffs against direct calls.
struct JobOutcome {
  bool ok = false;
  std::string error;  ///< checker/parse diagnostic when !ok
  Backend backend = Backend::kDf;
  /// Replay backends (df/bf/hybrid/parallel); zeros for DRUP.
  checker::CheckStats stats;
  /// Non-empty for validated UNSAT-under-assumptions traces.
  std::vector<Lit> failed_assumption_clause;
  /// DRUP backend only.
  std::uint64_t drup_clauses_checked = 0;
  std::uint64_t drup_deletions = 0;
  std::uint64_t drup_propagations = 0;
  /// Certified runs only (run_check with a cert sink): LRAT step counts,
  /// and — filled by the service, which certifies into a memory sink —
  /// the certificate bytes shipped in the RESULT_CERT frame.
  std::uint64_t cert_additions = 0;
  std::uint64_t cert_deletions = 0;
  std::string certificate;
};

/// Certificate emission request for run_check. A null sink (the default)
/// disables emission entirely — the checkers run with no observer, so the
/// replay hot loop is untouched.
struct CertOptions {
  std::ostream* sink = nullptr;  ///< where LRAT records stream; null = off
  bool binary = false;           ///< binary GRIT-style variant vs text
};

/// Deterministic one-line verdict (no timing), e.g.
///   "VERIFIED: valid resolution proof of unsatisfiability (N resolutions)"
///   "VERIFIED (DRUP): N clauses, M deletions, P propagations"
///   "CHECK FAILED: <diagnostic>"
[[nodiscard]] std::string verdict_line(const JobOutcome& outcome);

/// JSON document describing the outcome (ok, verdict, error, stats).
[[nodiscard]] std::string outcome_json(const JobOutcome& outcome);

/// JSON object for a replay backend's CheckStats; shared by
/// `satproof check --stats=json` and outcome_json so the two never drift.
/// A non-empty `backend` appends a final "backend" key naming the backend
/// that actually ran — the provenance record for `--checker=auto`.
[[nodiscard]] std::string check_stats_json(const checker::CheckStats& stats,
                                           std::string_view backend = {});

/// Checks `trace_path` against `cnf_path` with `backend`.
///
/// The trace encoding is auto-detected: a file starting with the binary
/// magic "SPRF" goes through the zero-copy mmap ByteSource path, anything
/// else is read as an ASCII trace (or, for the DRUP backend, a DRUP proof
/// stream). Never throws — parse and I/O failures come back as a
/// JobOutcome with ok == false, exactly like a rejected proof, so a bad
/// job can never take down the service.
///
/// `jobs` is the parallel backend's worker count (0 = hardware threads);
/// other backends ignore it.
///
/// `recycle_arena`, when non-null, backs the df/bf/hybrid/window clause
/// store so
/// repeated checks on one thread reuse already-mapped chunks (it is
/// reset() before use; the parallel and DRUP backends manage their own
/// storage and ignore it). Outcomes are byte-identical either way.
/// `cert`, when its sink is non-null, streams an LRAT certificate of the
/// replay to that sink (df and hybrid backends only — others fail the
/// job). A certified run demands unconditional unsatisfiability: traces
/// that verify only under assumptions, and sink write failures, turn the
/// outcome into ok == false even though the underlying check passed.
///
/// `mem_limit_bytes`, when non-zero, caps the checker's memory use: the
/// window backend takes it as its budget, and a df/hybrid request whose
/// estimated peak exceeds it (from the trace file size — see
/// select_backend_for_budget) is downgraded to the cheapest backend that
/// fits; JobOutcome::backend records what actually ran. Certifying runs
/// are never downgraded (emission requires df/hybrid); bf, parallel, and
/// DRUP are unaffected (bf is already budget-bounded, DRUP streams).
[[nodiscard]] JobOutcome run_check(const std::string& cnf_path,
                                   const std::string& trace_path,
                                   Backend backend, unsigned jobs = 0,
                                   util::ClauseArena* recycle_arena = nullptr,
                                   const CertOptions& cert = {},
                                   std::size_t mem_limit_bytes = 0);

}  // namespace satproof::service
