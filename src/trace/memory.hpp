#pragma once

#include <vector>

#include "src/trace/events.hpp"

namespace satproof::trace {

/// Complete trace held in memory: the natural interchange object for tests
/// and for checking a proof without touching the filesystem.
struct MemoryTrace {
  Var num_vars = 0;
  ClauseId num_original = 0;
  bool finished = false;  ///< end() was called
  bool has_final = false; ///< final_conflict() was called (UNSAT run)
  ClauseId final_conflict = kInvalidClauseId;

  struct Derivation {
    ClauseId id;
    std::vector<ClauseId> sources;
  };
  std::vector<Derivation> derivations;

  /// One trail record: an implied assignment (antecedent is a clause ID)
  /// or an assumption (antecedent == kInvalidClauseId). Order is trail
  /// order, which the checker's "assigned earlier" validation relies on.
  struct Level0 {
    Var var;
    bool value;
    ClauseId antecedent;
  };
  std::vector<Level0> level0;
};

/// TraceWriter that records into a MemoryTrace.
class MemoryTraceWriter final : public TraceWriter {
 public:
  void begin(Var num_vars, ClauseId num_original) override;
  void derivation(ClauseId id, std::span<const ClauseId> sources) override;
  void final_conflict(ClauseId id) override;
  void level0(Var var, bool value, ClauseId antecedent) override;
  void assumption(Var var, bool value) override;
  void end() override;

  /// The accumulated trace (valid after end()).
  [[nodiscard]] const MemoryTrace& trace() const { return trace_; }

  /// Moves the accumulated trace out of the writer.
  [[nodiscard]] MemoryTrace take() { return std::move(trace_); }

 private:
  MemoryTrace trace_;
};

/// TraceReader over a MemoryTrace. The referenced trace must outlive the
/// reader. Records are replayed in canonical order: derivations, then the
/// final conflict, then level-0 assignments, then End. The End record is
/// only delivered when the writer actually finished (end() was called);
/// an unfinished trace reads as truncated, which the checkers reject.
class MemoryTraceReader final : public TraceReader {
 public:
  explicit MemoryTraceReader(const MemoryTrace& trace) : trace_(&trace) {}

  [[nodiscard]] Var num_vars() const override { return trace_->num_vars; }
  [[nodiscard]] ClauseId num_original() const override {
    return trace_->num_original;
  }
  bool next(Record& out) override;
  void rewind() override;

  /// Positions are indices into the canonical record sequence
  /// (derivations, final conflict, level-0/assumptions, End), so tests can
  /// drive the window checker's seek path without a real file.
  [[nodiscard]] bool seekable() const override { return true; }
  [[nodiscard]] std::uint64_t tell() const override;
  void seek(std::uint64_t pos) override;

 private:
  const MemoryTrace* trace_;
  std::size_t deriv_pos_ = 0;
  std::size_t level0_pos_ = 0;
  bool final_emitted_ = false;
  bool end_emitted_ = false;
};

}  // namespace satproof::trace
