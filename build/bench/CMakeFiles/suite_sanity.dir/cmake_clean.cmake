file(REMOVE_RECURSE
  "CMakeFiles/suite_sanity.dir/suite_sanity.cpp.o"
  "CMakeFiles/suite_sanity.dir/suite_sanity.cpp.o.d"
  "suite_sanity"
  "suite_sanity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_sanity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
