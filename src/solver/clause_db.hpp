#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/cnf/types.hpp"
#include "src/util/mem_tracker.hpp"

namespace satproof::solver {

/// Index of a clause inside the ClauseDb. Slots are recycled after
/// deletion, unlike ClauseIds, which are unique forever (the trace refers
/// to IDs, never slots).
using ClauseSlot = std::uint32_t;
inline constexpr ClauseSlot kInvalidSlot =
    std::numeric_limits<ClauseSlot>::max();

/// A clause as stored by the solver. Literal order is mutable (watched
/// literals live at positions 0 and 1); the clause-as-set is what the
/// trace's ID refers to.
struct DbClause {
  ClauseId id = kInvalidClauseId;
  float activity = 0.0f;
  bool learned = false;
  bool live = false;
  std::vector<Lit> lits;
};

/// The solver's clause store: original clauses first, then learned clauses,
/// with slot recycling on deletion and byte accounting for the Table 1/2
/// peak-memory figures.
class ClauseDb {
 public:
  /// Stores a clause and returns its slot. The caller owns ID assignment.
  ClauseSlot alloc(std::span<const Lit> lits, ClauseId id, bool learned);

  /// Releases a clause's slot. The ID is retired, never reused.
  void free(ClauseSlot slot);

  /// Access by slot; the slot must be live.
  [[nodiscard]] DbClause& operator[](ClauseSlot slot) { return slots_[slot]; }
  [[nodiscard]] const DbClause& operator[](ClauseSlot slot) const {
    return slots_[slot];
  }

  /// Number of live learned clauses.
  [[nodiscard]] std::size_t num_learned() const { return num_learned_; }

  /// Slots currently in use (live clauses only).
  [[nodiscard]] std::vector<ClauseSlot> live_slots() const;

  /// Byte accounting (peak feeds SolverStats::peak_clause_bytes).
  [[nodiscard]] const util::MemTracker& mem() const { return mem_; }

 private:
  std::vector<DbClause> slots_;
  std::vector<ClauseSlot> free_list_;
  std::size_t num_learned_ = 0;
  util::MemTracker mem_;
};

}  // namespace satproof::solver
