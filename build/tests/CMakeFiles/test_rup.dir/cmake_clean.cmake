file(REMOVE_RECURSE
  "CMakeFiles/test_rup.dir/test_rup.cpp.o"
  "CMakeFiles/test_rup.dir/test_rup.cpp.o.d"
  "test_rup"
  "test_rup.pdb"
  "test_rup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
