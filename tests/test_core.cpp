// Tests for unsat-core extraction and the Table 3 iteration procedure.

#include <gtest/gtest.h>

#include "src/core/unsat_core.hpp"
#include "src/encode/fpga_routing.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/planning.hpp"
#include "src/solver/solver.hpp"

namespace satproof::core {
namespace {

TEST(ExtractCore, CoreIsUnsatSubset) {
  const Formula f = encode::pigeonhole(5);
  const CoreExtraction ext = extract_core(f);
  ASSERT_TRUE(ext.ok) << ext.error;
  EXPECT_FALSE(ext.core_ids.empty());
  EXPECT_LE(ext.core_ids.size(), f.num_clauses());
  EXPECT_EQ(ext.core.num_clauses(), ext.core_ids.size());

  // The core itself must be unsatisfiable (the Lemma of Section 2.2).
  solver::Solver s;
  s.add_formula(ext.core);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(ExtractCore, PlanningInstanceHasSmallCore) {
  // The paper's observation (Table 3): planning and routing instances have
  // cores much smaller than the original formula.
  const Formula f = encode::blocks_world_random(5, -1, 3301).formula;
  const CoreExtraction ext = extract_core(f);
  ASSERT_TRUE(ext.ok) << ext.error;
  EXPECT_LT(ext.core_ids.size(), f.num_clauses() / 2);
  EXPECT_LT(ext.num_vars_used, f.num_used_vars());
}

TEST(ExtractCore, SatisfiableInputReported) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  const CoreExtraction ext = extract_core(f);
  EXPECT_FALSE(ext.ok);
  EXPECT_NE(ext.error.find("satisfiable"), std::string::npos);
}

TEST(ExtractCore, BudgetExhaustionReported) {
  solver::SolverOptions opts;
  opts.conflict_budget = 1;
  const CoreExtraction ext = extract_core(encode::pigeonhole(6), opts);
  EXPECT_FALSE(ext.ok);
  EXPECT_NE(ext.error.find("gave up"), std::string::npos);
}

TEST(IterateCore, ReachesFixedPointOnPigeonhole) {
  // Every clause of PHP is needed, so iteration converges immediately or
  // after one shrink.
  const Formula f = encode::pigeonhole(4);
  const CoreIteration it = iterate_core(f, 30);
  ASSERT_TRUE(it.ok) << it.error;
  EXPECT_TRUE(it.fixed_point);
  ASSERT_GE(it.steps.size(), 2u);
  EXPECT_EQ(it.steps.front().num_clauses, f.num_clauses());
  // At the fixed point, the last two step sizes agree.
  const auto& a = it.steps[it.steps.size() - 2];
  const auto& b = it.steps.back();
  EXPECT_EQ(a.num_clauses, b.num_clauses);

  solver::Solver s;
  s.add_formula(it.final_core);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(IterateCore, CoreSizesNeverGrowAlongIteration) {
  const Formula f = encode::fpga_routing(8, 3, 12, 5);
  const CoreIteration it = iterate_core(f, 30);
  ASSERT_TRUE(it.ok) << it.error;
  for (std::size_t i = 1; i < it.steps.size(); ++i) {
    EXPECT_LE(it.steps[i].num_clauses, it.steps[i - 1].num_clauses);
  }
}

TEST(IterateCore, RoutingCoreShrinksALot) {
  // Unroutability is caused by tracks+1 congested nets; the core should
  // name (roughly) them, not the whole channel.
  const Formula f = encode::fpga_routing(10, 3, 14, 5);
  const CoreIteration it = iterate_core(f, 30);
  ASSERT_TRUE(it.ok) << it.error;
  EXPECT_LT(it.final_core.num_clauses(), f.num_clauses());
}

TEST(IterateCore, MaxIterationsHonoured) {
  const Formula f = encode::pigeonhole(5);
  const CoreIteration it = iterate_core(f, 1);
  ASSERT_TRUE(it.ok) << it.error;
  EXPECT_LE(it.iterations, 1u);
  EXPECT_EQ(it.steps.size(), it.iterations + 1);
}

TEST(MinimalCore, PigeonholeIsAlreadyMinimal) {
  // Every PHP clause is necessary: dropping an at-least-one frees a pigeon,
  // dropping an at-most-one lets two pigeons share.
  const Formula f = encode::pigeonhole(3);
  const MinimalCore mc = minimal_core(f);
  ASSERT_TRUE(mc.ok) << mc.error;
  EXPECT_EQ(mc.core_ids.size(), f.num_clauses());
}

TEST(MinimalCore, ResultIsSetMinimal) {
  const Formula f = encode::fpga_routing(8, 3, 12, 5);
  const MinimalCore mc = minimal_core(f);
  ASSERT_TRUE(mc.ok) << mc.error;
  EXPECT_LT(mc.core_ids.size(), f.num_clauses());
  EXPECT_GT(mc.solver_calls, 1u);

  // The core is unsatisfiable...
  {
    solver::Solver s;
    s.add_formula(mc.core);
    ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  }
  // ...and removing any single clause makes it satisfiable.
  for (std::size_t drop = 0; drop < mc.core_ids.size(); ++drop) {
    std::vector<ClauseId> rest;
    for (std::size_t i = 0; i < mc.core_ids.size(); ++i) {
      if (i != drop) rest.push_back(mc.core_ids[i]);
    }
    solver::Solver s;
    s.add_formula(f.subformula(rest));
    EXPECT_EQ(s.solve(), solver::SolveResult::Satisfiable)
        << "clause " << mc.core_ids[drop] << " is not necessary";
  }
}

TEST(MinimalCore, SmallerOrEqualToIteratedCore) {
  const Formula f = encode::blocks_world_random(4, -1, 77).formula;
  const CoreIteration it = iterate_core(f, 30);
  const MinimalCore mc = minimal_core(f);
  ASSERT_TRUE(it.ok) << it.error;
  ASSERT_TRUE(mc.ok) << mc.error;
  EXPECT_LE(mc.core_ids.size(), it.final_core.num_clauses());
}

TEST(MinimalCore, SatisfiableInputReported) {
  Formula f(1);
  f.add_clause({Lit::pos(0)});
  const MinimalCore mc = minimal_core(f);
  EXPECT_FALSE(mc.ok);
  EXPECT_FALSE(mc.error.empty());
}

TEST(ExtractCore, StatusDistinguishesFailureModes) {
  Formula sat(1);
  sat.add_clause({Lit::pos(0)});
  EXPECT_EQ(extract_core(sat).status, CoreStatus::Satisfiable);

  solver::SolverOptions tiny;
  tiny.conflict_budget = 1;
  EXPECT_EQ(extract_core(encode::pigeonhole(6), tiny).status,
            CoreStatus::Unknown);

  EXPECT_EQ(extract_core(encode::pigeonhole(4)).status, CoreStatus::Ok);
}

TEST(IterateCore, SatisfiableInputFailsGracefully) {
  Formula f(1);
  f.add_clause({Lit::pos(0)});
  const CoreIteration it = iterate_core(f, 5);
  EXPECT_FALSE(it.ok);
  EXPECT_FALSE(it.error.empty());
}

}  // namespace
}  // namespace satproof::core
