#include "src/service/client.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

namespace satproof::service {

Client Client::connect_unix(const std::string& socket_path) {
  return Client(util::connect_unix(socket_path));
}

Client Client::connect_tcp(std::uint16_t port) {
  return Client(util::connect_tcp_localhost(port));
}

bool Client::send_file(const std::string& path, FrameTag tag) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> buf(kChunkBytes);
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    if (!write_frame(sock_, tag,
                     std::span<const std::uint8_t>(
                         buf.data(), static_cast<std::size_t>(got)))) {
      return false;
    }
    if (in.eof()) break;
  }
  return in.eof() || in.good();
}

Client::SubmitReply Client::submit(const std::string& cnf_path,
                                   const std::string& trace_path,
                                   Backend backend, bool wait, unsigned jobs,
                                   std::uint32_t timeout_ms, bool certify) {
  SubmitReply reply;

  SubmitHeader header;
  header.backend = static_cast<std::uint8_t>(backend);
  header.flags = wait ? kSubmitFlagWait : 0;
  if (certify) header.flags |= kSubmitFlagCertify;
  header.timeout_ms = timeout_ms;
  header.jobs = jobs;
  // Declare the upload size up front so the server can pick a priority
  // lane before the bytes arrive. Unreadable files declare 0; the server
  // falls back to the measured upload size (and the send fails below).
  std::error_code ec;
  const auto cnf_bytes = std::filesystem::file_size(cnf_path, ec);
  if (!ec) header.declared_bytes += cnf_bytes;
  const auto trace_bytes = std::filesystem::file_size(trace_path, ec);
  if (!ec) header.declared_bytes += trace_bytes;

  if (!write_frame(sock_, FrameTag::kSubmit, encode_submit_header(header))) {
    reply.error = "transport error sending submit header";
    return reply;
  }
  if (!send_file(cnf_path, FrameTag::kCnfData)) {
    reply.error = "cannot read or send " + cnf_path;
    return reply;
  }
  if (!send_file(trace_path, FrameTag::kTraceData)) {
    reply.error = "cannot read or send " + trace_path;
    return reply;
  }
  if (!write_frame(sock_, FrameTag::kSubmitEnd)) {
    reply.error = "transport error finishing submit";
    return reply;
  }

  Frame frame;
  if (read_frame(sock_, frame) != ReadStatus::kFrame) {
    reply.error = "connection lost waiting for the submit reply";
    return reply;
  }
  switch (frame.tag) {
    case FrameTag::kBusy:
      reply.transport_ok = true;
      reply.busy = true;
      reply.error = "server busy: job queue is full";
      return reply;
    case FrameTag::kError: {
      ErrorCode code = ErrorCode::kMalformedFrame;
      std::string message;
      decode_error(frame.payload, code, message);
      reply.error = std::string(error_code_name(code)) + ": " + message;
      return reply;
    }
    case FrameTag::kAccepted:
      if (frame.payload.size() != 8) {
        reply.error = "malformed ACCEPTED frame";
        return reply;
      }
      reply.transport_ok = true;
      reply.accepted = true;
      reply.job_id = read_u64le(frame.payload.data());
      break;
    default:
      reply.error = "unexpected reply tag";
      return reply;
  }

  if (!wait) return reply;

  if (read_frame(sock_, frame) != ReadStatus::kFrame ||
      frame.tag != FrameTag::kResult) {
    reply.error = "connection lost waiting for the job result";
    reply.transport_ok = false;
    return reply;
  }
  std::uint64_t result_id = 0;
  if (!decode_result(frame.payload, reply.status, result_id, reply.verdict,
                     reply.result_json) ||
      result_id != reply.job_id) {
    reply.error = "malformed RESULT frame";
    reply.transport_ok = false;
    return reply;
  }
  reply.have_result = true;

  // An ok certify result is always followed by its RESULT_CERT frame (a
  // certified run that could not produce a certificate is not ok).
  if (certify && reply.status == JobStatus::kOk) {
    if (read_frame(sock_, frame) != ReadStatus::kFrame ||
        frame.tag != FrameTag::kResultCert) {
      reply.error = "connection lost waiting for the certificate";
      reply.transport_ok = false;
      return reply;
    }
    std::uint64_t cert_id = 0;
    bool binary_format = false;
    if (!decode_result_cert(frame.payload, cert_id, binary_format,
                            reply.certificate) ||
        cert_id != reply.job_id) {
      reply.error = "malformed RESULT_CERT frame";
      reply.transport_ok = false;
      return reply;
    }
    reply.have_certificate = true;
  }
  return reply;
}

std::string Client::stats_json(std::string* error) {
  if (!write_frame(sock_, FrameTag::kStats)) {
    if (error != nullptr) *error = "transport error sending stats request";
    return "";
  }
  Frame frame;
  if (read_frame(sock_, frame) != ReadStatus::kFrame ||
      frame.tag != FrameTag::kStatsJson) {
    if (error != nullptr) *error = "connection lost waiting for stats";
    return "";
  }
  return std::string(frame.payload.begin(), frame.payload.end());
}

std::string Client::stats_prometheus(std::string* error) {
  if (!write_frame(sock_, FrameTag::kStatsProm)) {
    if (error != nullptr) *error = "transport error sending stats request";
    return "";
  }
  Frame frame;
  if (read_frame(sock_, frame) != ReadStatus::kFrame ||
      frame.tag != FrameTag::kStatsPromText) {
    if (error != nullptr) *error = "connection lost waiting for stats";
    return "";
  }
  return std::string(frame.payload.begin(), frame.payload.end());
}

}  // namespace satproof::service
