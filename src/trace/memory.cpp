#include "src/trace/memory.hpp"

namespace satproof::trace {

void MemoryTraceWriter::begin(Var num_vars, ClauseId num_original) {
  trace_ = MemoryTrace{};
  trace_.num_vars = num_vars;
  trace_.num_original = num_original;
}

void MemoryTraceWriter::derivation(ClauseId id,
                                   std::span<const ClauseId> sources) {
  trace_.derivations.push_back(
      {id, std::vector<ClauseId>(sources.begin(), sources.end())});
}

void MemoryTraceWriter::final_conflict(ClauseId id) {
  trace_.has_final = true;
  trace_.final_conflict = id;
}

void MemoryTraceWriter::level0(Var var, bool value, ClauseId antecedent) {
  trace_.level0.push_back({var, value, antecedent});
}

void MemoryTraceWriter::assumption(Var var, bool value) {
  trace_.level0.push_back({var, value, kInvalidClauseId});
}

void MemoryTraceWriter::end() { trace_.finished = true; }

bool MemoryTraceReader::next(Record& out) {
  if (deriv_pos_ < trace_->derivations.size()) {
    const auto& d = trace_->derivations[deriv_pos_++];
    out.kind = RecordKind::Derivation;
    out.id = d.id;
    out.sources = d.sources;
    return true;
  }
  if (trace_->has_final && !final_emitted_) {
    final_emitted_ = true;
    out.kind = RecordKind::FinalConflict;
    out.id = trace_->final_conflict;
    out.sources.clear();
    return true;
  }
  if (level0_pos_ < trace_->level0.size()) {
    const auto& a = trace_->level0[level0_pos_++];
    out.kind = a.antecedent == kInvalidClauseId ? RecordKind::Assumption
                                                : RecordKind::Level0;
    out.var = a.var;
    out.value = a.value;
    out.antecedent = a.antecedent;
    out.sources.clear();
    return true;
  }
  // A trace whose writer never saw end() is truncated; claiming an End
  // record here would hide that from the checkers' truncation detection.
  if (trace_->finished && !end_emitted_) {
    end_emitted_ = true;
    out.kind = RecordKind::End;
    out.sources.clear();
    return true;
  }
  return false;
}

void MemoryTraceReader::rewind() {
  deriv_pos_ = 0;
  level0_pos_ = 0;
  final_emitted_ = false;
  end_emitted_ = false;
}

std::uint64_t MemoryTraceReader::tell() const {
  std::uint64_t pos = deriv_pos_;
  if (final_emitted_) ++pos;
  pos += level0_pos_;
  if (end_emitted_) ++pos;
  return pos;
}

void MemoryTraceReader::seek(std::uint64_t pos) {
  const std::uint64_t nd = trace_->derivations.size();
  const std::uint64_t nf = trace_->has_final ? 1 : 0;
  const std::uint64_t nl = trace_->level0.size();
  deriv_pos_ = static_cast<std::size_t>(pos < nd ? pos : nd);
  pos -= deriv_pos_;
  final_emitted_ = nf != 0 && pos > 0;
  if (final_emitted_) --pos;
  level0_pos_ = static_cast<std::size_t>(pos < nl ? pos : nl);
  pos -= level0_pos_;
  end_emitted_ = pos > 0;
}

}  // namespace satproof::trace
