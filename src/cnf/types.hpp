#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace satproof {

/// Variable index, 0-based internally. DIMACS files use 1-based indices;
/// the conversion happens only at the I/O boundary (see cnf/dimacs.hpp).
using Var = std::uint32_t;

/// Sentinel for "no variable".
inline constexpr Var kInvalidVar = std::numeric_limits<Var>::max();

/// Clause identifier shared between the solver and the checker.
///
/// The paper (Section 3.1) requires that the solver and the checker agree
/// on clause IDs: original clauses are numbered by order of appearance in
/// the formula, and every learned clause gets the next fresh ID. IDs are
/// never reused, even after clause deletion.
using ClauseId = std::uint64_t;

/// Sentinel for "no clause" (e.g. the antecedent of a decision variable).
inline constexpr ClauseId kInvalidClauseId =
    std::numeric_limits<ClauseId>::max();

/// A literal: a variable together with a phase.
///
/// Encoded as `2*var + sign` where sign 1 means negated. The encoding
/// makes literals directly usable as indices into watch lists and keeps
/// negation a single XOR, the layout used by Chaff-family solvers.
class Lit {
 public:
  /// Default-constructed literals are invalid; they compare equal to
  /// Lit::invalid() and must not be used in clauses.
  constexpr Lit() = default;

  /// Builds the literal for `var`, negated when `negated` is true.
  constexpr Lit(Var var, bool negated)
      : code_((var << 1) | static_cast<std::uint32_t>(negated)) {}

  /// The positive literal of `var`.
  [[nodiscard]] static constexpr Lit pos(Var var) { return Lit(var, false); }

  /// The negative literal of `var`.
  [[nodiscard]] static constexpr Lit neg(Var var) { return Lit(var, true); }

  /// The invalid sentinel literal.
  [[nodiscard]] static constexpr Lit invalid() {
    Lit l;
    l.code_ = std::numeric_limits<std::uint32_t>::max();
    return l;
  }

  /// Reconstructs a literal from its integer code (watch-list index).
  [[nodiscard]] static constexpr Lit from_code(std::uint32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  /// The underlying variable.
  [[nodiscard]] constexpr Var var() const { return code_ >> 1; }

  /// True when the literal is the negation of its variable.
  [[nodiscard]] constexpr bool negated() const { return (code_ & 1) != 0; }

  /// The opposite-phase literal of the same variable.
  [[nodiscard]] constexpr Lit operator~() const {
    return from_code(code_ ^ 1);
  }

  /// Integer code, usable as a dense array index in [0, 2*num_vars).
  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }

  /// Signed DIMACS form: var+1, negative when negated.
  [[nodiscard]] constexpr std::int64_t to_dimacs() const {
    const auto v = static_cast<std::int64_t>(var()) + 1;
    return negated() ? -v : v;
  }

  /// Parses a signed DIMACS integer (non-zero) into a literal.
  [[nodiscard]] static constexpr Lit from_dimacs(std::int64_t d) {
    const auto v = static_cast<Var>((d < 0 ? -d : d) - 1);
    return Lit(v, d < 0);
  }

  friend constexpr bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend constexpr bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

 private:
  std::uint32_t code_ = std::numeric_limits<std::uint32_t>::max();
};

/// Three-valued assignment state of a variable or literal.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

/// Negation on LBool; Undef stays Undef.
[[nodiscard]] constexpr LBool operator~(LBool b) {
  switch (b) {
    case LBool::False:
      return LBool::True;
    case LBool::True:
      return LBool::False;
    case LBool::Undef:
      return LBool::Undef;
  }
  return LBool::Undef;
}

/// Human-readable literal ("x3" / "~x3") for diagnostics.
[[nodiscard]] std::string to_string(Lit lit);

/// Human-readable LBool ("T" / "F" / "U") for diagnostics.
[[nodiscard]] std::string to_string(LBool b);

}  // namespace satproof
