
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/miter.cpp" "src/circuit/CMakeFiles/satproof_circuit.dir/miter.cpp.o" "gcc" "src/circuit/CMakeFiles/satproof_circuit.dir/miter.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/satproof_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/satproof_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/rewrite.cpp" "src/circuit/CMakeFiles/satproof_circuit.dir/rewrite.cpp.o" "gcc" "src/circuit/CMakeFiles/satproof_circuit.dir/rewrite.cpp.o.d"
  "/root/repo/src/circuit/sorting.cpp" "src/circuit/CMakeFiles/satproof_circuit.dir/sorting.cpp.o" "gcc" "src/circuit/CMakeFiles/satproof_circuit.dir/sorting.cpp.o.d"
  "/root/repo/src/circuit/tseitin.cpp" "src/circuit/CMakeFiles/satproof_circuit.dir/tseitin.cpp.o" "gcc" "src/circuit/CMakeFiles/satproof_circuit.dir/tseitin.cpp.o.d"
  "/root/repo/src/circuit/words.cpp" "src/circuit/CMakeFiles/satproof_circuit.dir/words.cpp.o" "gcc" "src/circuit/CMakeFiles/satproof_circuit.dir/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
