#include "src/proof/rup.hpp"

#include <vector>

#include "src/checker/resolution.hpp"

namespace satproof::proof {

namespace {

/// Minimal two-watched-literal propagation engine for RUP checks. Clauses
/// are appended incrementally (originals, then each verified derived
/// clause). Implied-at-top-level literals accumulate on a *persistent*
/// trail prefix — re-propagating them per check would make the whole run
/// quadratic — and each rup_check() assumes the clause negation on top of
/// that prefix, propagates, and rolls back to the prefix.
class RupEngine {
 public:
  explicit RupEngine(Var num_vars)
      : assign_(num_vars, LBool::Undef), watches_(2 * num_vars) {}

  /// Adds a clause to the database. The clause is simplified against the
  /// persistent prefix first (prefix assignments never retract): clauses
  /// satisfied there are dropped, falsified literals are stripped, and a
  /// resulting unit extends the persistent prefix instead of being stored.
  void add_clause(const checker::SortedClause& lits) {
    if (has_conflict_) return;
    checker::SortedClause stored;
    stored.reserve(lits.size());
    for (const Lit lit : lits) {
      const LBool v = value(lit);
      if (v == LBool::True) return;  // permanently satisfied
      if (v == LBool::Undef) stored.push_back(lit);
    }
    if (stored.empty()) {
      has_conflict_ = true;
      return;
    }
    if (stored.size() == 1) {
      std::uint64_t sink = 0;
      if (!enqueue(stored[0]) || propagate(sink)) has_conflict_ = true;
      persistent_size_ = trail_.size();
      return;
    }
    const std::uint32_t index = static_cast<std::uint32_t>(clauses_.size());
    clauses_.push_back(std::move(stored));
    const auto& c = clauses_.back();
    watches_[(~c[0]).code()].push_back(index);
    watches_[(~c[1]).code()].push_back(index);
  }

  /// True when assuming the negation of `clause` propagates to a conflict.
  [[nodiscard]] bool rup_check(const checker::SortedClause& clause,
                               std::uint64_t& propagations) {
    if (has_conflict_) return true;
    bool conflict = false;
    for (const Lit lit : clause) {
      if (!enqueue(~lit)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) conflict = propagate(propagations);
    // Roll back to the persistent prefix.
    while (trail_.size() > persistent_size_) {
      assign_[trail_.back().var()] = LBool::Undef;
      trail_.pop_back();
    }
    qhead_ = persistent_size_;
    return conflict;
  }

 private:
  [[nodiscard]] LBool value(Lit p) const {
    const LBool v = assign_[p.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return p.negated() ? ~v : v;
  }

  /// Returns false on conflict with the current assignment.
  bool enqueue(Lit p) {
    const LBool v = value(p);
    if (v == LBool::False) return false;
    if (v == LBool::True) return true;
    assign_[p.var()] = p.negated() ? LBool::False : LBool::True;
    trail_.push_back(p);
    return true;
  }

  /// Standard watched-literal BCP; true when a conflict was found.
  bool propagate(std::uint64_t& propagations) {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++propagations;
      auto& ws = watches_[p.code()];
      std::size_t i = 0, j = 0;
      while (i < ws.size()) {
        const std::uint32_t ci = ws[i];
        auto& c = clauses_[ci];
        const Lit false_lit = ~p;
        if (c[0] == false_lit) std::swap(c[0], c[1]);
        ++i;
        if (value(c[0]) == LBool::True) {
          ws[j++] = ci;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value(c[k]) != LBool::False) {
            std::swap(c[1], c[k]);
            watches_[(~c[1]).code()].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        ws[j++] = ci;
        if (!enqueue(c[0])) {
          while (i < ws.size()) ws[j++] = ws[i++];
          ws.resize(j);
          return true;
        }
      }
      ws.resize(j);
    }
    return false;
  }

  std::vector<LBool> assign_;
  std::vector<std::vector<std::uint32_t>> watches_;  // by Lit::code()
  std::vector<checker::SortedClause> clauses_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::size_t persistent_size_ = 0;  ///< trail prefix that never rolls back
  bool has_conflict_ = false;        ///< persistent prefix already conflicts
};

}  // namespace

RupResult check_rup(const Formula& f, const ProofDag& dag) {
  RupResult result;

  Var num_vars = f.num_vars();
  for (const auto& node : dag.nodes) {
    for (const Lit lit : node.lits) {
      num_vars = std::max(num_vars, lit.var() + 1);
    }
  }
  RupEngine engine(num_vars);

  // Seed with every original clause (tautologies are permanently satisfied
  // and contribute nothing to propagation).
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    const checker::SortedClause canon =
        checker::canonicalize(f.clause(id));
    if (!checker::is_tautology(canon)) engine.add_clause(canon);
  }

  for (const auto& node : dag.nodes) {
    if (node.sources.empty()) {
      // Leaf: must literally be an original clause.
      if (node.id >= dag.num_original) {
        result.error = "leaf node " + std::to_string(node.id) +
                       " is not an original clause";
        return result;
      }
      continue;
    }
    if (!engine.rup_check(node.lits, result.propagations)) {
      result.error =
          "derived clause " + std::to_string(node.id) +
          " is not RUP: assuming its negation does not propagate to a "
          "conflict";
      return result;
    }
    ++result.clauses_checked;
    engine.add_clause(node.lits);
  }

  result.ok = true;
  return result;
}

RupResult check_trace_rup(const Formula& f, trace::TraceReader& reader) {
  try {
    const ProofDag dag = extract_proof(f, reader);
    return check_rup(f, dag);
  } catch (const ProofError& e) {
    RupResult result;
    result.error = e.what();
    return result;
  }
}

}  // namespace satproof::proof
