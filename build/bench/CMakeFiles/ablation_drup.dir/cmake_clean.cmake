file(REMOVE_RECURSE
  "CMakeFiles/ablation_drup.dir/ablation_drup.cpp.o"
  "CMakeFiles/ablation_drup.dir/ablation_drup.cpp.o.d"
  "ablation_drup"
  "ablation_drup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
