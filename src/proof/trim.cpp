#include "src/proof/trim.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

namespace satproof::proof {

TrimStats trim_trace(trace::TraceReader& in, trace::TraceWriter& out) {
  // Pass 1: structure only (same layout as the hybrid checker).
  std::vector<ClauseId> ids;
  std::vector<std::size_t> src_offset{0};
  std::vector<ClauseId> src_pool;
  std::optional<ClauseId> final_id;
  struct TrailRec {
    Var var;
    bool value;
    ClauseId antecedent;  // kInvalidClauseId for assumptions
  };
  std::vector<TrailRec> trail;

  in.rewind();
  trace::Record rec;
  bool ended = false;
  while (!ended && in.next(rec)) {
    switch (rec.kind) {
      case trace::RecordKind::Derivation:
        if (!ids.empty() && rec.id <= ids.back()) {
          throw std::runtime_error(
              "trim_trace: derivation IDs must be strictly increasing");
        }
        ids.push_back(rec.id);
        src_pool.insert(src_pool.end(), rec.sources.begin(),
                        rec.sources.end());
        src_offset.push_back(src_pool.size());
        break;
      case trace::RecordKind::FinalConflict:
        final_id = rec.id;
        break;
      case trace::RecordKind::Level0:
        trail.push_back({rec.var, rec.value, rec.antecedent});
        break;
      case trace::RecordKind::Assumption:
        trail.push_back({rec.var, rec.value, kInvalidClauseId});
        break;
      case trace::RecordKind::End:
        ended = true;
        break;
    }
  }
  if (!ended) throw std::runtime_error("trim_trace: trace truncated");
  if (!final_id.has_value()) {
    throw std::runtime_error(
        "trim_trace: trace has no final conflicting clause");
  }

  const auto index_of = [&ids](ClauseId id) -> std::size_t {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    if (it == ids.end() || *it != id) return ~std::size_t{0};
    return static_cast<std::size_t>(it - ids.begin());
  };

  // Backward reachability from the final conflict and trail antecedents.
  std::vector<bool> reachable(ids.size(), false);
  const auto seed = [&](ClauseId id) {
    const std::size_t idx = index_of(id);
    if (idx != ~std::size_t{0}) reachable[idx] = true;
  };
  seed(*final_id);
  for (const TrailRec& t : trail) {
    if (t.antecedent != kInvalidClauseId) seed(t.antecedent);
  }
  for (std::size_t i = ids.size(); i-- > 0;) {
    if (!reachable[i]) continue;
    for (std::size_t k = src_offset[i]; k < src_offset[i + 1]; ++k) {
      seed(src_pool[k]);
    }
  }

  // Re-emit.
  TrimStats stats;
  stats.derivations_before = ids.size();
  out.begin(in.num_vars(), in.num_original());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!reachable[i]) continue;
    ++stats.derivations_after;
    out.derivation(ids[i],
                   std::span<const ClauseId>(
                       src_pool.data() + src_offset[i],
                       src_offset[i + 1] - src_offset[i]));
  }
  out.final_conflict(*final_id);
  for (const TrailRec& t : trail) {
    if (t.antecedent == kInvalidClauseId) {
      out.assumption(t.var, t.value);
    } else {
      out.level0(t.var, t.value, t.antecedent);
    }
  }
  out.end();
  return stats;
}

}  // namespace satproof::proof
