#include "src/util/mem_tracker.hpp"

namespace satproof::util {

std::size_t clause_footprint_bytes(std::size_t num_lits) {
  // 4 bytes per literal plus a 32-byte header: clause id, length, flags and
  // typical allocator rounding. The constant matters less than using the
  // same formula everywhere.
  return 4 * num_lits + 32;
}

}  // namespace satproof::util
