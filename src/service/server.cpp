#include "src/service/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "src/cert/kernel.hpp"
#include "src/obs/trace.hpp"

namespace satproof::service {

namespace {

using Clock = std::chrono::steady_clock;

// EventPoller keys of the non-connection descriptors; connections get
// keys starting at Server::next_conn_key_ (16).
constexpr std::uint64_t kKeyUnixListener = 0;
constexpr std::uint64_t kKeyTcpListener = 1;
constexpr std::uint64_t kKeyDrainPipe = 2;
constexpr std::uint64_t kKeyCompletionPipe = 3;

/// Serializes one frame to its wire form (header + payload).
std::vector<std::uint8_t> make_wire_frame(
    FrameTag tag, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<std::uint8_t>(tag));
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

/// Per-connection upload in progress: the job header plus the temp files
/// the CNF and trace chunks stream into. Chunks hit disk immediately — the
/// server never holds more of an upload in memory than one frame.
struct UploadState {
  bool active = false;
  SubmitHeader header;
  std::uint64_t ingest_start_us = 0;
  std::uint64_t streamed_bytes = 0;  ///< CNF + trace bytes received so far
  std::optional<util::TempFile> cnf_file;
  std::optional<util::TempFile> trace_file;
  std::ofstream cnf_out;
  std::ofstream trace_out;

  void begin(const SubmitHeader& h) {
    header = h;
    ingest_start_us = obs::now_us();
    streamed_bytes = 0;
    cnf_file.emplace("svc-cnf");
    trace_file.emplace("svc-trace");
    cnf_out.open(cnf_file->path(), std::ios::out | std::ios::binary);
    trace_out.open(trace_file->path(), std::ios::out | std::ios::binary);
    active = true;
  }

  void reset() {
    active = false;
    cnf_out.close();
    trace_out.close();
    cnf_file.reset();
    trace_file.reset();
  }
};

/// One live client connection, owned exclusively by the I/O thread. No
/// thread, no lock: all state transitions happen on the event loop, and a
/// connection that closes is destroyed on the spot (prompt reaping — dead
/// handles never accumulate waiting for the next accept).
struct Server::Connection {
  std::uint64_t key = 0;
  util::Socket sock;
  FrameDecoder decoder;
  UploadState upload;

  /// Bytes queued for the peer, sent as the socket accepts them;
  /// [out_off, outbuf.size()) is the unsent suffix.
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;

  /// A wait-mode job is in flight: reads are paused (the blocking server
  /// equally read nothing while parked on the ticket) and the idle sweep
  /// leaves the connection alone until the result is delivered.
  bool waiting_result = false;
  /// Close once outbuf drains (protocol error already queued, or EOF).
  bool close_after_flush = false;
  /// Peer half-closed; never re-enable read interest.
  bool saw_eof = false;

  // Current poller interest, to skip redundant modify() syscalls.
  bool poll_read = true;
  bool poll_write = false;

  std::uint64_t last_activity_us = 0;

  [[nodiscard]] bool has_unsent() const { return out_off < outbuf.size(); }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      worker_count_(options_.workers != 0
                        ? options_.workers
                        : std::max(1u, std::thread::hardware_concurrency())),
      queue_(worker_count_,
             options_.queue_capacity == 0 ? 1 : options_.queue_capacity) {}

Server::~Server() {
  bool need_drain = false;
  {
    std::lock_guard lock(state_mutex_);
    need_drain = started_ && !drained_;
  }
  if (need_drain) drain_and_wait();
}

void Server::start() {
  if (options_.unix_socket_path.empty() && !options_.enable_tcp) {
    throw std::runtime_error(
        "server needs at least one transport (unix socket or tcp)");
  }
  if (!options_.unix_socket_path.empty()) {
    unix_listener_ = util::listen_unix(options_.unix_socket_path);
    unix_listener_.set_nonblocking();
  }
  if (options_.enable_tcp) {
    tcp_listener_ = util::listen_tcp_localhost(options_.tcp_port);
    tcp_listener_.set_nonblocking();
    tcp_port_ = util::local_port(tcp_listener_);
  }

  poller_ = std::make_unique<util::EventPoller>();
  if (unix_listener_.valid()) {
    poller_->add(unix_listener_.fd(), kKeyUnixListener, true, false);
  }
  if (tcp_listener_.valid()) {
    poller_->add(tcp_listener_.fd(), kKeyTcpListener, true, false);
  }
  poller_->add(wake_pipe_.read_fd, kKeyDrainPipe, true, false);
  poller_->add(completion_pipe_.read_fd, kKeyCompletionPipe, true, false);

  {
    std::lock_guard lock(state_mutex_);
    started_ = true;
  }
  workers_.reserve(worker_count_);
  for (unsigned w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
  io_thread_ = std::jthread([this] { io_loop(); });
}

void Server::wait_until_drained() {
  std::unique_lock lock(state_mutex_);
  if (!started_) return;
  state_cv_.wait(lock, [this] { return drained_; });
}

void Server::drain_and_wait() {
  request_drain();
  wait_until_drained();
}

std::vector<ShardedJobQueue::ShardSnapshot> Server::shard_snapshots() const {
  std::vector<ShardedJobQueue::ShardSnapshot> out;
  out.reserve(queue_.shards());
  for (unsigned i = 0; i < queue_.shards(); ++i) {
    out.push_back(queue_.shard_snapshot(i));
  }
  return out;
}

std::string Server::metrics_json() const {
  return metrics_.to_json(queue_.depth(), queue_.capacity(),
                          running_jobs_.load(), shard_snapshots());
}

std::string Server::metrics_prometheus() const {
  return metrics_.to_prometheus(queue_.depth(), queue_.capacity(),
                                running_jobs_.load(), shard_snapshots());
}

// ----------------------------------------------------------------------
// I/O thread
// ----------------------------------------------------------------------

void Server::io_loop() {
  std::vector<util::PollEvent> events;
  for (;;) {
    int timeout_ms = -1;
    if (options_.idle_timeout_ms > 0) {
      timeout_ms = static_cast<int>(
          std::clamp(options_.idle_timeout_ms / 4, 25u, 1000u));
    }
    if (draining_.load()) {
      timeout_ms = timeout_ms < 0 ? 100 : std::min(timeout_ms, 100);
    }

    poller_->wait(timeout_ms, events);
    const std::uint64_t now = obs::now_us();

    for (const util::PollEvent& ev : events) {
      switch (ev.key) {
        case kKeyUnixListener:
          accept_ready(unix_listener_);
          break;
        case kKeyTcpListener:
          accept_ready(tcp_listener_);
          break;
        case kKeyDrainPipe:
          wake_pipe_.drain();
          begin_drain();
          break;
        case kKeyCompletionPipe:
          deliver_completions();
          break;
        default:
          on_connection_event(ev, now);
          break;
      }
    }

    if (options_.idle_timeout_ms > 0) sweep_idle(now);
    if (draining_.load() && drain_complete()) break;
  }

  // Every admitted job has completed and flushed; surviving connections
  // (idle peers, half-done uploads) are cut off now, as the blocking
  // server did by joining their threads.
  conns_.clear();
  workers_.clear();  // jthread destructors join; pop_blocking returned

  {
    std::lock_guard lock(state_mutex_);
    drained_ = true;
  }
  state_cv_.notify_all();
}

void Server::begin_drain() {
  if (draining_.exchange(true)) return;
  if (unix_listener_.valid()) {
    poller_->remove(unix_listener_.fd());
    unix_listener_.close();
  }
  if (tcp_listener_.valid()) {
    poller_->remove(tcp_listener_.fd());
    tcp_listener_.close();
  }
  if (!options_.unix_socket_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(options_.unix_socket_path, ec);
  }
  // Stop admissions. Workers keep draining already-queued jobs; a late
  // SUBMIT_END sees kClosed and is answered with a DRAINING error.
  queue_.close();
}

bool Server::drain_complete() const {
  if (pending_jobs_ > 0) return false;
  for (const auto& [key, conn] : conns_) {
    (void)key;
    if (conn->has_unsent()) return false;
  }
  return true;
}

void Server::accept_ready(util::Socket& listener) {
  if (!listener.valid()) return;
  for (;;) {
    util::Socket conn = util::accept_connection(listener);
    if (!conn.valid()) break;  // EAGAIN: accepted everything pending
    conn.set_nonblocking();
    metrics_.on_connection();
    auto c = std::make_unique<Connection>();
    c->key = next_conn_key_++;
    c->sock = std::move(conn);
    c->last_activity_us = obs::now_us();
    poller_->add(c->sock.fd(), c->key, true, false);
    conns_.emplace(c->key, std::move(c));
  }
}

void Server::destroy_connection(std::uint64_t key) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  poller_->remove(it->second->sock.fd());
  conns_.erase(it);
}

void Server::queue_output(Connection& conn, FrameTag tag,
                          std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> wire = make_wire_frame(tag, payload);
  conn.outbuf.insert(conn.outbuf.end(), wire.begin(), wire.end());
}

/// Sends as much of outbuf as the socket takes. Leaves the rest for the
/// next writable event. Throws nothing; a hard send error marks the
/// connection for destruction via close_after_flush + cleared buffer.
void Server::flush_output(Connection& conn) {
  while (conn.has_unsent()) {
    const std::ptrdiff_t k = conn.sock.send_nonblocking(
        conn.outbuf.data() + conn.out_off, conn.outbuf.size() - conn.out_off);
    if (k == util::Socket::kIoError) {
      // Peer is gone; drop whatever we had for it.
      conn.outbuf.clear();
      conn.out_off = 0;
      conn.close_after_flush = true;
      return;
    }
    if (k == 0) break;  // kernel buffer full; wait for writable
    conn.out_off += static_cast<std::size_t>(k);
  }
  if (!conn.has_unsent()) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
}

void Server::on_connection_event(const util::PollEvent& ev,
                                 std::uint64_t now_us) {
  auto it = conns_.find(ev.key);
  if (it == conns_.end()) return;  // destroyed earlier in this batch
  Connection& conn = *it->second;

  if (ev.error && conn.waiting_result) {
    // Peer died while its job runs. Error events are reported regardless
    // of interest, so reap now instead of spinning until the completion
    // arrives; deliver_completions drops results for vanished clients.
    if (conn.decoder.mid_frame()) metrics_.on_malformed_frame();
    destroy_connection(ev.key);
    return;
  }

  if (ev.writable) flush_output(conn);

  const bool want_read =
      !conn.waiting_result && !conn.close_after_flush && !conn.saw_eof;
  if ((ev.readable || ev.error) && want_read) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const std::ptrdiff_t k = conn.sock.recv_nonblocking(buf, sizeof(buf));
      if (k > 0) {
        conn.last_activity_us = now_us;
        conn.decoder.feed(buf, static_cast<std::size_t>(k));
        process_buffered_frames(conn);
        if (conn.waiting_result || conn.close_after_flush) break;
        continue;
      }
      if (k == util::Socket::kWouldBlock) break;
      // EOF or hard error. Partial frame bytes at disconnect are the
      // mid-frame truncation the malformed-frame counter tracks.
      if (conn.decoder.mid_frame()) metrics_.on_malformed_frame();
      conn.saw_eof = true;
      conn.close_after_flush = true;
      break;
    }
  }

  flush_output(conn);
  if (conn.close_after_flush && !conn.has_unsent() && !conn.waiting_result) {
    destroy_connection(ev.key);
    return;
  }

  const bool read_interest =
      !conn.waiting_result && !conn.close_after_flush && !conn.saw_eof;
  const bool write_interest = conn.has_unsent();
  if (read_interest != conn.poll_read || write_interest != conn.poll_write) {
    conn.poll_read = read_interest;
    conn.poll_write = write_interest;
    poller_->modify(conn.sock.fd(), read_interest, write_interest);
  }
}

void Server::process_buffered_frames(Connection& conn) {
  Frame frame;
  for (;;) {
    if (conn.waiting_result || conn.close_after_flush) return;
    const FrameDecoder::Result r = conn.decoder.next(frame);
    if (r == FrameDecoder::Result::kNeedMore) return;
    if (r == FrameDecoder::Result::kOversized) {
      metrics_.on_malformed_frame();
      queue_output(conn, FrameTag::kError,
                   encode_error(ErrorCode::kOversizedFrame,
                                "declared frame length exceeds the cap"));
      conn.close_after_flush = true;
      return;
    }
    if (!handle_frame(conn, frame)) {
      conn.close_after_flush = true;
      return;
    }
  }
}

bool Server::handle_frame(Connection& conn, Frame& frame) {
  UploadState& upload = conn.upload;
  const auto protocol_error = [&](ErrorCode code, std::string_view msg) {
    metrics_.on_malformed_frame();
    queue_output(conn, FrameTag::kError, encode_error(code, msg));
    return false;
  };

  switch (frame.tag) {
    case FrameTag::kSubmit: {
      if (upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "SUBMIT while an upload is in progress");
      }
      SubmitHeader header;
      if (!decode_submit_header(frame.payload, header)) {
        return protocol_error(ErrorCode::kMalformedFrame,
                              "SUBMIT payload is not a submit header");
      }
      if (header.backend >= kNumBackends) {
        return protocol_error(ErrorCode::kBadRequest,
                              "unknown backend id " +
                                  std::to_string(header.backend));
      }
      if ((header.flags & kSubmitFlagCertify) != 0) {
        const auto b = static_cast<Backend>(header.backend);
        if (b != Backend::kDf && b != Backend::kHybrid) {
          return protocol_error(
              ErrorCode::kBadRequest,
              "certificate emission requires the df or hybrid backend");
        }
        if ((header.flags & kSubmitFlagWait) == 0) {
          // A certificate only travels on the result path; fire-and-forget
          // certify jobs would do the work and drop the bytes.
          return protocol_error(ErrorCode::kBadRequest,
                                "certify requires the wait flag");
        }
      }
      upload.begin(header);
      return true;
    }

    case FrameTag::kCnfData:
    case FrameTag::kTraceData: {
      if (!upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "data chunk outside an upload");
      }
      std::ofstream& out = frame.tag == FrameTag::kCnfData ? upload.cnf_out
                                                           : upload.trace_out;
      if (!frame.payload.empty()) {
        out.write(reinterpret_cast<const char*>(frame.payload.data()),
                  static_cast<std::streamsize>(frame.payload.size()));
        upload.streamed_bytes += frame.payload.size();
      }
      return true;
    }

    case FrameTag::kSubmitEnd: {
      if (!upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "SUBMIT_END without a submit");
      }
      upload.cnf_out.close();
      upload.trace_out.close();

      JobRequest request;
      request.id = next_job_id_.fetch_add(1);
      request.backend = static_cast<Backend>(upload.header.backend);
      request.jobs = upload.header.jobs;
      request.timeout_ms = upload.header.timeout_ms != 0
                               ? upload.header.timeout_ms
                               : options_.default_timeout_ms;
      request.certify = (upload.header.flags & kSubmitFlagCertify) != 0;
      request.cnf_file = std::move(*upload.cnf_file);
      request.trace_file = std::move(*upload.trace_file);
      request.enqueued_at = Clock::now();
      request.ingest_us = obs::now_us() - upload.ingest_start_us;
      obs::emit("ingest", upload.ingest_start_us, request.ingest_us);
      const std::uint64_t job_id = request.id;
      const bool wait = (upload.header.flags & kSubmitFlagWait) != 0;
      const bool certify = request.certify;
      // Lane: trust the declaration when it is honest, the measured
      // upload when it is absent or understated.
      const std::uint64_t effective_bytes =
          std::max(upload.header.declared_bytes, upload.streamed_bytes);
      upload.reset();

      QueuedJob job;
      job.request = std::move(request);
      job.lane = effective_bytes >= options_.bulk_threshold_bytes
                     ? Lane::kBulk
                     : Lane::kFast;
      const std::uint64_t conn_key = conn.key;
      job.on_done = [this, conn_key, job_id, wait, certify](
                        JobOutcome outcome, bool timed_out) {
        CompletionMsg msg;
        msg.conn_key = conn_key;
        if (wait) {
          const JobStatus status = timed_out          ? JobStatus::kTimeout
                                   : outcome.ok       ? JobStatus::kOk
                                                      : JobStatus::kCheckFailed;
          obs::Span respond_span("respond");
          msg.frame = make_wire_frame(
              FrameTag::kResult,
              encode_result(status, job_id, verdict_line(outcome),
                            outcome_json(outcome)));
          if (certify && status == JobStatus::kOk &&
              !outcome.certificate.empty()) {
            // Two frames in one completion: the client reads kResult, then
            // its certificate. msg.frame is raw wire bytes, so frames
            // concatenate; legacy non-certify clients never reach here.
            const std::vector<std::uint8_t> cert_frame = make_wire_frame(
                FrameTag::kResultCert,
                encode_result_cert(job_id, /*binary_format=*/false,
                                   outcome.certificate));
            msg.frame.insert(msg.frame.end(), cert_frame.begin(),
                             cert_frame.end());
          }
        }
        {
          std::lock_guard lock(completions_mutex_);
          completions_.push_back(std::move(msg));
        }
        completion_pipe_.notify();
      };

      const ShardedJobQueue::EnqueueResult res =
          queue_.try_enqueue(std::move(job));

      if (res == ShardedJobQueue::EnqueueResult::kClosed) {
        queue_output(conn, FrameTag::kError,
                     encode_error(ErrorCode::kDraining,
                                  "server is draining; job refused"));
        return false;
      }
      if (res == ShardedJobQueue::EnqueueResult::kFull) {
        metrics_.on_rejected_busy();
        std::vector<std::uint8_t> payload;
        append_u32le(payload, static_cast<std::uint32_t>(queue_.capacity()));
        queue_output(conn, FrameTag::kBusy, payload);
        return true;  // connection stays usable
      }

      metrics_.on_accepted();
      ++pending_jobs_;
      std::vector<std::uint8_t> payload;
      append_u64le(payload, job_id);
      queue_output(conn, FrameTag::kAccepted, payload);
      if (wait) {
        // Pause reads until the worker's result frame is delivered; the
        // client is parked in read_frame anyway, and pipelined frames
        // stay buffered in the decoder / kernel until then.
        conn.waiting_result = true;
      }
      return true;
    }

    case FrameTag::kStats: {
      if (upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "STATS during an upload");
      }
      const std::string json = metrics_json();
      queue_output(conn, FrameTag::kStatsJson,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(json.data()),
                       json.size()));
      return true;
    }

    case FrameTag::kStatsProm: {
      if (upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "STATS_PROM during an upload");
      }
      const std::string text = metrics_prometheus();
      queue_output(conn, FrameTag::kStatsPromText,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size()));
      return true;
    }

    default:
      return protocol_error(ErrorCode::kUnknownTag,
                            "unknown frame tag " +
                                std::to_string(static_cast<unsigned>(
                                    static_cast<std::uint8_t>(frame.tag))));
  }
}

void Server::deliver_completions() {
  completion_pipe_.drain();
  std::vector<CompletionMsg> msgs;
  {
    std::lock_guard lock(completions_mutex_);
    msgs.swap(completions_);
  }
  for (CompletionMsg& msg : msgs) {
    if (pending_jobs_ > 0) --pending_jobs_;
    auto it = conns_.find(msg.conn_key);
    if (it == conns_.end()) continue;  // client vanished; drop the result
    Connection& conn = *it->second;
    if (!msg.frame.empty()) {
      conn.outbuf.insert(conn.outbuf.end(), msg.frame.begin(),
                         msg.frame.end());
    }
    conn.waiting_result = false;
    conn.last_activity_us = obs::now_us();
    // Frames the client pipelined behind the wait-mode submit were left
    // in the decoder; resume them now that the result is on its way.
    process_buffered_frames(conn);
    flush_output(conn);
    if (conn.close_after_flush && !conn.has_unsent() &&
        !conn.waiting_result) {
      destroy_connection(msg.conn_key);
      continue;
    }
    const bool read_interest =
        !conn.waiting_result && !conn.close_after_flush && !conn.saw_eof;
    const bool write_interest = conn.has_unsent();
    if (read_interest != conn.poll_read ||
        write_interest != conn.poll_write) {
      conn.poll_read = read_interest;
      conn.poll_write = write_interest;
      poller_->modify(conn.sock.fd(), read_interest, write_interest);
    }
  }
}

void Server::sweep_idle(std::uint64_t now_us) {
  const std::uint64_t limit_us =
      static_cast<std::uint64_t>(options_.idle_timeout_ms) * 1000;
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = *it->second;
    // last_activity_us can postdate now_us (stamped later in the same
    // event batch), so compare saturating — never unsigned-underflow.
    if (conn.waiting_result || conn.last_activity_us >= now_us ||
        now_us - conn.last_activity_us <= limit_us) {
      ++it;
      continue;
    }
    // Stalled peer. Partial frame bytes make it a truncation (the
    // blocking server's SO_RCVTIMEO path counted exactly this case).
    if (conn.decoder.mid_frame()) metrics_.on_malformed_frame();
    poller_->remove(conn.sock.fd());
    it = conns_.erase(it);
  }
}

// ----------------------------------------------------------------------
// Worker pool
// ----------------------------------------------------------------------

void Server::worker_main(unsigned worker) {
  // One arena per worker, reused across every job this worker runs:
  // concurrent checks never contend on clause allocation, and steady
  // traffic recycles chunk memory instead of round-tripping malloc.
  util::ClauseArena arena;
  while (auto job = queue_.pop_blocking(worker)) {
    execute_job(std::move(*job), arena);
  }
}

void Server::execute_job(QueuedJob job, util::ClauseArena& arena) {
  JobRequest request = std::move(job.request);
  running_jobs_.fetch_add(1);
  const auto start = Clock::now();
  const bool has_deadline = request.timeout_ms > 0;
  const auto deadline =
      request.enqueued_at + std::chrono::milliseconds(request.timeout_ms);

  // Per-job span profile. Only collected when --slow-job-ms is set; the
  // collector is thread-local, so spans from the parallel backend's pool
  // threads land in the global trace sink (if any) but not in this tree.
  const bool profile = options_.slow_job_ms > 0;
  obs::SpanTreeCollector collector;
  if (profile) {
    obs::set_thread_collector(&collector);
    if (request.ingest_us > 0) {
      collector.add_leaf("ingest", 0, request.ingest_us);
    }
    const auto wait_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            start - request.enqueued_at)
            .count());
    collector.add_leaf("queue_wait", obs::now_us() - wait_us, wait_us);
  }

  JobOutcome outcome;
  bool timed_out = false;
  if (has_deadline && start >= deadline) {
    // Expired while queued: fail fast without burning a checker run.
    outcome.backend = request.backend;
    outcome.ok = false;
    outcome.error = "job timed out waiting in the queue";
    timed_out = true;
  } else {
    obs::Span run_span("run");
    if (request.certify) {
      // Certify into memory; the bytes ship in the RESULT_CERT frame.
      std::ostringstream cert_sink;
      CertOptions cert;
      cert.sink = &cert_sink;
      outcome = run_check(request.cnf_file.path().string(),
                          request.trace_file.path().string(), request.backend,
                          request.jobs, &arena, cert,
                          options_.mem_limit_bytes);
      outcome.certificate = std::move(cert_sink).str();
      if (options_.certify && outcome.ok) {
        // Trusted-kernel post-check: re-verify the certificate against the
        // original CNF before reporting success.
        obs::Span kern_span("kernel_verify");
        std::ifstream cnf_in(request.cnf_file.path(),
                             std::ios::in | std::ios::binary);
        std::istringstream cert_in(outcome.certificate);
        const kern::VerifyResult kv = kern::verify_lrat(cnf_in, cert_in);
        metrics_.on_certified(kv.verified);
        if (!kv.verified) {
          outcome.ok = false;
          outcome.error = "kernel rejected certificate at line " +
                          std::to_string(kv.line) + ": " + kv.error;
          outcome.certificate.clear();
        }
      }
    } else {
      outcome = run_check(request.cnf_file.path().string(),
                          request.trace_file.path().string(), request.backend,
                          request.jobs, &arena, {}, options_.mem_limit_bytes);
    }
    run_span.finish();
    if (has_deadline && Clock::now() > deadline) {
      // Soft timeout: checking is not preemptible, so an overlong job is
      // reported as timed out after the fact (docs/SERVICE.md).
      timed_out = true;
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (profile) {
    obs::set_thread_collector(nullptr);
    if (seconds * 1e3 > static_cast<double>(options_.slow_job_ms)) {
      metrics_.on_slow_job();
      // One buffered write so concurrent workers' dumps don't interleave.
      std::string dump = "SLOW-JOB: id=" + std::to_string(request.id) +
                         " backend=" + backend_name(outcome.backend) +
                         " wall_ms=" + std::to_string(seconds * 1e3) +
                         " threshold_ms=" +
                         std::to_string(options_.slow_job_ms) + "\n" +
                         collector.render();
      std::fputs(dump.c_str(), stderr);
    }
  }

  // Attribute to the backend that actually ran: the per-job memory cap
  // may have downgraded a df/hybrid request (outcome.backend tracks it;
  // for jobs that expired in the queue it is still the requested one).
  if (timed_out) {
    metrics_.on_timeout(outcome.backend);
  } else {
    metrics_.on_completed(outcome.backend, seconds, outcome.ok,
                          outcome.stats.arena_peak_bytes);
  }
  running_jobs_.fetch_sub(1);
  // The dump (if any) is already on stderr: the result frame the client
  // sees is always preceded by its slow-job report.
  if (job.on_done) job.on_done(std::move(outcome), timed_out);
}

}  // namespace satproof::service
