#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace satproof::util {
class JsonWriter;
}

namespace satproof::obs {

/// Monotonically increasing counter. Counters are created once via
/// `MetricsRegistry::counter` and bumped lock-free afterwards.
class Counter {
 public:
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  const std::string name_;
  const std::string help_;
  std::atomic<std::uint64_t> value_{0};
};

/// Process-global registry of counters and callback gauges, serialized by
/// `satproof check --stats=json` and by satproofd's Prometheus endpoint.
///
/// Counter names follow Prometheus conventions: `snake_case`, a
/// `satproof_` prefix, `_total` suffix for counters, unit suffixes
/// (`_bytes`) where applicable.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates the named counter. The returned reference is stable
  /// for the process lifetime — cache it, don't re-look-up on hot paths.
  Counter& counter(const std::string& name, const std::string& help);

  /// Registers a gauge whose value is sampled at render time. Re-using a
  /// name replaces the callback (e.g. a restarted server).
  void register_gauge(const std::string& name, const std::string& help,
                      std::function<double()> fn);
  void unregister_gauge(const std::string& name);

  /// Prometheus text exposition (HELP/TYPE comments + samples).
  [[nodiscard]] std::string render_prometheus() const;

  /// Emits `"name":value` pairs into an already-open JSON object.
  void to_json(util::JsonWriter& w) const;

 private:
  struct Gauge {
    std::string name;
    std::string help;
    std::function<double()> fn;
  };

  mutable std::mutex mu_;
  std::deque<Counter> counters_;  // deque: stable addresses on growth
  std::vector<Gauge> gauges_;
};

/// Well-known counters bumped by the checking paths. Grouped here so the
/// names stay consistent between backends, docs, and tests.
struct CheckerCounters {
  Counter& derivations;
  Counter& clauses_built;
  Counter& resolutions;
  Counter& arena_allocated_bytes;
  Counter& drup_propagations;
  Counter& checks_total;

  static CheckerCounters& get();
};

}  // namespace satproof::obs
