// gen_bigtrace — synthesize an arbitrarily large valid binary resolution
// trace plus its DIMACS formula, for memory-budget testing (the CI
// mem-budget gate and the window-checker acceptance runs).
//
// Construction: K independent "ladder" chains of N variables each. Ladder
// w has a unit original (v_0), plus implication originals up
// (~v_i | v_{i+1}) and down (~v_{i+1} | v_i) between every adjacent pair.
// A walker per ladder starts at rung 0 and random-walks up and down; each
// step emits ONE derivation that folds the walker's current unit clause
// with a same-direction chain of L implication originals, deriving the
// unit clause of the landing rung. Every derivation therefore consumes
// the previous one, so the whole trace is reachable from the final
// conflict and a replay must fold all of it — while the live frontier is
// only K unit clauses, which is what lets the window checker verify a
// multi-GB trace in megabytes of memory.
//
// The endgame steers every walker to the top rung, resolves the join
// original (~v^0_top | ... | ~v^{K-1}_top | z) with each top unit to
// derive the unit (z), records z as a level-0 assignment with that
// derivation as its antecedent, and reports the original (~z) as the
// final conflict.
//
// Usage:
//   gen_bigtrace -o FILE.cnf -t FILE.trace [--target-bytes N(K/M/G)]
//                [--ladders K] [--vars N] [--chain L] [--seed S]

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/trace/binary.hpp"

namespace {

using satproof::ClauseId;
using satproof::Var;

std::uint64_t parse_bytes(const std::string& s) {
  std::size_t pos = 0;
  const std::uint64_t v = std::stoull(s, &pos);
  std::uint64_t mult = 1;
  if (pos < s.size()) {
    switch (s[pos]) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: throw std::runtime_error("bad byte suffix in '" + s + "'");
    }
  }
  return v * mult;
}

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

struct Params {
  std::string cnf_path;
  std::string trace_path;
  std::uint64_t target_bytes = 64ull << 20;
  std::uint64_t ladders = 4;
  std::uint64_t vars = 1u << 16;  ///< rungs per ladder
  std::uint64_t chain = 64;      ///< implication originals folded per step
  std::uint64_t seed = 1;
};

}  // namespace

int main(int argc, char** argv) {
  Params p;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (++i >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[i];
      };
      if (arg == "-o") p.cnf_path = value();
      else if (arg == "-t") p.trace_path = value();
      else if (arg == "--target-bytes") p.target_bytes = parse_bytes(value());
      else if (arg == "--ladders") p.ladders = std::stoull(value());
      else if (arg == "--vars") p.vars = std::stoull(value());
      else if (arg == "--chain") p.chain = std::stoull(value());
      else if (arg == "--seed") p.seed = std::stoull(value());
      else throw std::runtime_error("unknown argument " + arg);
    }
    if (p.cnf_path.empty() || p.trace_path.empty()) {
      throw std::runtime_error("both -o FILE.cnf and -t FILE.trace required");
    }
    // vars >= 2*chain + 1 keeps the two walk-reflection guards mutually
    // exclusive (a walker can always take a full chain in one direction).
    if (p.ladders == 0 || p.chain == 0 || p.vars < 2 * p.chain + 1) {
      throw std::runtime_error("need ladders >= 1, chain >= 1, vars >= 2*chain+1");
    }
  } catch (const std::exception& e) {
    std::cerr << "gen_bigtrace: " << e.what() << "\n";
    return 1;
  }

  const std::uint64_t kK = p.ladders;
  const std::uint64_t kN = p.vars;
  const std::uint64_t kL = p.chain;

  // Variable layout (0-based): ladder w rung i -> w*kN + i; z is the last.
  const Var z_var = static_cast<Var>(kK * kN);
  const Var num_vars = z_var + 1;
  auto rung = [&](std::uint64_t w, std::uint64_t i) -> std::int64_t {
    return static_cast<std::int64_t>(w * kN + i) + 1;  // DIMACS, positive
  };

  // Clause IDs by order of appearance in the CNF: per ladder the unit,
  // then the up implications, then the down implications; then join, ~z.
  const std::uint64_t per_ladder = 1 + 2 * (kN - 1);
  auto id_unit = [&](std::uint64_t w) { return w * per_ladder; };
  auto id_up = [&](std::uint64_t w, std::uint64_t i) {  // (~v_i | v_{i+1})
    return w * per_ladder + 1 + i;
  };
  auto id_down = [&](std::uint64_t w, std::uint64_t i) {  // (~v_{i+1} | v_i)
    return w * per_ladder + 1 + (kN - 1) + i;
  };
  const ClauseId id_join = kK * per_ladder;
  const ClauseId id_notz = id_join + 1;
  const ClauseId num_original = id_notz + 1;

  {
    std::ofstream cnf(p.cnf_path);
    if (!cnf) {
      std::cerr << "gen_bigtrace: cannot open " << p.cnf_path << "\n";
      return 1;
    }
    cnf << "c synthetic ladder-walk instance (gen_bigtrace)\n";
    cnf << "p cnf " << num_vars << ' ' << num_original << '\n';
    for (std::uint64_t w = 0; w < kK; ++w) {
      cnf << rung(w, 0) << " 0\n";
      for (std::uint64_t i = 0; i + 1 < kN; ++i) {
        cnf << -rung(w, i) << ' ' << rung(w, i + 1) << " 0\n";
      }
      for (std::uint64_t i = 0; i + 1 < kN; ++i) {
        cnf << -rung(w, i + 1) << ' ' << rung(w, i) << " 0\n";
      }
    }
    for (std::uint64_t w = 0; w < kK; ++w) cnf << -rung(w, kN - 1) << ' ';
    cnf << static_cast<std::int64_t>(z_var) + 1 << " 0\n";
    cnf << '-' << static_cast<std::int64_t>(z_var) + 1 << " 0\n";
    if (!cnf) {
      std::cerr << "gen_bigtrace: write failed on " << p.cnf_path << "\n";
      return 1;
    }
  }

  std::ofstream out(p.trace_path, std::ios::out | std::ios::binary);
  if (!out) {
    std::cerr << "gen_bigtrace: cannot open " << p.trace_path << "\n";
    return 1;
  }
  satproof::trace::BinaryTraceWriter writer(out);
  writer.begin(num_vars, num_original);

  // Walker state: current rung and the clause ID of its current unit
  // clause (the ladder's unit original until the first step).
  std::vector<std::uint64_t> pos(kK, 0);
  std::vector<ClauseId> unit(kK);
  for (std::uint64_t w = 0; w < kK; ++w) unit[w] = id_unit(w);

  ClauseId next_id = num_original;
  std::uint64_t rng = p.seed ? p.seed : 0x9e3779b97f4a7c15ull;
  std::vector<ClauseId> sources;

  // One walk step for walker w: fold `steps` implications going `up`.
  auto emit_step = [&](std::uint64_t w, bool up, std::uint64_t steps) {
    sources.clear();
    sources.push_back(unit[w]);
    for (std::uint64_t s = 0; s < steps; ++s) {
      const std::uint64_t i = pos[w];
      sources.push_back(up ? id_up(w, i) : id_down(w, i - 1));
      pos[w] = up ? i + 1 : i - 1;
    }
    writer.derivation(next_id, sources);
    unit[w] = next_id++;
  };

  std::uint64_t emitted = 0;
  while (static_cast<std::uint64_t>(out.tellp()) < p.target_bytes) {
    const std::uint64_t w = xorshift(rng) % kK;
    bool up = (xorshift(rng) & 1) != 0;
    if (pos[w] + kL > kN - 1) up = false;  // reflect at the top
    if (pos[w] < kL) up = true;            // reflect at the bottom
    emit_step(w, up, kL);
    ++emitted;
  }

  // Endgame: walk everyone to the top rung (in <= kL hops per record so no
  // single derivation outgrows a normal window), derive (z), finish.
  for (std::uint64_t w = 0; w < kK; ++w) {
    while (pos[w] < kN - 1) {
      emit_step(w, true, std::min(kL, kN - 1 - pos[w]));
      ++emitted;
    }
  }
  sources.clear();
  sources.push_back(id_join);
  for (std::uint64_t w = 0; w < kK; ++w) sources.push_back(unit[w]);
  const ClauseId id_z = next_id++;
  writer.derivation(id_z, sources);  // (z)
  writer.final_conflict(id_notz);
  writer.level0(z_var, true, id_z);
  writer.end();
  out.flush();
  if (!out) {
    std::cerr << "gen_bigtrace: write failed on " << p.trace_path << "\n";
    return 1;
  }

  std::cerr << "gen_bigtrace: " << num_vars << " vars, " << num_original
            << " original clauses, " << (emitted + 1) << " derivations, "
            << out.tellp() << " trace bytes -> " << p.trace_path << "\n";
  return 0;
}
