#include "src/checker/use_count.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace satproof::checker {

// ---------------------------------------------------------------- in-memory

void InMemoryUseCounts::resize(std::uint64_t n) { counts_.assign(n, 0); }

void InMemoryUseCounts::increment(std::uint64_t index) { ++counts_.at(index); }

std::uint32_t InMemoryUseCounts::decrement(std::uint64_t index) {
  std::uint32_t& c = counts_.at(index);
  if (c == 0) {
    throw std::logic_error("UseCountStore: decrement below zero");
  }
  return --c;
}

void InMemoryUseCounts::decrement_batch(std::span<const std::uint64_t> indices,
                                        std::vector<std::uint64_t>& exhausted) {
  // One tight loop over the flat counter array: no per-antecedent virtual
  // dispatch, no repeated bounds machinery beyond .at()'s check.
  for (const std::uint64_t index : indices) {
    std::uint32_t& c = counts_.at(index);
    if (c == 0) {
      throw std::logic_error("UseCountStore: decrement below zero");
    }
    if (--c == 0) exhausted.push_back(index);
  }
}

std::uint32_t InMemoryUseCounts::get(std::uint64_t index) {
  return counts_.at(index);
}

std::size_t InMemoryUseCounts::memory_bytes() const {
  return counts_.size() * sizeof(std::uint32_t);
}

// -------------------------------------------------------------- file-backed

FileBackedUseCounts::FileBackedUseCounts(std::size_t page_entries)
    : file_("satproof-usecounts"), page_entries_(page_entries) {
  io_.open(file_.path(),
           std::ios::binary | std::ios::in | std::ios::out | std::ios::trunc);
  if (!io_) {
    throw std::runtime_error("FileBackedUseCounts: cannot open temp file");
  }
}

FileBackedUseCounts::~FileBackedUseCounts() = default;

void FileBackedUseCounts::resize(std::uint64_t n) {
  size_ = n;
  page_index_ = ~std::uint64_t{0};
  page_dirty_ = false;
  // Extend the file with zeroed records.
  io_.seekp(0);
  const std::vector<std::uint32_t> zeros(page_entries_, 0);
  std::uint64_t written = 0;
  while (written < n) {
    const std::uint64_t chunk = std::min<std::uint64_t>(page_entries_,
                                                        n - written);
    io_.write(reinterpret_cast<const char*>(zeros.data()),
              static_cast<std::streamsize>(chunk * sizeof(std::uint32_t)));
    written += chunk;
  }
  io_.flush();
  if (!io_) throw std::runtime_error("FileBackedUseCounts: resize failed");
}

void FileBackedUseCounts::load_page(std::uint64_t page) {
  if (page == page_index_) return;
  flush_page();
  const std::uint64_t first = page * page_entries_;
  const std::uint64_t count =
      std::min<std::uint64_t>(page_entries_, size_ - first);
  page_.assign(page_entries_, 0);
  io_.seekg(static_cast<std::streamoff>(first * sizeof(std::uint32_t)));
  io_.read(reinterpret_cast<char*>(page_.data()),
           static_cast<std::streamsize>(count * sizeof(std::uint32_t)));
  if (!io_) throw std::runtime_error("FileBackedUseCounts: read failed");
  page_index_ = page;
  page_dirty_ = false;
}

void FileBackedUseCounts::flush_page() {
  if (!page_dirty_ || page_index_ == ~std::uint64_t{0}) return;
  const std::uint64_t first = page_index_ * page_entries_;
  const std::uint64_t count =
      std::min<std::uint64_t>(page_entries_, size_ - first);
  io_.seekp(static_cast<std::streamoff>(first * sizeof(std::uint32_t)));
  io_.write(reinterpret_cast<const char*>(page_.data()),
            static_cast<std::streamsize>(count * sizeof(std::uint32_t)));
  io_.flush();
  if (!io_) throw std::runtime_error("FileBackedUseCounts: write failed");
  page_dirty_ = false;
}

std::uint32_t& FileBackedUseCounts::slot(std::uint64_t index) {
  if (index >= size_) {
    throw std::out_of_range("FileBackedUseCounts: index out of range");
  }
  load_page(index / page_entries_);
  return page_[index % page_entries_];
}

void FileBackedUseCounts::increment(std::uint64_t index) {
  ++slot(index);
  page_dirty_ = true;
}

std::uint32_t FileBackedUseCounts::decrement(std::uint64_t index) {
  std::uint32_t& c = slot(index);
  if (c == 0) {
    throw std::logic_error("UseCountStore: decrement below zero");
  }
  page_dirty_ = true;
  return --c;
}

std::uint32_t FileBackedUseCounts::get(std::uint64_t index) {
  return slot(index);
}

std::size_t FileBackedUseCounts::memory_bytes() const {
  return page_entries_ * sizeof(std::uint32_t);
}

std::unique_ptr<UseCountStore> make_use_count_store(UseCountMode mode) {
  switch (mode) {
    case UseCountMode::InMemory:
      return std::make_unique<InMemoryUseCounts>();
    case UseCountMode::FileBacked:
      return std::make_unique<FileBackedUseCounts>();
  }
  throw std::logic_error("make_use_count_store: unknown mode");
}

}  // namespace satproof::checker
