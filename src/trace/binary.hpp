#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "src/trace/events.hpp"
#include "src/util/byte_source.hpp"

namespace satproof::trace {

/// Compact binary trace format.
///
/// Section 4 of the paper points out that the ASCII trace "is not very
/// space-efficient" and that a binary encoding would yield a 2-3x
/// compaction and speed up the checker, whose profile is dominated by
/// parsing. This format implements that suggestion:
///
///   magic "SPRF" + version byte 0x01
///   varint num_vars, varint num_original
///   records, each starting with a 1-byte tag:
///     0x01 derivation:    varint id, varint k, then k varints each storing
///                         (id - source) — sources always precede the
///                         derived clause, so the delta is small and
///                         typically fits in one or two bytes
///     0x02 final conflict: varint id
///     0x03 level-0:        varint (var << 1 | value), varint antecedent
///     0x04 end
///     0x05 assumption:     varint (var << 1 | value)
///
/// On the benchmark suite this measures 3-5x smaller than the ASCII form
/// (see bench/ablation_trace_format).
class BinaryTraceWriter final : public TraceWriter {
 public:
  /// Writes to `out` (binary mode), which must outlive the writer.
  explicit BinaryTraceWriter(std::ostream& out) : out_(&out) {}

  void begin(Var num_vars, ClauseId num_original) override;
  void derivation(ClauseId id, std::span<const ClauseId> sources) override;
  void final_conflict(ClauseId id) override;
  void level0(Var var, bool value, ClauseId antecedent) override;
  void assumption(Var var, bool value) override;
  void end() override;

 private:
  void flush_buf();

  std::ostream* out_;
  std::vector<std::uint8_t> buf_;  ///< per-record encoding buffer (reused)
};

/// Streaming reader for the binary trace format.
///
/// Decodes from a util::ByteSource: an mmap'd or in-memory trace is one
/// contiguous window, so the hot loop is pure pointer bumps through
/// util::decode_varint — no stream sentry, no per-byte virtual call. The
/// std::istream constructor keeps pipes and stringstreams working by
/// wrapping them in a buffered StreamByteSource.
///
/// rewind() repositions to the first record; on a stream source this
/// seeks the underlying stream, so pipes cannot rewind.
class BinaryTraceReader final : public TraceReader {
 public:
  /// Reads from `in` (binary mode, seekable for rewind()). Validates the
  /// magic and header eagerly; throws std::runtime_error on mismatch.
  explicit BinaryTraceReader(std::istream& in);

  /// Reads from `source` (zero-copy when the source is a single window).
  explicit BinaryTraceReader(std::unique_ptr<util::ByteSource> source);

  [[nodiscard]] Var num_vars() const override { return num_vars_; }
  [[nodiscard]] ClauseId num_original() const override {
    return num_original_;
  }
  bool next(Record& out) override;
  void rewind() override;

  /// Positions are absolute byte offsets into the trace, so the
  /// window-shifting checker can jump straight back to a recorded record
  /// boundary. seek() on a pipe-backed StreamByteSource throws only when
  /// it actually has to move backwards.
  [[nodiscard]] bool seekable() const override { return true; }
  [[nodiscard]] std::uint64_t tell() const override {
    return win_pos_ + static_cast<std::uint64_t>(p_ - win_begin_);
  }
  void seek(std::uint64_t pos) override;
  void release_hint(std::uint64_t begin, std::uint64_t end) override;

 private:
  /// Fetches the next window; returns false at end of data.
  bool refill();

  /// Next byte, or -1 at end of data.
  int get();

  /// Reads one varint; `what` labels truncation-at-record-boundary errors.
  std::uint64_t read_u64(const char* what);

  std::unique_ptr<util::ByteSource> source_;
  const std::uint8_t* p_ = nullptr;          ///< decode cursor
  const std::uint8_t* end_ = nullptr;        ///< current window end
  const std::uint8_t* win_begin_ = nullptr;  ///< current window begin
  std::uint64_t win_pos_ = 0;    ///< source position of win_begin_
  std::uint64_t body_start_ = 0; ///< source position of the first record
  Var num_vars_ = 0;
  ClauseId num_original_ = 0;
  bool done_ = false;
};

/// Opens `path` as a memory-mapped binary trace — the fast path for
/// on-disk traces. Throws std::runtime_error on open or header failure.
std::unique_ptr<BinaryTraceReader> open_binary_trace_file(
    const std::string& path);

}  // namespace satproof::trace
