#pragma once

#include <cstddef>
#include <cstdint>

namespace satproof::solver {

/// Tuning knobs of the CDCL engine. Defaults approximate the zchaff
/// configuration the paper benchmarks ("in all experiments zchaff uses
/// default parameters").
struct SolverOptions {
  /// Variable-activity decay applied once per conflict (VSIDS).
  double var_decay = 0.95;

  /// Clause-activity decay applied once per conflict; drives learned-clause
  /// deletion order.
  double clause_decay = 0.999;

  /// Conflicts before the first restart. Restarts help on hard instances;
  /// the paper (Section 2.2) notes the restart period must *grow* for the
  /// termination argument to hold, hence the geometric schedule below.
  std::uint64_t restart_first = 100;

  /// Geometric growth factor of the restart interval (> 1 for termination).
  double restart_inc = 1.5;

  /// Master switch for restarts.
  bool enable_restarts = true;

  /// Master switch for learned-clause deletion. The paper (Section 2.1)
  /// stresses that deletion never compromises completeness as long as
  /// antecedents of currently assigned variables are kept; the engine
  /// enforces exactly that via lock checking.
  bool enable_clause_deletion = true;

  /// Learned-clause limit starts at max(num_clauses * this, 4000) and grows
  /// geometrically by `learned_growth` at each deletion round.
  double learned_size_factor = 1.0 / 3.0;
  double learned_growth = 1.1;

  /// Resolve away decision-level-0 literals from learned clauses using
  /// their antecedents (extra resolutions are recorded in the trace, so the
  /// checker can still replay the clause exactly). Keeps learned clauses
  /// shorter; on by default, matching zchaff.
  bool eliminate_level0_lits = true;

  /// Conflict-clause minimization: drop a learned literal whose antecedent
  /// is subsumed by the remaining clause. Each drop is one extra recorded
  /// resolution, so minimized proofs stay checkable. Off by default —
  /// zchaff (2003) did not minimize; bench/ablation_minimization measures
  /// the effect (a post-paper CDCL refinement, MiniSat 1.13 era).
  bool minimize_learned = false;

  /// Restart schedule: geometric (zchaff-style, the paper's termination
  /// argument) or the Luby sequence (reluctant doubling) scaled by
  /// `restart_first`. Luby restarts do not grow monotonically, so the
  /// termination argument of Section 2.2 does not apply to them — they are
  /// provided as the common modern alternative.
  enum class RestartSchedule : std::uint8_t { Geometric, Luby };
  RestartSchedule restart_schedule = RestartSchedule::Geometric;

  /// Probability of a random decision (0 disables). Useful to diversify
  /// the property-test sweeps; zchaff's default has none.
  double random_decision_freq = 0.0;

  /// Seed for the engine's tie-breaking PRNG.
  std::uint64_t random_seed = 91648253;

  /// Give up (return SolveResult::Unknown) after this many conflicts;
  /// 0 means no budget.
  std::uint64_t conflict_budget = 0;

  /// Initial saved phase assigned to fresh variables (zchaff branched to
  /// false first).
  bool default_phase = false;
};

/// Counters exposed after (and during) solving; the raw material of the
/// paper's Table 1.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t level0_resolutions = 0;  ///< extra resolutions for level-0 elim
  std::uint64_t minimized_literals = 0;  ///< literals removed by minimization
  std::uint64_t max_decision_level = 0;
  /// Peak bytes held in the clause database, on the same accounting scale
  /// as the checkers' peak-memory figures (util::clause_footprint_bytes).
  std::size_t peak_clause_bytes = 0;
};

/// Outcome of Solver::solve().
enum class SolveResult : std::uint8_t {
  Satisfiable,    ///< a model is available via Solver::model()
  Unsatisfiable,  ///< a resolution trace was emitted (if a writer was set)
  Unknown,        ///< conflict budget exhausted
};

}  // namespace satproof::solver
