// Tests for the gate-level substrate: netlist simulation, word builders
// (validated exhaustively against integer arithmetic), Tseitin encoding
// (cross-checked against simulation via the solver), and miters.

#include <gtest/gtest.h>

#include "src/circuit/miter.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/circuit/words.hpp"
#include "src/cnf/model.hpp"
#include "src/solver/solver.hpp"

namespace satproof::circuit {
namespace {

/// Applies `value` bitwise to an input word position range.
std::vector<bool> bits_of(std::uint64_t value, std::size_t width) {
  std::vector<bool> out(width);
  for (std::size_t i = 0; i < width; ++i) out[i] = ((value >> i) & 1) != 0;
  return out;
}

std::uint64_t word_value(const Word& w, const std::vector<bool>& sim) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (sim[w[i]]) v |= std::uint64_t{1} << i;
  }
  return v;
}

TEST(Netlist, BasicGatesSimulate) {
  Netlist n;
  const Wire a = n.add_input();
  const Wire b = n.add_input();
  const Wire w_and = n.make_and(a, b);
  const Wire w_or = n.make_or(a, b);
  const Wire w_xor = n.make_xor(a, b);
  const Wire w_not = n.make_not(a);
  const Wire w_mux = n.make_mux(a, b, w_not);
  for (int ai = 0; ai < 2; ++ai) {
    for (int bi = 0; bi < 2; ++bi) {
      const auto sim = n.simulate({ai != 0, bi != 0});
      EXPECT_EQ(sim[w_and], ai && bi);
      EXPECT_EQ(sim[w_or], ai || bi);
      EXPECT_EQ(sim[w_xor], ai != bi);
      EXPECT_EQ(sim[w_not], !ai);
      EXPECT_EQ(sim[w_mux], ai ? (bi != 0) : !ai);
    }
  }
}

TEST(Netlist, ConstantsAreShared) {
  Netlist n;
  EXPECT_EQ(n.constant(true), n.constant(true));
  EXPECT_EQ(n.constant(false), n.constant(false));
  EXPECT_NE(n.constant(true), n.constant(false));
  const auto sim = n.simulate({});
  EXPECT_TRUE(sim[n.constant(true)]);
  EXPECT_FALSE(sim[n.constant(false)]);
}

TEST(Netlist, ForwardFaninRejected) {
  Netlist n;
  EXPECT_THROW(n.make_not(5), std::invalid_argument);
}

TEST(Netlist, ReduceEmptyYieldsNeutral) {
  Netlist n;
  const Wire t = n.reduce_and({});
  const Wire f = n.reduce_or({});
  const auto sim = n.simulate({});
  EXPECT_TRUE(sim[t]);
  EXPECT_FALSE(sim[f]);
}

TEST(Netlist, ReduceOverManyWires) {
  Netlist n;
  std::vector<Wire> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(n.add_input());
  const Wire all = n.reduce_and(ins);
  const Wire any = n.reduce_or(ins);
  for (unsigned mask = 0; mask < (1u << 7); ++mask) {
    std::vector<bool> vals(7);
    for (int i = 0; i < 7; ++i) vals[i] = ((mask >> i) & 1) != 0;
    const auto sim = n.simulate(vals);
    EXPECT_EQ(sim[all], mask == (1u << 7) - 1);
    EXPECT_EQ(sim[any], mask != 0);
  }
}

TEST(Words, RippleAdderExhaustive4Bit) {
  Netlist n;
  const Word a = input_word(n, 4);
  const Word b = input_word(n, 4);
  const AdderResult r = ripple_carry_adder(n, a, b);
  for (unsigned x = 0; x < 16; ++x) {
    for (unsigned y = 0; y < 16; ++y) {
      auto in = bits_of(x, 4);
      const auto yb = bits_of(y, 4);
      in.insert(in.end(), yb.begin(), yb.end());
      const auto sim = n.simulate(in);
      const unsigned sum = word_value(r.sum, sim) |
                           (sim[r.carry_out] ? 16u : 0u);
      EXPECT_EQ(sum, x + y);
    }
  }
}

TEST(Words, CarrySelectMatchesRippleExhaustive) {
  Netlist n;
  const Word a = input_word(n, 5);
  const Word b = input_word(n, 5);
  const AdderResult rc = ripple_carry_adder(n, a, b);
  const AdderResult cs = carry_select_adder(n, a, b, 2);
  for (unsigned x = 0; x < 32; ++x) {
    for (unsigned y = 0; y < 32; ++y) {
      auto in = bits_of(x, 5);
      const auto yb = bits_of(y, 5);
      in.insert(in.end(), yb.begin(), yb.end());
      const auto sim = n.simulate(in);
      EXPECT_EQ(word_value(rc.sum, sim), word_value(cs.sum, sim));
      EXPECT_EQ(sim[rc.carry_out], sim[cs.carry_out]);
    }
  }
}

TEST(Words, KoggeStoneMatchesArithmeticExhaustive) {
  // Width 6 covers several prefix stages, including the non-power-of-two
  // tail behaviour.
  Netlist n;
  const Word a = input_word(n, 6);
  const Word b = input_word(n, 6);
  const AdderResult ks = kogge_stone_adder(n, a, b);
  for (unsigned x = 0; x < 64; ++x) {
    for (unsigned y = 0; y < 64; ++y) {
      auto in = bits_of(x, 6);
      const auto yb = bits_of(y, 6);
      in.insert(in.end(), yb.begin(), yb.end());
      const auto sim = n.simulate(in);
      const unsigned sum = word_value(ks.sum, sim) |
                           (sim[ks.carry_out] ? 64u : 0u);
      EXPECT_EQ(sum, x + y);
    }
  }
}

TEST(Words, KoggeStoneWidthOne) {
  Netlist n;
  const Word a = input_word(n, 1);
  const Word b = input_word(n, 1);
  const AdderResult ks = kogge_stone_adder(n, a, b);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      const auto sim = n.simulate({x != 0, y != 0});
      EXPECT_EQ(sim[ks.sum[0]], (x + y) % 2 == 1);
      EXPECT_EQ(sim[ks.carry_out], x + y >= 2);
    }
  }
}

TEST(Miter, KoggeStoneVsRippleUnsat) {
  Netlist n;
  const Word a = input_word(n, 10);
  const Word b = input_word(n, 10);
  const auto rc = ripple_carry_adder(n, a, b);
  const auto ks = kogge_stone_adder(n, a, b);
  std::vector<Wire> outs_a = rc.sum;
  outs_a.push_back(rc.carry_out);
  std::vector<Wire> outs_b = ks.sum;
  outs_b.push_back(ks.carry_out);
  const Wire m = build_miter(n, outs_a, outs_b);
  solver::Solver s;
  s.add_formula(miter_to_cnf(n, m));
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(Words, MultipliersExhaustive4Bit) {
  Netlist n;
  const Word a = input_word(n, 4);
  const Word b = input_word(n, 4);
  const Word m1 = array_multiplier(n, a, b);
  const Word m2 = multiplier_commuted(n, a, b);
  for (unsigned x = 0; x < 16; ++x) {
    for (unsigned y = 0; y < 16; ++y) {
      auto in = bits_of(x, 4);
      const auto yb = bits_of(y, 4);
      in.insert(in.end(), yb.begin(), yb.end());
      const auto sim = n.simulate(in);
      EXPECT_EQ(word_value(m1, sim), x * y);
      EXPECT_EQ(word_value(m2, sim), x * y);
    }
  }
}

TEST(Words, BarrelRotatorExhaustive8Bit) {
  Netlist n;
  const Word v = input_word(n, 8);
  const Word amt = input_word(n, 3);
  const Word rot = barrel_rotate_left(n, v, amt);
  for (unsigned x = 0; x < 256; x += 7) {
    for (unsigned s = 0; s < 8; ++s) {
      auto in = bits_of(x, 8);
      const auto sb = bits_of(s, 3);
      in.insert(in.end(), sb.begin(), sb.end());
      const auto sim = n.simulate(in);
      const unsigned expect = ((x << s) | (x >> (8 - s))) & 0xff;
      EXPECT_EQ(word_value(rot, sim), s == 0 ? x : expect);
    }
  }
}

TEST(Words, IncrementerAndEquality) {
  Netlist n;
  const Word a = input_word(n, 4);
  const Word inc = incrementer(n, a);
  const Word c5 = constant_word(n, 5, 4);
  const Wire eq5 = word_equal(n, a, c5);
  for (unsigned x = 0; x < 16; ++x) {
    const auto sim = n.simulate(bits_of(x, 4));
    EXPECT_EQ(word_value(inc, sim), (x + 1) & 0xf);
    EXPECT_EQ(sim[eq5], x == 5);
  }
}

TEST(Words, WidthMismatchRejected) {
  Netlist n;
  const Word a = input_word(n, 3);
  const Word b = input_word(n, 4);
  EXPECT_THROW(ripple_carry_adder(n, a, b), std::invalid_argument);
  EXPECT_THROW(word_equal(n, a, b), std::invalid_argument);
}

TEST(Tseitin, ModelsDecodeToRealEvaluations) {
  // Assert the XOR of two inputs; any model the solver finds must simulate
  // to a true output.
  Netlist n;
  const Wire a = n.add_input();
  const Wire b = n.add_input();
  const Wire x = n.make_xor(a, b);
  const Wire asserted[] = {x};
  const TseitinResult ts = tseitin(n, asserted);

  solver::Solver s;
  s.add_formula(ts.formula);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const Model& m = s.model();
  const bool av = m[ts.wire_var[a]] == LBool::True;
  const bool bv = m[ts.wire_var[b]] == LBool::True;
  EXPECT_TRUE(n.simulate({av, bv})[x]);
}

TEST(Tseitin, UnsatWhenOutputUnreachable) {
  // x AND ~x can never be true.
  Netlist n;
  const Wire a = n.add_input();
  const Wire contradiction = n.make_and(a, n.make_not(a));
  const Wire asserted[] = {contradiction};
  const TseitinResult ts = tseitin(n, asserted);
  solver::Solver s;
  s.add_formula(ts.formula);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(Tseitin, EveryGateKindEncodedConsistently) {
  // One gate of each kind; compare solver models against simulation on all
  // input combinations by asserting output then its negation.
  Netlist n;
  const Wire a = n.add_input();
  const Wire b = n.add_input();
  const Wire c = n.add_input();
  const Wire out = n.make_or(
      n.make_mux(a, n.make_xor(b, c), n.make_and(b, n.make_not(c))),
      n.constant(false));
  for (const bool want : {true, false}) {
    Netlist check = n;  // netlists are value types
    const Wire target = want ? out : check.make_not(out);
    const Wire asserted[] = {target};
    const TseitinResult ts = tseitin(check, asserted);
    solver::Solver s;
    s.add_formula(ts.formula);
    ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
    const Model& m = s.model();
    const bool av = m[ts.wire_var[a]] == LBool::True;
    const bool bv = m[ts.wire_var[b]] == LBool::True;
    const bool cv = m[ts.wire_var[c]] == LBool::True;
    EXPECT_EQ(n.simulate({av, bv, cv})[out], want);
  }
}

TEST(Miter, EquivalentAddersGiveUnsat) {
  Netlist n;
  const Word a = input_word(n, 6);
  const Word b = input_word(n, 6);
  const auto rc = ripple_carry_adder(n, a, b);
  const auto cs = carry_select_adder(n, a, b, 3);
  const Wire m = build_miter(n, rc.sum, cs.sum);
  solver::Solver s;
  s.add_formula(miter_to_cnf(n, m));
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(Miter, InequivalentCircuitsGiveSatWithWitness) {
  // Adder vs adder-with-one-output-flipped: SAT, and the model is a real
  // distinguishing input.
  Netlist n;
  const Word a = input_word(n, 4);
  const Word b = input_word(n, 4);
  const auto rc = ripple_carry_adder(n, a, b);
  Word broken = rc.sum;
  broken[2] = n.make_not(broken[2]);
  const Wire m = build_miter(n, rc.sum, broken);
  const Wire asserted[] = {m};
  const TseitinResult ts = tseitin(n, asserted);
  solver::Solver s;
  s.add_formula(ts.formula);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  // Any input distinguishes them, but the model must at least be valid.
  EXPECT_TRUE(satisfies(ts.formula, s.model()));
}

TEST(Netlist, CopyIntoReplicatesFunction) {
  Netlist src;
  const Wire a = src.add_input();
  const Wire b = src.add_input();
  const Wire out = src.make_xor(src.make_and(a, b), src.make_not(a));

  Netlist dst;
  const Wire x = dst.add_input();
  const Wire y = dst.add_input();
  std::vector<Wire> input_map(src.num_wires(), kInvalidWire);
  input_map[a] = x;
  input_map[b] = y;
  const auto map = copy_into(dst, src, input_map);
  for (int ai = 0; ai < 2; ++ai) {
    for (int bi = 0; bi < 2; ++bi) {
      const auto s1 = src.simulate({ai != 0, bi != 0});
      const auto s2 = dst.simulate({ai != 0, bi != 0});
      EXPECT_EQ(s1[out], s2[map[out]]);
    }
  }
}

TEST(Netlist, CopyIntoRejectsUnmappedInput) {
  Netlist src;
  (void)src.add_input();
  Netlist dst;
  const std::vector<Wire> empty_map(src.num_wires(), kInvalidWire);
  EXPECT_THROW((void)copy_into(dst, src, empty_map), std::invalid_argument);
}

TEST(Miter, WidthMismatchRejected) {
  Netlist n;
  const Word a = input_word(n, 2);
  const Word b = input_word(n, 3);
  EXPECT_THROW(build_miter(n, a, b), std::invalid_argument);
}

}  // namespace
}  // namespace satproof::circuit
