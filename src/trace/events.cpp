#include "src/trace/events.hpp"

namespace satproof::trace {

// The interfaces are header-only; this translation unit pins their vtables.
// (Intentionally empty.)

}  // namespace satproof::trace
