file(REMOVE_RECURSE
  "CMakeFiles/test_drup.dir/test_drup.cpp.o"
  "CMakeFiles/test_drup.dir/test_drup.cpp.o.d"
  "test_drup"
  "test_drup.pdb"
  "test_drup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
