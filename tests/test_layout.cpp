// Layout-equivalence regression for the replay microarchitecture: the
// depth-first checker's streaming (first-use-order) replay and the
// arena's binary clause tier are pure layout optimizations, so switching
// either off must leave every observable output byte-identical — verdict,
// error text, unsat core, failed-assumption clause, and every stats
// counter (including the arena traffic counters, which account logical
// block bytes precisely so layout cannot leak into them).
//
// Runs the same 500 seeded instances as test_differential (same seed
// formula: 1000 + shard * 50 + i), split into 10 shards.

#include <gtest/gtest.h>

#include "src/checker/depth_first.hpp"
#include "src/checker/window.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/arena.hpp"

namespace satproof {
namespace {

constexpr int kInstancesPerShard = 50;  // x 10 shards = 500 instances

checker::CheckResult run_df(const Formula& f, const trace::MemoryTrace& t,
                            bool streaming, bool binary_tier) {
  trace::MemoryTraceReader reader(t);
  checker::DepthFirstOptions options;
  options.streaming_replay = streaming;
  // The binary tier is an arena property; an external arena with the tier
  // toggled passes through the same recycle_arena seam satproofd uses.
  util::ClauseArena arena;
  arena.set_binary_tier(binary_tier);
  options.recycle_arena = &arena;
  return checker::check_depth_first(f, reader, options);
}

checker::CheckResult run_window(const Formula& f, const trace::MemoryTrace& t,
                                bool binary_tier) {
  trace::MemoryTraceReader reader(t);
  checker::WindowOptions options;
  options.mem_limit_bytes = 1 << 20;
  options.collect_core = true;
  util::ClauseArena arena;
  arena.set_binary_tier(binary_tier);
  options.recycle_arena = &arena;
  return checker::check_window(f, reader, options);
}

void expect_identical(const checker::CheckResult& a,
                      const checker::CheckResult& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.failed_assumption_clause, b.failed_assumption_clause);
  EXPECT_EQ(a.stats.total_derivations, b.stats.total_derivations);
  EXPECT_EQ(a.stats.clauses_built, b.stats.clauses_built);
  EXPECT_EQ(a.stats.resolutions, b.stats.resolutions);
  EXPECT_EQ(a.stats.peak_mem_bytes, b.stats.peak_mem_bytes);
  EXPECT_EQ(a.stats.core_original_clauses, b.stats.core_original_clauses);
  EXPECT_EQ(a.stats.arena_allocated_bytes, b.stats.arena_allocated_bytes);
  EXPECT_EQ(a.stats.arena_recycled_bytes, b.stats.arena_recycled_bytes);
  EXPECT_EQ(a.stats.arena_peak_bytes, b.stats.arena_peak_bytes);
}

class LayoutEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LayoutEquivalence, StreamingAndBinaryTierAreByteIdentical) {
  const int shard = GetParam();
  int unsat_seen = 0;
  for (int i = 0; i < kInstancesPerShard; ++i) {
    const std::uint64_t seed =
        1000 + static_cast<std::uint64_t>(shard) * kInstancesPerShard + i;
    const unsigned n = 12 + static_cast<unsigned>(seed % 14);
    const double ratio = 3.8 + 0.15 * static_cast<double>(i % 9);
    const unsigned m = static_cast<unsigned>(n * ratio);
    const Formula f = encode::random_ksat(n, m, 3, seed);

    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter trace_writer;
    s.set_trace_writer(&trace_writer);
    const solver::SolveResult solved = s.solve();
    const trace::MemoryTrace t = trace_writer.take();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                 " m=" + std::to_string(m));
    if (solved == solver::SolveResult::Unsatisfiable) ++unsat_seen;

    // Reference configuration: the pre-optimization layout (lazy build,
    // headered blocks only). SAT-run traces ride along too: the rejection
    // diagnostic must not depend on layout either.
    const checker::CheckResult reference = run_df(f, t, false, false);
    expect_identical(reference, run_df(f, t, true, false),
                     "streaming replay vs lazy build");
    expect_identical(reference, run_df(f, t, false, true),
                     "binary tier vs headered-only");
    expect_identical(reference, run_df(f, t, true, true),
                     "streaming + binary tier vs neither");

    // The window backend is subject to the same discipline: the arena's
    // binary tier is invisible in every observable output, and on valid
    // traces its verdict, core and replay counters match depth-first.
    const checker::CheckResult window = run_window(f, t, false);
    expect_identical(window, run_window(f, t, true),
                     "window: binary tier vs headered-only");
    EXPECT_EQ(window.ok, reference.ok);
    if (reference.ok) {
      EXPECT_EQ(window.core, reference.core);
      EXPECT_EQ(window.stats.resolutions, reference.stats.resolutions);
      EXPECT_EQ(window.stats.clauses_built, reference.stats.clauses_built);
    }
  }
  EXPECT_GE(unsat_seen, kInstancesPerShard / 5);
}

INSTANTIATE_TEST_SUITE_P(Shards, LayoutEquivalence, ::testing::Range(0, 10));

}  // namespace
}  // namespace satproof
