file(REMOVE_RECURSE
  "libsatproof_simplify.a"
)
