// Bounded model checking with validated UNSAT answers — the paper's
// barrel/longmult rows come from BMC, where an UNSAT answer is a safety
// claim ("no bad state within k steps") that deserves an independent
// proof check before anyone trusts it.
//
// A one-hot token rotator is checked safe up to a bound (UNSAT, proof
// validated); a deliberately broken variant yields SAT, and the model is
// decoded into a concrete input sequence and replayed on the sequential
// simulator.

#include <iostream>

#include "src/bmc/rotator.hpp"
#include "src/bmc/unroll.hpp"
#include "src/checker/depth_first.hpp"
#include "src/cnf/model.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

int main() {
  using namespace satproof;

  constexpr unsigned kWidth = 8;
  constexpr unsigned kBound = 10;

  // ---- the safe design -----------------------------------------------------
  {
    const bmc::SequentialCircuit design = bmc::make_rotator(kWidth);
    const Formula f = bmc::unroll(design, kBound);
    std::cout << "Safe rotator, " << kWidth << " bits, bound " << kBound
              << ": " << f.num_vars() << " vars, " << f.num_clauses()
              << " clauses\n";

    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter w;
    s.set_trace_writer(&w);
    if (s.solve() != solver::SolveResult::Unsatisfiable) {
      std::cout << "UNEXPECTED: bad state reachable in the safe design\n";
      return 1;
    }
    const trace::MemoryTrace t = w.take();
    trace::MemoryTraceReader reader(t);
    const checker::CheckResult check = checker::check_depth_first(f, reader);
    if (!check.ok) {
      std::cout << "proof check FAILED: " << check.error << "\n";
      return 1;
    }
    std::cout << "  property holds up to the bound; UNSAT proof validated ("
              << check.stats.clauses_built << " clauses rebuilt)\n\n";
  }

  // ---- the buggy design ----------------------------------------------------
  {
    const bmc::SequentialCircuit design =
        bmc::make_rotator(kWidth, /*break_invariant=*/true);
    const bmc::UnrollResult u = bmc::unroll_detailed(design, kBound);
    std::cout << "Rotator with an invariant-breaking input:\n";

    solver::Solver s;
    s.add_formula(u.formula);
    if (s.solve() != solver::SolveResult::Satisfiable) {
      std::cout << "UNEXPECTED: no counterexample found\n";
      return 1;
    }

    // Decode the counterexample and replay it on the simulator.
    std::vector<std::vector<bool>> stimulus;
    for (const auto& frame : u.frame_inputs) {
      std::vector<bool> vals;
      for (const Var v : frame) vals.push_back(s.model()[v] == LBool::True);
      stimulus.push_back(std::move(vals));
    }
    std::cout << "  counterexample of " << stimulus.size() << " cycles "
              << "(inputs: enable, amount[0], amount[1], corrupt):\n";
    for (std::size_t t = 0; t < stimulus.size(); ++t) {
      std::cout << "    cycle " << t << ":";
      for (const bool b : stimulus[t]) std::cout << " " << (b ? 1 : 0);
      std::cout << "\n";
    }
    if (design.simulate_reaches_bad(stimulus)) {
      std::cout << "  replayed on the RTL simulator: bad state confirmed.\n";
    } else {
      std::cout << "  BUG: counterexample does not replay!\n";
      return 1;
    }
  }
  return 0;
}
