#pragma once

#include <filesystem>
#include <string>

namespace satproof::util {

/// RAII owner of a uniquely named temporary file.
///
/// The breadth-first checker (paper Section 3.3) keeps per-clause use
/// counts in a temporary file when even one in-memory counter per learned
/// clause would not fit; trace files written during tests also live in
/// these. The file is removed on destruction.
class TempFile {
 public:
  /// Creates a unique, initially empty file under the system temp directory.
  /// `tag` becomes part of the file name for debuggability.
  explicit TempFile(const std::string& tag = "satproof");

  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  TempFile(TempFile&& other) noexcept;
  TempFile& operator=(TempFile&& other) noexcept;
  ~TempFile();

  /// Absolute path of the owned file.
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  void cleanup() noexcept;

  std::filesystem::path path_;
};

}  // namespace satproof::util
