// Tests for the proof-DAG extraction, metrics, and export formats.

#include <gtest/gtest.h>

#include <sstream>

#include "src/checker/resolution.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/proof/export.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

namespace satproof::proof {
namespace {

struct Solved {
  Formula formula;
  trace::MemoryTrace trace;
};

Solved solve_unsat(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), w.take()};
}

ProofDag extract(const Solved& su) {
  trace::MemoryTraceReader r(su.trace);
  return extract_proof(su.formula, r);
}

TEST(ProofDag, RootIsEmptyClauseAndLast) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  ASSERT_FALSE(dag.nodes.empty());
  const auto& root = dag.nodes.back();
  EXPECT_EQ(root.id, dag.root_id);
  EXPECT_TRUE(root.lits.empty());
  EXPECT_FALSE(root.sources.empty());
}

TEST(ProofDag, TopologicalOrderHolds) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  std::set<ClauseId> emitted;
  for (const auto& n : dag.nodes) {
    for (const ClauseId s : n.sources) {
      EXPECT_TRUE(emitted.contains(s))
          << "node " << n.id << " uses source " << s << " before emission";
    }
    emitted.insert(n.id);
  }
}

TEST(ProofDag, EveryDerivedNodeIsTheResolventOfItsSources) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  std::unordered_map<ClauseId, const checker::SortedClause*> by_id;
  for (const auto& n : dag.nodes) by_id[n.id] = &n.lits;
  for (const auto& n : dag.nodes) {
    if (n.sources.empty()) continue;
    checker::ChainResolver chain;
    chain.start(*by_id.at(n.sources[0]));
    for (std::size_t i = 1; i < n.sources.size(); ++i) {
      ASSERT_EQ(chain.step(*by_id.at(n.sources[i])).status,
                checker::ResolveStatus::Ok)
          << "node " << n.id;
    }
    auto got = chain.take();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, n.lits) << "node " << n.id;
  }
}

TEST(ProofDag, LeavesAreOriginalClauses) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  for (const auto& n : dag.nodes) {
    if (n.sources.empty()) {
      EXPECT_LT(n.id, dag.num_original);
      EXPECT_EQ(n.depth, 0u);
      // Leaf literals match the canonical original clause.
      EXPECT_EQ(n.lits, checker::canonicalize(su.formula.clause(n.id)));
    } else {
      EXPECT_GT(n.depth, 0u);
    }
  }
}

TEST(ProofDag, DepthIsOnePlusMaxSourceDepth) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  std::unordered_map<ClauseId, unsigned> depth;
  for (const auto& n : dag.nodes) depth[n.id] = n.depth;
  for (const auto& n : dag.nodes) {
    if (n.sources.empty()) continue;
    unsigned expect = 0;
    for (const ClauseId s : n.sources) {
      expect = std::max(expect, depth.at(s) + 1);
    }
    EXPECT_EQ(n.depth, expect) << "node " << n.id;
  }
}

TEST(ProofDag, StatsAreConsistent) {
  const Solved su = solve_unsat(encode::pigeonhole(5));
  const ProofDag dag = extract(su);
  const ProofStats st = compute_stats(dag);
  EXPECT_EQ(st.leaves + st.derived, dag.nodes.size());
  EXPECT_GT(st.resolutions, 0u);
  EXPECT_GT(st.depth, 1u);
  EXPECT_GT(st.max_clause_width, 0u);
  EXPECT_GT(st.avg_clause_width, 0.0);
  EXPECT_LE(st.leaves, dag.num_original);
}

TEST(ProofDag, SatTraceRejected) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  EXPECT_THROW((void)extract_proof(f, r), ProofError);
}

TEST(ProofDag, IndexOfFindsNodes) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  const auto idx = dag.index_of(dag.root_id);
  ASSERT_NE(idx, ~std::size_t{0});
  EXPECT_EQ(dag.nodes[idx].id, dag.root_id);
  EXPECT_EQ(dag.index_of(999999), ~std::size_t{0});
}

TEST(Export, DotContainsRootAndEdges) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  std::ostringstream out;
  write_dot(out, dag);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph proof"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Export, DotHonoursNodeBudget) {
  const Solved su = solve_unsat(encode::pigeonhole(5));
  const ProofDag dag = extract(su);
  DotOptions opts;
  opts.max_nodes = 10;
  std::ostringstream out;
  write_dot(out, dag, opts);
  // Count node declarations (lines starting with "  n<digit>... [").
  std::size_t node_count = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(" [") != std::string::npos &&
        line.find("->") == std::string::npos &&
        line.rfind("  n", 0) == 0 && line.size() > 3 &&
        std::isdigit(static_cast<unsigned char>(line[3])) != 0) {
      ++node_count;
    }
  }
  EXPECT_LE(node_count, 10u);
}

TEST(Export, TraceCheckRoundTripStructure) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  const ProofDag dag = extract(su);
  std::ostringstream out;
  write_tracecheck(out, dag);

  // Parse back: every line is "<id> lits 0 antes 0"; the last has no lits.
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  std::string last;
  while (std::getline(in, line)) {
    ++lines;
    last = line;
    std::istringstream ls(line);
    long long id = 0;
    ASSERT_TRUE(static_cast<bool>(ls >> id));
    EXPECT_GT(id, 0);  // 1-based
    int zeros = 0;
    long long tok = 0;
    while (ls >> tok) {
      if (tok == 0) ++zeros;
    }
    EXPECT_EQ(zeros, 2) << line;
  }
  EXPECT_EQ(lines, dag.nodes.size());
  // Root line: "<id> 0 <sources> 0" — literal section empty.
  std::istringstream rl(last);
  long long id = 0, first = -1;
  rl >> id >> first;
  EXPECT_EQ(first, 0);
}

/// Property: proofs extract cleanly from random UNSAT instances.
class ProofSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProofSweep, RandomUnsatInstancesYieldConsistentDags) {
  const Formula f = encode::random_ksat(25, 150, 3, GetParam());
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  if (s.solve() != solver::SolveResult::Unsatisfiable) {
    GTEST_SKIP() << "instance happened to be satisfiable";
  }
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  const ProofDag dag = extract_proof(f, r);
  const ProofStats st = compute_stats(dag);
  EXPECT_GT(st.leaves, 0u);
  EXPECT_GE(st.derived, 1u);
  EXPECT_TRUE(dag.nodes.back().lits.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofSweep,
                         ::testing::Values(3, 17, 91, 222, 777));

}  // namespace
}  // namespace satproof::proof
