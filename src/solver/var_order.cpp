#include "src/solver/var_order.hpp"

namespace satproof::solver {

void VarOrder::grow_to(Var num_vars) {
  while (activity_.size() < num_vars) {
    const Var v = static_cast<Var>(activity_.size());
    activity_.push_back(0.0);
    pos_.push_back(kNotInHeap);
    insert(v);
  }
}

void VarOrder::bump(Var v) {
  activity_[v] += inc_;
  if (activity_[v] > 1e100) {
    // Rescale all scores to keep them finite; relative order is preserved.
    for (double& a : activity_) a *= 1e-100;
    inc_ *= 1e-100;
  }
  if (contains(v)) sift_up(pos_[v]);
}

void VarOrder::decay(double factor) { inc_ /= factor; }

void VarOrder::insert(Var v) {
  if (contains(v)) return;
  pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1);
}

Var VarOrder::pop_max() {
  const Var top = heap_[0];
  pos_[top] = kNotInHeap;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    pos_[last] = 0;
    sift_down(0);
  }
  return top;
}

void VarOrder::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  pos_[v] = static_cast<std::uint32_t>(i);
}

void VarOrder::sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && less(heap_[child], heap_[child + 1])) ++child;
    if (!less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = v;
  pos_[v] = static_cast<std::uint32_t>(i);
}

}  // namespace satproof::solver
