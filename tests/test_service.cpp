// End-to-end tests for satproofd: an in-process server, real sockets, real
// CNF/trace files, all five checking backends, and verdicts that must be
// byte-identical to direct run_check() calls.

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cert/kernel.hpp"
#include "src/service/client.hpp"
#include "src/service/protocol.hpp"
#include "src/service/run_check.hpp"
#include "src/service/server.hpp"
#include "src/util/socket.hpp"
#include "src/util/temp_file.hpp"
#include "tools/cli.hpp"

namespace satproof::service {
namespace {

int run_cli_quiet(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  return cli::run_cli(args, out, err);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Shared on-disk fixtures: solved once for the whole suite.
struct Fixtures {
  util::TempFile php4_cnf{"svc-php4-cnf"};
  util::TempFile php4_trace{"svc-php4-trace"};
  util::TempFile php4_btrace{"svc-php4-btrace"};
  util::TempFile php4_drup{"svc-php4-drup"};
  util::TempFile php8_cnf{"svc-php8-cnf"};
  util::TempFile php8_trace{"svc-php8-trace"};
  util::TempFile sat_cnf{"svc-sat-cnf"};
  util::TempFile garbage_trace{"svc-garbage"};
  util::TempFile empty_drup{"svc-empty-drup"};

  std::string php4() const { return php4_cnf.path().string(); }
  std::string trace4() const { return php4_trace.path().string(); }
  std::string btrace4() const { return php4_btrace.path().string(); }
  std::string drup4() const { return php4_drup.path().string(); }
  std::string php8() const { return php8_cnf.path().string(); }
  std::string trace8() const { return php8_trace.path().string(); }

  Fixtures() {
    if (run_cli_quiet({"gen", "php", "4", "-o", php4()}) != 0 ||
        run_cli_quiet({"gen", "php", "8", "-o", php8()}) != 0) {
      throw std::runtime_error("fixture generation failed");
    }
    if (run_cli_quiet({"solve", php4(), "--trace", trace4(), "--drup",
                       drup4()}) != cli::kExitUnsat ||
        run_cli_quiet({"solve", php4(), "--trace", btrace4(), "--binary"}) !=
            cli::kExitUnsat ||
        run_cli_quiet({"solve", php8(), "--trace", trace8()}) !=
            cli::kExitUnsat) {
      throw std::runtime_error("fixture solving failed");
    }
    std::ofstream(sat_cnf.path()) << "p cnf 2 2\n1 2 0\n-1 0\n";
    std::ofstream(garbage_trace.path()) << "this is not a trace\n";
    std::ofstream(empty_drup.path()) << "";
  }
};

class ServiceE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (fx_ == nullptr) fx_ = new Fixtures();
  }
  // Intentionally leaked at process exit; fixtures are plain temp files.

  /// Starts a fresh server on a unique unix socket.
  void start_server(ServerOptions opts = {}) {
    opts.unix_socket_path = socket_file_.path().string();
    if (opts.workers == 0) opts.workers = 1;
    server_.emplace(std::move(opts));
    server_->start();
  }

  Client connect() {
    return Client::connect_unix(socket_file_.path().string());
  }

  void TearDown() override {
    if (server_) server_->drain_and_wait();
  }

  static Fixtures* fx_;
  util::TempFile socket_file_{"svc-e2e-sock"};
  std::optional<Server> server_;
};

Fixtures* ServiceE2E::fx_ = nullptr;

TEST_F(ServiceE2E, AllBackendsMatchDirectRunCheck) {
  start_server();
  for (int b = 0; b < static_cast<int>(kNumBackends); ++b) {
    const Backend backend = static_cast<Backend>(b);
    const std::string trace =
        backend == Backend::kDrup ? fx_->drup4() : fx_->trace4();

    const JobOutcome direct = run_check(fx_->php4(), trace, backend);
    ASSERT_TRUE(direct.ok) << backend_name(backend) << ": " << direct.error;

    Client client = connect();
    const Client::SubmitReply reply =
        client.submit(fx_->php4(), trace, backend, /*wait=*/true);
    ASSERT_TRUE(reply.transport_ok) << reply.error;
    ASSERT_TRUE(reply.accepted);
    ASSERT_TRUE(reply.have_result);
    EXPECT_EQ(reply.status, JobStatus::kOk) << backend_name(backend);
    // The service verdict must be byte-identical to a direct call: the
    // daemon adds scheduling, never a different answer.
    EXPECT_EQ(reply.verdict, verdict_line(direct)) << backend_name(backend);
    EXPECT_EQ(reply.result_json, outcome_json(direct))
        << backend_name(backend);
  }
}

TEST_F(ServiceE2E, BinaryTraceIsAutoDetected) {
  start_server();
  const JobOutcome direct =
      run_check(fx_->php4(), fx_->btrace4(), Backend::kDf);
  ASSERT_TRUE(direct.ok) << direct.error;

  Client client = connect();
  const Client::SubmitReply reply =
      client.submit(fx_->php4(), fx_->btrace4(), Backend::kDf, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;
  EXPECT_EQ(reply.status, JobStatus::kOk);
  EXPECT_EQ(reply.verdict, verdict_line(direct));
}

TEST_F(ServiceE2E, CorruptTraceFailsCleanly) {
  start_server();
  Client client = connect();
  const Client::SubmitReply reply = client.submit(
      fx_->php4(), fx_->garbage_trace.path().string(), Backend::kDf, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;
  ASSERT_TRUE(reply.have_result);
  EXPECT_EQ(reply.status, JobStatus::kCheckFailed);
  EXPECT_EQ(reply.verdict.rfind("CHECK FAILED:", 0), 0u) << reply.verdict;
  EXPECT_NE(server_->metrics_json().find("\"failed\":1"), std::string::npos);
}

TEST_F(ServiceE2E, SatFormulaCannotBeProvenUnsat) {
  start_server();
  Client client = connect();
  const Client::SubmitReply reply =
      client.submit(fx_->sat_cnf.path().string(),
                    fx_->empty_drup.path().string(), Backend::kDrup, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;
  EXPECT_EQ(reply.status, JobStatus::kCheckFailed);
  EXPECT_EQ(reply.verdict.rfind("CHECK FAILED:", 0), 0u) << reply.verdict;
}

TEST_F(ServiceE2E, OneConnectionCanCarryManyJobs) {
  start_server();
  Client client = connect();
  for (int round = 0; round < 3; ++round) {
    const Client::SubmitReply reply =
        client.submit(fx_->php4(), fx_->trace4(), Backend::kDf, true);
    ASSERT_TRUE(reply.transport_ok) << reply.error;
    EXPECT_EQ(reply.status, JobStatus::kOk);
  }
  EXPECT_NE(server_->metrics_json().find("\"completed\":3"),
            std::string::npos);
}

TEST_F(ServiceE2E, ConcurrentClientsAllVerify) {
  ServerOptions opts;
  opts.workers = 2;
  start_server(opts);
  const Backend backends[4] = {Backend::kDf, Backend::kBf, Backend::kHybrid,
                               Backend::kParallel};
  std::vector<std::thread> threads;
  std::vector<Client::SubmitReply> replies(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([this, i, &backends, &replies] {
      Client client = connect();
      replies[i] =
          client.submit(fx_->php4(), fx_->trace4(), backends[i], true);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(replies[i].transport_ok) << replies[i].error;
    EXPECT_EQ(replies[i].status, JobStatus::kOk)
        << backend_name(backends[i]);
    const JobOutcome direct =
        run_check(fx_->php4(), fx_->trace4(), backends[i]);
    EXPECT_EQ(replies[i].verdict, verdict_line(direct));
  }
  EXPECT_NE(server_->metrics_json().find("\"completed\":4"),
            std::string::npos);
}

TEST_F(ServiceE2E, QueueFullAnswersBusyAndConnectionSurvives) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  start_server(opts);

  // Pipeline a burst of slow jobs over one raw connection: with one worker
  // and a one-slot queue, the tail of the burst must hit BUSY while the
  // head is still checking. Retry the whole burst a few times so a slow
  // machine can't make this flaky.
  const std::string cnf_bytes = read_file(fx_->php8());
  const std::string trace_bytes = read_file(fx_->trace8());
  int busy = 0, accepted = 0;
  for (int attempt = 0; attempt < 5 && busy == 0; ++attempt) {
    util::Socket sock =
        util::connect_unix(socket_file_.path().string());
    const int kBurst = 6;
    SubmitHeader header;  // df backend, no wait
    for (int i = 0; i < kBurst; ++i) {
      ASSERT_TRUE(
          write_frame(sock, FrameTag::kSubmit, encode_submit_header(header)));
      ASSERT_TRUE(write_frame(sock, FrameTag::kCnfData, cnf_bytes));
      ASSERT_TRUE(write_frame(sock, FrameTag::kTraceData, trace_bytes));
      ASSERT_TRUE(write_frame(sock, FrameTag::kSubmitEnd));
    }
    for (int i = 0; i < kBurst; ++i) {
      Frame frame;
      ASSERT_EQ(read_frame(sock, frame), ReadStatus::kFrame);
      if (frame.tag == FrameTag::kBusy) {
        ++busy;
        ASSERT_EQ(frame.payload.size(), 4u);
        EXPECT_EQ(read_u32le(frame.payload.data()), 1u);  // queue capacity
      } else {
        ASSERT_EQ(frame.tag, FrameTag::kAccepted);
        ++accepted;
      }
    }
  }
  EXPECT_GE(busy, 1);
  EXPECT_GE(accepted, 1);
  std::ostringstream expected;
  expected << "\"rejected_busy\":" << busy;
  EXPECT_NE(server_->metrics_json().find(expected.str()), std::string::npos);
}

TEST_F(ServiceE2E, OverlongJobIsReportedAsTimeout) {
  start_server();
  Client client = connect();
  // A 1 ms budget that a php8 replay cannot possibly meet. Checkers are
  // not preemptible, so this is a *soft* timeout: the job completes and is
  // then reported as timed out (docs/SERVICE.md).
  const Client::SubmitReply reply =
      client.submit(fx_->php8(), fx_->trace8(), Backend::kDf, true,
                    /*jobs=*/0, /*timeout_ms=*/1);
  ASSERT_TRUE(reply.transport_ok) << reply.error;
  ASSERT_TRUE(reply.have_result);
  EXPECT_EQ(reply.status, JobStatus::kTimeout);
  EXPECT_NE(server_->metrics_json().find("\"timed_out\":1"),
            std::string::npos);
}

TEST_F(ServiceE2E, StatsReplyMatchesServerSnapshot) {
  start_server();
  Client client = connect();
  const Client::SubmitReply reply =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kBf, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;

  std::string error;
  const std::string json = client.stats_json(&error);
  ASSERT_FALSE(json.empty()) << error;
  // Quiescent server: the protocol reply and the in-process snapshot are
  // the same serializer over the same counters.
  EXPECT_EQ(json, server_->metrics_json());
  EXPECT_NE(json.find("\"accepted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bf\":{\"completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"arena_peak_bytes\":"), std::string::npos);
}

TEST_F(ServiceE2E, PrometheusStatsAreWellFormedAndCountJobs) {
  start_server();
  Client client = connect();
  const Client::SubmitReply reply =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kHybrid, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;

  std::string error;
  const std::string text = client.stats_prometheus(&error);
  ASSERT_FALSE(text.empty()) << error;
  EXPECT_EQ(text, server_->metrics_prometheus());
  EXPECT_NE(text.find("# TYPE satproofd_jobs_completed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("satproofd_jobs_completed_total 1"), std::string::npos);
  EXPECT_NE(
      text.find("satproofd_backend_jobs_completed_total{backend=\"hybrid\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("satproofd_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("satproof_resolutions_total"), std::string::npos);
}

TEST_F(ServiceE2E, SlowJobDumpsExactlyOneSpanTree) {
  ServerOptions opts;
  opts.slow_job_ms = 1;  // a php8 replay always takes longer than 1 ms
  start_server(opts);
  Client client = connect();

  ::testing::internal::CaptureStderr();
  const Client::SubmitReply reply =
      client.submit(fx_->php8(), fx_->trace8(), Backend::kDf, true);
  // The dump is written by the worker before the ticket completes, so it
  // is fully captured once the wait-mode result frame has arrived.
  const std::string captured = ::testing::internal::GetCapturedStderr();

  ASSERT_TRUE(reply.transport_ok) << reply.error;
  EXPECT_EQ(reply.status, JobStatus::kOk);
  std::size_t dumps = 0;
  for (std::size_t pos = captured.find("SLOW-JOB:"); pos != std::string::npos;
       pos = captured.find("SLOW-JOB:", pos + 1)) {
    ++dumps;
  }
  EXPECT_EQ(dumps, 1u) << captured;
  EXPECT_NE(captured.find("backend=df"), std::string::npos);
  // The tree includes the service stages and the checker stages.
  EXPECT_NE(captured.find("queue_wait"), std::string::npos);
  EXPECT_NE(captured.find("run"), std::string::npos);
  EXPECT_NE(captured.find("  check"), std::string::npos);
  EXPECT_NE(captured.find("    parse"), std::string::npos);
  EXPECT_NE(captured.find("    replay"), std::string::npos);
  EXPECT_NE(server_->metrics_json().find("\"slow\":1"), std::string::npos);
  EXPECT_NE(server_->metrics_prometheus().find("satproofd_slow_jobs_total 1"),
            std::string::npos);
}

TEST_F(ServiceE2E, TcpTransportWorks) {
  ServerOptions opts;
  opts.enable_tcp = true;  // ephemeral port
  start_server(opts);
  ASSERT_NE(server_->tcp_port(), 0);
  Client client = Client::connect_tcp(server_->tcp_port());
  const Client::SubmitReply reply =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kDf, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;
  EXPECT_EQ(reply.status, JobStatus::kOk);
}

TEST_F(ServiceE2E, DrainFinishesAcceptedJobsThenRefusesNewOnes) {
  start_server();
  {
    Client client = connect();
    const Client::SubmitReply reply =
        client.submit(fx_->php8(), fx_->trace8(), Backend::kDf,
                      /*wait=*/false);
    ASSERT_TRUE(reply.transport_ok) << reply.error;
    ASSERT_TRUE(reply.accepted);
  }
  server_->drain_and_wait();
  // The accepted job ran to completion during the drain...
  const std::string json = server_->metrics_json();
  EXPECT_NE(json.find("\"accepted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
  // ...and the listener is gone: the socket file has been removed.
  EXPECT_THROW(Client::connect_unix(socket_file_.path().string()),
               std::runtime_error);
}

TEST_F(ServiceE2E, WaitModeResultSurvivesAConcurrentDrain) {
  start_server();
  Client client = connect();
  std::thread drainer([this] { server_->drain_and_wait(); });
  // Even if the drain wins the race, a job admitted before the queue
  // closes must still deliver its result frame; one admitted after is
  // refused with a typed DRAINING error. Both are clean outcomes.
  const Client::SubmitReply reply =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kDf, true);
  drainer.join();
  if (reply.accepted) {
    EXPECT_TRUE(reply.have_result);
    EXPECT_EQ(reply.status, JobStatus::kOk);
  } else {
    EXPECT_FALSE(reply.transport_ok);
  }
}

TEST_F(ServiceE2E, SlowUploaderCannotStallOtherClients) {
  // Slowloris: one client trickles a SUBMIT upload byte by byte and never
  // finishes. Under the old thread-per-connection server this pinned a
  // thread; under the event loop it must cost only a buffer, and an
  // ordinary client submitted meanwhile must complete promptly.
  start_server();
  util::Socket slow = util::connect_unix(socket_file_.path().string());
  SubmitHeader header;
  const std::vector<std::uint8_t> submit_payload =
      encode_submit_header(header);
  std::vector<std::uint8_t> wire;
  wire.push_back(static_cast<std::uint8_t>(FrameTag::kSubmit));
  append_u32le(wire, static_cast<std::uint32_t>(submit_payload.size()));
  wire.insert(wire.end(), submit_payload.begin(), submit_payload.end());
  // Trickle the first few bytes only, leaving the frame forever unfinished.
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(slow.send_all(&wire[i], 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Client client = connect();
  const Client::SubmitReply reply =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kDf, true);
  ASSERT_TRUE(reply.transport_ok) << reply.error;
  ASSERT_TRUE(reply.have_result);
  EXPECT_EQ(reply.status, JobStatus::kOk);

  // Keep trickling: the stalled connection is still alive and still slow,
  // and the server still answers everyone else.
  ASSERT_TRUE(slow.send_all(&wire[3], 1));
  std::string error;
  EXPECT_FALSE(client.stats_json(&error).empty()) << error;
}

TEST_F(ServiceE2E, ClosedConnectionsAreReapedWithoutNewAccepts) {
  // A wave of short-lived connections must be reaped promptly by the
  // event loop itself — not parked until the next accept, as the old
  // reap-on-accept scheme did. The follow-up client is only connected
  // after the wave is fully closed, so it cannot be the trigger.
  start_server();
  for (int i = 0; i < 32; ++i) {
    util::Socket sock = util::connect_unix(socket_file_.path().string());
    ASSERT_TRUE(write_frame(sock, FrameTag::kStats));
    Frame frame;
    ASSERT_EQ(read_frame(sock, frame), ReadStatus::kFrame);
    ASSERT_EQ(frame.tag, FrameTag::kStatsJson);
  }
  Client client = connect();
  std::string error;
  const std::string json = client.stats_json(&error);
  ASSERT_FALSE(json.empty()) << error;
  EXPECT_NE(json.find("\"connections\":33"), std::string::npos);
}

TEST_F(ServiceE2E, MultiWorkerServerMatchesDirectVerdicts) {
  // Four workers, concurrent mixed-backend jobs: scheduling across shards
  // (including steals) must never change a verdict.
  ServerOptions opts;
  opts.workers = 4;
  start_server(opts);
  ASSERT_EQ(server_->worker_count(), 4u);

  constexpr int kClients = 8;
  const Backend backends[4] = {Backend::kDf, Backend::kBf, Backend::kHybrid,
                               Backend::kParallel};
  std::vector<std::thread> threads;
  std::vector<Client::SubmitReply> replies(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &backends, &replies] {
      Client client = connect();
      replies[i] = client.submit(fx_->php4(), fx_->trace4(),
                                 backends[i % 4], true);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(replies[i].transport_ok) << replies[i].error;
    EXPECT_EQ(replies[i].status, JobStatus::kOk);
    const JobOutcome direct =
        run_check(fx_->php4(), fx_->trace4(), backends[i % 4]);
    EXPECT_EQ(replies[i].verdict, verdict_line(direct));
  }
  const std::string json = server_->metrics_json();
  EXPECT_NE(json.find("\"completed\":8"), std::string::npos);
  EXPECT_NE(json.find("\"count\":4"), std::string::npos);  // workers block
}

TEST_F(ServiceE2E, CertifySubmitReturnsKernelVerifiableCertificate) {
  ServerOptions opts;
  opts.certify = true;  // server re-verifies with the trusted kernel
  start_server(opts);

  for (const Backend backend : {Backend::kDf, Backend::kHybrid}) {
    Client client = connect();
    const Client::SubmitReply reply =
        client.submit(fx_->php4(), fx_->trace4(), backend, /*wait=*/true,
                      /*jobs=*/0, /*timeout_ms=*/0, /*certify=*/true);
    ASSERT_TRUE(reply.transport_ok) << reply.error;
    ASSERT_EQ(reply.status, JobStatus::kOk) << reply.verdict;
    ASSERT_TRUE(reply.have_certificate);
    ASSERT_FALSE(reply.certificate.empty());

    // The shipped certificate must re-verify independently.
    std::ifstream cnf_in(fx_->php4());
    std::istringstream cert_in(reply.certificate);
    const kern::VerifyResult kv = kern::verify_lrat(cnf_in, cert_in);
    EXPECT_TRUE(kv.verified) << "line " << kv.line << ": " << kv.error;
  }

  // Both post-checks passed and were counted.
  const std::string prom = server_->metrics_prometheus();
  EXPECT_NE(prom.find("satproofd_certified_total 2"), std::string::npos);
  EXPECT_NE(prom.find("satproofd_certify_failed_total 0"),
            std::string::npos);
}

TEST_F(ServiceE2E, CertifyWithWrongBackendOrWithoutWaitIsBadRequest) {
  start_server();
  for (const bool with_wait : {true, false}) {
    Client client = connect();
    SubmitHeader header;
    header.backend =
        static_cast<std::uint8_t>(with_wait ? Backend::kDrup : Backend::kDf);
    header.flags = kSubmitFlagCertify;
    if (with_wait) header.flags |= kSubmitFlagWait;
    ASSERT_TRUE(write_frame(client.socket(), FrameTag::kSubmit,
                            encode_submit_header(header)));
    Frame frame;
    ASSERT_EQ(read_frame(client.socket(), frame), ReadStatus::kFrame);
    ASSERT_EQ(frame.tag, FrameTag::kError);
    ErrorCode code = ErrorCode::kMalformedFrame;
    std::string message;
    ASSERT_TRUE(decode_error(frame.payload, code, message));
    EXPECT_EQ(code, ErrorCode::kBadRequest) << message;
  }
}

TEST_F(ServiceE2E, LegacyClientsNeverSeeCertFrames) {
  // A plain wait-mode submit on a --certify server: exactly one RESULT
  // frame, no RESULT_CERT, and the connection stays usable.
  ServerOptions opts;
  opts.certify = true;
  start_server(opts);
  Client client = connect();
  const Client::SubmitReply first =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kDf, /*wait=*/true);
  ASSERT_TRUE(first.transport_ok) << first.error;
  EXPECT_EQ(first.status, JobStatus::kOk);
  EXPECT_FALSE(first.have_certificate);
  // Were a stray cert frame queued, this next exchange would desync.
  const Client::SubmitReply second =
      client.submit(fx_->php4(), fx_->trace4(), Backend::kDf, /*wait=*/true);
  ASSERT_TRUE(second.transport_ok) << second.error;
  EXPECT_EQ(second.status, JobStatus::kOk);
}

}  // namespace
}  // namespace satproof::service
