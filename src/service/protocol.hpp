#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/socket.hpp"

namespace satproof::service {

/// Wire protocol of the proof-checking service (`satproof serve`).
///
/// Every message is one *frame*:
///
///     offset  size  field
///     0       1     tag        (FrameTag)
///     1       4     length     (u32, little-endian, payload bytes)
///     5       len   payload
///
/// A declared length above kMaxFramePayload is rejected before any payload
/// byte is read — a client cannot make the server allocate from a length
/// field. Multi-byte integers inside payloads are little-endian.
///
/// Conversation shape (client speaks first, one conversation per frame
/// exchange; a connection may carry any number of them sequentially):
///
///   submit:  kSubmit header, then any number of kCnfData / kTraceData
///            chunks (the server streams them straight to temp files),
///            then kSubmitEnd. Server replies kAccepted{job id} or kBusy.
///            If the header's wait flag is set, one kResult frame follows
///            when the job finishes.
///   stats:   kStats with empty payload; server replies kStatsJson.
///            kStatsProm requests the same snapshot in Prometheus text
///            exposition format; server replies kStatsPromText.
///
/// Any protocol violation gets a typed kError frame (when the transport
/// still works) followed by connection close; the server never crashes or
/// hangs on malformed input (tests/test_service_protocol.cpp sweeps this).

inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB
inline constexpr std::size_t kFrameHeaderBytes = 5;

enum class FrameTag : std::uint8_t {
  // client -> server
  kSubmit = 0x01,     ///< SubmitHeader payload
  kCnfData = 0x02,    ///< raw DIMACS bytes (chunk)
  kTraceData = 0x03,  ///< raw trace/DRUP-proof bytes (chunk)
  kSubmitEnd = 0x04,  ///< empty payload; enqueue the job
  kStats = 0x05,      ///< empty payload; request a metrics snapshot
  kStatsProm = 0x06,  ///< empty payload; request Prometheus exposition

  // server -> client
  kAccepted = 0x81,   ///< u64 job id
  kBusy = 0x82,       ///< u32 queue capacity: queue full, job dropped
  kResult = 0x83,     ///< ResultHeader + verdict + JSON (see below)
  kStatsJson = 0x84,  ///< UTF-8 JSON document
  kError = 0x85,      ///< u8 ErrorCode + UTF-8 message
  kStatsPromText = 0x86,  ///< UTF-8 Prometheus text exposition
  /// u64 job id, u8 format (0 text, 1 binary), u32 cert length, cert
  /// bytes. Sent right after kResult for jobs submitted with
  /// kSubmitFlagCertify | kSubmitFlagWait and a successful certified
  /// check; clients that never set the certify flag never see it.
  kResultCert = 0x87,
};

enum class ErrorCode : std::uint8_t {
  kMalformedFrame = 1,     ///< undecodable payload for the tag
  kOversizedFrame = 2,     ///< declared length > kMaxFramePayload
  kUnknownTag = 3,         ///< tag byte outside the protocol
  kProtocolViolation = 4,  ///< valid frame at the wrong time
  kDraining = 5,           ///< server is shutting down; job refused
  kBadRequest = 6,         ///< semantically invalid submit header
};

/// Job completion status carried in a kResult frame.
enum class JobStatus : std::uint8_t {
  kOk = 0,           ///< proof verified
  kCheckFailed = 1,  ///< checker rejected the proof (verdict has details)
  kError = 2,        ///< job could not run (unreadable CNF, bad trace, ...)
  kTimeout = 3,      ///< wall-clock deadline exceeded
};

/// kSubmit payload. Encoded as 18 bytes; a legacy 10-byte header (without
/// the trailing declared_bytes field) still decodes, with declared_bytes
/// taken as 0 ("unknown").
struct SubmitHeader {
  std::uint8_t backend = 0;      ///< service::Backend
  std::uint8_t flags = 0;        ///< kSubmitFlagWait
  std::uint32_t timeout_ms = 0;  ///< wall-clock budget; 0 = server default
  std::uint32_t jobs = 0;        ///< parallel-backend workers; 0 = default
  /// Total upload size (CNF + trace bytes) the client intends to stream;
  /// 0 = unknown. The server picks the job's priority lane from it — an
  /// honest multi-MB declaration queues behind nothing but other bulk
  /// jobs, while small jobs overtake. A dishonest 0/low declaration is
  /// corrected from the actually-ingested byte count at enqueue time.
  std::uint64_t declared_bytes = 0;
};

inline constexpr std::uint8_t kSubmitFlagWait = 0x01;
/// Request an LRAT certificate of the replay (df/hybrid backends only;
/// requires kSubmitFlagWait — the certificate arrives as a kResultCert
/// frame after the kResult). Unknown to pre-certification servers' flag
/// validation era: the bit is simply ignored by legacy peers.
inline constexpr std::uint8_t kSubmitFlagCertify = 0x02;

/// One decoded frame.
struct Frame {
  FrameTag tag = FrameTag::kError;
  std::vector<std::uint8_t> payload;
};

/// Outcome of read_frame.
enum class ReadStatus {
  kFrame,      ///< `out` holds a complete frame
  kClosed,     ///< orderly close before any byte of a new frame
  kTruncated,  ///< disconnect/timeout mid-frame
  kOversized,  ///< declared payload length exceeds the cap
};

// --- little-endian integer helpers (shared by server, client, tests) ----
void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint32_t read_u32le(const std::uint8_t* p);
std::uint64_t read_u64le(const std::uint8_t* p);

// --- payload codecs -----------------------------------------------------
std::vector<std::uint8_t> encode_submit_header(const SubmitHeader& h);
/// False when the payload is not exactly a SubmitHeader.
bool decode_submit_header(std::span<const std::uint8_t> payload,
                          SubmitHeader& out);

/// kError payload: code byte + message bytes.
std::vector<std::uint8_t> encode_error(ErrorCode code,
                                       std::string_view message);
bool decode_error(std::span<const std::uint8_t> payload, ErrorCode& code,
                  std::string& message);

/// kResult payload: u8 status, u64 job id, u32 verdict length, verdict
/// bytes, then the JSON document (remaining bytes).
std::vector<std::uint8_t> encode_result(JobStatus status, std::uint64_t job_id,
                                        std::string_view verdict,
                                        std::string_view json);
bool decode_result(std::span<const std::uint8_t> payload, JobStatus& status,
                   std::uint64_t& job_id, std::string& verdict,
                   std::string& json);

/// kResultCert payload: u64 job id, u8 format (0 = text LRAT, 1 = binary
/// GRIT-style), u32 certificate length, certificate bytes.
std::vector<std::uint8_t> encode_result_cert(std::uint64_t job_id,
                                             bool binary_format,
                                             std::string_view cert);
bool decode_result_cert(std::span<const std::uint8_t> payload,
                        std::uint64_t& job_id, bool& binary_format,
                        std::string& cert);

// --- framed socket I/O --------------------------------------------------

/// Writes one frame; returns false on a transport error.
bool write_frame(util::Socket& sock, FrameTag tag,
                 std::span<const std::uint8_t> payload);
bool write_frame(util::Socket& sock, FrameTag tag, std::string_view payload);
/// Empty-payload shorthand.
bool write_frame(util::Socket& sock, FrameTag tag);

/// Reads one frame. On kOversized the header has been consumed but no
/// payload byte (the connection is unusable afterwards — close it).
ReadStatus read_frame(util::Socket& sock, Frame& out,
                      std::uint32_t max_payload = kMaxFramePayload);

// --- incremental decoding (event-loop server) ---------------------------

/// Reassembles frames from arbitrarily fragmented byte input — the
/// non-blocking ingest loop feeds it whatever recv() returned, so a
/// client trickling one byte per write (or a slowloris upload) costs
/// buffer space, never a blocked thread.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  enum class Result {
    kNeedMore,   ///< no complete frame buffered yet
    kFrame,      ///< `out` holds the next frame
    kOversized,  ///< declared length > max_payload; stop feeding
  };

  /// Appends `n` raw bytes to the reassembly buffer.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame, if any. Call in a loop until it
  /// stops returning kFrame — one feed() can complete several frames.
  Result next(Frame& out);

  /// True while a frame header or payload is partially buffered — a
  /// disconnect now is a mid-frame truncation, not an orderly close.
  /// (Assumes the caller drains next() until kNeedMore after every feed.)
  [[nodiscard]] bool mid_frame() const { return buffered_bytes() > 0; }

  /// Bytes currently buffered (partial frame data).
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buf_.size() - consumed_;
  }

 private:
  std::uint32_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< prefix of buf_ already handed out
};

/// Human-readable names for diagnostics and tests.
const char* error_code_name(ErrorCode code);
const char* job_status_name(JobStatus status);

}  // namespace satproof::service
