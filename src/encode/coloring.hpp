#pragma once

#include <cstdint>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// Graph coloring of a clique: color K_n with `colors` colors. Satisfiable
/// iff colors >= n; with colors = n - 1 this is a pigeonhole in disguise
/// but with the extra per-vertex at-most-one-color structure of real
/// coloring encodings.
///
/// Variables: c(v, k) = "vertex v has color k". Clauses: each vertex gets
/// at least one color, at most one color, and adjacent vertices (all pairs
/// in a clique) differ on every color.
[[nodiscard]] Formula clique_coloring(unsigned n, unsigned colors);

/// Coloring of a random graph: `n` vertices, each edge present with
/// probability `density`, `colors` colors, deterministic in `seed`. May be
/// SAT or UNSAT; the property sweeps verify whichever answer the solver
/// returns.
[[nodiscard]] Formula random_graph_coloring(unsigned n, double density,
                                            unsigned colors,
                                            std::uint64_t seed);

}  // namespace satproof::encode
