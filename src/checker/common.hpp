#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/checker/resolution.hpp"
#include "src/cnf/formula.hpp"
#include "src/trace/events.hpp"
#include "src/util/arena.hpp"
#include "src/util/mem_tracker.hpp"

namespace satproof::checker {

/// Counters shared by both checker implementations; the raw material of the
/// paper's Table 2.
struct CheckStats {
  /// Derivation records in the trace (learned clauses the solver reported).
  std::uint64_t total_derivations = 0;
  /// Learned clauses whose literals were actually constructed. For the
  /// depth-first checker this is the "Num. Cls Built" column (19-90% of the
  /// total in the paper); the breadth-first checker always builds all.
  std::uint64_t clauses_built = 0;
  /// Individual resolution steps performed (including the final
  /// empty-clause derivation).
  std::uint64_t resolutions = 0;
  /// Peak accounted memory: clauses held plus, for the depth-first checker,
  /// the in-memory trace (Section 3.2: "the checker needs to read in the
  /// entire trace file into main memory").
  std::size_t peak_mem_bytes = 0;
  /// Distinct original clauses used by the proof (depth-first only); the
  /// size of the unsatisfiable core of Table 3.
  std::uint64_t core_original_clauses = 0;
  /// Clause-arena traffic: cumulative bytes handed out, cumulative bytes
  /// served from free lists instead of fresh space, and the high-water
  /// mark of live clause bytes. Deterministic for a given trace regardless
  /// of backend parallelism (the parallel checker sums its shards).
  std::size_t arena_allocated_bytes = 0;
  std::size_t arena_recycled_bytes = 0;
  std::size_t arena_peak_bytes = 0;
};

/// Outcome of a checking run.
struct CheckResult {
  /// True when the trace constitutes a valid resolution proof of
  /// unsatisfiability of the formula.
  bool ok = false;
  /// Diagnostic for the first failed check ("as much information as
  /// possible about the failure to help debug the solver", Section 3.2).
  std::string error;
  CheckStats stats;
  /// Depth-first with collect_core: sorted IDs of the original clauses that
  /// appear as leaves of the resolution proof — an unsatisfiable core.
  std::vector<ClauseId> core;
  /// For traces of UNSAT-under-assumptions runs: the validated derived
  /// clause, whose literals are all negations of assumed literals (the
  /// formula implies it, refuting that assumption subset). Empty for
  /// unconditional unsatisfiability proofs.
  std::vector<Lit> failed_assumption_clause;

  /// Convenience: true iff the check succeeded.
  explicit operator bool() const { return ok; }
};

/// Failure raised internally by checker components; converted into a
/// CheckResult with ok == false at the API boundary.
class CheckFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A read-only view of a canonical clause (sorted, duplicate-free
/// literals). Checker clauses live in a ClauseArena; views are how they
/// travel between components without copies.
using ClauseView = std::span<const Lit>;

/// ID-addressed clause storage shared by the replay backends: a
/// ClauseArena for the literal blocks plus a flat, ID-indexed ref table
/// (replacing the per-backend std::unordered_map<ClauseId, SortedClause>).
/// IDs are solver-assigned and dense (originals first, then one fresh ID
/// per learned clause), so a flat table is both smaller and faster than a
/// hash map: contains/view are two array loads, no hashing, no node
/// chasing.
class ClauseStore {
 public:
  /// Owns a private arena (the default, used by one-shot CLI checks).
  ClauseStore() : arena_(&owned_) {}

  /// Borrows `external` for clause storage instead of owning one
  /// (nullptr = own a private arena). The satproofd worker pool passes a
  /// per-worker arena here (reset() between jobs) so repeated checks reuse
  /// already-mapped chunks and concurrent workers never share an
  /// allocator. `external` must outlive the store.
  explicit ClauseStore(util::ClauseArena* external)
      : arena_(external != nullptr ? external : &owned_) {}

  ClauseStore(const ClauseStore&) = delete;
  ClauseStore& operator=(const ClauseStore&) = delete;

  /// Pre-sizes the ref table for IDs in [0, num_ids). put() grows it on
  /// demand, so this is an optimization, not a requirement.
  void reserve(std::size_t num_ids) {
    if (num_ids > refs_.size()) {
      refs_.resize(num_ids, util::ClauseArena::kNullRef);
    }
  }

  [[nodiscard]] bool contains(ClauseId id) const {
    return id < refs_.size() && refs_[id] != util::ClauseArena::kNullRef;
  }

  /// View of the stored clause; `id` must be contains().
  [[nodiscard]] ClauseView view(ClauseId id) const {
    return arena_->view(refs_[id]);
  }

  /// Copies `lits` into the arena under `id` (which must not be stored).
  void put(ClauseId id, ClauseView lits) {
    if (id >= refs_.size()) {
      refs_.resize(id + 1, util::ClauseArena::kNullRef);
    }
    refs_[id] = arena_->put(lits);
  }

  /// Releases `id`'s block for reuse; `id` must be contains().
  void release(ClauseId id) {
    arena_->release(refs_[id]);
    refs_[id] = util::ClauseArena::kNullRef;
  }

  /// Hints the cache to load `id`'s clause block; a no-op when `id` is not
  /// stored (replay prefetches a couple of derivations ahead, where a
  /// source may still be under construction).
  void prefetch(ClauseId id) const {
    if (contains(id)) arena_->prefetch(refs_[id]);
  }

  [[nodiscard]] util::ClauseArena& arena() { return *arena_; }
  [[nodiscard]] const util::ClauseArena& arena() const { return *arena_; }

  /// One past the highest ID the ref table covers.
  [[nodiscard]] std::size_t id_limit() const { return refs_.size(); }

 private:
  util::ClauseArena owned_;     ///< backing store for the default ctor
  util::ClauseArena* arena_;    ///< &owned_, or the borrowed external arena
  std::vector<util::ClauseArena::Ref> refs_;
};

/// Accounted footprint of one loaded derivation record: the source IDs in
/// the pool (stored narrowed to 32 bits — see DerivationIndex) plus the
/// per-record index entry. Shared by the depth-first and parallel checkers
/// so the two report identical peak memory for the same trace.
[[nodiscard]] inline std::size_t derivation_record_bytes(
    std::size_t num_sources) {
  return num_sources * sizeof(std::uint32_t) + 8;
}

/// The derivation DAG of a trace for whole-trace checkers (depth-first,
/// parallel): source lists packed into one pool, indexed by a flat
/// ordinal-indexed table (ordinal = id - num_original). Records validate
/// on insertion with the same diagnostics the checkers have always
/// produced.
///
/// The pool stores source IDs narrowed to 32 bits: the pool itself is
/// capped at 2^32 entries and every source precedes its consumer, so IDs
/// beyond 2^32 would blow the cap anyway — the trace is rejected as too
/// large first. Halving the per-source footprint matters because the
/// loaded trace rivals the memoized clauses for the depth-first checker's
/// peak (Section 3.2 reads the entire trace into main memory).
class DerivationIndex {
 public:
  explicit DerivationIndex(ClauseId num_original)
      : num_original_(num_original) {}

  /// Validates and stores one derivation record. Throws CheckFailure on an
  /// original-ID reuse, fewer than two sources, a non-preceding source, or
  /// a duplicate derivation.
  void add(ClauseId id, std::span<const ClauseId> sources);

  [[nodiscard]] bool contains(ClauseId id) const {
    if (id < num_original_) return false;
    const ClauseId ord = id - num_original_;
    return ord < entries_.size() && entries_[ord].len != 0;
  }

  /// Source list of `id` (32-bit IDs; they widen losslessly to ClauseId).
  /// Throws CheckFailure ("referenced but never derived") when absent.
  /// Inline: the replay loop calls this once per derivation (plan, fold,
  /// prefetch), so the lookup must reduce to two loads and a compare.
  [[nodiscard]] std::span<const std::uint32_t> sources_of(ClauseId id) const {
    if (!contains(id)) throw_never_derived(id);
    const Entry& e = entries_[id - num_original_];
    return {pool_.data() + e.begin, e.len};
  }

  /// Highest derived ID seen (0 when empty — check num_records() first).
  [[nodiscard]] ClauseId max_id() const { return max_id_; }
  [[nodiscard]] std::uint64_t num_records() const { return num_records_; }

 private:
  struct Entry {
    std::uint32_t begin = 0;  ///< offset into pool_
    std::uint32_t len = 0;    ///< 0 = not derived (real records have >= 2)
  };

  [[noreturn]] static void throw_never_derived(ClauseId id);

  ClauseId num_original_;
  std::vector<std::uint32_t> pool_;
  std::vector<Entry> entries_;  ///< by ordinal
  ClauseId max_id_ = 0;
  std::uint64_t num_records_ = 0;
};

/// Single-pass trace load for checkers that keep the whole DAG in memory
/// (depth-first, parallel): fills `derivations` and `level0`, accounts the
/// loaded bytes in `mem`, counts derivations in `stats`, and returns the
/// final conflict ID (nullopt when the trace has none). Throws
/// CheckFailure on any structural violation, including a missing end
/// record.
std::optional<ClauseId> load_full_trace(trace::TraceReader& reader,
                                        DerivationIndex& derivations,
                                        class Level0Table& level0,
                                        util::MemTracker& mem,
                                        CheckStats& stats);

/// The final-trail assignment table reconstructed from the trace's Level0
/// and Assumption records (Section 3.1, item 3; assumptions are the
/// incremental-query extension). Implied variables carry an antecedent
/// clause ID; assumption decisions do not.
class Level0Table {
 public:
  /// Prepares a table for `num_vars` variables.
  explicit Level0Table(Var num_vars);

  /// Registers one Level0 (implied assignment) record. Throws CheckFailure
  /// on a repeated or out-of-range variable.
  void add(Var var, bool value, ClauseId antecedent);

  /// Registers one Assumption record: `var` was assumed to take `value`.
  /// If the variable has no trail entry yet, this also becomes its trail
  /// entry (an assumption decision); if it does (the failed assumption is
  /// implied to the *opposite* value before its enqueue), only the
  /// assumed-polarity bookkeeping is added. Throws CheckFailure on a
  /// repeated assumption or out-of-range variable.
  void add_assumption(Var var, bool value);

  [[nodiscard]] bool assigned(Var v) const { return v < entries_.size() && entries_[v].assigned; }
  [[nodiscard]] bool value(Var v) const { return entries_[v].value; }
  [[nodiscard]] ClauseId antecedent(Var v) const { return entries_[v].antecedent; }
  /// True when `v` is assigned with an antecedent (resolvable).
  [[nodiscard]] bool implied(Var v) const {
    return assigned(v) && entries_[v].antecedent != kInvalidClauseId;
  }
  /// Chronological rank of the assignment (0 = first on the trail).
  [[nodiscard]] std::uint32_t order(Var v) const { return entries_[v].order; }
  [[nodiscard]] std::size_t size() const { return count_; }
  /// The variable universe the table was sized for.
  [[nodiscard]] Var num_vars() const { return static_cast<Var>(entries_.size()); }

  /// Assumption bookkeeping.
  [[nodiscard]] bool has_assumptions() const { return num_assumed_ > 0; }
  [[nodiscard]] bool is_assumed(Var v) const {
    return v < entries_.size() && entries_[v].assumed;
  }
  [[nodiscard]] bool assumed_value(Var v) const {
    return entries_[v].assumed_value;
  }

  /// Value of `lit` under the table: False, True, or Undef if unassigned.
  [[nodiscard]] LBool lit_value(Lit lit) const;

 private:
  struct Entry {
    bool assigned = false;
    bool value = false;
    bool assumed = false;
    bool assumed_value = false;
    ClauseId antecedent = kInvalidClauseId;
    std::uint32_t order = 0;
  };
  std::vector<Entry> entries_;
  std::size_t count_ = 0;
  std::size_t num_assumed_ = 0;
};

/// Validates that `clause` really is the antecedent of `var` under the
/// level-0 assignment: it contains the literal that makes `var` true, and
/// every other literal is false and was assigned strictly earlier. This is
/// the paper's "whether the clause is really the antecedent of the
/// variable" check. Throws CheckFailure with a diagnostic otherwise.
/// `what` names the clause in diagnostics (e.g. "clause 42").
void check_antecedent(ClauseView clause, Var var, const Level0Table& table,
                      const std::string& what);

/// Callback that produces the canonical clause for an ID, or throws
/// CheckFailure. The depth-first checker builds on demand; the breadth-first
/// checker looks up its live window. The returned view stays valid until
/// the next fetch.
using ClauseFetcher = std::function<ClauseView(ClauseId)>;

/// Observer of replay-order derivation events, the hook the certificate
/// emitter (src/cert) attaches to. Declared here so the checkers need no
/// dependency on the cert subsystem: backends that support emission hold a
/// nullable pointer (null = no observer, the default) and call out only on
/// the slow side of each derivation — after a whole chain has been folded —
/// so the resolution hot loop is untouched.
///
/// Contract the checkers guarantee to observers:
///  - on_derived() fires once per clause actually built, in replay order;
///    every source of a derivation has been announced (as an original ID or
///    an earlier on_derived) before the derivation that consumes it.
///  - on_released() fires when a derived clause provably has no remaining
///    uses (hybrid use-count exhaustion); it never precedes a later fetch.
///  - on_final() fires once, after the empty-clause (or assumption-clause)
///    derivation succeeds, with the antecedents in the order they were
///    resolved against the final conflicting clause.
class CertObserver {
 public:
  virtual ~CertObserver() = default;

  /// Derived clause `id` was built by left-folding resolution over
  /// `sources` (in trace order); `lits` is the resulting clause,
  /// duplicate-free, in ChainResolver order.
  virtual void on_derived(ClauseId id, std::span<const Lit> lits,
                          std::span<const std::uint32_t> sources) = 0;

  /// Derived clause `id` has no remaining uses in the replay.
  virtual void on_released(ClauseId id) = 0;

  /// The final empty-clause derivation succeeded: the final conflicting
  /// clause `final_id` was resolved against `antecedents` in order.
  virtual void on_final(ClauseId final_id,
                        std::span<const ClauseId> antecedents) = 0;
};

/// Derives the trace's final clause, exactly as in the proof of
/// Proposition 3: starting from the final conflicting clause, repeatedly
/// resolve on the *most recently assigned* remaining implied variable
/// using its antecedent, until only unresolvable literals remain. Choosing
/// literals in reverse chronological order guarantees no variable is
/// chosen twice, so the loop performs at most |trail| resolutions.
///
/// Without assumptions the result must be the empty clause (checked here:
/// every final-clause literal must be false and implied). With assumptions
/// the remaining literals are returned for validation against the assumed
/// set (validate_assumption_clause). Throws CheckFailure on any invalid
/// step; increments `stats.resolutions`. When `used_antecedents` is
/// non-null it receives the antecedent IDs in resolution order (the hint
/// material for CertObserver::on_final).
[[nodiscard]] SortedClause derive_final_clause(
    ClauseId final_id, const ClauseFetcher& fetch, const Level0Table& table,
    CheckStats& stats, std::vector<ClauseId>* used_antecedents = nullptr);

/// Validates the outcome of derive_final_clause: empty is always fine
/// (unconditional unsatisfiability); otherwise every literal must be the
/// negation of a recorded assumption, making the clause a proof that the
/// formula refutes that assumption subset. Throws CheckFailure otherwise.
void validate_assumption_clause(const SortedClause& clause,
                                const Level0Table& table);

/// Validates the trace header against the formula (the ID contract of
/// Section 3.1). Throws CheckFailure on mismatch.
void check_header(const Formula& f, Var trace_vars, ClauseId trace_original);

}  // namespace satproof::checker
