file(REMOVE_RECURSE
  "CMakeFiles/test_interpolant.dir/test_interpolant.cpp.o"
  "CMakeFiles/test_interpolant.dir/test_interpolant.cpp.o.d"
  "test_interpolant"
  "test_interpolant.pdb"
  "test_interpolant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpolant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
