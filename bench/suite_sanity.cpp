// Quick sanity driver: solve the standard suite, check every trace with
// both checkers, print per-instance timing. Not one of the paper tables —
// a development aid and a fast way to see the whole pipeline working.

#include <cstdio>

#include "bench/suite_runner.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"

int main() {
  using namespace satproof;
  for (auto& solved : bench::solve_suite(encode::SuiteScale::Standard)) {
    util::Timer t_df;
    trace::MemoryTraceReader r1(solved.trace);
    const checker::CheckResult df =
        checker::check_depth_first(solved.instance.formula, r1);
    const double df_s = t_df.elapsed_seconds();

    util::Timer t_bf;
    trace::MemoryTraceReader r2(solved.trace);
    const checker::CheckResult bf =
        checker::check_breadth_first(solved.instance.formula, r2);
    const double bf_s = t_bf.elapsed_seconds();

    std::printf(
        "%-18s vars=%6u cls=%7zu learned=%7llu solve=%7.3fs df=%s %.3fs "
        "bf=%s %.3fs built%%=%.1f core=%llu\n",
        solved.instance.name.c_str(), solved.instance.formula.num_vars(),
        solved.instance.formula.num_clauses(),
        static_cast<unsigned long long>(solved.stats.learned_clauses),
        solved.solve_seconds_trace_on, df.ok ? "ok" : "FAIL", df_s,
        bf.ok ? "ok" : "FAIL", bf_s,
        df.stats.total_derivations == 0
            ? 0.0
            : 100.0 * static_cast<double>(df.stats.clauses_built) /
                  static_cast<double>(df.stats.total_derivations),
        static_cast<unsigned long long>(df.stats.core_original_clauses));
    if (!df.ok) std::printf("  DF error: %s\n", df.error.c_str());
    if (!bf.ok) std::printf("  BF error: %s\n", bf.error.c_str());
  }
  return 0;
}
