#include "src/encode/random_ksat.hpp"

#include <stdexcept>
#include <vector>

#include "src/util/rng.hpp"

namespace satproof::encode {

Formula random_ksat(unsigned n, unsigned m, unsigned k, std::uint64_t seed) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("random_ksat: need 0 < k <= n");
  }
  util::Rng rng(seed);
  Formula f(n);
  std::vector<Var> vars(k);
  std::vector<Lit> clause(k);
  for (unsigned c = 0; c < m; ++c) {
    for (unsigned i = 0; i < k; ++i) {
      bool fresh = false;
      while (!fresh) {
        vars[i] = static_cast<Var>(rng.next_below(n));
        fresh = true;
        for (unsigned j = 0; j < i; ++j) {
          if (vars[j] == vars[i]) {
            fresh = false;
            break;
          }
        }
      }
      clause[i] = Lit(vars[i], rng.next_bool());
    }
    f.add_clause(clause);
  }
  return f;
}

}  // namespace satproof::encode
