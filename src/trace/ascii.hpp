#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "src/trace/events.hpp"

namespace satproof::trace {

/// Human-readable trace format, in the spirit of the zchaff trace the paper
/// describes as "not very space-efficient in order to make the trace human
/// readable" (Section 4).
///
/// Grammar (one record per line):
///
///     p trace <num_vars> <num_original>
///     d <id> <src_1> ... <src_k> 0        derivation, k >= 1
///     f <id>                               final conflicting clause
///     l <signed_var> <antecedent_id>       level-0 assignment; signed_var is
///                                          the 1-based DIMACS literal that
///                                          became true
///     u <signed_var>                       assumed literal (incremental
///                                          queries)
///     e                                    end of trace
class AsciiTraceWriter final : public TraceWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit AsciiTraceWriter(std::ostream& out) : out_(&out) {}

  void begin(Var num_vars, ClauseId num_original) override;
  void derivation(ClauseId id, std::span<const ClauseId> sources) override;
  void final_conflict(ClauseId id) override;
  void level0(Var var, bool value, ClauseId antecedent) override;
  void assumption(Var var, bool value) override;
  void end() override;

 private:
  std::ostream* out_;
  std::string buf_;  ///< per-record formatting buffer (reused)
};

/// Streaming reader for the ASCII trace format. Supports rewind() by
/// re-seeking the underlying stream, so it can feed the breadth-first
/// checker's two passes directly from disk.
class AsciiTraceReader final : public TraceReader {
 public:
  /// Reads from `in`, which must outlive the reader and be seekable if
  /// rewind() is used. Parses the header eagerly; throws on a bad header.
  explicit AsciiTraceReader(std::istream& in);

  [[nodiscard]] Var num_vars() const override { return num_vars_; }
  [[nodiscard]] ClauseId num_original() const override {
    return num_original_;
  }
  bool next(Record& out) override;
  void rewind() override;

 private:
  std::istream* in_;
  std::streampos body_start_{};
  Var num_vars_ = 0;
  ClauseId num_original_ = 0;
  bool done_ = false;
  std::size_t line_no_ = 0;
};

}  // namespace satproof::trace
