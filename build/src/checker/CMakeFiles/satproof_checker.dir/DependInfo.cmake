
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/breadth_first.cpp" "src/checker/CMakeFiles/satproof_checker.dir/breadth_first.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/breadth_first.cpp.o.d"
  "/root/repo/src/checker/common.cpp" "src/checker/CMakeFiles/satproof_checker.dir/common.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/common.cpp.o.d"
  "/root/repo/src/checker/depth_first.cpp" "src/checker/CMakeFiles/satproof_checker.dir/depth_first.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/depth_first.cpp.o.d"
  "/root/repo/src/checker/drup.cpp" "src/checker/CMakeFiles/satproof_checker.dir/drup.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/drup.cpp.o.d"
  "/root/repo/src/checker/hybrid.cpp" "src/checker/CMakeFiles/satproof_checker.dir/hybrid.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/hybrid.cpp.o.d"
  "/root/repo/src/checker/resolution.cpp" "src/checker/CMakeFiles/satproof_checker.dir/resolution.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/resolution.cpp.o.d"
  "/root/repo/src/checker/use_count.cpp" "src/checker/CMakeFiles/satproof_checker.dir/use_count.cpp.o" "gcc" "src/checker/CMakeFiles/satproof_checker.dir/use_count.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/satproof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
