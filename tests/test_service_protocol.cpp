// Malformed-frame sweep and codec tests for the service wire protocol.
//
// The sweep drives a live server over raw sockets with hostile inputs —
// truncated length prefixes, oversized declared lengths, unknown tags,
// mid-frame disconnects — and requires a typed error frame or a clean
// close every time: the daemon must never crash, hang, or allocate from a
// length field.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/service/client.hpp"
#include "src/service/protocol.hpp"
#include "src/service/server.hpp"
#include "src/util/socket.hpp"
#include "src/util/temp_file.hpp"

namespace satproof::service {
namespace {

// ------------------------------------------------------------------ codec

TEST(ServiceCodec, IntegerHelpersRoundTrip) {
  std::vector<std::uint8_t> buf;
  append_u32le(buf, 0xDEADBEEFu);
  append_u64le(buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(buf[0], 0xEF);  // little-endian
  EXPECT_EQ(read_u32le(buf.data()), 0xDEADBEEFu);
  EXPECT_EQ(read_u64le(buf.data() + 4), 0x0123456789ABCDEFull);
}

TEST(ServiceCodec, SubmitHeaderRoundTrip) {
  SubmitHeader h;
  h.backend = 3;
  h.flags = kSubmitFlagWait;
  h.timeout_ms = 1500;
  h.jobs = 4;
  const auto payload = encode_submit_header(h);
  SubmitHeader back;
  ASSERT_TRUE(decode_submit_header(payload, back));
  EXPECT_EQ(back.backend, h.backend);
  EXPECT_EQ(back.flags, h.flags);
  EXPECT_EQ(back.timeout_ms, h.timeout_ms);
  EXPECT_EQ(back.jobs, h.jobs);
}

TEST(ServiceCodec, SubmitHeaderRejectsWrongSize) {
  SubmitHeader out;
  const std::vector<std::uint8_t> short_payload(3, 0);
  EXPECT_FALSE(decode_submit_header(short_payload, out));
  const std::vector<std::uint8_t> long_payload(11, 0);
  EXPECT_FALSE(decode_submit_header(long_payload, out));
}

TEST(ServiceCodec, ErrorRoundTrip) {
  const auto payload =
      encode_error(ErrorCode::kUnknownTag, "tag 0x7f means nothing");
  ErrorCode code;
  std::string message;
  ASSERT_TRUE(decode_error(payload, code, message));
  EXPECT_EQ(code, ErrorCode::kUnknownTag);
  EXPECT_EQ(message, "tag 0x7f means nothing");
}

TEST(ServiceCodec, ErrorRejectsEmptyPayload) {
  ErrorCode code;
  std::string message;
  EXPECT_FALSE(decode_error(std::vector<std::uint8_t>{}, code, message));
}

TEST(ServiceCodec, ResultRoundTrip) {
  const auto payload = encode_result(JobStatus::kOk, 42, "VERIFIED",
                                     "{\"ok\":true}");
  JobStatus status;
  std::uint64_t job_id = 0;
  std::string verdict, json;
  ASSERT_TRUE(decode_result(payload, status, job_id, verdict, json));
  EXPECT_EQ(status, JobStatus::kOk);
  EXPECT_EQ(job_id, 42u);
  EXPECT_EQ(verdict, "VERIFIED");
  EXPECT_EQ(json, "{\"ok\":true}");
}

TEST(ServiceCodec, ResultRejectsTruncatedPayload) {
  auto payload = encode_result(JobStatus::kCheckFailed, 7, "nope", "{}");
  payload.resize(payload.size() - 3);  // cut into the JSON tail is fine...
  JobStatus status;
  std::uint64_t job_id = 0;
  std::string verdict, json;
  // ...but cutting into the verdict declared by its length field is not.
  payload.resize(10);
  EXPECT_FALSE(decode_result(payload, status, job_id, verdict, json));
}

TEST(ServiceCodec, NamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOversizedFrame),
               "oversized frame");
  EXPECT_STREQ(job_status_name(JobStatus::kTimeout), "timeout");
}

// --------------------------------------------------------- framed socket IO

/// A connected (client, server) TCP socket pair on loopback.
struct SocketPair {
  util::Socket client;
  util::Socket server;

  SocketPair() {
    util::Socket listener = util::listen_tcp_localhost(0);
    client = util::connect_tcp_localhost(util::local_port(listener));
    server = util::accept_connection(listener);
  }
};

TEST(ServiceFrameIo, WriteThenReadRoundTrips) {
  SocketPair pair;
  const std::string payload = "hello frames";
  ASSERT_TRUE(write_frame(pair.client, FrameTag::kCnfData, payload));
  Frame frame;
  ASSERT_EQ(read_frame(pair.server, frame), ReadStatus::kFrame);
  EXPECT_EQ(frame.tag, FrameTag::kCnfData);
  EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()), payload);
}

TEST(ServiceFrameIo, EmptyPayloadFrame) {
  SocketPair pair;
  ASSERT_TRUE(write_frame(pair.client, FrameTag::kStats));
  Frame frame;
  ASSERT_EQ(read_frame(pair.server, frame), ReadStatus::kFrame);
  EXPECT_EQ(frame.tag, FrameTag::kStats);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ServiceFrameIo, OrderlyCloseReadsAsClosed) {
  SocketPair pair;
  pair.client.close();
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), ReadStatus::kClosed);
}

TEST(ServiceFrameIo, PartialHeaderReadsAsTruncated) {
  SocketPair pair;
  const std::uint8_t partial[2] = {0x01, 0xFF};
  ASSERT_TRUE(pair.client.send_all(partial, sizeof partial));
  pair.client.close();
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), ReadStatus::kTruncated);
}

TEST(ServiceFrameIo, OversizedDeclaredLengthIsRejectedUnread) {
  SocketPair pair;
  // Declare far more than the cap; send no payload at all. The reader must
  // reject from the header alone without trying to allocate or read it.
  std::vector<std::uint8_t> header;
  header.push_back(static_cast<std::uint8_t>(FrameTag::kCnfData));
  append_u32le(header, kMaxFramePayload + 1);
  ASSERT_TRUE(pair.client.send_all(header.data(), header.size()));
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame), ReadStatus::kOversized);
}

TEST(ServiceFrameIo, CustomCapApplies) {
  SocketPair pair;
  ASSERT_TRUE(write_frame(pair.client, FrameTag::kCnfData,
                          std::string(128, 'x')));
  Frame frame;
  EXPECT_EQ(read_frame(pair.server, frame, /*max_payload=*/64),
            ReadStatus::kOversized);
}

// ------------------------------------------------------- live-server sweep

class ServiceProtocolSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions opts;
    opts.unix_socket_path = socket_file_.path().string();
    opts.workers = 1;
    // A hostile client that stalls should be dropped quickly, not pin a
    // connection thread for the default 30 s.
    opts.idle_timeout_ms = 500;
    server_.emplace(opts);
    server_->start();
  }

  void TearDown() override { server_->drain_and_wait(); }

  util::Socket connect_raw() {
    return util::connect_unix(socket_file_.path().string());
  }

  /// Expects a kError frame with `code`, then connection close.
  void expect_error_then_close(util::Socket& sock, ErrorCode code) {
    Frame frame;
    ASSERT_EQ(read_frame(sock, frame), ReadStatus::kFrame);
    ASSERT_EQ(frame.tag, FrameTag::kError);
    ErrorCode got;
    std::string message;
    ASSERT_TRUE(decode_error(frame.payload, got, message));
    EXPECT_EQ(got, code) << message;
    EXPECT_EQ(read_frame(sock, frame), ReadStatus::kClosed);
  }

  /// The server must still answer a well-formed stats request after abuse.
  void expect_still_alive() {
    Client client = Client::connect_unix(socket_file_.path().string());
    std::string error;
    const std::string json = client.stats_json(&error);
    ASSERT_FALSE(json.empty()) << error;
    EXPECT_NE(json.find("\"malformed_frames\""), std::string::npos);
  }

  util::TempFile socket_file_{"svc-proto-sock"};
  std::optional<Server> server_;
};

TEST_F(ServiceProtocolSweep, TruncatedLengthPrefixClosesCleanly) {
  {
    util::Socket sock = connect_raw();
    const std::uint8_t bytes[3] = {0x01, 0x0A, 0x00};  // header cut short
    ASSERT_TRUE(sock.send_all(bytes, sizeof bytes));
  }  // disconnect mid-header
  expect_still_alive();
}

TEST_F(ServiceProtocolSweep, MidFrameDisconnectClosesCleanly) {
  {
    util::Socket sock = connect_raw();
    std::vector<std::uint8_t> bytes;
    bytes.push_back(static_cast<std::uint8_t>(FrameTag::kCnfData));
    append_u32le(bytes, 1000);          // declare 1000 payload bytes...
    bytes.resize(bytes.size() + 10);    // ...deliver only 10
    ASSERT_TRUE(sock.send_all(bytes.data(), bytes.size()));
  }  // disconnect mid-payload
  expect_still_alive();
  EXPECT_NE(server_->metrics_json().find("\"malformed_frames\":"),
            std::string::npos);
}

TEST_F(ServiceProtocolSweep, OversizedDeclaredLengthGetsTypedError) {
  util::Socket sock = connect_raw();
  std::vector<std::uint8_t> header;
  header.push_back(static_cast<std::uint8_t>(FrameTag::kTraceData));
  append_u32le(header, 0xFFFFFFFFu);
  ASSERT_TRUE(sock.send_all(header.data(), header.size()));
  expect_error_then_close(sock, ErrorCode::kOversizedFrame);
  expect_still_alive();
}

TEST_F(ServiceProtocolSweep, UnknownTagGetsTypedError) {
  util::Socket sock = connect_raw();
  const std::uint8_t header[5] = {0x7F, 0, 0, 0, 0};
  ASSERT_TRUE(sock.send_all(header, sizeof header));
  expect_error_then_close(sock, ErrorCode::kUnknownTag);
  expect_still_alive();
}

TEST_F(ServiceProtocolSweep, DataChunkBeforeSubmitIsAViolation) {
  util::Socket sock = connect_raw();
  ASSERT_TRUE(write_frame(sock, FrameTag::kCnfData, std::string("p cnf")));
  expect_error_then_close(sock, ErrorCode::kProtocolViolation);
  expect_still_alive();
}

TEST_F(ServiceProtocolSweep, SubmitEndWithoutSubmitIsAViolation) {
  util::Socket sock = connect_raw();
  ASSERT_TRUE(write_frame(sock, FrameTag::kSubmitEnd));
  expect_error_then_close(sock, ErrorCode::kProtocolViolation);
}

TEST_F(ServiceProtocolSweep, MalformedSubmitHeaderGetsTypedError) {
  util::Socket sock = connect_raw();
  ASSERT_TRUE(write_frame(sock, FrameTag::kSubmit, std::string("xyz")));
  expect_error_then_close(sock, ErrorCode::kMalformedFrame);
}

TEST_F(ServiceProtocolSweep, UnknownBackendIdIsABadRequest) {
  util::Socket sock = connect_raw();
  SubmitHeader header;
  header.backend = 0x30;  // far outside service::Backend
  const auto payload = encode_submit_header(header);
  ASSERT_TRUE(write_frame(sock, FrameTag::kSubmit, payload));
  expect_error_then_close(sock, ErrorCode::kBadRequest);
}

TEST_F(ServiceProtocolSweep, StatsDuringUploadIsAViolation) {
  util::Socket sock = connect_raw();
  const auto payload = encode_submit_header(SubmitHeader{});
  ASSERT_TRUE(write_frame(sock, FrameTag::kSubmit, payload));
  ASSERT_TRUE(write_frame(sock, FrameTag::kStats));
  expect_error_then_close(sock, ErrorCode::kProtocolViolation);
}

TEST_F(ServiceProtocolSweep, RawStatsRequestAnswersJson) {
  util::Socket sock = connect_raw();
  ASSERT_TRUE(write_frame(sock, FrameTag::kStats));
  Frame frame;
  ASSERT_EQ(read_frame(sock, frame), ReadStatus::kFrame);
  ASSERT_EQ(frame.tag, FrameTag::kStatsJson);
  const std::string json(frame.payload.begin(), frame.payload.end());
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"backends\""), std::string::npos);
}

TEST_F(ServiceProtocolSweep, AbuseBarrageNeverKillsTheServer) {
  // A little fuzz-ish barrage of bad openings; every one must resolve to a
  // typed error or a clean close, and the server must survive them all.
  const std::vector<std::vector<std::uint8_t>> openings = {
      {0x00},                                  // lone unknown tag byte
      {0x01, 0xFF, 0xFF},                      // truncated length
      {0x7E, 0x00, 0x00, 0x00, 0x00},          // unknown tag, empty payload
      {0x04, 0x04, 0x00, 0x00, 0x00},          // SUBMIT_END claiming payload
      {0x83, 0x00, 0x00, 0x00, 0x00},          // server-only tag from client
  };
  for (const auto& bytes : openings) {
    util::Socket sock = connect_raw();
    ASSERT_TRUE(sock.send_all(bytes.data(), bytes.size()));
    // Whatever comes back, it must terminate: an error frame, a truncated
    // read, or a clean close — never a hang (the idle timeout bounds it).
    Frame frame;
    (void)read_frame(sock, frame);
  }
  expect_still_alive();
}

}  // namespace
}  // namespace satproof::service
