#pragma once

#include <cstdint>

#include "src/circuit/netlist.hpp"

namespace satproof::circuit {

/// A machine word as a little-endian wire vector (word[0] = LSB).
using Word = std::vector<Wire>;

/// Creates `width` fresh primary inputs.
[[nodiscard]] Word input_word(Netlist& n, std::size_t width);

/// The constant `value`, `width` bits wide.
[[nodiscard]] Word constant_word(Netlist& n, std::uint64_t value,
                                 std::size_t width);

/// Sum word plus carry-out of a full adder chain.
struct AdderResult {
  Word sum;
  Wire carry_out;
};

/// Ripple-carry adder: the textbook full-adder chain. Operands must have
/// equal width.
[[nodiscard]] AdderResult ripple_carry_adder(Netlist& n, const Word& a,
                                             const Word& b,
                                             Wire carry_in = kInvalidWire);

/// Carry-select adder: blocks of `block_width` bits computed twice (carry 0
/// and carry 1) with the real carry selecting via muxes. Functionally
/// equal to ripple_carry_adder but structurally very different — the
/// classic equivalence-checking miter pair.
[[nodiscard]] AdderResult carry_select_adder(Netlist& n, const Word& a,
                                             const Word& b,
                                             std::size_t block_width = 4);

/// Kogge-Stone adder: logarithmic-depth parallel-prefix carry network
/// (generate/propagate pairs combined in log2(width) stages). The third
/// structurally distinct adder — prefix networks produce miters with very
/// different proof shapes than the linear carry chains.
[[nodiscard]] AdderResult kogge_stone_adder(Netlist& n, const Word& a,
                                            const Word& b);

/// Array (shift-and-add) multiplier: partial products accumulated with
/// ripple adders. Result has width a.size() + b.size(). XOR-rich — the
/// analog of the paper's longmult family, whose XOR structure forces long
/// resolution proofs.
[[nodiscard]] Word array_multiplier(Netlist& n, const Word& a, const Word& b);

/// Same function, different structure: partial products of the *swapped*
/// operands accumulated with carry-select adders. Miter against
/// array_multiplier for an equivalence-checking instance.
[[nodiscard]] Word multiplier_commuted(Netlist& n, const Word& a,
                                       const Word& b);

/// Left-rotation barrel shifter: logarithmic mux stages, rotate amount is a
/// wire word of width ceil(log2(width)) (extra high bits allowed and used
/// modulo the width only when width is a power of two; callers should keep
/// width a power of two).
[[nodiscard]] Word barrel_rotate_left(Netlist& n, const Word& value,
                                      const Word& amount);

/// value == other, as a single wire.
[[nodiscard]] Wire word_equal(Netlist& n, const Word& a, const Word& b);

/// Two's-complement incrementer (adds 1, drops carry).
[[nodiscard]] Word incrementer(Netlist& n, const Word& a);

}  // namespace satproof::circuit
