#include "src/cert/lrat_emitter.hpp"

#include <charconv>

namespace satproof::cert {

namespace {

constexpr std::size_t kFlushThreshold = 1 << 16;

void append_u64(std::string& buf, std::uint64_t v) {
  char tmp[20];
  const auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  buf.append(tmp, end);
}

void append_i64(std::string& buf, std::int64_t v) {
  char tmp[21];
  const auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  buf.append(tmp, end);
}

}  // namespace

// ---------------------------------------------------------------- text

void TextLratWriter::add(std::uint64_t id, std::span<const Lit> lits,
                         std::span<const std::uint64_t> hints) {
  append_u64(buf_, id);
  for (const Lit lit : lits) {
    buf_.push_back(' ');
    append_i64(buf_, lit.to_dimacs());
  }
  buf_.append(" 0");
  for (const std::uint64_t h : hints) {
    buf_.push_back(' ');
    append_u64(buf_, h);
  }
  buf_.append(" 0\n");
  maybe_flush();
}

void TextLratWriter::del(std::uint64_t at_id,
                         std::span<const std::uint64_t> ids) {
  append_u64(buf_, at_id);
  buf_.append(" d");
  for (const std::uint64_t id : ids) {
    buf_.push_back(' ');
    append_u64(buf_, id);
  }
  buf_.append(" 0\n");
  maybe_flush();
}

void TextLratWriter::finish() {
  if (!buf_.empty()) {
    out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
  out_->flush();
  if (!out_->good()) ok_ = false;
}

void TextLratWriter::maybe_flush() {
  if (buf_.size() < kFlushThreshold) return;
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
  if (!out_->good()) ok_ = false;
}

// -------------------------------------------------------------- binary

void BinaryLratWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>(static_cast<unsigned char>(v) | 0x80u));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void BinaryLratWriter::add(std::uint64_t id, std::span<const Lit> lits,
                           std::span<const std::uint64_t> hints) {
  buf_.push_back('a');
  put_varint(id);
  for (const Lit lit : lits) {
    const std::uint64_t mag = static_cast<std::uint64_t>(lit.var()) + 1;
    put_varint(2 * mag + (lit.negated() ? 1 : 0));
  }
  put_varint(0);
  for (const std::uint64_t h : hints) put_varint(h);
  put_varint(0);
  maybe_flush();
}

void BinaryLratWriter::del(std::uint64_t /*at_id*/,
                           std::span<const std::uint64_t> ids) {
  buf_.push_back('d');
  for (const std::uint64_t id : ids) put_varint(id);
  put_varint(0);
  maybe_flush();
}

void BinaryLratWriter::finish() {
  if (!buf_.empty()) {
    out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
  out_->flush();
  if (!out_->good()) ok_ = false;
}

void BinaryLratWriter::maybe_flush() {
  if (buf_.size() < kFlushThreshold) return;
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
  if (!out_->good()) ok_ = false;
}

// ------------------------------------------------------------- emitter

std::uint64_t LratEmitter::map_id(ClauseId trace_id) const {
  if (trace_id < num_original_) return trace_id + 1;
  const std::uint64_t ord = trace_id - num_original_;
  if (ord < derived_map_.size() && derived_map_[ord] != 0) {
    return derived_map_[ord];
  }
  // The checkers announce every source before its consumer, so an unmapped
  // ID is an internal invariant break, not a bad trace.
  throw checker::CheckFailure(
      "certificate emitter: clause " + std::to_string(trace_id) +
      " referenced before it was announced");
}

void LratEmitter::flush_deletes() {
  if (pending_deletes_.empty()) return;
  writer_->del(last_id_, pending_deletes_);
  deletions_ += pending_deletes_.size();
  pending_deletes_.clear();
}

void LratEmitter::on_derived(ClauseId id, std::span<const Lit> lits,
                             std::span<const std::uint32_t> sources) {
  flush_deletes();
  const std::uint64_t ord = id - num_original_;
  if (ord >= derived_map_.size()) derived_map_.resize(ord + 1, 0);
  const std::uint64_t lrat_id = next_id_++;
  derived_map_[ord] = lrat_id;
  // Reverse source order: under the assignment falsifying the derived
  // clause, the last source is unit on its pivot complement, each earlier
  // source becomes unit in turn, and the first source falsifies.
  hints_.clear();
  hints_.reserve(sources.size());
  for (std::size_t i = sources.size(); i-- > 0;) {
    hints_.push_back(map_id(sources[i]));
  }
  writer_->add(lrat_id, lits, hints_);
  last_id_ = lrat_id;
  ++additions_;
}

void LratEmitter::on_released(ClauseId id) {
  pending_deletes_.push_back(map_id(id));
}

void LratEmitter::on_final(ClauseId final_id,
                           std::span<const ClauseId> antecedents) {
  flush_deletes();
  // The empty-clause chain starts from the final conflicting clause and
  // steps through the trail antecedents; reversed, the last antecedent is
  // a unit clause under the empty assignment, the rest chain units, and
  // the final conflicting clause itself falsifies.
  hints_.clear();
  hints_.reserve(antecedents.size() + 1);
  for (std::size_t i = antecedents.size(); i-- > 0;) {
    hints_.push_back(map_id(antecedents[i]));
  }
  hints_.push_back(map_id(final_id));
  writer_->add(next_id_, {}, hints_);
  last_id_ = next_id_++;
  ++additions_;
  finished_ = true;
  writer_->finish();
}

}  // namespace satproof::cert
