#pragma once

#include "src/checker/common.hpp"
#include "src/checker/use_count.hpp"

namespace satproof::checker {

/// Options for the breadth-first checker.
struct BreadthFirstOptions {
  /// Where the use counts live. The paper's low-memory variant keeps them
  /// in a temporary file (Section 3.3); in-memory is the fast default.
  UseCountMode use_counts = UseCountMode::InMemory;

  /// When non-zero, the counting pass is split into multiple passes over
  /// the trace, each counting only uses of learned clauses whose ordinal
  /// falls in one `count_range`-sized ID range — the paper's "we may also
  /// need to break the first pass into several passes so that we can count
  /// the number of usages of the clauses in one range at a time". Zero
  /// counts everything in a single pass.
  std::uint64_t count_range = 0;

  /// When non-null, clause storage borrows this arena instead of growing a
  /// private one (see DepthFirstOptions::recycle_arena).
  util::ClauseArena* recycle_arena = nullptr;
};

/// Breadth-first proof checking (paper Section 3.3).
///
/// Traverses the learned clauses in the order they were generated (the
/// order they appear in the trace), building every one of them, and deletes
/// a clause from memory as soon as its last use as a resolve source is
/// behind. A first pass over the trace computes each clause's use count;
/// the final conflicting clause and the antecedents of level-0 variables
/// are pinned so they survive until the empty-clause derivation.
///
/// Slower than depth-first (everything is built, and the trace is read
/// twice) but with a bounded clause window: the checker never holds more
/// clauses than the solver did when it produced the trace, so — as the
/// paper argues — if the solver finished in a given memory budget, the
/// checker finishes too.
[[nodiscard]] CheckResult check_breadth_first(
    const Formula& f, trace::TraceReader& reader,
    const BreadthFirstOptions& options = {});

}  // namespace satproof::checker
