file(REMOVE_RECURSE
  "CMakeFiles/buggy_solver.dir/buggy_solver.cpp.o"
  "CMakeFiles/buggy_solver.dir/buggy_solver.cpp.o.d"
  "buggy_solver"
  "buggy_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buggy_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
