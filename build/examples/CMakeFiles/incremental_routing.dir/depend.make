# Empty dependencies file for incremental_routing.
# This may be replaced when dependencies are built.
