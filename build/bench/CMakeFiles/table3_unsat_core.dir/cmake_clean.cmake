file(REMOVE_RECURSE
  "CMakeFiles/table3_unsat_core.dir/table3_unsat_core.cpp.o"
  "CMakeFiles/table3_unsat_core.dir/table3_unsat_core.cpp.o.d"
  "table3_unsat_core"
  "table3_unsat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_unsat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
