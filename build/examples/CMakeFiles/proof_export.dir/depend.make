# Empty dependencies file for proof_export.
# This may be replaced when dependencies are built.
