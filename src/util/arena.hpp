#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/cnf/types.hpp"
#include "src/util/mem_tracker.hpp"

namespace satproof::util {

/// Bump-allocated clause storage shared by every checker backend.
///
/// Replaying a resolution trace builds and discards millions of short
/// clauses. Storing each as its own `std::vector<Lit>` inside a hash map
/// costs a heap allocation, a map node, and pointer-chasing on every
/// lookup — the dominant cost of the checker hot path (cf. Cruz-Filipe et
/// al., "Efficient Certified Resolution Proof Checking"). The arena packs
/// clauses contiguously into large chunks as `[len | lits...]` blocks of
/// `Lit`-sized slots, addressed by a 32-bit `Ref`, so building a clause is
/// a pointer bump plus a memcpy and looking one up is two loads.
///
/// Binary tier: two-literal clauses — the bulk of many resolution traces —
/// additionally drop the length header. They live in chunks flagged as
/// binary, holding headerless 2-slot blocks, which packs 50% more binary
/// clauses per cache line (dawn's unary/binary/long clause split applies
/// the same idea inside the solver). Which layout a Ref uses is a property
/// of its chunk, so view() stays two loads; set_binary_tier(false) keeps
/// every clause in the headered layout. Accounting is deliberately
/// layout-independent: a binary block is charged block_bytes(2) bytes
/// whether or not it physically stores the header, so
/// allocated/recycled/peak statistics are byte-identical with the tier on
/// or off.
///
/// Refs encode `chunk_index << 16 | slot_offset`; a chunk holds at most
/// 2^16 slots, and clauses longer than a chunk get a dedicated exact-size
/// chunk at offset 0. Chunks are never reallocated or freed before the
/// arena dies, so `const Lit*` block pointers stay stable for the arena's
/// lifetime — the parallel checker relies on this to publish clause
/// pointers (tagged_block()) across threads.
///
/// Bounded-memory (breadth-first) replay calls release(): the block goes
/// on a per-length free list and the next put() of that length reuses it,
/// so a steady-state clause window recycles blocks instead of
/// round-tripping through malloc.
class ClauseArena {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNullRef = 0xffffffffu;

  ClauseArena() = default;
  ClauseArena(ClauseArena&&) = default;
  ClauseArena& operator=(ClauseArena&&) = default;
  ClauseArena(const ClauseArena&) = delete;
  ClauseArena& operator=(const ClauseArena&) = delete;

  /// Enables or disables the headerless binary-clause tier (default on).
  /// May be flipped at any time — existing blocks keep the layout of the
  /// chunk they live in — but is intended as a construction-time switch
  /// for layout regression tests.
  void set_binary_tier(bool on) { binary_tier_ = on; }
  [[nodiscard]] bool binary_tier() const { return binary_tier_; }

  /// Copies `lits` into the arena and returns the block's ref. Reuses a
  /// released block of the same length when one exists.
  Ref put(std::span<const Lit> lits);

  /// Returns `ref`'s block to its per-length free list. The block's bytes
  /// stay mapped (refs to it simply must no longer be used) and will back
  /// a future put() of the same length.
  void release(Ref ref);

  /// The literals of `ref`'s clause.
  [[nodiscard]] std::span<const Lit> view(Ref ref) const {
    const Chunk& c = chunks_[ref >> 16];
    const Lit* p = c.data.get() + (ref & 0xffffu);
    if (c.binary) return {p, 2};
    return {p + 1, p[0].code()};
  }

  /// Block pointer with the layout encoded in its low bit (Lit blocks are
  /// 4-byte aligned, so the bit is free): set for a headerless binary
  /// block, clear for a headered one. This is what the parallel checker
  /// publishes through its atomic slot table; view_of() decodes it.
  [[nodiscard]] const Lit* tagged_block(Ref ref) const {
    const Chunk& c = chunks_[ref >> 16];
    const Lit* p = c.data.get() + (ref & 0xffffu);
    if (!c.binary) return p;
    return reinterpret_cast<const Lit*>(reinterpret_cast<std::uintptr_t>(p) |
                                        1u);
  }

  /// The literals of a clause given its (possibly tagged) block pointer,
  /// as published by the parallel checker's slot table.
  [[nodiscard]] static std::span<const Lit> view_of(const Lit* block) {
    const auto bits = reinterpret_cast<std::uintptr_t>(block);
    if (bits & 1u) {
      return {reinterpret_cast<const Lit*>(bits & ~std::uintptr_t{1}), 2};
    }
    return {block + 1, block[0].code()};
  }

  /// Mutable literals of `ref`'s clause, for engines that reorder literals
  /// in place (the DRUP propagator's watch swaps). The length header, when
  /// present, must not be altered.
  [[nodiscard]] std::span<Lit> mutable_view(Ref ref) {
    const Chunk& c = chunks_[ref >> 16];
    Lit* p = c.data.get() + (ref & 0xffffu);
    if (c.binary) return {p, 2};
    return {p + 1, p[0].code()};
  }

  /// Hints the cache to load the start of `ref`'s block.
  void prefetch(Ref ref) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(chunks_[ref >> 16].data.get() + (ref & 0xffffu));
#else
    (void)ref;
#endif
  }

  /// Accounted footprint of a clause of `num_lits` literals: the literal
  /// payload plus the 4-byte length header. This is what the arena
  /// actually stores per clause (binary-tier blocks physically omit the
  /// header but are charged it anyway, keeping the statistics
  /// layout-independent) — compare `clause_footprint_bytes`'s 32-byte
  /// per-clause overhead for heap-allocated vectors.
  [[nodiscard]] static std::size_t block_bytes(std::size_t num_lits) {
    return sizeof(Lit) * (num_lits + 1);
  }

  /// Cumulative bytes handed out by put(), including recycled blocks.
  [[nodiscard]] std::size_t allocated_bytes() const { return allocated_; }

  /// Cumulative bytes served from free lists instead of fresh chunk space.
  [[nodiscard]] std::size_t recycled_bytes() const { return recycled_; }

  /// Bytes in live (not released) blocks right now.
  [[nodiscard]] std::size_t live_bytes() const {
    return tracker_.current_bytes();
  }

  /// High-water mark of live_bytes().
  [[nodiscard]] std::size_t peak_bytes() const {
    return tracker_.peak_bytes();
  }

  /// Number of live (not released) clauses.
  [[nodiscard]] std::size_t live_clauses() const { return live_clauses_; }

  /// Forgets every clause while keeping the chunk memory mapped, so a
  /// long-lived arena (one per satproofd worker) serves its next check
  /// without re-growing through malloc. All refs become invalid. Counters,
  /// free lists, and the live-bytes tracker restart from zero, so the
  /// per-run statistics (allocated / recycled / peak) are identical to a
  /// freshly constructed arena's — they count clause-block bytes, which do
  /// not depend on how chunk memory was obtained.
  void reset();

 private:
  struct Chunk {
    std::unique_ptr<Lit[]> data;
    std::uint32_t capacity = 0;  ///< slots
    std::uint32_t used = 0;      ///< slots bumped so far
    bool binary = false;         ///< headerless 2-slot blocks
  };

  static constexpr std::uint32_t kMaxChunkSlots = 1u << 16;
  static constexpr std::uint32_t kFirstChunkSlots = 1u << 10;
  static constexpr std::size_t kMaxChunks = 1u << 16;

  /// Allocates `slots` contiguous Lit slots in a headered chunk.
  Ref bump(std::uint32_t slots);

  /// Allocates one headerless 2-slot block in a binary chunk.
  Ref bump_binary();

  /// Appends a fresh chunk of at least `slots` capacity (geometric
  /// growth) and returns its index.
  std::size_t grow(std::uint32_t slots);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;         ///< first chunk bump() may still fill
  std::size_t binary_active_ = 0;  ///< same, for bump_binary()
  std::vector<std::vector<Ref>> free_lists_;  ///< indexed by clause length
  MemTracker tracker_;                        ///< live block bytes
  std::size_t allocated_ = 0;
  std::size_t recycled_ = 0;
  std::size_t live_clauses_ = 0;
  std::uint32_t next_chunk_slots_ = kFirstChunkSlots;
  bool binary_tier_ = true;
};

}  // namespace satproof::util
