# Empty dependencies file for test_interpolant.
# This may be replaced when dependencies are built.
