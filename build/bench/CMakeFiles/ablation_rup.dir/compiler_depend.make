# Empty compiler generated dependencies file for ablation_rup.
# This may be replaced when dependencies are built.
