file(REMOVE_RECURSE
  "libsatproof_solver.a"
)
