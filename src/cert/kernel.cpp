#include "src/cert/kernel.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <utility>
#include <vector>

namespace satproof::kern {

namespace {

// Rejection control flow: any check failure throws, verify_lrat() catches.
// State is discarded wholesale afterwards, so no unwinding bookkeeping.
struct Reject {
  std::string msg;
  std::uint64_t line;
};

[[noreturn]] void reject(std::uint64_t line, std::string msg) {
  throw Reject{std::move(msg), line};
}

// Bounds a hostile CNF header (the assignment array is sized from it).
constexpr std::int64_t kMaxVars = std::int64_t{1} << 28;

struct Cnf {
  std::int64_t num_vars = 0;
  std::vector<std::vector<std::int32_t>> clauses;
};

Cnf parse_cnf(std::istream& in) {
  Cnf f;
  std::string tok;
  std::int64_t declared = -1;
  while (in >> tok) {
    if (tok[0] == 'c') {
      std::getline(in, tok);
      continue;
    }
    if (tok == "p") {
      if (!(in >> tok) || tok != "cnf" || !(in >> f.num_vars) ||
          !(in >> declared)) {
        reject(0, "CNF: malformed problem line");
      }
      if (f.num_vars < 0 || f.num_vars > kMaxVars || declared < 0) {
        reject(0, "CNF: variable or clause count out of range");
      }
      break;
    }
    reject(0, "CNF: expected a comment or problem line, got '" + tok + "'");
  }
  if (declared < 0) reject(0, "CNF: missing problem line");
  std::vector<std::int32_t> cur;
  while (in >> tok) {
    if (tok[0] == 'c') {
      std::getline(in, tok);
      continue;
    }
    char* end = nullptr;
    errno = 0;
    const std::int64_t lit = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno != 0) {
      reject(0, "CNF: bad token '" + tok + "'");
    }
    if (lit == 0) {
      f.clauses.push_back(cur);
      cur.clear();
      continue;
    }
    if (lit > f.num_vars || lit < -f.num_vars) {
      reject(0, "CNF: literal " + std::to_string(lit) +
                    " exceeds the declared variable count");
    }
    cur.push_back(static_cast<std::int32_t>(lit));
  }
  if (!cur.empty()) reject(0, "CNF: last clause missing its terminating 0");
  if (static_cast<std::int64_t>(f.clauses.size()) != declared) {
    reject(0, "CNF: header declares " + std::to_string(declared) +
                  " clauses but the file has " +
                  std::to_string(f.clauses.size()));
  }
  return f;
}

// The clause map: IDs in insertion order (strictly increasing, so the
// array is sorted and lookup is a binary search), literals and a liveness
// flag alongside. Originals occupy IDs 1..num_clauses, LRAT convention.
class Kernel {
 public:
  explicit Kernel(Cnf&& f)
      : num_vars_(f.num_vars),
        clauses_(std::move(f.clauses)),
        alive_(clauses_.size(), 1),
        val_(static_cast<std::size_t>(f.num_vars) + 1, 0),
        last_id_(clauses_.size()) {
    ids_.reserve(clauses_.size());
    for (std::size_t i = 0; i < clauses_.size(); ++i) ids_.push_back(i + 1);
  }

  // One addition step; returns true when `lits` is the empty clause (the
  // certificate is complete).
  bool add(std::uint64_t id, std::vector<std::int32_t>&& lits,
           const std::vector<std::uint64_t>& hints, std::uint64_t line) {
    if (id <= last_id_) {
      reject(line, "addition id " + std::to_string(id) +
                       " does not exceed the previous id " +
                       std::to_string(last_id_));
    }
    // Negate the clause. A variable hit in both phases makes the clause a
    // tautology — trivially derivable, accepted without consulting hints.
    bool conflict = false;
    for (const std::int32_t lit : lits) {
      check_range(lit, line);
      const std::int8_t want = lit > 0 ? -1 : 1;
      std::int8_t& v = val_[static_cast<std::size_t>(lit > 0 ? lit : -lit)];
      if (v == 0) {
        v = want;
        trail_.push_back(lit);
      } else if (v != want) {
        conflict = true;
        break;
      }
    }
    for (std::size_t h = 0; !conflict && h < hints.size(); ++h) {
      const std::vector<std::int32_t>& c = find(hints[h], line, "hint");
      std::int32_t unit = 0;
      bool satisfied = false;
      int unassigned = 0;
      for (const std::int32_t lit : c) {
        const std::int8_t v = value(lit);
        if (v > 0) {
          satisfied = true;
          break;
        }
        if (v == 0) {
          unit = lit;
          if (++unassigned > 1) break;
        }
      }
      if (satisfied) {
        reject(line, "hint " + std::to_string(hints[h]) +
                         " is satisfied under the accumulated assignment");
      }
      if (unassigned == 0) {
        conflict = true;  // falsified: the step is justified
        break;
      }
      if (unassigned > 1) {
        reject(line, "hint " + std::to_string(hints[h]) +
                         " is neither unit nor falsified");
      }
      val_[static_cast<std::size_t>(unit > 0 ? unit : -unit)] =
          unit > 0 ? 1 : -1;
      trail_.push_back(unit);
    }
    if (!conflict) {
      reject(line, "hints ended without reaching a conflict");
    }
    for (const std::int32_t lit : trail_) {
      val_[static_cast<std::size_t>(lit > 0 ? lit : -lit)] = 0;
    }
    trail_.clear();
    const bool empty = lits.empty();
    ids_.push_back(id);
    clauses_.push_back(std::move(lits));
    alive_.push_back(1);
    last_id_ = id;
    return empty;
  }

  void del(const std::vector<std::uint64_t>& ids, std::uint64_t line) {
    for (const std::uint64_t id : ids) {
      const std::size_t idx = index_of(id, line, "deletion");
      if (alive_[idx] == 0) {
        reject(line, "deletion of clause " + std::to_string(id) +
                         ", which was already deleted");
      }
      alive_[idx] = 0;
      clauses_[idx].clear();
      clauses_[idx].shrink_to_fit();
    }
  }

 private:
  void check_range(std::int32_t lit, std::uint64_t line) const {
    const std::int64_t mag = lit > 0 ? lit : -static_cast<std::int64_t>(lit);
    if (mag == 0 || mag > num_vars_) {
      reject(line, "literal " + std::to_string(lit) +
                       " is outside the CNF variable range");
    }
  }

  [[nodiscard]] std::int8_t value(std::int32_t lit) const {
    const std::int8_t v = val_[static_cast<std::size_t>(lit > 0 ? lit : -lit)];
    return lit > 0 ? v : static_cast<std::int8_t>(-v);
  }

  std::size_t index_of(std::uint64_t id, std::uint64_t line,
                       const char* what) const {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) {
      reject(line, std::string(what) + " references unknown clause " +
                       std::to_string(id));
    }
    return static_cast<std::size_t>(it - ids_.begin());
  }

  const std::vector<std::int32_t>& find(std::uint64_t id, std::uint64_t line,
                                        const char* what) const {
    const std::size_t idx = index_of(id, line, what);
    if (alive_[idx] == 0) {
      reject(line, std::string(what) + " references deleted clause " +
                       std::to_string(id));
    }
    return clauses_[idx];
  }

  std::int64_t num_vars_;
  std::vector<std::uint64_t> ids_;  // sorted; parallel to clauses_/alive_
  std::vector<std::vector<std::int32_t>> clauses_;
  std::vector<char> alive_;
  std::vector<std::int8_t> val_;  // by var: 0 unassigned, +1 true, -1 false
  std::vector<std::int32_t> trail_;
  std::uint64_t last_id_;
};

// ---- text certificate driver ----

struct LineScan {
  const char* p;
  std::uint64_t line;

  // Next integer on the line; false at end of line, Reject on junk.
  bool next(std::int64_t& out) {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
    if (*p == '\0') return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtoll(p, &end, 10);
    if (end == p || errno != 0) {
      reject(line, std::string("bad token '") + p + "'");
    }
    p = end;
    return true;
  }

  std::int64_t expect(const char* what) {
    std::int64_t v = 0;
    if (!next(v)) {
      reject(line, std::string("truncated record: missing ") + what);
    }
    return v;
  }
};

void run_text(std::istream& cert, Kernel& k, VerifyResult& r) {
  std::string buf;
  std::uint64_t lineno = 0;
  std::vector<std::int32_t> lits;
  std::vector<std::uint64_t> ids;
  while (!r.verified && std::getline(cert, buf)) {
    ++lineno;
    LineScan s{buf.c_str(), lineno};
    while (*s.p == ' ' || *s.p == '\t' || *s.p == '\r') ++s.p;
    if (*s.p == '\0' || *s.p == 'c') continue;
    std::int64_t id = 0;
    if (!s.next(id) || id <= 0) reject(lineno, "record must begin with a positive clause id");
    while (*s.p == ' ' || *s.p == '\t') ++s.p;
    if (*s.p == 'd') {
      ++s.p;
      ids.clear();
      for (std::int64_t v = s.expect("deletion terminator"); v != 0;
           v = s.expect("deletion terminator")) {
        if (v < 0) reject(lineno, "negative clause id in deletion record");
        ids.push_back(static_cast<std::uint64_t>(v));
      }
      std::int64_t extra = 0;
      if (s.next(extra)) reject(lineno, "trailing tokens after deletion record");
      k.del(ids, lineno);
      r.deletions += ids.size();
      continue;
    }
    lits.clear();
    for (std::int64_t v = s.expect("literal terminator"); v != 0;
         v = s.expect("literal terminator")) {
      if (v > INT32_MAX || v < INT32_MIN) {
        reject(lineno, "literal " + std::to_string(v) + " out of range");
      }
      lits.push_back(static_cast<std::int32_t>(v));
    }
    ids.clear();  // hint list
    for (std::int64_t v = s.expect("hint terminator"); v != 0;
         v = s.expect("hint terminator")) {
      if (v < 0) {
        reject(lineno, "negative (RAT) hints are not supported");
      }
      ids.push_back(static_cast<std::uint64_t>(v));
    }
    std::int64_t extra = 0;
    if (s.next(extra)) reject(lineno, "trailing tokens after addition record");
    r.verified =
        k.add(static_cast<std::uint64_t>(id), std::move(lits), ids, lineno);
    lits = {};
    ++r.additions;
  }
  r.line = lineno;
}

// ---- binary (GRIT-style) certificate driver ----

std::uint64_t get_varint(std::istream& in, std::uint64_t rec) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = in.get();
    if (c < 0) reject(rec, "truncated record: unterminated varint");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
  }
  reject(rec, "varint overflows 64 bits");
}

void run_binary(std::istream& cert, Kernel& k, VerifyResult& r) {
  std::uint64_t rec = 0;
  std::vector<std::int32_t> lits;
  std::vector<std::uint64_t> ids;
  int tag = 0;
  while (!r.verified && (tag = cert.get()) >= 0) {
    ++rec;
    if (tag == 'd') {
      ids.clear();
      for (std::uint64_t v = get_varint(cert, rec); v != 0;
           v = get_varint(cert, rec)) {
        ids.push_back(v);
      }
      k.del(ids, rec);
      r.deletions += ids.size();
      continue;
    }
    if (tag != 'a') {
      reject(rec, "unknown record tag byte " + std::to_string(tag));
    }
    const std::uint64_t id = get_varint(cert, rec);
    lits.clear();
    for (std::uint64_t v = get_varint(cert, rec); v != 0;
         v = get_varint(cert, rec)) {
      const std::uint64_t mag = v >> 1;
      if (mag == 0 || mag > INT32_MAX) {
        reject(rec, "encoded literal " + std::to_string(v) + " out of range");
      }
      const auto m = static_cast<std::int32_t>(mag);
      lits.push_back((v & 1) != 0 ? -m : m);
    }
    ids.clear();  // hint list
    for (std::uint64_t v = get_varint(cert, rec); v != 0;
         v = get_varint(cert, rec)) {
      ids.push_back(v);
    }
    r.verified = k.add(id, std::move(lits), ids, rec);
    lits = {};
    ++r.additions;
  }
  r.line = rec;
}

}  // namespace

VerifyResult verify_lrat(std::istream& cnf, std::istream& cert) {
  VerifyResult r;
  try {
    Cnf f = parse_cnf(cnf);
    Kernel k(std::move(f));
    const int first = cert.peek();
    if (first < 0) reject(0, "certificate is empty");
    if (first == 'a' || first == 'd') {
      run_binary(cert, k, r);
    } else {
      run_text(cert, k, r);
    }
    if (!r.verified) {
      reject(r.line, "certificate ended without deriving the empty clause");
    }
  } catch (const Reject& rej) {
    r.verified = false;
    r.error = rej.msg;
    r.line = rej.line;
  }
  return r;
}

}  // namespace satproof::kern
