// End-to-end integration over the Small suite: solver -> trace file on
// disk (ASCII and binary) -> both checkers, plus cross-format agreement
// and the full unsat-core round trip. This is the pipeline the paper's
// experimental section runs, at test scale.

#include <gtest/gtest.h>

#include <fstream>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/core/unsat_core.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/trace/memory.hpp"
#include "src/util/temp_file.hpp"

namespace satproof {
namespace {

class SuiteIntegration
    : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const encode::NamedInstance& instance() {
    static const auto suite = encode::unsat_suite(encode::SuiteScale::Small);
    return suite[GetParam() % suite.size()];
  }

  static std::size_t suite_size() {
    static const auto suite = encode::unsat_suite(encode::SuiteScale::Small);
    return suite.size();
  }
};

TEST_P(SuiteIntegration, FileTraceRoundTripBothFormatsBothCheckers) {
  const auto& inst = instance();
  const Formula& f = inst.formula;

  util::TempFile ascii_file("trace-ascii");
  util::TempFile binary_file("trace-bin");

  // Solve once, writing both formats via a fan-out writer.
  struct Tee final : trace::TraceWriter {
    trace::TraceWriter* a;
    trace::TraceWriter* b;
    void begin(Var v, ClauseId o) override {
      a->begin(v, o);
      b->begin(v, o);
    }
    void derivation(ClauseId id, std::span<const ClauseId> s) override {
      a->derivation(id, s);
      b->derivation(id, s);
    }
    void final_conflict(ClauseId id) override {
      a->final_conflict(id);
      b->final_conflict(id);
    }
    void level0(Var v, bool val, ClauseId ante) override {
      a->level0(v, val, ante);
      b->level0(v, val, ante);
    }
    void assumption(Var v, bool val) override {
      a->assumption(v, val);
      b->assumption(v, val);
    }
    void end() override {
      a->end();
      b->end();
    }
  };

  {
    std::ofstream ascii_out(ascii_file.path());
    std::ofstream binary_out(binary_file.path(), std::ios::binary);
    trace::AsciiTraceWriter wa(ascii_out);
    trace::BinaryTraceWriter wb(binary_out);
    Tee tee;
    tee.a = &wa;
    tee.b = &wb;

    solver::Solver s;
    s.add_formula(f);
    s.set_trace_writer(&tee);
    ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable) << inst.name;
  }

  // Binary trace must be substantially smaller (paper Section 4 predicts
  // 2-3x from a binary encoding; tiny traces with short ASCII ids get less,
  // so only a 1.4x floor is asserted here — bench/ablation_trace_format
  // reports the real ratios).
  const auto ascii_size = std::filesystem::file_size(ascii_file.path());
  const auto binary_size = std::filesystem::file_size(binary_file.path());
  if (ascii_size > 4096) {
    EXPECT_LT(binary_size * 14, ascii_size * 10) << inst.name;
  }

  checker::CheckResult results[4];
  {
    std::ifstream in(ascii_file.path());
    trace::AsciiTraceReader r(in);
    results[0] = checker::check_depth_first(f, r);
  }
  {
    std::ifstream in(ascii_file.path());
    trace::AsciiTraceReader r(in);
    results[1] = checker::check_breadth_first(f, r);
  }
  {
    std::ifstream in(binary_file.path(), std::ios::binary);
    trace::BinaryTraceReader r(in);
    results[2] = checker::check_depth_first(f, r);
  }
  {
    std::ifstream in(binary_file.path(), std::ios::binary);
    trace::BinaryTraceReader r(in);
    results[3] = checker::check_breadth_first(f, r);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(results[i].ok) << inst.name << " variant " << i << ": "
                               << results[i].error;
  }
  // Format must not change what is checked.
  EXPECT_EQ(results[0].stats.total_derivations,
            results[2].stats.total_derivations);
  EXPECT_EQ(results[0].stats.clauses_built, results[2].stats.clauses_built);
  EXPECT_EQ(results[0].stats.resolutions, results[2].stats.resolutions);
  EXPECT_EQ(results[0].core, results[2].core);
  EXPECT_EQ(results[1].stats.resolutions, results[3].stats.resolutions);
}

TEST_P(SuiteIntegration, CoreExtractionRoundTrip) {
  const auto& inst = instance();
  const core::CoreExtraction ext = core::extract_core(inst.formula);
  ASSERT_TRUE(ext.ok) << inst.name << ": " << ext.error;

  // The core re-solves UNSAT and its own check passes.
  const core::CoreExtraction again = core::extract_core(ext.core);
  ASSERT_TRUE(again.ok) << inst.name << ": " << again.error;
  EXPECT_LE(again.core_ids.size(), ext.core_ids.size()) << inst.name;
}

INSTANTIATE_TEST_SUITE_P(AllSmallInstances, SuiteIntegration,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Integration, DepthFirstCoreMatchesAcrossCheckerRuns) {
  // Determinism: same formula, same seed, same trace, same core.
  const Formula f = encode::unsat_suite(encode::SuiteScale::Small)[1].formula;
  const core::CoreExtraction a = core::extract_core(f);
  const core::CoreExtraction b = core::extract_core(f);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.core_ids, b.core_ids);
}

}  // namespace
}  // namespace satproof
