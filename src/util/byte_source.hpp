#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace satproof::util {

/// Positioned byte supplier for the binary trace reader.
///
/// The reader's hot loop decodes millions of varints; going through
/// `std::istream::get()` for every byte costs a virtual sentry check and a
/// buffer-pointer reload per call. A ByteSource instead hands out
/// *windows* — contiguous `[begin, end)` byte ranges — that the decoder
/// walks with plain pointer bumps, so for an mmap'd or in-memory trace the
/// entire file is one window and decoding touches no abstraction at all.
///
/// Implementations:
///  - MemoryByteSource  — whole trace in a vector; one window.
///  - MmapByteSource    — trace file mapped read-only; one window. Falls
///                        back to reading the file into memory when mmap
///                        is unavailable.
///  - StreamByteSource  — wraps any std::istream (pipes, stringstreams)
///                        behind an internal buffer; windows are buffer
///                        refills.
class ByteSource {
 public:
  struct Window {
    const std::uint8_t* begin = nullptr;
    const std::uint8_t* end = nullptr;
    [[nodiscard]] std::size_t size() const {
      return static_cast<std::size_t>(end - begin);
    }
  };

  virtual ~ByteSource() = default;

  /// Returns a window of bytes starting at absolute position `pos`
  /// (0 = first byte of the source). An empty window (begin == end) means
  /// end of data. Requesting a position the implementation cannot reach
  /// (e.g. seeking backwards on an unseekable stream) throws
  /// std::runtime_error. The returned pointers stay valid until the next
  /// window() call on the same source.
  virtual Window window(std::uint64_t pos) = 0;

  /// Advises that bytes [pos, pos + len) will not be needed again soon.
  /// A memory-mapped source drops the backing pages from RSS
  /// (POSIX_MADV_DONTNEED); re-reading them later just faults them back
  /// in. Purely advisory — the default is a no-op and pointers from a
  /// *current* window stay valid regardless.
  virtual void release(std::uint64_t pos, std::uint64_t len) {
    (void)pos;
    (void)len;
  }

  /// Maps (or reads) `path` and returns a source over its contents.
  /// Prefers mmap; falls back to a MemoryByteSource on platforms without
  /// it. Throws std::runtime_error if the file cannot be opened.
  static std::unique_ptr<ByteSource> map_file(const std::string& path);
};

/// Byte source over an owned in-memory buffer.
class MemoryByteSource final : public ByteSource {
 public:
  explicit MemoryByteSource(std::vector<std::uint8_t> data)
      : data_(std::move(data)) {}

  Window window(std::uint64_t pos) override;

 private:
  std::vector<std::uint8_t> data_;
};

/// Byte source over a read-only memory-mapped file. Construct via
/// ByteSource::map_file().
class MmapByteSource final : public ByteSource {
 public:
  /// Maps `path`; throws std::runtime_error on open/map failure.
  explicit MmapByteSource(const std::string& path);
  ~MmapByteSource() override;

  MmapByteSource(const MmapByteSource&) = delete;
  MmapByteSource& operator=(const MmapByteSource&) = delete;

  Window window(std::uint64_t pos) override;
  void release(std::uint64_t pos, std::uint64_t len) override;

 private:
  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Byte source over a std::istream, buffering reads. Positions are
/// relative to the stream position at construction, so a reader layered
/// on a stream that already consumed a prefix keeps working. Backward
/// repositioning (rewind) seeks the underlying stream and therefore
/// requires it to be seekable; pipes support only forward reads.
class StreamByteSource final : public ByteSource {
 public:
  static constexpr std::size_t kDefaultBufferBytes = 256 * 1024;

  /// Does not take ownership of `is`; the stream must outlive the source.
  /// `buffer_bytes` is exposed for tests that exercise window-boundary
  /// handling with tiny buffers.
  explicit StreamByteSource(std::istream& is,
                            std::size_t buffer_bytes = kDefaultBufferBytes);

  Window window(std::uint64_t pos) override;

 private:
  std::istream& is_;
  std::vector<std::uint8_t> buf_;
  std::uint64_t origin_ = 0;     ///< stream offset of source position 0
  std::uint64_t buf_pos_ = 0;    ///< source position of buf_[0]
  std::size_t buf_len_ = 0;      ///< valid bytes in buf_
  std::uint64_t next_read_ = 0;  ///< source position the stream cursor is at
};

}  // namespace satproof::util
