#include "src/encode/pigeonhole.hpp"

#include <vector>

namespace satproof::encode {

Formula pigeonhole(unsigned holes) {
  const unsigned pigeons = holes + 1;
  Formula f(pigeons * holes);
  const auto var = [holes](unsigned pigeon, unsigned hole) {
    return static_cast<Var>(pigeon * holes + hole);
  };

  // Every pigeon sits somewhere.
  std::vector<Lit> clause;
  for (unsigned i = 0; i < pigeons; ++i) {
    clause.clear();
    for (unsigned j = 0; j < holes; ++j) clause.push_back(Lit::pos(var(i, j)));
    f.add_clause(clause);
  }
  // No hole hosts two pigeons.
  for (unsigned j = 0; j < holes; ++j) {
    for (unsigned i1 = 0; i1 < pigeons; ++i1) {
      for (unsigned i2 = i1 + 1; i2 < pigeons; ++i2) {
        f.add_clause({Lit::neg(var(i1, j)), Lit::neg(var(i2, j))});
      }
    }
  }
  return f;
}

}  // namespace satproof::encode
