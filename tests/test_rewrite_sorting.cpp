// Tests for the structural rewriter and the sorting networks: exhaustive
// functional equivalence, 0-1-principle sorting checks, and
// miter-to-UNSAT flows with validated proofs.

#include <gtest/gtest.h>

#include "src/checker/depth_first.hpp"
#include "src/circuit/miter.hpp"
#include "src/circuit/rewrite.hpp"
#include "src/circuit/sorting.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/circuit/words.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/rng.hpp"

namespace satproof::circuit {
namespace {

std::vector<bool> bits_of(unsigned value, std::size_t width) {
  std::vector<bool> out(width);
  for (std::size_t i = 0; i < width; ++i) out[i] = ((value >> i) & 1) != 0;
  return out;
}

/// A small circuit exercising every gate kind.
struct EveryGate {
  Netlist n;
  std::vector<Wire> outputs;
};

EveryGate every_gate_circuit() {
  EveryGate eg;
  Netlist& n = eg.n;
  const Wire a = n.add_input();
  const Wire b = n.add_input();
  const Wire c = n.add_input();
  eg.outputs.push_back(n.make_and(a, b));
  eg.outputs.push_back(n.make_or(b, c));
  eg.outputs.push_back(n.make_xor(a, c));
  eg.outputs.push_back(n.make_mux(a, b, c));
  eg.outputs.push_back(n.make_not(eg.outputs[0]));
  eg.outputs.push_back(n.make_xor(eg.outputs[1], eg.outputs[3]));
  eg.outputs.push_back(n.constant(true));
  return eg;
}

TEST(Rewrite, PreservesFunctionExhaustively) {
  const EveryGate eg = every_gate_circuit();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
    RewriteOptions opts;
    opts.seed = seed;
    opts.rewrite_freq = 1.0;  // rewrite everything
    opts.double_negation_freq = 0.5;
    const RewriteResult rw = rewrite(eg.n, opts);
    ASSERT_EQ(rw.netlist.num_inputs(), eg.n.num_inputs());
    for (unsigned v = 0; v < 8; ++v) {
      const auto in = bits_of(v, 3);
      const auto sim_old = eg.n.simulate(in);
      const auto sim_new = rw.netlist.simulate(in);
      for (const Wire w : eg.outputs) {
        EXPECT_EQ(sim_old[w], sim_new[rw.wire_map[w]])
            << "seed " << seed << " input " << v << " wire " << w;
      }
    }
  }
}

TEST(Rewrite, ActuallyChangesStructure) {
  const EveryGate eg = every_gate_circuit();
  RewriteOptions opts;
  opts.rewrite_freq = 1.0;
  const RewriteResult rw = rewrite(eg.n, opts);
  EXPECT_GT(rw.netlist.num_wires(), eg.n.num_wires());
}

TEST(Rewrite, MiterIsUnsatWithCheckedProof) {
  // A 6-bit adder rewritten: the miter must be UNSAT, and the proof must
  // validate — a full synthesized-vs-golden equivalence flow.
  Netlist n;
  const Word a = input_word(n, 6);
  const Word b = input_word(n, 6);
  const AdderResult sum = ripple_carry_adder(n, a, b);
  std::vector<Wire> outputs = sum.sum;
  outputs.push_back(sum.carry_out);

  RewriteOptions opts;
  opts.seed = 7;
  opts.rewrite_freq = 0.8;
  const RewrittenMiter rm = rewrite_miter(n, outputs, opts);
  const Formula f = miter_to_cnf(rm.netlist, rm.miter_out);

  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  const checker::CheckResult check = checker::check_depth_first(f, r);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Rewrite, BrokenRewriteIsDetectedByMiter) {
  // Sanity for the flow itself: mitering against a DIFFERENT function is
  // SAT (the instrument can detect inequivalence, not just confirm
  // equivalence).
  Netlist n;
  const Wire a = n.add_input();
  const Wire b = n.add_input();
  const Wire x = n.make_xor(a, b);
  Netlist m;
  const Wire ma = m.add_input();
  const Wire mb = m.add_input();
  const Wire y = m.make_or(ma, mb);  // not XOR

  Netlist combined;
  const Wire ia = combined.add_input();
  const Wire ib = combined.add_input();
  std::vector<Wire> map_in_a(n.num_wires(), kInvalidWire);
  map_in_a[a] = ia;
  map_in_a[b] = ib;
  std::vector<Wire> map_in_b(m.num_wires(), kInvalidWire);
  map_in_b[ma] = ia;
  map_in_b[mb] = ib;
  const auto m1 = copy_into(combined, n, map_in_a);
  const auto m2 = copy_into(combined, m, map_in_b);
  const Wire miter = combined.make_xor(m1[x], m2[y]);
  const Wire asserted[] = {miter};
  const TseitinResult ts = tseitin(combined, asserted);
  solver::Solver s;
  s.add_formula(ts.formula);
  EXPECT_EQ(s.solve(), solver::SolveResult::Satisfiable);
}

// ---------------------------------------------------------------- sorting

unsigned popcount_bits(unsigned v) {
  unsigned c = 0;
  while (v != 0) {
    c += v & 1;
    v >>= 1;
  }
  return c;
}

/// A sorted-descending bit vector with k ones is 1^k 0^(n-k).
void expect_sorted(const Netlist& n, const Word& out, unsigned input_bits,
                   std::size_t width) {
  const auto sim = n.simulate(bits_of(input_bits, width));
  const unsigned ones = popcount_bits(input_bits);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_EQ(sim[out[i]], i < ones)
        << "input " << input_bits << " position " << i;
  }
}

TEST(Sorting, TranspositionSortsAllVectors) {
  for (const std::size_t width : {1u, 2u, 3u, 5u, 7u}) {
    Netlist n;
    const Word in = input_word(n, width);
    const Word out = transposition_sort(n, in);
    for (unsigned v = 0; v < (1u << width); ++v) {
      expect_sorted(n, out, v, width);
    }
  }
}

TEST(Sorting, BatcherSortsAllVectors) {
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    Netlist n;
    const Word in = input_word(n, width);
    const Word out = odd_even_mergesort(n, in);
    for (unsigned v = 0; v < (1u << width); ++v) {
      expect_sorted(n, out, v, width);
    }
  }
}

TEST(Sorting, BatcherRejectsNonPowerOfTwo) {
  Netlist n;
  const Word in = input_word(n, 6);
  EXPECT_THROW((void)odd_even_mergesort(n, in), std::invalid_argument);
}

TEST(Sorting, BatcherUsesFewerComparatorsThanTransposition) {
  Netlist n1, n2;
  const Word in1 = input_word(n1, 16);
  const Word in2 = input_word(n2, 16);
  (void)odd_even_mergesort(n1, in1);
  (void)transposition_sort(n2, in2);
  EXPECT_LT(n1.num_wires(), n2.num_wires());
}

TEST(Sorting, NetworkMiterUnsatWithCheckedProof) {
  constexpr std::size_t kWidth = 8;
  Netlist n;
  const Word in = input_word(n, kWidth);
  const Word batcher = odd_even_mergesort(n, in);
  const Word bubble = transposition_sort(n, in);
  const Wire m = build_miter(n, batcher, bubble);
  const Formula f = miter_to_cnf(n, m);

  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  EXPECT_TRUE(checker::check_depth_first(f, r).ok);
}

}  // namespace
}  // namespace satproof::circuit
