#include "src/obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "src/util/json.hpp"

namespace satproof::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Process-wide monotonic epoch so timestamps from different threads and
/// different sessions share one origin.
Clock::time_point process_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Forces epoch initialization before main() on most toolchains; harmless
// (and self-correcting via the static above) when it isn't.
const Clock::time_point g_epoch_init = process_epoch();

std::atomic<bool> g_enabled{false};
/// Bumped on every session install; stale thread buffers from a previous
/// session detect the mismatch and discard instead of leaking old events
/// into the new sink.
std::atomic<std::uint64_t> g_generation{0};

std::mutex g_sink_mu;
std::shared_ptr<TraceSink> g_sink;  // guarded by g_sink_mu

std::shared_ptr<TraceSink> current_sink() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  return g_sink;
}

std::uint32_t next_tid() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::size_t kFlushThreshold = 256;

/// Per-thread event buffer. Flushed when full, on explicit flush, and at
/// thread exit (the destructor), so short-lived pool threads still deliver
/// their spans.
struct ThreadBuffer {
  std::uint32_t tid = next_tid();
  std::uint64_t generation = 0;
  std::vector<TraceEvent> events;

  ~ThreadBuffer() { flush(); }

  void push(const TraceEvent& ev) {
    const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
    if (gen != generation) {
      events.clear();
      generation = gen;
    }
    events.push_back(ev);
    if (events.size() >= kFlushThreshold) flush();
  }

  void flush() {
    if (events.empty()) return;
    if (generation == g_generation.load(std::memory_order_acquire)) {
      if (std::shared_ptr<TraceSink> sink = current_sink()) {
        sink->append(events.data(), events.size());
      }
    }
    events.clear();
  }
};

thread_local ThreadBuffer t_buffer;
thread_local SpanTreeCollector* t_collector = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// TraceSink

void TraceSink::append(const TraceEvent* events, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.insert(events_.end(), events, events + n);
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& ev : events_) {
    w.begin_object();
    w.key("name");
    w.value(ev.name);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(ev.start_us);
    w.key("dur");
    w.value(ev.dur_us);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(ev.tid));
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.take();
}

bool TraceSink::write_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return false;
  out << to_chrome_json() << "\n";
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// SpanTreeCollector

void SpanTreeCollector::on_enter(const char* name, std::uint64_t start_us) {
  Node node;
  node.name = name;
  node.start_us = start_us;
  node.depth = static_cast<int>(open_.size());
  open_.push_back(nodes_.size());
  nodes_.push_back(node);
}

void SpanTreeCollector::on_exit(std::uint64_t dur_us) {
  if (open_.empty()) return;  // unbalanced exit: tolerate, don't crash
  nodes_[open_.back()].dur_us = dur_us;
  open_.pop_back();
}

void SpanTreeCollector::add_leaf(const char* name, std::uint64_t start_us,
                                 std::uint64_t dur_us) {
  Node node;
  node.name = name;
  node.start_us = start_us;
  node.dur_us = dur_us;
  node.depth = static_cast<int>(open_.size());
  nodes_.push_back(node);
}

std::string SpanTreeCollector::render() const {
  std::string out;
  for (const Node& node : nodes_) {
    out.append(static_cast<std::size_t>(2 * node.depth), ' ');
    out += node.name;
    out += ' ';
    const double ms = static_cast<double>(node.dur_us) / 1e3;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
    out += buf;
    out += " ms\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Free functions

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            process_epoch())
          .count());
}

bool tracing_active() {
  return g_enabled.load(std::memory_order_relaxed) || t_collector != nullptr;
}

void set_thread_collector(SpanTreeCollector* collector) {
  t_collector = collector;
}

void emit(const char* name, std::uint64_t start_us, std::uint64_t dur_us) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    TraceEvent ev;
    ev.name = name;
    ev.start_us = start_us;
    ev.dur_us = dur_us;
    ev.tid = t_buffer.tid;
    t_buffer.push(ev);
  }
  if (t_collector != nullptr) {
    t_collector->add_leaf(name, start_us, dur_us);
  }
}

void flush_this_thread() { t_buffer.flush(); }

// ---------------------------------------------------------------------------
// Span

Span::Span(const char* name) {
  const bool sink_on = g_enabled.load(std::memory_order_relaxed);
  SpanTreeCollector* collector = t_collector;
  if (!sink_on && collector == nullptr) return;  // disabled fast path
  active_ = true;
  name_ = name;
  start_us_ = now_us();
  if (collector != nullptr) collector->on_enter(name, start_us_);
}

Span::~Span() { finish(); }

void Span::finish() {
  if (!active_) return;
  active_ = false;
  const std::uint64_t dur = now_us() - start_us_;
  if (g_enabled.load(std::memory_order_relaxed)) {
    TraceEvent ev;
    ev.name = name_;
    ev.start_us = start_us_;
    ev.dur_us = dur;
    ev.tid = t_buffer.tid;
    t_buffer.push(ev);
  }
  if (t_collector != nullptr) t_collector->on_exit(dur);
}

// ---------------------------------------------------------------------------
// TraceSession

TraceSession::TraceSession() : sink_(std::make_shared<TraceSink>()) {
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    g_sink = sink_;
  }
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  g_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() {
  flush_this_thread();
  g_enabled.store(false, std::memory_order_release);
  // Bump the generation so threads still holding buffered events for this
  // session discard them instead of delivering to a future sink.
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink == sink_) g_sink.reset();
}

}  // namespace satproof::obs
