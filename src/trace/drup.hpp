#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "src/cnf/types.hpp"

namespace satproof::trace {

/// DRUP proof writer — the modern descendant of the paper's trace format.
///
/// Where the paper's trace records *how* each clause was derived (its
/// resolve sources), a DRUP proof records only *what* was derived: one
/// line of literals per learned clause (checkable by reverse unit
/// propagation), `d`-prefixed lines for deletions, and a final empty
/// clause. The trade is size for checking effort: no antecedent lists to
/// store, but the checker must re-derive every clause semantically
/// (bench/ablation_drup quantifies both sides).
///
/// Standard DIMACS-style text format, compatible with external DRUP
/// tools:
///
///     1 -3 4 0            learned clause
///     d 1 -3 4 0          deletion
///     0                   the derived empty clause (end of proof)
class DrupWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit DrupWriter(std::ostream& out) : out_(&out) {}

  /// Records a learned clause.
  void add_clause(std::span<const Lit> lits);

  /// Records the deletion of a clause.
  void delete_clause(std::span<const Lit> lits);

  /// Records the final (empty) clause and flushes.
  void empty_clause();

 private:
  void write_lits(std::span<const Lit> lits);

  std::ostream* out_;
  std::string buf_;
};

}  // namespace satproof::trace
