#include "src/checker/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/util/thread_pool.hpp"

namespace satproof::checker {

namespace {

class ParallelChecker {
 public:
  ParallelChecker(const Formula& f, trace::TraceReader& reader, unsigned jobs)
      : formula_(&f),
        reader_(&reader),
        level0_(reader.num_vars()),
        derivations_(reader.num_original()) {
    jobs_ = jobs != 0 ? jobs : std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }

  CheckResult run(const ParallelOptions& options) {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      final_id_ =
          load_full_trace(*reader_, derivations_, level0_, mem_, stats_);
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      // Slot table over the dense ID space [0, max derived ID]. C++20
      // value-initializes the atomics to nullptr. Each slot holds the
      // tagged arena block pointer of the published clause (low bit set
      // for headerless binary-tier blocks; see ClauseArena::view_of).
      {
        obs::Span span("index");
        slots_ = std::vector<std::atomic<const Lit*>>(
            std::max<ClauseId>(num_original(),
                               derivations_.num_records() != 0
                                   ? derivations_.max_id() + 1
                                   : 0));
      }
      const ClauseFetcher fetch = [this](ClauseId id) {
        return ensure_built(id);
      };
      SortedClause remaining;
      {
        obs::Span span("replay");
        remaining = derive_final_clause(*final_id_, fetch, level0_, stats_);
      }
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    // Peak = trace structure (only grows) + the sum of the shard arenas'
    // high-water marks. The same clauses are built regardless of the job
    // count, so the sum — and every arena counter — is deterministic.
    std::size_t arena_peak = 0;
    for (const util::ClauseArena& shard : arenas_) {
      arena_peak += shard.peak_bytes();
      stats_.arena_allocated_bytes += shard.allocated_bytes();
      stats_.arena_recycled_bytes += shard.recycled_bytes();
    }
    stats_.arena_peak_bytes = arena_peak;
    stats_.peak_mem_bytes = mem_.peak_bytes() + arena_peak;
    stats_.core_original_clauses = originals_built_;
    result.stats = stats_;
    obs::Span core_span("core");
    if (result.ok && options.collect_core) {
      // Published original IDs, ascending — the same set the depth-first
      // checker memoizes, so the core is byte-identical to its sorted list.
      result.core.reserve(originals_built_);
      for (ClauseId id = 0; id < num_original(); ++id) {
        if (published(id) != nullptr) result.core.push_back(id);
      }
    }
    return result;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  [[nodiscard]] const Lit* published(ClauseId id) const {
    if (id >= slots_.size()) return nullptr;
    return slots_[id].load(std::memory_order_acquire);
  }

  /// Fetcher for derive_final_clause: returns the published clause,
  /// building its reachable subgraph in parallel wavefronts on a miss.
  /// Builds exactly the clause closures the depth-first checker builds, so
  /// every derived artifact (core, stats) matches it byte for byte.
  ClauseView ensure_built(ClauseId id) {
    if (const Lit* block = published(id)) {
      return util::ClauseArena::view_of(block);
    }
    build_closure(id);
    return util::ClauseArena::view_of(published(id));  // published or threw
  }

  /// Builds every not-yet-published clause reachable from `root` through
  /// derivation sources: topologically levels the subgraph into wavefronts
  /// (level = 1 + max source level; already-published clauses are level
  /// "done") and replays each wavefront across the worker pool.
  void build_closure(ClauseId root) {
    std::vector<ClauseId> todo{root};
    std::vector<ClauseId> collected;
    std::unordered_set<ClauseId> seen{root};
    while (!todo.empty()) {
      const ClauseId id = todo.back();
      todo.pop_back();
      if (published(id) != nullptr) continue;
      collected.push_back(id);
      if (id < num_original()) continue;
      for (const ClauseId s : derivations_.sources_of(id)) {
        if (published(s) == nullptr && seen.insert(s).second) {
          todo.push_back(s);
        }
      }
    }
    // Sources strictly precede their derivation (validated at load), so
    // ascending ID order is a topological order and each clause's sources
    // are leveled before it.
    std::sort(collected.begin(), collected.end());
    std::unordered_map<ClauseId, std::uint32_t> level;
    level.reserve(collected.size());
    std::vector<std::vector<ClauseId>> waves;
    for (const ClauseId id : collected) {
      std::uint32_t lv = 0;
      if (id >= num_original()) {
        for (const ClauseId s : derivations_.sources_of(id)) {
          const auto it = level.find(s);
          if (it != level.end()) lv = std::max(lv, it->second + 1);
          // Not in the map: the source is already published and imposes no
          // ordering constraint within this closure.
        }
      }
      level.emplace(id, lv);
      if (lv >= waves.size()) waves.resize(lv + 1);
      waves[lv].push_back(id);
    }
    for (const std::vector<ClauseId>& wave : waves) run_wave(wave);
  }

  /// One worker's slice of a wavefront. The worker writes clauses into its
  /// per-chunk-index arena shard; blocks are published (release) before the
  /// barrier, and the shard outlives the wave so the pointers stay valid.
  /// Stats are merged into the shared trackers only on the main thread
  /// afterwards.
  struct Chunk {
    std::span<const ClauseId> ids;
    util::ClauseArena* shard = nullptr;
    std::uint64_t resolutions = 0;
    std::uint64_t derived_built = 0;
    std::uint64_t originals_built = 0;
    std::optional<std::string> error;
  };

  void run_wave(const std::vector<ClauseId>& wave) {
    if (wave.empty()) return;
    obs::Span span("wave");
    const std::size_t num_chunks =
        std::min<std::size_t>(jobs_, wave.size());
    // Chunk i always writes into shard i; waves are barrier-separated, so
    // a shard is touched by at most one thread at a time.
    while (arenas_.size() < num_chunks) arenas_.emplace_back();
    std::vector<Chunk> chunks(num_chunks);
    const std::size_t base = wave.size() / num_chunks;
    const std::size_t extra = wave.size() % num_chunks;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < num_chunks; ++i) {
      const std::size_t len = base + (i < extra ? 1 : 0);
      chunks[i].ids = std::span<const ClauseId>(wave).subspan(begin, len);
      chunks[i].shard = &arenas_[i];
      begin += len;
    }
    if (num_chunks == 1) {
      run_chunk(chunks[0]);
    } else {
      util::ThreadPool& pool = this->pool();
      for (Chunk& c : chunks) {
        pool.submit([this, &c] { run_chunk(c); });
      }
      pool.wait_idle();
    }
    // Merge on the main thread. Chunks cover ascending ID ranges and each
    // stops at its first failure, so taking the first chunk's error yields
    // the lowest failing clause ID — the diagnostic is deterministic
    // regardless of which worker finished first.
    std::optional<std::string> error;
    for (Chunk& c : chunks) {
      if (!error && c.error) error = std::move(c.error);
      stats_.resolutions += c.resolutions;
      stats_.clauses_built += c.derived_built;
      originals_built_ += c.originals_built;
    }
    if (error) throw CheckFailure(*error);
  }

  /// Task body: replays the chunk's clauses in ascending ID order. Must not
  /// throw — failures are recorded in the chunk for the post-barrier merge.
  void run_chunk(Chunk& chunk) {
    ChainResolver chain;
    chain.reserve_vars(reader_->num_vars());
    for (const ClauseId id : chunk.ids) {
      try {
        if (id < num_original()) {
          build_original(id, chunk);
        } else {
          build_derived(id, chunk, chain);
        }
      } catch (const CheckFailure& e) {
        chunk.error = e.what();
        break;
      }
    }
  }

  void build_original(ClauseId id, Chunk& chunk) {
    const SortedClause canon = canonicalize(formula_->clause(id));
    if (is_tautology(canon)) {
      throw CheckFailure("original clause " + std::to_string(id) +
                         " is tautological and cannot be a resolution source");
    }
    ++chunk.originals_built;
    const util::ClauseArena::Ref ref = chunk.shard->put(canon);
    slots_[id].store(chunk.shard->tagged_block(ref), std::memory_order_release);
  }

  void build_derived(ClauseId id, Chunk& chunk, ChainResolver& chain) {
    const std::span<const std::uint32_t> sources = derivations_.sources_of(id);
    chain.start(source_clause(sources[0]));
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const ResolveResult r = chain.step(source_clause(sources[i]));
      ++chunk.resolutions;
      if (r.status != ResolveStatus::Ok) {
        throw CheckFailure(
            "derivation of clause " + std::to_string(id) + ": resolving with "
            "source " + std::to_string(sources[i]) + " (step " +
            std::to_string(i) + ") failed: " +
            (r.status == ResolveStatus::NoClash
                 ? "no clashing variable"
                 : "more than one clashing variable"));
      }
    }
    // Publish the resolver's buffer unsorted (same as the depth-first
    // checker): the fold order is a function of the trace alone, so the
    // stored bytes stay deterministic across job counts.
    ++chunk.derived_built;
    const util::ClauseArena::Ref ref = chunk.shard->put(chain.lits());
    slots_[id].store(chunk.shard->tagged_block(ref), std::memory_order_release);
  }

  /// A source clause during wavefront replay. Always published: the
  /// wavefront leveling puts every source in a strictly earlier wave (or an
  /// earlier closure), and the barrier between waves orders the stores.
  [[nodiscard]] ClauseView source_clause(ClauseId id) const {
    const Lit* block = published(id);
    if (block == nullptr) {
      throw CheckFailure("internal error: source clause " +
                         std::to_string(id) +
                         " was scheduled after its consumer");
    }
    return util::ClauseArena::view_of(block);
  }

  util::ThreadPool& pool() {
    if (!pool_.has_value()) pool_.emplace(jobs_);
    return *pool_;
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  unsigned jobs_ = 1;
  Level0Table level0_;
  std::optional<ClauseId> final_id_;
  DerivationIndex derivations_;
  std::vector<std::atomic<const Lit*>> slots_;
  /// Per-chunk-index arena shards; they persist across waves so published
  /// block pointers stay valid for the whole run (arena chunks are never
  /// reallocated).
  std::vector<util::ClauseArena> arenas_;
  std::optional<util::ThreadPool> pool_;
  std::uint64_t originals_built_ = 0;
  util::MemTracker mem_;
  CheckStats stats_;
};

}  // namespace

CheckResult check_parallel(const Formula& f, trace::TraceReader& reader,
                           const ParallelOptions& options) {
  ParallelChecker checker(f, reader, options.jobs);
  return checker.run(options);
}

}  // namespace satproof::checker
