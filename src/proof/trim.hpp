#pragma once

#include <cstdint>

#include "src/cnf/formula.hpp"
#include "src/trace/events.hpp"

namespace satproof::proof {

/// Trimming statistics.
struct TrimStats {
  std::uint64_t derivations_before = 0;
  std::uint64_t derivations_after = 0;
};

/// Rewrites a trace keeping only the derivations the proof actually uses.
///
/// The paper observes that the depth-first checker builds just 19-90% of
/// the learned clauses; the rest of the trace is dead weight for any
/// downstream consumer (archival, re-checking, core extraction,
/// interpolation). trim_trace() performs the same backward reachability
/// from the final conflicting clause and the final-trail antecedents, then
/// re-emits the trace with unreachable derivations dropped — clause IDs
/// unchanged, so the trimmed trace checks against the same formula with
/// the same tools. (This is the service drat-trim later provided for
/// DRUP/DRAT proofs.)
///
/// Trimming is syntactic: it does not validate resolutions. Run a checker
/// on the output as usual. Throws checker::CheckFailure (via
/// std::runtime_error) on structurally malformed input.
TrimStats trim_trace(trace::TraceReader& in, trace::TraceWriter& out);

}  // namespace satproof::proof
