file(REMOVE_RECURSE
  "CMakeFiles/satproof_encode.dir/cardinality.cpp.o"
  "CMakeFiles/satproof_encode.dir/cardinality.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/coloring.cpp.o"
  "CMakeFiles/satproof_encode.dir/coloring.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/fpga_routing.cpp.o"
  "CMakeFiles/satproof_encode.dir/fpga_routing.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/parity.cpp.o"
  "CMakeFiles/satproof_encode.dir/parity.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/pigeonhole.cpp.o"
  "CMakeFiles/satproof_encode.dir/pigeonhole.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/planning.cpp.o"
  "CMakeFiles/satproof_encode.dir/planning.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/random_ksat.cpp.o"
  "CMakeFiles/satproof_encode.dir/random_ksat.cpp.o.d"
  "CMakeFiles/satproof_encode.dir/suite.cpp.o"
  "CMakeFiles/satproof_encode.dir/suite.cpp.o.d"
  "libsatproof_encode.a"
  "libsatproof_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
