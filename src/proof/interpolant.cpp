#include "src/proof/interpolant.hpp"

#include <unordered_map>

#include "src/checker/resolution.hpp"

namespace satproof::proof {

Interpolant mcmillan_interpolant(const Formula& f, const ProofDag& dag,
                                 const std::vector<bool>& in_a) {
  if (in_a.size() != f.num_clauses()) {
    throw ProofError("mcmillan_interpolant: partition size mismatch");
  }
  if (dag.nodes.empty() || !dag.nodes.back().lits.empty()) {
    throw ProofError(
        "mcmillan_interpolant: the proof must end in the empty clause "
        "(unconditional refutation)");
  }

  // Variable classification over the *whole* partition, not just the
  // proof: A-local pivots use OR, everything else AND.
  std::vector<bool> occurs_a(f.num_vars(), false);
  std::vector<bool> occurs_b(f.num_vars(), false);
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    auto& occurs = in_a[id] ? occurs_a : occurs_b;
    for (const Lit lit : f.clause(id)) occurs[lit.var()] = true;
  }

  Interpolant out;
  circuit::Netlist& n = out.netlist;

  // One input per global variable.
  std::vector<circuit::Wire> var_wire(f.num_vars(), circuit::kInvalidWire);
  for (Var v = 0; v < f.num_vars(); ++v) {
    if (occurs_a[v] && occurs_b[v]) {
      const circuit::Wire w = n.add_input();
      var_wire[v] = w;
      out.bindings.emplace_back(w, v);
    }
  }
  const auto literal_wire = [&](Lit lit) {
    const circuit::Wire w = var_wire[lit.var()];
    return lit.negated() ? n.make_not(w) : w;
  };

  // Partial interpolant per proof node, in topological order.
  std::unordered_map<ClauseId, circuit::Wire> itp;
  std::unordered_map<ClauseId, const checker::SortedClause*> lits_of;
  checker::ChainResolver chain;

  for (const auto& node : dag.nodes) {
    lits_of[node.id] = &node.lits;
    if (node.sources.empty()) {
      // Leaf.
      if (node.id >= f.num_clauses()) {
        throw ProofError("mcmillan_interpolant: leaf " +
                         std::to_string(node.id) +
                         " is not an original clause");
      }
      if (in_a[node.id]) {
        std::vector<circuit::Wire> parts;
        for (const Lit lit : node.lits) {
          if (var_wire[lit.var()] != circuit::kInvalidWire) {
            parts.push_back(literal_wire(lit));
          }
        }
        itp[node.id] = n.reduce_or(parts);
      } else {
        itp[node.id] = n.constant(true);
      }
      continue;
    }

    // Derived node: replay the fold to recover each step's pivot.
    chain.start(*lits_of.at(node.sources[0]));
    circuit::Wire acc = itp.at(node.sources[0]);
    for (std::size_t i = 1; i < node.sources.size(); ++i) {
      const auto r = chain.step(*lits_of.at(node.sources[i]));
      if (r.status != checker::ResolveStatus::Ok) {
        throw ProofError("mcmillan_interpolant: invalid resolution in node " +
                         std::to_string(node.id));
      }
      const circuit::Wire rhs = itp.at(node.sources[i]);
      const bool a_local = occurs_a[r.pivot] && !occurs_b[r.pivot];
      acc = a_local ? n.make_or(acc, rhs) : n.make_and(acc, rhs);
    }
    itp[node.id] = acc;
  }

  out.output = itp.at(dag.root_id);
  return out;
}

}  // namespace satproof::proof
