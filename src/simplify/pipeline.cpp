#include "src/simplify/pipeline.hpp"

#include "src/solver/solver.hpp"

namespace satproof::simplify {

SimplifiedSolveResult solve_simplified(const Formula& f,
                                       const solver::SolverOptions& solver_options,
                                       const PreprocessOptions& preprocess_options,
                                       trace::TraceWriter* writer) {
  SimplifiedSolveResult out;

  PreprocessResult pre = preprocess(f, preprocess_options, writer);
  out.preprocess_stats = pre.stats;
  if (pre.proved_unsat) {
    // The trace (if any) is already complete: derivations ending in the
    // empty clause plus the final-conflict section.
    out.result = solver::SolveResult::Unsatisfiable;
    return out;
  }

  solver::Solver s(solver_options);
  s.begin_external_ids(f.num_clauses());
  // The solver must know every original variable so SAT models cover the
  // eliminated ones too (reconstruction overwrites them as needed).
  while (s.num_vars() < f.num_vars()) (void)s.new_var();
  for (const auto& clause : pre.clauses) {
    s.add_clause_with_id(clause.lits, clause.id);
  }
  // IDs of derived-then-discarded preprocessor clauses are still taken.
  s.reserve_clause_ids(pre.next_id);
  if (writer != nullptr) s.set_trace_writer(writer);

  out.result = s.solve();
  out.solver_stats = s.stats();
  if (out.result == solver::SolveResult::Satisfiable) {
    out.model = s.model();
    pre.reconstruct_model(out.model);
  }
  return out;
}

}  // namespace satproof::simplify
