#include "src/circuit/sorting.hpp"

#include <stdexcept>

namespace satproof::circuit {

namespace {

/// Compare-exchange: position i receives the larger bit, position j the
/// smaller (descending order).
void compare_exchange(Netlist& n, Word& w, std::size_t i, std::size_t j) {
  const Wire hi = n.make_or(w[i], w[j]);
  const Wire lo = n.make_and(w[i], w[j]);
  w[i] = hi;
  w[j] = lo;
}

/// Batcher's odd-even merge of two sorted halves w[lo..lo+len) (classic
/// power-of-two formulation; `step` is the stride between elements).
void odd_even_merge(Netlist& n, Word& w, std::size_t lo, std::size_t len,
                    std::size_t step) {
  const std::size_t m = step * 2;
  if (m < len) {
    odd_even_merge(n, w, lo, len, m);         // even subsequence
    odd_even_merge(n, w, lo + step, len, m);  // odd subsequence
    for (std::size_t i = lo + step; i + step < lo + len; i += m) {
      compare_exchange(n, w, i, i + step);
    }
  } else {
    compare_exchange(n, w, lo, lo + step);
  }
}

void odd_even_mergesort_range(Netlist& n, Word& w, std::size_t lo,
                              std::size_t len) {
  if (len <= 1) return;
  const std::size_t half = len / 2;
  odd_even_mergesort_range(n, w, lo, half);
  odd_even_mergesort_range(n, w, lo + half, half);
  odd_even_merge(n, w, lo, len, 1);
}

}  // namespace

Word odd_even_mergesort(Netlist& n, const Word& in) {
  const std::size_t len = in.size();
  if (len == 0 || (len & (len - 1)) != 0) {
    throw std::invalid_argument(
        "odd_even_mergesort: width must be a power of two");
  }
  Word w = in;
  odd_even_mergesort_range(n, w, 0, len);
  return w;
}

Word transposition_sort(Netlist& n, const Word& in) {
  Word w = in;
  for (std::size_t round = 0; round < w.size(); ++round) {
    for (std::size_t i = round % 2; i + 1 < w.size(); i += 2) {
      compare_exchange(n, w, i, i + 1);
    }
  }
  return w;
}

}  // namespace satproof::circuit
