#pragma once

// Shared helpers for the table-reproduction benches: run the solver over
// the standard suite with tracing, time things, and hand the traces to the
// checkers.

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/cnf/formula.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/timer.hpp"

namespace satproof::bench {

/// One solved suite instance with its trace and timings.
struct SolvedInstance {
  encode::NamedInstance instance;
  trace::MemoryTrace trace;
  solver::SolverStats stats;
  double solve_seconds_trace_on = 0.0;
};

/// Solves every suite instance with tracing enabled. Aborts the process
/// with a diagnostic if any instance fails to come back UNSAT (the suite is
/// unsatisfiable by construction, so that would be a solver bug).
inline std::vector<SolvedInstance> solve_suite(encode::SuiteScale scale) {
  std::vector<SolvedInstance> out;
  for (encode::NamedInstance& inst : encode::unsat_suite(scale)) {
    solver::Solver solver;
    solver.add_formula(inst.formula);
    trace::MemoryTraceWriter writer;
    solver.set_trace_writer(&writer);
    util::Timer timer;
    const solver::SolveResult res = solver.solve();
    const double seconds = timer.elapsed_seconds();
    if (res != solver::SolveResult::Unsatisfiable) {
      std::cerr << "FATAL: suite instance " << inst.name
                << " did not come back UNSAT\n";
      std::exit(1);
    }
    out.push_back({std::move(inst), writer.take(), solver.stats(), seconds});
  }
  return out;
}

}  // namespace satproof::bench
