// Property-based sweeps:
//  - the solver agrees with a brute-force oracle on small random formulas;
//  - on every UNSAT outcome, both checkers accept the trace and the
//    extracted core is itself unsatisfiable;
//  - on every SAT outcome, the model satisfies the formula.

#include <gtest/gtest.h>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/cnf/model.hpp"
#include "src/encode/coloring.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/rng.hpp"

namespace satproof {
namespace {

/// Brute-force satisfiability oracle for formulas with few variables.
bool brute_force_sat(const Formula& f) {
  const Var n = f.num_vars();
  EXPECT_LE(n, 20u) << "oracle limited to small formulas";
  for (std::uint64_t assignment = 0; assignment < (1ull << n); ++assignment) {
    Model m(n);
    for (Var v = 0; v < n; ++v) {
      m[v] = ((assignment >> v) & 1) != 0 ? LBool::True : LBool::False;
    }
    if (satisfies(f, m)) return true;
  }
  return false;
}

/// Solves with tracing; on UNSAT validates the proof with both checkers and
/// re-solves the core; on SAT verifies the model. Returns the result.
solver::SolveResult solve_and_validate(const Formula& f,
                                       const solver::SolverOptions& opts = {}) {
  solver::Solver s(opts);
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  const solver::SolveResult res = s.solve();

  if (res == solver::SolveResult::Satisfiable) {
    EXPECT_TRUE(satisfies(f, s.model()));
    return res;
  }
  EXPECT_EQ(res, solver::SolveResult::Unsatisfiable);

  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  const checker::CheckResult df = checker::check_depth_first(f, r1);
  EXPECT_TRUE(df.ok) << df.error;
  trace::MemoryTraceReader r2(t);
  const checker::CheckResult bf = checker::check_breadth_first(f, r2);
  EXPECT_TRUE(bf.ok) << bf.error;
  EXPECT_EQ(df.stats.total_derivations, bf.stats.total_derivations);

  if (df.ok && !df.core.empty()) {
    solver::Solver core_solver;
    core_solver.add_formula(f.subformula(df.core));
    EXPECT_EQ(core_solver.solve(), solver::SolveResult::Unsatisfiable)
        << "extracted core must be unsatisfiable";
  }
  return res;
}

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSweep, SolverMatchesBruteForceOnTinyFormulas) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const unsigned n = 4 + static_cast<unsigned>(rng.next_below(6));  // 4..9
    const unsigned m = static_cast<unsigned>(
        n * (2.0 + rng.next_double() * 4.0));  // ratio 2..6
    const unsigned k = 2 + static_cast<unsigned>(rng.next_below(2));  // 2..3
    const Formula f = encode::random_ksat(n, m, k, rng.next_u64());
    const bool expected = brute_force_sat(f);
    const solver::SolveResult got = solve_and_validate(f);
    EXPECT_EQ(got == solver::SolveResult::Satisfiable, expected)
        << "n=" << n << " m=" << m << " k=" << k << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class RandomKsatSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomKsatSweep, NearThresholdInstancesValidateEitherWay) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    // Around the 3-SAT phase transition both outcomes occur.
    const unsigned n = 20 + static_cast<unsigned>(rng.next_below(15));
    const unsigned m = static_cast<unsigned>(n * 4.27);
    const Formula f = encode::random_ksat(n, m, 3, rng.next_u64());
    solve_and_validate(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKsatSweep,
                         ::testing::Values(11, 22, 33, 44));

class ColoringSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColoringSweep, RandomGraphsValidateEitherWay) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const unsigned n = 8 + static_cast<unsigned>(rng.next_below(5));
    const unsigned colors = 3 + static_cast<unsigned>(rng.next_below(2));
    const Formula f =
        encode::random_graph_coloring(n, 0.5, colors, rng.next_u64());
    solve_and_validate(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringSweep, ::testing::Values(7, 14, 21));

/// The same sweeps under non-default solver configurations: the checker
/// must accept traces regardless of heuristics (restarts, deletion, phase,
/// level-0 elimination).
struct ConfigCase {
  const char* name;
  solver::SolverOptions opts;
};

class ConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConfigSweep, TracesValidUnderAllConfigurations) {
  solver::SolverOptions opts;
  switch (GetParam()) {
    case 0:
      opts.enable_restarts = false;
      break;
    case 1:
      opts.enable_clause_deletion = false;
      break;
    case 2:
      opts.eliminate_level0_lits = false;
      break;
    case 3:
      opts.restart_first = 8;  // very frequent restarts
      opts.restart_inc = 1.1;
      break;
    case 4:
      opts.random_decision_freq = 0.2;
      break;
    case 5:
      opts.default_phase = true;
      break;
    case 6:
      opts.learned_size_factor = 0.01;  // aggressive deletion
      opts.learned_growth = 1.01;
      break;
    case 7:
      opts.minimize_learned = true;
      break;
    case 8:
      opts.restart_schedule = solver::SolverOptions::RestartSchedule::Luby;
      opts.restart_first = 16;
      break;
    case 9:
      // Everything non-default at once.
      opts.minimize_learned = true;
      opts.restart_schedule = solver::SolverOptions::RestartSchedule::Luby;
      opts.eliminate_level0_lits = false;
      opts.random_decision_freq = 0.1;
      opts.learned_size_factor = 0.05;
      break;
    default:
      break;
  }
  util::Rng rng(900 + GetParam());
  for (int round = 0; round < 8; ++round) {
    const unsigned n = 16 + static_cast<unsigned>(rng.next_below(10));
    const Formula f = encode::random_ksat(
        n, static_cast<unsigned>(n * 5.0), 3, rng.next_u64());
    const auto res = solve_and_validate(f, opts);
    EXPECT_NE(res, solver::SolveResult::Unknown);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweep,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace satproof
