file(REMOVE_RECURSE
  "libsatproof_core.a"
)
