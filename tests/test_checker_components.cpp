// Unit tests for checker building blocks: use-count stores (including
// file-backed paging edge cases), the level-0 assignment table, and
// antecedent validation.

#include <gtest/gtest.h>

#include "src/checker/common.hpp"
#include "src/checker/use_count.hpp"

namespace satproof::checker {
namespace {

// ------------------------------------------------------------ use counts

template <typename Store>
void exercise_store(Store& store, std::uint64_t n) {
  store.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(store.get(i), 0u) << i;
  }
  // Increment in a scattered pattern crossing page boundaries.
  for (std::uint64_t i = 0; i < n; i += 3) store.increment(i);
  for (std::uint64_t i = 0; i < n; i += 3) store.increment(i);
  for (std::uint64_t i = n; i-- > 0;) {
    EXPECT_EQ(store.get(i), i % 3 == 0 ? 2u : 0u) << i;
  }
  for (std::uint64_t i = 0; i < n; i += 3) {
    EXPECT_EQ(store.decrement(i), 1u);
    EXPECT_EQ(store.decrement(i), 0u);
  }
  EXPECT_THROW(store.decrement(0), std::logic_error);
}

TEST(UseCounts, InMemoryBasics) {
  InMemoryUseCounts store;
  exercise_store(store, 100);
  EXPECT_EQ(store.memory_bytes(), 100 * sizeof(std::uint32_t));
}

TEST(UseCounts, FileBackedSmallPagesForcePaging) {
  // 8-entry pages over 100 counters: every scattered access pattern above
  // crosses pages repeatedly.
  FileBackedUseCounts store(8);
  exercise_store(store, 100);
  EXPECT_EQ(store.memory_bytes(), 8 * sizeof(std::uint32_t));
}

TEST(UseCounts, FileBackedSurvivesResizeReuse) {
  FileBackedUseCounts store(4);
  store.resize(10);
  store.increment(9);
  EXPECT_EQ(store.get(9), 1u);
  store.resize(6);  // shrink: all counters reset
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(store.get(i), 0u);
  EXPECT_THROW(store.get(9), std::out_of_range);
}

TEST(UseCounts, FileBackedLastPartialPage) {
  FileBackedUseCounts store(8);
  store.resize(13);  // last page holds 5 entries
  store.increment(12);
  store.increment(0);
  EXPECT_EQ(store.get(12), 1u);
  EXPECT_EQ(store.get(0), 1u);
}

TEST(UseCounts, OutOfRangeIndexThrows) {
  InMemoryUseCounts mem;
  mem.resize(5);
  EXPECT_THROW(mem.get(5), std::out_of_range);
  FileBackedUseCounts file(4);
  file.resize(5);
  EXPECT_THROW(file.increment(5), std::out_of_range);
}

TEST(UseCounts, FactoryProducesRequestedKind) {
  EXPECT_NE(dynamic_cast<InMemoryUseCounts*>(
                make_use_count_store(UseCountMode::InMemory).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<FileBackedUseCounts*>(
                make_use_count_store(UseCountMode::FileBacked).get()),
            nullptr);
}

// ---------------------------------------------------------- level-0 table

TEST(Level0Table, RecordsOrderAndValues) {
  Level0Table table(4);
  table.add(2, true, 7);
  table.add(0, false, 9);
  EXPECT_TRUE(table.assigned(2));
  EXPECT_TRUE(table.assigned(0));
  EXPECT_FALSE(table.assigned(1));
  EXPECT_EQ(table.order(2), 0u);
  EXPECT_EQ(table.order(0), 1u);
  EXPECT_EQ(table.antecedent(2), 7u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(Level0Table, LitValueRespectsPhase) {
  Level0Table table(2);
  table.add(0, true, 1);
  EXPECT_EQ(table.lit_value(Lit::pos(0)), LBool::True);
  EXPECT_EQ(table.lit_value(Lit::neg(0)), LBool::False);
  EXPECT_EQ(table.lit_value(Lit::pos(1)), LBool::Undef);
}

TEST(Level0Table, RejectsDuplicatesAndOutOfRange) {
  Level0Table table(2);
  table.add(1, false, 3);
  EXPECT_THROW(table.add(1, true, 4), CheckFailure);
  EXPECT_THROW(table.add(2, true, 4), CheckFailure);
}

// ------------------------------------------------------ antecedent checks

class AntecedentCheck : public ::testing::Test {
 protected:
  AntecedentCheck() : table_(4) {
    // Trail: x0 = T (clause 0), x1 = F (clause 1), x2 = T (clause 2).
    table_.add(0, true, 0);
    table_.add(1, false, 1);
    table_.add(2, true, 2);
  }
  Level0Table table_;
};

TEST_F(AntecedentCheck, AcceptsGenuineAntecedent) {
  // x2's antecedent (x2 | ~x0 | x1): implied literal true, others false
  // and earlier.
  const SortedClause ante =
      canonicalize(std::vector<Lit>{Lit::pos(2), Lit::neg(0), Lit::pos(1)});
  EXPECT_NO_THROW(check_antecedent(ante, 2, table_, "test clause"));
}

TEST_F(AntecedentCheck, RejectsWrongPhaseOfImpliedVar) {
  const SortedClause ante =
      canonicalize(std::vector<Lit>{Lit::neg(2), Lit::neg(0)});
  EXPECT_THROW(check_antecedent(ante, 2, table_, "test clause"),
               CheckFailure);
}

TEST_F(AntecedentCheck, RejectsMissingImpliedVar) {
  const SortedClause ante = canonicalize(std::vector<Lit>{Lit::neg(0)});
  EXPECT_THROW(check_antecedent(ante, 2, table_, "test clause"),
               CheckFailure);
}

TEST_F(AntecedentCheck, RejectsTrueSideLiteral) {
  // Contains x0 (true): the clause was satisfied, never unit.
  const SortedClause ante =
      canonicalize(std::vector<Lit>{Lit::pos(2), Lit::pos(0)});
  EXPECT_THROW(check_antecedent(ante, 2, table_, "test clause"),
               CheckFailure);
}

TEST_F(AntecedentCheck, RejectsUnassignedLiteral) {
  const SortedClause ante =
      canonicalize(std::vector<Lit>{Lit::pos(2), Lit::neg(3)});
  EXPECT_THROW(check_antecedent(ante, 2, table_, "test clause"),
               CheckFailure);
}

TEST_F(AntecedentCheck, RejectsLaterAssignedLiteral) {
  // x2 assigned after x0: clause (x0 | ~x2) is not a valid antecedent of
  // x0 because x2 was assigned later.
  const SortedClause ante =
      canonicalize(std::vector<Lit>{Lit::pos(0), Lit::neg(2)});
  EXPECT_THROW(check_antecedent(ante, 0, table_, "test clause"),
               CheckFailure);
}

}  // namespace
}  // namespace satproof::checker
