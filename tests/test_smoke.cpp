// End-to-end smoke test: solve, trace, check with both checkers.

#include <gtest/gtest.h>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/cnf/model.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

namespace satproof {
namespace {

TEST(Smoke, PigeonholeUnsatAndBothCheckersAccept) {
  const Formula f = encode::pigeonhole(4);

  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter writer;
  s.set_trace_writer(&writer);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);

  const trace::MemoryTrace t = writer.take();
  EXPECT_TRUE(t.has_final);

  trace::MemoryTraceReader r1(t);
  const checker::CheckResult df = checker::check_depth_first(f, r1);
  EXPECT_TRUE(df.ok) << df.error;

  trace::MemoryTraceReader r2(t);
  const checker::CheckResult bf = checker::check_breadth_first(f, r2);
  EXPECT_TRUE(bf.ok) << bf.error;
}

TEST(Smoke, SatisfiableInstanceYieldsVerifiedModel) {
  Formula f(3);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  f.add_clause({Lit::neg(0), Lit::pos(2)});
  f.add_clause({Lit::neg(1), Lit::neg(2)});

  solver::Solver s;
  s.add_formula(f);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  EXPECT_TRUE(satisfies(f, s.model()));
}

}  // namespace
}  // namespace satproof
