// Unit tests for the observability layer: span recording and nesting,
// cross-thread interleaving into one sink, the slow-job span-tree
// collector, and Prometheus text exposition format.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/service/metrics.hpp"
#include "src/util/temp_file.hpp"

namespace satproof::obs {
namespace {

// ---------------------------------------------------------------- tracing

TEST(ObsTrace, SpanOutsideSessionRecordsNothing) {
  { Span span("orphan"); }
  TraceSession session;
  flush_this_thread();
  EXPECT_EQ(session.sink().event_count(), 0u);
}

TEST(ObsTrace, NestedSpansLandInTheSinkWithContainment) {
  TraceSession session;
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  flush_this_thread();
  const std::string json = session.sink().to_chrome_json();
  ASSERT_EQ(session.sink().event_count(), 2u);

  // Spans close inner-first, so "inner" precedes "outer" in the buffer.
  // Containment: inner's [ts, ts+dur] within outer's.
  const std::regex ev(
      "\\{\"name\":\"(\\w+)\",\"ph\":\"X\",\"ts\":(\\d+),\"dur\":(\\d+)");
  std::sregex_iterator it(json.begin(), json.end(), ev), end;
  std::uint64_t inner_ts = 0, inner_end = 0, outer_ts = 0, outer_end = 0;
  int seen = 0;
  for (; it != end; ++it, ++seen) {
    const std::uint64_t ts = std::stoull((*it)[2]);
    const std::uint64_t dur = std::stoull((*it)[3]);
    if ((*it)[1] == "inner") {
      inner_ts = ts;
      inner_end = ts + dur;
    } else if ((*it)[1] == "outer") {
      outer_ts = ts;
      outer_end = ts + dur;
    }
  }
  EXPECT_EQ(seen, 2);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST(ObsTrace, ChromeJsonShapeIsValid) {
  TraceSession session;
  { Span span("stage"); }
  flush_this_thread();
  const std::string json = session.sink().to_chrome_json();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsTrace, WriteFileRoundTrips) {
  util::TempFile out("obs-trace");
  {
    TraceSession session;
    { Span span("stage"); }
    flush_this_thread();
    ASSERT_TRUE(session.sink().write_file(out.path()));
  }
  std::ifstream in(out.path());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"name\":\"stage\""), std::string::npos);
}

TEST(ObsTrace, ThreadsInterleaveIntoOneSinkWithDistinctTids) {
  TraceSession session;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 300;  // crosses the flush threshold
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("worker_span");
      }
      // Remaining events flush via the thread-exit destructor.
    });
  }
  for (auto& t : threads) t.join();
  { Span span("main_span"); }
  flush_this_thread();

  EXPECT_EQ(session.sink().event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread + 1);
  const std::string json = session.sink().to_chrome_json();
  const std::regex tid_re("\"tid\":(\\d+)");
  std::set<std::string> tids;
  for (std::sregex_iterator it(json.begin(), json.end(), tid_re), end;
       it != end; ++it) {
    tids.insert((*it)[1]);
  }
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(ObsTrace, StaleBufferedEventsDoNotLeakIntoANewSession) {
  // A worker records a span under session 1 but holds it buffered past
  // session 1's death; when the buffer finally flushes (thread exit),
  // the generation mismatch must discard it instead of delivering it to
  // session 2's sink.
  std::optional<TraceSession> first(std::in_place);
  std::atomic<bool> recorded{false};
  std::atomic<bool> release{false};
  std::thread worker([&] {
    { Span span("stale_event"); }
    recorded.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!recorded.load()) std::this_thread::yield();
  first.reset();  // session 1 dies with the event still thread-buffered

  TraceSession fresh;
  release.store(true);
  worker.join();  // thread-exit flush sees a newer generation
  { Span span("fresh_span"); }
  flush_this_thread();
  const std::string json = fresh.sink().to_chrome_json();
  EXPECT_NE(json.find("fresh_span"), std::string::npos);
  EXPECT_EQ(json.find("stale_event"), std::string::npos);
}

TEST(ObsTrace, EmitRecordsAManualSpan) {
  TraceSession session;
  emit("manual", now_us(), 123);
  flush_this_thread();
  const std::string json = session.sink().to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"manual\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":123"), std::string::npos);
}

// ---------------------------------------------------- span-tree collector

TEST(ObsSpanTree, CollectorBuildsAnIndentedTree) {
  SpanTreeCollector collector;
  set_thread_collector(&collector);
  {
    Span outer("run");
    {
      Span inner("parse");
    }
    {
      Span inner("replay");
    }
  }
  collector.add_leaf("queue_wait", 0, 1500);
  set_thread_collector(nullptr);

  const std::string tree = collector.render();
  // "run" at depth 0; parse/replay nested one level below.
  EXPECT_NE(tree.find("run "), std::string::npos);
  EXPECT_NE(tree.find("\n  parse "), std::string::npos);
  EXPECT_NE(tree.find("\n  replay "), std::string::npos);
  EXPECT_NE(tree.find("queue_wait 1.500 ms"), std::string::npos);
}

TEST(ObsSpanTree, CollectorWorksWithoutATraceSession) {
  // Slow-job profiling must not require a global trace sink.
  SpanTreeCollector collector;
  set_thread_collector(&collector);
  { Span span("solo"); }
  set_thread_collector(nullptr);
  EXPECT_FALSE(collector.empty());
  EXPECT_NE(collector.render().find("solo"), std::string::npos);

  // And spans after uninstall are ignored.
  { Span span("after"); }
  EXPECT_EQ(collector.render().find("after"), std::string::npos);
}

// ---------------------------------------------------------------- metrics

/// Every non-comment, non-blank line of a Prometheus exposition must be
/// `name{labels} value` with a parseable float value.
void expect_wellformed_prometheus(const std::string& text) {
  const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+-]+$)");
  const std::regex comment(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  std::istringstream in(text);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment)) << "bad comment: " << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample)) << "bad sample: " << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 0);
}

TEST(ObsMetrics, RegistryCountersAccumulateAndRender) {
  Counter& c = MetricsRegistry::instance().counter(
      "satproof_test_counter_total", "Test counter.");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), before + 42);

  // Same name returns the same counter.
  Counter& again = MetricsRegistry::instance().counter(
      "satproof_test_counter_total", "Test counter.");
  EXPECT_EQ(&again, &c);

  const std::string text = MetricsRegistry::instance().render_prometheus();
  EXPECT_NE(text.find("# HELP satproof_test_counter_total Test counter."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE satproof_test_counter_total counter"),
            std::string::npos);
  expect_wellformed_prometheus(text);
}

TEST(ObsMetrics, GaugesSampleTheirCallbackAtRenderTime) {
  double value = 1.0;
  MetricsRegistry::instance().register_gauge(
      "satproof_test_gauge", "Test gauge.", [&value] { return value; });
  std::string text = MetricsRegistry::instance().render_prometheus();
  EXPECT_NE(text.find("satproof_test_gauge 1"), std::string::npos);
  value = 7.5;
  text = MetricsRegistry::instance().render_prometheus();
  EXPECT_NE(text.find("satproof_test_gauge 7.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE satproof_test_gauge gauge"), std::string::npos);
  MetricsRegistry::instance().unregister_gauge("satproof_test_gauge");
  text = MetricsRegistry::instance().render_prometheus();
  EXPECT_EQ(text.find("satproof_test_gauge"), std::string::npos);
}

TEST(ObsMetrics, ServiceSnapshotExposesQueueBackendsAndCheckerCounters) {
  service::Metrics m;
  m.on_connection();
  m.on_accepted();
  m.on_completed(service::Backend::kDf, 0.010, true, 4096);
  m.on_slow_job();
  // Make sure the process-wide checker counters exist (they are created on
  // first use by run_check; tests may run before any check).
  (void)CheckerCounters::get();

  std::vector<service::ShardedJobQueue::ShardSnapshot> shards(2);
  shards[0].depth_fast = 3;
  shards[0].enqueued_fast = 4;
  shards[1].steals = 2;
  const std::string text = m.to_prometheus(/*queue_depth=*/3,
                                           /*queue_capacity=*/64,
                                           /*running_jobs=*/1, shards);
  expect_wellformed_prometheus(text);
  EXPECT_NE(text.find("satproofd_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("satproofd_running_jobs 1"), std::string::npos);
  EXPECT_NE(text.find("satproofd_workers 2"), std::string::npos);
  EXPECT_NE(text.find(
                "satproofd_worker_queue_depth{worker=\"0\",lane=\"fast\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("satproofd_worker_steals_total{worker=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("satproofd_lane_jobs_enqueued_total{lane=\"fast\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("satproofd_jobs_completed_total 1"), std::string::npos);
  EXPECT_NE(text.find("satproofd_slow_jobs_total 1"), std::string::npos);
  EXPECT_NE(
      text.find("satproofd_backend_jobs_completed_total{backend=\"df\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "satproofd_backend_jobs_completed_total{backend=\"parallel\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE satproof_resolutions_total counter"),
            std::string::npos);
}

}  // namespace
}  // namespace satproof::obs
