file(REMOVE_RECURSE
  "CMakeFiles/satproof_cnf.dir/dimacs.cpp.o"
  "CMakeFiles/satproof_cnf.dir/dimacs.cpp.o.d"
  "CMakeFiles/satproof_cnf.dir/formula.cpp.o"
  "CMakeFiles/satproof_cnf.dir/formula.cpp.o.d"
  "CMakeFiles/satproof_cnf.dir/model.cpp.o"
  "CMakeFiles/satproof_cnf.dir/model.cpp.o.d"
  "CMakeFiles/satproof_cnf.dir/types.cpp.o"
  "CMakeFiles/satproof_cnf.dir/types.cpp.o.d"
  "libsatproof_cnf.a"
  "libsatproof_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
