file(REMOVE_RECURSE
  "CMakeFiles/ablation_minimization.dir/ablation_minimization.cpp.o"
  "CMakeFiles/ablation_minimization.dir/ablation_minimization.cpp.o.d"
  "ablation_minimization"
  "ablation_minimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
