# Empty dependencies file for satproof_checker.
# This may be replaced when dependencies are built.
