#include "src/trace/ascii.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace satproof::trace {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("ascii trace: line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

namespace {

/// Appends the decimal form of `v` to `buf` (the iostream formatting path
/// is slow enough to dominate trace-generation overhead, which Table 1
/// measures — so format by hand into one buffer per record).
void append_u64(std::string& buf, std::uint64_t v) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) buf.push_back(tmp[--n]);
}

}  // namespace

void AsciiTraceWriter::begin(Var num_vars, ClauseId num_original) {
  buf_.clear();
  buf_ += "p trace ";
  append_u64(buf_, num_vars);
  buf_.push_back(' ');
  append_u64(buf_, num_original);
  buf_.push_back('\n');
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void AsciiTraceWriter::derivation(ClauseId id,
                                  std::span<const ClauseId> sources) {
  buf_.clear();
  buf_ += "d ";
  append_u64(buf_, id);
  // Source IDs are written offset by one so that 0 terminates the list,
  // mirroring the DIMACS clause convention.
  for (const ClauseId s : sources) {
    buf_.push_back(' ');
    append_u64(buf_, s + 1);
  }
  buf_ += " 0\n";
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void AsciiTraceWriter::final_conflict(ClauseId id) {
  buf_.clear();
  buf_ += "f ";
  append_u64(buf_, id);
  buf_.push_back('\n');
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void AsciiTraceWriter::level0(Var var, bool value, ClauseId antecedent) {
  buf_.clear();
  buf_ += "l ";
  if (!value) buf_.push_back('-');
  append_u64(buf_, static_cast<std::uint64_t>(var) + 1);
  buf_.push_back(' ');
  append_u64(buf_, antecedent);
  buf_.push_back('\n');
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void AsciiTraceWriter::assumption(Var var, bool value) {
  buf_.clear();
  buf_ += "u ";
  if (!value) buf_.push_back('-');
  append_u64(buf_, static_cast<std::uint64_t>(var) + 1);
  buf_.push_back('\n');
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void AsciiTraceWriter::end() {
  *out_ << "e\n";
  out_->flush();
}

AsciiTraceReader::AsciiTraceReader(std::istream& in) : in_(&in) {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream hs(line);
    std::string p, kind;
    std::uint64_t vars = 0, orig = 0;
    hs >> p >> kind >> vars >> orig;
    if (!hs || p != "p" || kind != "trace") {
      fail(line_no_, "expected header 'p trace <vars> <original>'");
    }
    num_vars_ = static_cast<Var>(vars);
    num_original_ = orig;
    body_start_ = in_->tellg();
    return;
  }
  fail(line_no_, "missing header");
}

bool AsciiTraceReader::next(Record& out) {
  if (done_) return false;
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    switch (tag) {
      case 'd': {
        out.kind = RecordKind::Derivation;
        out.sources.clear();
        std::uint64_t id = 0;
        if (!(ls >> id)) fail(line_no_, "derivation missing id");
        out.id = id;
        std::uint64_t s = 0;
        bool terminated = false;
        while (ls >> s) {
          if (s == 0) {
            terminated = true;
            break;
          }
          // Source IDs are offset by one on disk so that 0 can terminate
          // the list, mirroring the DIMACS convention.
          out.sources.push_back(s - 1);
        }
        if (!terminated) fail(line_no_, "derivation not terminated by 0");
        if (out.sources.size() < 2) {
          fail(line_no_, "derivation needs at least two sources");
        }
        return true;
      }
      case 'f': {
        out.kind = RecordKind::FinalConflict;
        std::uint64_t id = 0;
        if (!(ls >> id)) fail(line_no_, "final conflict missing id");
        out.id = id;
        out.sources.clear();
        return true;
      }
      case 'l': {
        out.kind = RecordKind::Level0;
        std::int64_t signed_var = 0;
        std::uint64_t ante = 0;
        if (!(ls >> signed_var >> ante) || signed_var == 0) {
          fail(line_no_, "malformed level-0 record");
        }
        out.var = static_cast<Var>((signed_var < 0 ? -signed_var : signed_var) -
                                   1);
        out.value = signed_var > 0;
        out.antecedent = ante;
        out.sources.clear();
        return true;
      }
      case 'u': {
        out.kind = RecordKind::Assumption;
        std::int64_t signed_var = 0;
        if (!(ls >> signed_var) || signed_var == 0) {
          fail(line_no_, "malformed assumption record");
        }
        out.var = static_cast<Var>(
            (signed_var < 0 ? -signed_var : signed_var) - 1);
        out.value = signed_var > 0;
        out.antecedent = kInvalidClauseId;
        out.sources.clear();
        return true;
      }
      case 'e': {
        out.kind = RecordKind::End;
        out.sources.clear();
        done_ = true;
        return true;
      }
      default:
        fail(line_no_, std::string("unknown record tag '") + tag + "'");
    }
  }
  fail(line_no_, "trace truncated: no 'e' end record");
}

void AsciiTraceReader::rewind() {
  in_->clear();
  in_->seekg(body_start_);
  if (!*in_) throw std::runtime_error("ascii trace: rewind failed");
  done_ = false;
}

}  // namespace satproof::trace
