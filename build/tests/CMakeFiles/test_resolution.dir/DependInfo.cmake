
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resolution.cpp" "tests/CMakeFiles/test_resolution.dir/test_resolution.cpp.o" "gcc" "tests/CMakeFiles/test_resolution.dir/test_resolution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simplify/CMakeFiles/satproof_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/proof/CMakeFiles/satproof_proof.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/satproof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/satproof_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/satproof_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/satproof_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/bmc/CMakeFiles/satproof_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/satproof_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/satproof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
