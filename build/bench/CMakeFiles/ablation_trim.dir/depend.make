# Empty dependencies file for ablation_trim.
# This may be replaced when dependencies are built.
