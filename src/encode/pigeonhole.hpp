#pragma once

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// The pigeonhole principle PHP(holes+1, holes): `holes + 1` pigeons must
/// each sit in one of `holes` holes, no two sharing. Unsatisfiable, with
/// proofs that are provably exponential for resolution — a classic
/// stress case for proof checkers (every learned clause matters).
///
/// Variables: p(i, j) = "pigeon i sits in hole j", i in [0, holes],
/// j in [0, holes). Clauses: one per pigeon (at least one hole) and one per
/// hole and pigeon pair (at most one pigeon per hole).
[[nodiscard]] Formula pigeonhole(unsigned holes);

}  // namespace satproof::encode
