#pragma once

/// Umbrella header: the whole public API of satproof.
///
/// The library reproduces Zhang & Malik, "Validating SAT Solvers Using an
/// Independent Resolution-Based Checker" (DATE 2003) and its surrounding
/// ecosystem. Components (each usable on its own — include the individual
/// headers to keep compile times down):
///
///   cnf       literals, formulas, DIMACS I/O, model verification
///   solver    CDCL search with resolution-trace generation + assumptions
///   simplify  traceable preprocessing (subsume / strengthen / eliminate)
///   trace     the trace formats (memory / ASCII / binary) + fault injection
///   checker   the independent checkers (depth-first / breadth-first / hybrid)
///   proof     proof DAGs: metrics, export, trimming, RUP, interpolation
///   core      unsatisfiable cores: extract, iterate, minimize
///   circuit   netlists, word ops, Tseitin, miters, rewriting, sorting nets
///   bmc       sequential circuits and bounded model checking
///   encode    benchmark families and the reproduction suite
///   util      PRNG, timers, varints, byte accounting

#include "src/bmc/counter.hpp"
#include "src/bmc/rotator.hpp"
#include "src/bmc/sequential.hpp"
#include "src/bmc/unroll.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/checker/common.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/resolution.hpp"
#include "src/checker/use_count.hpp"
#include "src/circuit/miter.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/rewrite.hpp"
#include "src/circuit/sorting.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/circuit/words.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/cnf/formula.hpp"
#include "src/cnf/model.hpp"
#include "src/cnf/types.hpp"
#include "src/core/unsat_core.hpp"
#include "src/encode/cardinality.hpp"
#include "src/encode/coloring.hpp"
#include "src/encode/fpga_routing.hpp"
#include "src/encode/parity.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/planning.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/encode/suite.hpp"
#include "src/proof/export.hpp"
#include "src/proof/interpolant.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/proof/rup.hpp"
#include "src/proof/trim.hpp"
#include "src/simplify/pipeline.hpp"
#include "src/simplify/preprocessor.hpp"
#include "src/solver/options.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/events.hpp"
#include "src/trace/fault_injector.hpp"
#include "src/trace/memory.hpp"
#include "src/util/mem_tracker.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"
#include "src/util/varint.hpp"
