file(REMOVE_RECURSE
  "CMakeFiles/satproof_cli.dir/cli.cpp.o"
  "CMakeFiles/satproof_cli.dir/cli.cpp.o.d"
  "libsatproof_cli.a"
  "libsatproof_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
