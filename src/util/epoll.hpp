#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace satproof::util {

/// One readiness notification from EventPoller::wait.
struct PollEvent {
  std::uint64_t key = 0;  ///< caller-chosen identifier passed to add()
  bool readable = false;
  bool writable = false;
  /// Error or hangup on the descriptor. The caller should attempt a final
  /// read (to observe EOF / errno) and then drop the connection.
  bool error = false;
};

/// Level-triggered readiness multiplexer for the service's single I/O
/// thread. On Linux the default backend is epoll(7), which stays O(ready)
/// per wakeup no matter how many idle uploads are parked; everywhere else
/// (and on Linux when explicitly requested, so both paths stay tested) a
/// portable poll(2) backend provides identical semantics at O(fds) per
/// wakeup. Descriptors are registered under a caller-chosen 64-bit key;
/// the poller never owns them.
///
/// Not thread-safe: one thread owns an EventPoller for its whole life.
class EventPoller {
 public:
  enum class Backend {
    kAuto,  ///< epoll on Linux, poll elsewhere
    kEpoll,
    kPoll,
  };

  /// Throws std::runtime_error if the requested backend is unavailable
  /// (kEpoll off Linux, or epoll_create1 failure).
  explicit EventPoller(Backend backend = Backend::kAuto);
  ~EventPoller();

  EventPoller(const EventPoller&) = delete;
  EventPoller& operator=(const EventPoller&) = delete;

  /// Backend actually in use (kAuto resolved).
  [[nodiscard]] Backend backend() const { return backend_; }

  /// Registers `fd` under `key`. `fd` must not already be registered.
  void add(int fd, std::uint64_t key, bool want_read, bool want_write);

  /// Updates the interest set of a registered descriptor.
  void modify(int fd, bool want_read, bool want_write);

  /// Unregisters a descriptor. Safe to call for an fd that was never
  /// added (no-op), so teardown paths need no bookkeeping.
  void remove(int fd);

  /// Number of registered descriptors.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Blocks until at least one registered descriptor is ready or
  /// `timeout_ms` elapses (< 0 = wait forever). Clears and fills `out`;
  /// returns the number of events. EINTR is retried with the original
  /// timeout, which is fine for the service's coarse sweep cadence.
  std::size_t wait(int timeout_ms, std::vector<PollEvent>& out);

 private:
  struct Entry {
    int fd = -1;
    std::uint64_t key = 0;
    bool want_read = false;
    bool want_write = false;
  };

  Entry* find(int fd);

  Backend backend_ = Backend::kPoll;
  int epoll_fd_ = -1;
  // Registration table. The poll backend scans it on every wait; the epoll
  // backend keeps it only for key lookup and size(). Linear search is fine:
  // add/modify/remove are per-connection-lifetime events, not per-byte.
  std::vector<Entry> entries_;
};

}  // namespace satproof::util
