file(REMOVE_RECURSE
  "CMakeFiles/satproof_core.dir/unsat_core.cpp.o"
  "CMakeFiles/satproof_core.dir/unsat_core.cpp.o.d"
  "libsatproof_core.a"
  "libsatproof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
