// Craig interpolation from checked resolution proofs — the era's landmark
// "other application" (McMillan, CAV 2003): the same proof trace this
// library validates also yields interpolants, the engine behind
// SAT-based unbounded model checking.
//
// The pigeonhole principle splits naturally: A = "every pigeon sits
// somewhere", B = "no hole holds two pigeons". The interpolant derived
// from the refutation is a formula over the shared placement variables
// that A implies and that contradicts B — a summary of *why* the pigeon
// side defeats the hole side. Both properties are re-verified with the
// solver before anything is reported.

#include <iostream>

#include "src/circuit/tseitin.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/proof/interpolant.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

int main() {
  using namespace satproof;

  constexpr unsigned kHoles = 5;
  const Formula f = encode::pigeonhole(kHoles);
  const unsigned pigeons = kHoles + 1;
  std::vector<bool> in_a(f.num_clauses(), false);
  for (ClauseId id = 0; id < pigeons; ++id) in_a[id] = true;
  std::cout << "PHP(" << pigeons << "," << kHoles << "): A = " << pigeons
            << " at-least-one clauses, B = " << f.num_clauses() - pigeons
            << " at-most-one clauses\n";

  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  if (s.solve() != solver::SolveResult::Unsatisfiable) return 1;

  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader reader(t);
  const proof::ProofDag dag = proof::extract_proof(f, reader);
  const proof::Interpolant itp = proof::mcmillan_interpolant(f, dag, in_a);
  std::cout << "Interpolant: circuit of " << itp.netlist.num_wires()
            << " wires over " << itp.bindings.size()
            << " shared variables\n";

  // Verify A -> I.
  {
    std::vector<ClauseId> a_ids;
    for (ClauseId id = 0; id < f.num_clauses(); ++id) {
      if (in_a[id]) a_ids.push_back(id);
    }
    Formula q = f.subformula(a_ids);
    const auto var_of = circuit::tseitin_into(q, itp.netlist, itp.bindings);
    q.add_clause({Lit::neg(var_of[itp.output])});
    solver::Solver check;
    check.add_formula(q);
    if (check.solve() != solver::SolveResult::Unsatisfiable) {
      std::cout << "FAILED: A does not imply I\n";
      return 1;
    }
    std::cout << "verified: A implies I  (A && !I is UNSAT)\n";
  }
  // Verify I && B UNSAT.
  {
    std::vector<ClauseId> b_ids;
    for (ClauseId id = 0; id < f.num_clauses(); ++id) {
      if (!in_a[id]) b_ids.push_back(id);
    }
    Formula q = f.subformula(b_ids);
    q.ensure_var(f.num_vars() - 1);
    const auto var_of = circuit::tseitin_into(q, itp.netlist, itp.bindings);
    q.add_clause({Lit::pos(var_of[itp.output])});
    solver::Solver check;
    check.add_formula(q);
    if (check.solve() != solver::SolveResult::Unsatisfiable) {
      std::cout << "FAILED: I does not refute B\n";
      return 1;
    }
    std::cout << "verified: I refutes B  (I && B is UNSAT)\n";
  }
  std::cout << "The interpolant summarizes, over shared variables only, why "
               "the two halves conflict.\n";
  return 0;
}
