#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace satproof::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string format_kb(std::size_t bytes) {
  return format_double(static_cast<double>(bytes) / 1024.0, 1);
}

std::string format_percent(double numerator, double denominator) {
  if (denominator == 0.0) return "n/a";
  return format_double(100.0 * numerator / denominator, 1) + "%";
}

}  // namespace satproof::util
