#!/usr/bin/env python3
"""Regenerates the committed benchmark baselines.

Runs table2_checkers, parallel_speedup, micro_resolver and
service_throughput from a Release build (standard + quick scales), merges
their JSON documents and rewrites BENCH_checkers.json /
BENCH_service.json in the layout tools/bench_compare.py consumes. The
previous standard-suite checker numbers are preserved as the embedded
"baseline" block so the committed file still records the last
before/after comparison, and both files carry a "provenance" block
(hardware threads, CPU model, compiler) identifying the machine the
numbers came from.

  cmake -B build-rel -DCMAKE_BUILD_TYPE=Release
  cmake --build build-rel -j --target table2_checkers parallel_speedup micro_resolver service_throughput
  python3 tools/refresh_baselines.py --build build-rel

Run on a quiet machine; commit the two BENCH files afterwards.
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile


def cpu_model():
    """Best-effort CPU model string (Linux /proc/cpuinfo, else platform)."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def compiler_version(build_dir):
    """First line of `$CXX --version` for the compiler CMake recorded."""
    cxx = None
    try:
        with open(os.path.join(build_dir, "CMakeCache.txt")) as f:
            for line in f:
                m = re.match(r"CMAKE_CXX_COMPILER:\w+=(.+)", line.strip())
                if m:
                    cxx = m.group(1)
                    break
    except OSError:
        pass
    if not cxx:
        return "unknown"
    try:
        out = subprocess.run(
            [cxx, "--version"], capture_output=True, text=True, check=True
        ).stdout
        return out.splitlines()[0].strip() if out else cxx
    except (OSError, subprocess.CalledProcessError):
        return os.path.basename(cxx)


def provenance(build_dir):
    """Machine/toolchain fingerprint recorded in both BENCH files, so a
    reviewer can tell whether a committed baseline is comparable to the
    machine at hand (bench_compare skips scaling curves on a thread-count
    mismatch)."""
    return {
        "hardware_threads": os.cpu_count(),
        "cpu_model": cpu_model(),
        "compiler": compiler_version(build_dir),
    }


def run_bench(binary, *args):
    """Runs one bench writing its JSON to a temp file; returns the doc."""
    fd, path = tempfile.mkstemp(suffix=".json", prefix="bench-refresh-")
    os.close(fd)
    try:
        cmd = [binary, *args, "--json", path]
        print("+ " + " ".join(cmd), file=sys.stderr)
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def min_into(target, other):
    """Element-wise min of the numbers bench_compare gates on: wall times
    and the forked peak-RSS readings (best-of-N footprint, matching the
    best-of-N the compare side takes)."""
    for key, value in other.items():
        if isinstance(value, dict):
            min_into(target[key], value)
        elif isinstance(value, list) and key in ("runs", "worker_sweep"):
            for t, o in zip(target[key], value):
                min_into(t, o)
        elif isinstance(value, (int, float)) and (
            key.endswith("seconds") or key.endswith("_bytes")
        ):
            target[key] = min(target[key], value)


def run_bench_best(binary, *args, rounds=3):
    """best-of-N on every *_seconds metric: --quick runs are milliseconds,
    so the committed baseline should be the machine's real speed, not one
    run's scheduler luck (bench_compare takes best-of-N on its side too)."""
    doc = run_bench(binary, *args)
    for _ in range(rounds - 1):
        min_into(doc, run_bench(binary, *args))
    return doc


def comparison(prev_totals, cur_totals):
    out = {}
    if prev_totals.get("df_seconds", 0) > 0:
        out["df_speedup"] = prev_totals["df_seconds"] / cur_totals["df_seconds"]
    if prev_totals.get("df_peak_bytes", 0) > 0:
        out["df_peak_reduction"] = (
            1.0 - cur_totals["df_peak_bytes"] / prev_totals["df_peak_bytes"]
        )
    if prev_totals.get("bf_peak_bytes", 0) > 0:
        out["bf_peak_reduction"] = (
            1.0 - cur_totals["bf_peak_bytes"] / prev_totals["bf_peak_bytes"]
        )
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", default="build-rel", help="build dir with Release benches")
    ap.add_argument("--repo", default=".", help="repo root holding the BENCH files")
    args = ap.parse_args()

    bench_dir = os.path.join(args.build, "bench")
    checkers_path = os.path.join(args.repo, "BENCH_checkers.json")
    service_path = os.path.join(args.repo, "BENCH_service.json")

    prev_arena = {}
    if os.path.exists(checkers_path):
        with open(checkers_path) as f:
            prev_arena = json.load(f).get("arena", {})

    t2_std = run_bench(os.path.join(bench_dir, "table2_checkers"))
    t2_quick = run_bench_best(os.path.join(bench_dir, "table2_checkers"), "--quick")
    par_quick = run_bench_best(os.path.join(bench_dir, "parallel_speedup"), "--quick")
    micro_std = run_bench(os.path.join(bench_dir, "micro_resolver"))
    micro_quick = run_bench_best(os.path.join(bench_dir, "micro_resolver"), "--quick")
    svc_std = run_bench(os.path.join(bench_dir, "service_throughput"))
    svc_quick = run_bench_best(os.path.join(bench_dir, "service_throughput"), "--quick")

    prov = provenance(args.build)
    checkers = {
        "bench": "table2_checkers",
        "provenance": prov,
        "arena": t2_std["arena"],
        "baseline": prev_arena or None,
        "tracing_overhead": t2_std.get("tracing_overhead"),
        "lrat_overhead": t2_std.get("lrat_overhead"),
        "quick": t2_quick["arena"],
        "tracing_overhead_quick": t2_quick.get("tracing_overhead"),
        "lrat_overhead_quick": t2_quick.get("lrat_overhead"),
        "parallel_quick": par_quick,
        "micro": micro_std,
        "micro_quick": micro_quick,
    }
    if prev_arena:
        checkers["comparison"] = comparison(
            prev_arena.get("totals", {}), t2_std["arena"]["totals"]
        )

    service = {
        "bench": "service_throughput",
        "provenance": prov,
        "standard": svc_std,
        "quick": svc_quick,
    }

    with open(checkers_path, "w") as f:
        json.dump(checkers, f, indent=2)
        f.write("\n")
    with open(service_path, "w") as f:
        json.dump(service, f, indent=2)
        f.write("\n")
    print("wrote %s and %s" % (checkers_path, service_path), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
