// Catching buggy solvers — the paper's core motivation: "during the recent
// SAT 2002 solver competition, quite a few submitted SAT solvers were
// found to be buggy" and the checker "can provide information for
// debugging when checking fails".
//
// This example simulates ten realistic solver/trace-generation bugs with
// the FaultInjector and shows the diagnostic each one produces.

#include <iostream>

#include "src/checker/depth_first.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/fault_injector.hpp"
#include "src/trace/memory.hpp"

int main() {
  using namespace satproof;

  const Formula f = encode::pigeonhole(5);
  std::cout << "Instance: pigeonhole(5), " << f.num_clauses()
            << " clauses.\nEach run injects one bug into the solver's trace "
               "generation;\nthe independent checker must reject every "
               "corrupted proof.\n\n";

  const trace::FaultKind kinds[] = {
      trace::FaultKind::DropSource,      trace::FaultKind::DuplicateSource,
      trace::FaultKind::ShuffleSources,  trace::FaultKind::WrongSource,
      trace::FaultKind::DropDerivation,  trace::FaultKind::WrongFinal,
      trace::FaultKind::FlipLevel0Value, trace::FaultKind::WrongAntecedent,
      trace::FaultKind::DropLevel0,      trace::FaultKind::TruncateTrace,
  };

  int caught = 0, total = 0;
  for (const trace::FaultKind kind : kinds) {
    // Some faults have few eligible records (e.g. there is exactly one
    // final-conflict record), so fall back to earlier opportunities.
    for (const std::uint64_t target : {5ull, 0ull}) {
      solver::Solver s;
      s.add_formula(f);
      trace::MemoryTraceWriter inner;
      trace::FaultInjector injector(inner, kind, /*seed=*/7, target);
      s.set_trace_writer(&injector);
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cout << "unexpected solver answer\n";
        return 1;
      }
      if (!injector.fired()) continue;

      const trace::MemoryTrace t = inner.take();
      trace::MemoryTraceReader reader(t);
      const checker::CheckResult res = checker::check_depth_first(f, reader);
      ++total;
      std::cout << "bug '" << trace::to_string(kind) << "'";
      if (res.ok) {
        std::cout << ": NOT caught (the corrupted trace happens to still be "
                     "a valid proof)\n";
      } else {
        ++caught;
        std::cout << " caught:\n    " << res.error << "\n";
      }
      break;
    }
  }
  std::cout << "\n" << caught << "/" << total
            << " injected bugs rejected with a diagnostic.\n";
  return caught == total ? 0 : 1;
}
