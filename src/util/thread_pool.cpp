#include "src/util/thread_pool.hpp"

namespace satproof::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread joins in its destructor; discarded queue entries are accounted
  // for so a concurrent wait_idle() cannot hang.
  {
    const std::lock_guard lock(mutex_);
    unfinished_ -= queue_.size();
    queue_.clear();
  }
  idle_cv_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    bool idle = false;
    {
      const std::lock_guard lock(mutex_);
      idle = --unfinished_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace satproof::util
