#include "src/circuit/tseitin.hpp"

#include <stdexcept>

namespace satproof::circuit {

namespace {

/// Emits the defining clauses of gate `w` of `n` into `f`, under the
/// wire-to-variable map `var_of`.
void encode_gate(Formula& f, const Netlist& n, Wire w,
                 const std::vector<Var>& var_of) {
  const auto pos = [&](Wire x) { return Lit::pos(var_of[x]); };
  const auto neg = [&](Wire x) { return Lit::neg(var_of[x]); };
  const Gate& g = n.gate(w);
  switch (g.kind) {
    case GateKind::Input:
      break;
    case GateKind::ConstFalse:
      f.add_clause({neg(w)});
      break;
    case GateKind::ConstTrue:
      f.add_clause({pos(w)});
      break;
    case GateKind::Not:
      f.add_clause({pos(w), pos(g.a)});
      f.add_clause({neg(w), neg(g.a)});
      break;
    case GateKind::And:
      f.add_clause({neg(w), pos(g.a)});
      f.add_clause({neg(w), pos(g.b)});
      f.add_clause({pos(w), neg(g.a), neg(g.b)});
      break;
    case GateKind::Or:
      f.add_clause({pos(w), neg(g.a)});
      f.add_clause({pos(w), neg(g.b)});
      f.add_clause({neg(w), pos(g.a), pos(g.b)});
      break;
    case GateKind::Xor:
      f.add_clause({neg(w), pos(g.a), pos(g.b)});
      f.add_clause({neg(w), neg(g.a), neg(g.b)});
      f.add_clause({pos(w), neg(g.a), pos(g.b)});
      f.add_clause({pos(w), pos(g.a), neg(g.b)});
      break;
    case GateKind::Mux:
      f.add_clause({neg(g.a), neg(g.b), pos(w)});
      f.add_clause({neg(g.a), pos(g.b), neg(w)});
      f.add_clause({pos(g.a), neg(g.c), pos(w)});
      f.add_clause({pos(g.a), pos(g.c), neg(w)});
      break;
  }
}

}  // namespace

TseitinResult tseitin(const Netlist& n, std::span<const Wire> asserted_true) {
  TseitinResult out;
  out.wire_var.resize(n.num_wires());
  for (Wire w = 0; w < n.num_wires(); ++w) {
    out.wire_var[w] = static_cast<Var>(w);
  }
  Formula& f = out.formula;
  f.ensure_var(n.num_wires() == 0 ? 0 : static_cast<Var>(n.num_wires() - 1));

  for (Wire w = 0; w < n.num_wires(); ++w) {
    encode_gate(f, n, w, out.wire_var);
  }
  for (const Wire w : asserted_true) {
    f.add_clause({Lit::pos(out.wire_var[w])});
  }
  return out;
}

std::vector<Var> tseitin_into(Formula& f, const Netlist& n,
                              std::span<const std::pair<Wire, Var>> bindings) {
  std::vector<Var> var_of(n.num_wires(), kInvalidVar);
  for (const auto& [wire, var] : bindings) {
    if (n.gate(wire).kind != GateKind::Input) {
      throw std::invalid_argument(
          "tseitin_into: only primary inputs can be bound");
    }
    f.ensure_var(var);
    var_of[wire] = var;
  }
  Var next = f.num_vars();
  for (Wire w = 0; w < n.num_wires(); ++w) {
    if (var_of[w] == kInvalidVar) var_of[w] = next++;
  }
  if (next > 0) f.ensure_var(next - 1);
  for (Wire w = 0; w < n.num_wires(); ++w) {
    encode_gate(f, n, w, var_of);
  }
  return var_of;
}

}  // namespace satproof::circuit
