#!/usr/bin/env python3
"""CI gate for the window-shifting checker's memory budget.

Generates a synthetic trace (tools/gen_bigtrace) several times larger
than the checker budget, then verifies it with `--checker=window
--mem-limit=N` inside a hard RLIMIT_AS address-space cap of

    trace size (the checker memory-maps the whole file)
  + the window budget
  + a fixed slack for the binary, libc, the parsed formula and malloc
    overhead (--slack)

and fails on any of:

  * the window run dying (OOM under the cap, crash, or a rejected proof),
  * its verdict or checker stats differing from an unrestricted
    depth-first run (timing and memory-traffic fields excluded),
  * the trace not being at least 4x the budget (the gate would prove
    nothing), or
  * with --require-df-oom: the depth-first checker SURVIVING under the
    same cap — if it fits, the cap is too loose to demonstrate anything.

Usage (the quick PR leg):
  python3 tools/mem_budget_gate.py \
      --satproof build/tools/satproof --gen build/tools/gen_bigtrace \
      --target-bytes 192M --mem-limit 24M --require-df-oom
"""

import argparse
import json
import os
import re
import resource
import subprocess
import sys
import tempfile

SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(s: str) -> int:
    m = re.fullmatch(r"(\d+)\s*([kKmMgG]?)(i?[bB])?", s)
    if not m:
        raise argparse.ArgumentTypeError(f"bad byte size: {s!r}")
    return int(m.group(1)) * SUFFIX.get(m.group(2).lower(), 1)


def run(cmd, as_limit=None, **kw):
    """Run cmd, optionally under a hard RLIMIT_AS cap (bytes)."""

    def cap():
        resource.setrlimit(resource.RLIMIT_AS, (as_limit, as_limit))

    return subprocess.run(
        cmd,
        preexec_fn=cap if as_limit else None,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **kw,
    )


# Fields that legitimately differ between backends: memory traffic and
# provenance. Everything else in the stats JSON must match exactly.
VOLATILE_STATS = {
    "backend",
    "peak_mem_bytes",
    "arena_allocated_bytes",
    "arena_recycled_bytes",
    "arena_peak_bytes",
}


def parse_check_output(stdout: str):
    """Returns (normalized verdict line, stats dict) from a check run."""
    verdict, stats = "", {}
    for line in stdout.splitlines():
        if line.startswith("VERIFIED"):
            verdict = re.sub(r", [0-9.e+-]+s\)", ")", line)
        elif line.startswith("{"):
            stats = {
                k: v
                for k, v in json.loads(line).items()
                if k not in VOLATILE_STATS
            }
    return verdict, stats


def fail(msg: str):
    print(f"mem-budget gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--satproof", required=True)
    ap.add_argument("--gen", required=True, help="gen_bigtrace binary")
    ap.add_argument("--target-bytes", type=parse_bytes, default=192 << 20)
    ap.add_argument("--mem-limit", type=parse_bytes, default=24 << 20)
    ap.add_argument(
        "--slack",
        type=parse_bytes,
        default=192 << 20,
        help="address-space allowance for binary+libs+formula+malloc "
        "overhead on top of trace size and the checker budget",
    )
    ap.add_argument("--ladders", type=int, default=4)
    ap.add_argument("--vars", type=int, default=2048)
    ap.add_argument("--chain", type=int, default=64)
    ap.add_argument("--seed", type=int, default=20030310)
    ap.add_argument(
        "--require-df-oom",
        action="store_true",
        help="also run depth-first under the cap and require it to die",
    )
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="mem-budget-gate.") as tmp:
        cnf = os.path.join(tmp, "gate.cnf")
        trace = os.path.join(tmp, "gate.trace")
        gen = run(
            [
                args.gen, "-o", cnf, "-t", trace,
                "--target-bytes", str(args.target_bytes),
                "--ladders", str(args.ladders),
                "--vars", str(args.vars),
                "--chain", str(args.chain),
                "--seed", str(args.seed),
            ]
        )
        if gen.returncode != 0:
            fail(f"gen_bigtrace failed:\n{gen.stderr}")
        trace_bytes = os.path.getsize(trace)
        if trace_bytes < 4 * args.mem_limit:
            fail(
                f"trace is only {trace_bytes} bytes; need >= 4x the "
                f"{args.mem_limit}-byte budget for the gate to mean anything"
            )
        cap = trace_bytes + args.mem_limit + args.slack
        print(
            f"mem-budget gate: trace {trace_bytes} bytes, window budget "
            f"{args.mem_limit}, RLIMIT_AS cap {cap}"
        )

        ref = run(
            [args.satproof, "check", cnf, trace, "--checker=df",
             "--stats=json"]
        )
        if ref.returncode != 0:
            fail(f"unrestricted df reference run failed:\n{ref.stderr}")
        ref_verdict, ref_stats = parse_check_output(ref.stdout)

        win = run(
            [args.satproof, "check", cnf, trace, "--checker=window",
             f"--mem-limit={args.mem_limit}", "--stats=json"],
            as_limit=cap,
        )
        if win.returncode != 0:
            fail(
                f"window run died under the cap (exit {win.returncode}):\n"
                f"{win.stdout}\n{win.stderr}"
            )
        win_verdict, win_stats = parse_check_output(win.stdout)

        if win_verdict != ref_verdict:
            fail(
                f"verdict mismatch:\n  df:     {ref_verdict}\n"
                f"  window: {win_verdict}"
            )
        if win_stats != ref_stats:
            diff = {
                k: (ref_stats.get(k), win_stats.get(k))
                for k in set(ref_stats) | set(win_stats)
                if ref_stats.get(k) != win_stats.get(k)
            }
            fail(f"stats mismatch (df, window): {diff}")

        if args.require_df_oom:
            df_capped = run(
                [args.satproof, "check", cnf, trace, "--checker=df"],
                as_limit=cap,
            )
            if df_capped.returncode == 0:
                fail(
                    "depth-first survived under the same cap — the cap is "
                    "too loose for this gate to demonstrate anything; "
                    "grow --target-bytes or shrink --slack"
                )
            print(
                "mem-budget gate: df died under the cap as expected "
                f"(exit {df_capped.returncode})"
            )

        print(f"mem-budget gate: PASS — {win_verdict}")


if __name__ == "__main__":
    main()
