// Microbenchmark for the replay microarchitecture: ChainResolver step
// throughput (long-clause and binary-heavy chains) and ClauseArena read
// bandwidth (streaming first-use-order sweep vs a shuffled pointer
// chase over the same blocks). Unlike micro_ops (google-benchmark,
// adaptive iteration counts), this runner uses fixed workloads so the
// emitted numbers gate in CI via tools/bench_compare.py --bench micro
// against the "micro_quick" block of BENCH_checkers.json.
//
// usage: micro_resolver [--quick] [--json FILE]
//   --quick      CI-sized workloads (milliseconds total)
//   --json FILE  write {"bench","quick","suite","totals":{*_seconds}}

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/checker/resolution.hpp"
#include "src/util/arena.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace satproof;

/// A resolution chain: a long base clause plus one partner per step, each
/// clashing on exactly one variable of the running clause (the same shape
/// micro_ops uses, so the two benches corroborate each other).
struct Chain {
  checker::SortedClause base;
  std::vector<checker::SortedClause> partners;
  Var max_var = 0;
};

/// Ternary partners: step i resolves away x_i and introduces two fresh
/// literals, so the running clause grows as real learned-clause chains do.
Chain make_long_chain(std::size_t base_len, std::size_t steps) {
  Chain c;
  for (Var v = 0; v < base_len; ++v) c.base.push_back(Lit::neg(v));
  for (std::size_t i = 0; i < steps; ++i) {
    checker::SortedClause p{Lit::pos(static_cast<Var>(i)),
                            Lit::neg(static_cast<Var>(base_len + 2 * i)),
                            Lit::neg(static_cast<Var>(base_len + 2 * i + 1))};
    std::sort(p.begin(), p.end());
    c.partners.push_back(std::move(p));
  }
  c.max_var = static_cast<Var>(base_len + 2 * steps);
  return c;
}

/// Binary partners: step i swaps ~x_i for x_(base_len+i), keeping the
/// running clause at a constant width — the unit-propagation-style chains
/// that dominate real traces and hit the arena's binary tier.
Chain make_binary_chain(std::size_t base_len, std::size_t steps) {
  Chain c;
  for (Var v = 0; v < base_len; ++v) c.base.push_back(Lit::neg(v));
  for (std::size_t i = 0; i < steps; ++i) {
    checker::SortedClause p{Lit::pos(static_cast<Var>(i)),
                            Lit::pos(static_cast<Var>(base_len + i))};
    std::sort(p.begin(), p.end());
    c.partners.push_back(std::move(p));
  }
  c.max_var = static_cast<Var>(2 * base_len);
  return c;
}

/// Runs `rounds` full chains through one steady-state resolver and returns
/// the wall seconds. The warm-up chain outside the timer mirrors the
/// replay backends, which reserve_vars() once per run.
double time_chain(const Chain& chain, std::size_t rounds,
                  std::uint64_t& sink) {
  checker::ChainResolver resolver;
  resolver.reserve_vars(chain.max_var + 1);
  const auto run_once = [&] {
    resolver.start(chain.base);
    for (const auto& p : chain.partners) {
      if (resolver.step(p).status != checker::ResolveStatus::Ok) {
        std::cerr << "FATAL: chain step failed\n";
        std::exit(1);
      }
    }
    sink += resolver.lits().size();
  };
  run_once();
  util::Timer timer;
  for (std::size_t r = 0; r < rounds; ++r) run_once();
  return timer.elapsed_seconds();
}

/// The arena workload: a trace-shaped mix of binary and longer clauses,
/// written once in "first-use" order. Returns the refs in that order.
std::vector<util::ClauseArena::Ref> fill_arena(util::ClauseArena& arena,
                                               std::size_t num_clauses) {
  util::Rng rng(42);
  std::vector<util::ClauseArena::Ref> refs;
  refs.reserve(num_clauses);
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < num_clauses; ++i) {
    // Half the clauses binary (the dawn-style tier), half 3..10 literals.
    const std::size_t len =
        rng.next_bool() ? 2 : 3 + static_cast<std::size_t>(rng.next_below(8));
    lits.clear();
    for (std::size_t k = 0; k < len; ++k) {
      lits.push_back(
          Lit::from_code(static_cast<std::uint32_t>(rng.next_below(1 << 20))));
    }
    refs.push_back(arena.put(lits));
  }
  return refs;
}

/// Sums every literal code reachable through `order` — the read pattern of
/// a streaming replay (sequential) or an unordered one (shuffled).
double time_sweep(const util::ClauseArena& arena,
                  const std::vector<util::ClauseArena::Ref>& refs,
                  const std::vector<std::uint32_t>& order, std::size_t rounds,
                  std::uint64_t& sink) {
  util::Timer timer;
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const std::uint32_t idx : order) {
      for (const Lit lit : arena.view(refs[idx])) sum += lit.code();
    }
  }
  sink += sum;
  return timer.elapsed_seconds();
}

void emit_json(const std::string& path, bool quick,
               const std::vector<std::pair<std::string, double>>& totals) {
  std::ofstream js(path);
  if (!js) {
    std::cerr << "FATAL: cannot open " << path << "\n";
    std::exit(1);
  }
  js << "{\n  \"bench\": \"micro_resolver\",\n  \"quick\": "
     << (quick ? "true" : "false") << ",\n  \"suite\": \""
     << (quick ? "micro-quick" : "micro-standard") << "\",\n  \"totals\": {";
  for (std::size_t i = 0; i < totals.size(); ++i) {
    js << (i == 0 ? "\n" : ",\n") << "    \"" << totals[i].first
       << "\": " << totals[i].second;
  }
  js << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: micro_resolver [--quick] [--json FILE]\n";
      return 1;
    }
  }

  // Fixed workloads; --quick scales the repetition counts only, so the
  // two modes measure the same kernels on the same data shapes.
  const std::size_t chain_rounds = quick ? 2000 : 40000;
  const std::size_t sweep_rounds = quick ? 8 : 120;
  const std::size_t arena_clauses = 100000;

  std::uint64_t sink = 0;
  std::vector<std::pair<std::string, double>> totals;

  const Chain long_chain = make_long_chain(64, 64);
  totals.emplace_back("chain_long_seconds",
                      time_chain(long_chain, chain_rounds, sink));

  const Chain binary_chain = make_binary_chain(64, 64);
  totals.emplace_back("chain_binary_seconds",
                      time_chain(binary_chain, chain_rounds, sink));

  // One arena, two visit orders over identical blocks: the delta is the
  // price of losing first-use locality.
  util::ClauseArena arena;
  const std::vector<util::ClauseArena::Ref> refs =
      fill_arena(arena, arena_clauses);
  std::vector<std::uint32_t> order(refs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  totals.emplace_back("arena_stream_seconds",
                      time_sweep(arena, refs, order, sweep_rounds, sink));
  util::Rng shuffle_rng(7);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[shuffle_rng.next_below(i)]);
  }
  totals.emplace_back("arena_chase_seconds",
                      time_sweep(arena, refs, order, sweep_rounds, sink));

  std::cout << "micro_resolver (" << (quick ? "quick" : "standard")
            << " workloads)\n";
  for (const auto& [name, seconds] : totals) {
    std::cout << "  " << name << ": " << seconds << "\n";
  }
  std::cout << "  (checksum " << sink << ")\n";

  if (!json_path.empty()) {
    emit_json(json_path, quick, totals);
    std::cout << "JSON written to " << json_path << "\n";
  }
  return 0;
}
