#pragma once

#include <string>
#include <vector>

namespace satproof::util {

/// Fixed-width text table printer used by the table-reproduction benches so
/// their output visually matches the tables in the paper.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) with aligned columns.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int digits = 2);

/// Formats a byte count as a KB figure (the unit the paper's tables use).
[[nodiscard]] std::string format_kb(std::size_t bytes);

/// Formats `numerator/denominator` as a percentage string like "42.1%".
[[nodiscard]] std::string format_percent(double numerator, double denominator);

}  // namespace satproof::util
