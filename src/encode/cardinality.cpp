#include "src/encode/cardinality.hpp"

#include <vector>

namespace satproof::encode {

void add_at_most_k(Formula& f, std::span<const Lit> lits, unsigned k) {
  const std::size_t n = lits.size();
  if (k >= n) return;  // vacuous
  if (k == 0) {
    for (const Lit lit : lits) f.add_clause({~lit});
    return;
  }

  // Sequential counter: s(i, j) = "at least j+1 of lits[0..i] are true",
  // i in [0, n-2], j in [0, k-1]. Fresh variables after the formula's
  // current range.
  const Var base = f.num_vars();
  const auto s = [&](std::size_t i, unsigned j) {
    return Lit::pos(static_cast<Var>(base + i * k + j));
  };

  f.add_clause({~lits[0], s(0, 0)});
  for (unsigned j = 1; j < k; ++j) f.add_clause({~s(0, j)});
  for (std::size_t i = 1; i < n - 1; ++i) {
    f.add_clause({~lits[i], s(i, 0)});
    f.add_clause({~s(i - 1, 0), s(i, 0)});
    for (unsigned j = 1; j < k; ++j) {
      f.add_clause({~lits[i], ~s(i - 1, j - 1), s(i, j)});
      f.add_clause({~s(i - 1, j), s(i, j)});
    }
    f.add_clause({~lits[i], ~s(i - 1, k - 1)});
  }
  f.add_clause({~lits[n - 1], ~s(n - 2, k - 1)});
}

void add_at_least_k(Formula& f, std::span<const Lit> lits, unsigned k) {
  const std::size_t n = lits.size();
  if (k == 0) return;
  if (k > n) {
    f.add_clause(std::initializer_list<Lit>{});  // impossible
    return;
  }
  if (k == n) {
    for (const Lit lit : lits) f.add_clause({lit});
    return;
  }
  if (k == 1) {
    f.add_clause(lits);
    return;
  }
  // At least k of lits == at most n-k of their negations.
  std::vector<Lit> negated;
  negated.reserve(n);
  for (const Lit lit : lits) negated.push_back(~lit);
  add_at_most_k(f, negated, static_cast<unsigned>(n - k));
}

void add_exactly_k(Formula& f, std::span<const Lit> lits, unsigned k) {
  add_at_least_k(f, lits, k);
  add_at_most_k(f, lits, k);
}

Formula pigeonhole_sequential(unsigned holes) {
  const unsigned pigeons = holes + 1;
  Formula f(pigeons * holes);
  const auto var = [holes](unsigned pigeon, unsigned hole) {
    return static_cast<Var>(pigeon * holes + hole);
  };
  std::vector<Lit> clause;
  for (unsigned i = 0; i < pigeons; ++i) {
    clause.clear();
    for (unsigned j = 0; j < holes; ++j) clause.push_back(Lit::pos(var(i, j)));
    f.add_clause(clause);
  }
  for (unsigned j = 0; j < holes; ++j) {
    clause.clear();
    for (unsigned i = 0; i < pigeons; ++i) clause.push_back(Lit::pos(var(i, j)));
    add_at_most_k(f, clause, 1);
  }
  return f;
}

}  // namespace satproof::encode
