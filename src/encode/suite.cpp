#include "src/encode/suite.hpp"

#include "src/bmc/rotator.hpp"
#include "src/bmc/unroll.hpp"
#include "src/circuit/miter.hpp"
#include "src/circuit/netlist.hpp"
#include "src/circuit/words.hpp"
#include "src/encode/coloring.hpp"
#include "src/encode/fpga_routing.hpp"
#include "src/encode/parity.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/planning.hpp"

namespace satproof::encode {

namespace {

/// Equivalence miter of ripple-carry vs carry-select adders.
Formula adder_miter(std::size_t width) {
  circuit::Netlist n;
  const circuit::Word a = circuit::input_word(n, width);
  const circuit::Word b = circuit::input_word(n, width);
  const auto rc = circuit::ripple_carry_adder(n, a, b);
  const auto cs = circuit::carry_select_adder(n, a, b);
  std::vector<circuit::Wire> outs_a = rc.sum;
  outs_a.push_back(rc.carry_out);
  std::vector<circuit::Wire> outs_b = cs.sum;
  outs_b.push_back(cs.carry_out);
  const circuit::Wire m = circuit::build_miter(n, outs_a, outs_b);
  return circuit::miter_to_cnf(n, m);
}

/// Equivalence miter of the two multiplier implementations (XOR-rich, the
/// longmult analog).
Formula multiplier_miter(std::size_t width) {
  circuit::Netlist n;
  const circuit::Word a = circuit::input_word(n, width);
  const circuit::Word b = circuit::input_word(n, width);
  const circuit::Word m1 = circuit::array_multiplier(n, a, b);
  const circuit::Word m2 = circuit::multiplier_commuted(n, a, b);
  const circuit::Wire m = circuit::build_miter(n, m1, m2);
  return circuit::miter_to_cnf(n, m);
}

/// BMC of the one-hot rotator: bad unreachable, UNSAT at every bound.
Formula rotator_bmc(unsigned width, unsigned k) {
  return bmc::unroll(bmc::make_rotator(width), k);
}

}  // namespace

std::vector<NamedInstance> unsat_suite(SuiteScale scale) {
  std::vector<NamedInstance> suite;

  if (scale == SuiteScale::Small) {
    suite.push_back({"bw_rand5", "AI planning",
                     blocks_world_random(5, -1, 3301).formula, true});
    suite.push_back({"fpga_route_9x4", "FPGA routing",
                     fpga_routing(9, 4, 16, 7001), true});
    suite.push_back({"miter_add8", "equivalence checking", adder_miter(8),
                     true});
    suite.push_back({"bmc_rotator4_k6", "bounded model checking",
                     rotator_bmc(4, 6), true});
    suite.push_back({"tseitin3x3", "parity", tseitin_torus(3, 3, 40499),
                     true});
    suite.push_back({"clique6_c5", "graph coloring", clique_coloring(6, 5),
                     true});
    suite.push_back({"php5", "pigeonhole", pigeonhole(5), true});
    suite.push_back({"miter_mult3", "equivalence checking",
                     multiplier_miter(3), true});
    return suite;
  }

  // Standard scale: twelve rows ordered (like the paper's Table 1) roughly
  // by solver runtime, with a hard tail.
  suite.push_back({"bw_rand7", "AI planning",
                   blocks_world_random(7, -1, 3301).formula, true});
  suite.push_back({"miter_add18", "equivalence checking", adder_miter(18),
                   true});
  suite.push_back({"bw_rand8", "AI planning",
                   blocks_world_random(8, -1, 9907).formula, true});
  suite.push_back({"fpga_route_16x7", "FPGA routing",
                   fpga_routing(16, 7, 24, 7001), true});
  suite.push_back({"miter_mult5", "equivalence checking", multiplier_miter(5),
                   true});
  suite.push_back({"bmc_rotator8_k12", "bounded model checking",
                   rotator_bmc(8, 12), true});
  suite.push_back({"tseitin3x5", "parity", tseitin_torus(3, 5, 11027), true});
  suite.push_back({"php8", "pigeonhole", pigeonhole(8), true});
  suite.push_back({"miter_mult6", "equivalence checking", multiplier_miter(6),
                   true});
  suite.push_back({"clique9_c8", "graph coloring", clique_coloring(9, 8),
                   true});
  // The hard tail is excluded from the Table 3 iteration, mirroring the
  // paper's omission of 6pipe/7pipe there.
  suite.push_back({"tseitin4x5", "parity", tseitin_torus(4, 5, 40499), false});
  suite.push_back({"php9", "pigeonhole", pigeonhole(9), false});
  return suite;
}

}  // namespace satproof::encode
