// Ablation B: breadth-first checker design choices (paper Section 3.3).
//
//  - Use-count storage: one in-memory counter per learned clause vs the
//    paper's temporary-file variant ("there is a possibility that even
//    keeping just one counter for each learned clause in main memory is
//    still not feasible").
//  - Ranged counting: splitting the first pass into several passes that
//    each count one ID range ("we may also need to break the first pass
//    into several passes"), trading extra trace scans for counter
//    locality.
//
// Reported: runtime and the counter storage's main-memory footprint per
// variant; results (resolutions, accept) are identical by construction —
// the checkers assert it.

#include <iostream>

#include "src/checker/breadth_first.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;
  using checker::BreadthFirstOptions;
  using checker::UseCountMode;

  struct Variant {
    const char* name;
    BreadthFirstOptions opts;
  };
  const Variant variants[] = {
      {"in-memory", {UseCountMode::InMemory, 0}},
      {"file-backed", {UseCountMode::FileBacked, 0}},
      {"file+ranged(4096)", {UseCountMode::FileBacked, 4096}},
  };

  util::Table table({"Instance", "Variant", "Time (s)", "Peak Mem (KB)",
                     "Resolutions"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    solver::Solver s;
    s.add_formula(inst.formula);
    trace::MemoryTraceWriter writer;
    s.set_trace_writer(&writer);
    if (s.solve() != solver::SolveResult::Unsatisfiable) {
      std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
      return 1;
    }
    const trace::MemoryTrace t = writer.take();

    std::uint64_t reference_resolutions = 0;
    for (const Variant& variant : variants) {
      trace::MemoryTraceReader reader(t);
      util::Timer timer;
      const checker::CheckResult res =
          checker::check_breadth_first(inst.formula, reader, variant.opts);
      const double secs = timer.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: " << variant.name << " failed on " << inst.name
                  << ": " << res.error << "\n";
        return 1;
      }
      if (reference_resolutions == 0) {
        reference_resolutions = res.stats.resolutions;
      } else if (reference_resolutions != res.stats.resolutions) {
        std::cerr << "FATAL: variants disagree on " << inst.name << "\n";
        return 1;
      }
      table.add_row({inst.name, variant.name, util::format_double(secs, 3),
                     util::format_kb(res.stats.peak_mem_bytes),
                     std::to_string(res.stats.resolutions)});
    }
  }

  std::cout << "Ablation B: breadth-first use-count storage variants\n"
            << "(paper Section 3.3: counters in a temp file, optionally "
               "counted range by range)\n\n"
            << table.to_string();
  return 0;
}
