# Empty compiler generated dependencies file for equivalence_checking.
# This may be replaced when dependencies are built.
