#pragma once

#include <cstdint>
#include <vector>

#include "src/circuit/netlist.hpp"

namespace satproof::bmc {

/// One state-holding element: `q` is the register's output *as seen by the
/// combinational logic* (it must be a primary input of the combinational
/// netlist), `next` is the wire computing the next-state value, and `init`
/// is the reset value.
struct Register {
  circuit::Wire q = circuit::kInvalidWire;
  circuit::Wire next = circuit::kInvalidWire;
  bool init = false;
};

/// A Mealy-style sequential circuit: combinational core plus registers plus
/// one `bad` wire flagging a property violation. Primary inputs of the
/// combinational netlist that are not register outputs are free inputs of
/// the design.
///
/// This is the substrate for the paper's bounded-model-checking rows
/// (barrel, longmult come from the BMC benchmark suite of Biere et al.):
/// bmc::unroll() turns "is `bad` reachable within k steps" into CNF.
struct SequentialCircuit {
  circuit::Netlist comb;
  std::vector<Register> registers;
  circuit::Wire bad = circuit::kInvalidWire;

  /// Free (non-register) primary inputs, in creation order.
  [[nodiscard]] std::vector<circuit::Wire> free_inputs() const;

  /// Simulates `steps` cycles from the reset state with the given values on
  /// the free inputs (input_values[t][i] = value of free input i at cycle
  /// t). Returns true iff `bad` is asserted at any of cycles 0..steps.
  [[nodiscard]] bool simulate_reaches_bad(
      const std::vector<std::vector<bool>>& input_values) const;
};

}  // namespace satproof::bmc
