// satproof-kern: the trusted certificate checker binary.
//
// Usage: satproof-kern <cnf> <cert.lrat>
// Prints VERIFIED (exit 0) or REJECTED with a diagnostic (exit 1);
// exit 2 on usage or file-open errors. Deliberately minimal — it links
// only src/cert/kernel.cpp and the C++ standard library.

#include <fstream>
#include <iostream>

#include "src/cert/kernel.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: satproof-kern <cnf> <cert.lrat>\n";
    return 2;
  }
  std::ifstream cnf(argv[1], std::ios::binary);
  if (!cnf) {
    std::cerr << "satproof-kern: cannot open CNF file " << argv[1] << "\n";
    return 2;
  }
  std::ifstream cert(argv[2], std::ios::binary);
  if (!cert) {
    std::cerr << "satproof-kern: cannot open certificate " << argv[2] << "\n";
    return 2;
  }
  const satproof::kern::VerifyResult r = satproof::kern::verify_lrat(cnf, cert);
  if (r.verified) {
    std::cout << "VERIFIED additions=" << r.additions
              << " deletions=" << r.deletions << "\n";
    return 0;
  }
  std::cout << "REJECTED";
  if (r.line != 0) std::cout << " line " << r.line;
  std::cout << ": " << r.error << "\n";
  return 1;
}
