#pragma once

#include <vector>

#include "src/circuit/netlist.hpp"
#include "src/proof/proof_dag.hpp"

namespace satproof::proof {

/// A Craig interpolant as a circuit over the shared (global) variables.
struct Interpolant {
  circuit::Netlist netlist;
  circuit::Wire output = circuit::kInvalidWire;
  /// One primary input per global variable: (input wire, CNF variable).
  /// Feed these to circuit::tseitin_into to conjoin the interpolant with
  /// CNF constraints over the same variables.
  std::vector<std::pair<circuit::Wire, Var>> bindings;
};

/// McMillan's interpolation system (CAV 2003 — the landmark application of
/// exactly the resolution proofs this library checks): given a refutation
/// of A ∧ B, derive a formula I over the shared variables with
///
///     A implies I,   I ∧ B unsatisfiable,   vars(I) ⊆ vars(A) ∩ vars(B).
///
/// `in_a[id]` says whether original clause `id` belongs to the A part.
/// Walks the proof DAG once: an A-leaf contributes the disjunction of its
/// global literals, a B-leaf contributes true, and each resolution step
/// combines partial interpolants with OR when the pivot is A-local and
/// AND otherwise. The result arrives as a netlist, so its defining
/// properties are themselves checkable with the solver (the tests do
/// exactly that).
///
/// The DAG must end in the empty clause (an unconditional refutation);
/// throws ProofError otherwise or when `in_a` has the wrong size.
[[nodiscard]] Interpolant mcmillan_interpolant(const Formula& f,
                                               const ProofDag& dag,
                                               const std::vector<bool>& in_a);

}  // namespace satproof::proof
