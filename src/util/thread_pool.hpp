#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace satproof::util {

/// Bounded worker pool over std::jthread.
///
/// Deliberately work-stealing-free: one shared FIFO guarded by one mutex.
/// The parallel checker submits coarse chunks (a slice of a wavefront per
/// task), so queue contention is negligible and the simple design keeps the
/// pool easy to reason about under TSan. Workers are started once and live
/// for the pool's lifetime; destruction requests stop and joins.
///
/// Tasks must not throw — a task that needs to report failure stores its
/// error somewhere the submitter can see (the checker records the first
/// failure per chunk and rethrows after wait_idle()).
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Requests stop and joins all workers. Pending tasks that have not
  /// started are discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Establishes a
  /// happens-before edge from all completed task bodies to the caller, so
  /// the caller may read anything the tasks wrote without further
  /// synchronization.
  void wait_idle();

 private:
  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t unfinished_ = 0;  // queued + currently executing
  std::vector<std::jthread> workers_;
};

}  // namespace satproof::util
