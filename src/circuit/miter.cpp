#include "src/circuit/miter.hpp"

#include <stdexcept>

#include "src/circuit/tseitin.hpp"

namespace satproof::circuit {

Wire build_miter(Netlist& n, std::span<const Wire> outs_a,
                 std::span<const Wire> outs_b) {
  if (outs_a.size() != outs_b.size()) {
    throw std::invalid_argument("build_miter: output width mismatch");
  }
  std::vector<Wire> diffs(outs_a.size());
  for (std::size_t i = 0; i < outs_a.size(); ++i) {
    diffs[i] = n.make_xor(outs_a[i], outs_b[i]);
  }
  return n.reduce_or(diffs);
}

Formula miter_to_cnf(const Netlist& n, Wire miter_out) {
  const Wire asserted[] = {miter_out};
  return tseitin(n, asserted).formula;
}

}  // namespace satproof::circuit
