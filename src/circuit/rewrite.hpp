#pragma once

#include <cstdint>

#include "src/circuit/netlist.hpp"

namespace satproof::circuit {

/// Knobs for the structural rewriter.
struct RewriteOptions {
  /// Rewrite AND/OR gates through De Morgan's laws (probabilistically).
  bool demorgan = true;
  /// Decompose XOR gates into AND/OR/NOT.
  bool xor_decompose = true;
  /// Decompose MUX gates into AND/OR/NOT.
  bool mux_decompose = true;
  /// Probability of applying a probabilistic rewrite at each gate.
  double rewrite_freq = 0.5;
  /// Probability of inserting a double negation after a gate.
  double double_negation_freq = 0.15;
  /// PRNG seed; the rewrite is deterministic in it.
  std::uint64_t seed = 1;
};

/// Result of rewrite(): the new netlist plus the old-to-new wire map.
struct RewriteResult {
  Netlist netlist;
  /// wire_map[old_wire] is the corresponding wire of the rewritten
  /// netlist (inputs map to inputs, in the same order).
  std::vector<Wire> wire_map;
};

/// Rewrites a netlist into a functionally equivalent but structurally
/// different one — the logic-synthesis workflow whose correctness question
/// ("did optimization change the function?") is what combinational
/// equivalence checking answers. Local identities only (De Morgan, XOR /
/// MUX decomposition, double negation), each exhaustively verified by the
/// tests, so a miter of a circuit against its rewrite is UNSAT by
/// construction: a generator for equivalence-checking instances with a
/// tunable structural distance.
[[nodiscard]] RewriteResult rewrite(const Netlist& n,
                                    const RewriteOptions& options = {});

/// Convenience for equivalence instances: builds one netlist containing
/// `n` and its rewrite over shared inputs, mitered over the given output
/// wires of `n`. The returned wire is true iff the two versions disagree —
/// unsatisfiable when asserted, by construction.
struct RewrittenMiter {
  Netlist netlist;
  Wire miter_out = kInvalidWire;
};
[[nodiscard]] RewrittenMiter rewrite_miter(const Netlist& n,
                                           const std::vector<Wire>& outputs,
                                           const RewriteOptions& options = {});

}  // namespace satproof::circuit
