// Micro-benchmarks (google-benchmark) for the hot kernels: resolution
// (reference sorted-merge vs the marker-based ChainResolver), solver BCP,
// trace codecs, and CNF parsing.

#include <benchmark/benchmark.h>

#include <sstream>

#include "src/checker/resolution.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/circuit/miter.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/circuit/words.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/solver/solver.hpp"
#include "src/util/rng.hpp"
#include "src/util/varint.hpp"

namespace {

using namespace satproof;

/// Builds a resolution chain: a long base clause and `steps` short partner
/// clauses, each clashing on exactly one variable of the running clause.
struct Chain {
  checker::SortedClause base;
  std::vector<checker::SortedClause> partners;
};

Chain make_chain(std::size_t base_len, std::size_t steps) {
  Chain c;
  // Base: ~x0 ... ~x(base_len-1).
  for (Var v = 0; v < base_len; ++v) c.base.push_back(Lit::neg(v));
  // Partner i resolves on x_i and introduces two fresh high literals.
  for (std::size_t i = 0; i < steps; ++i) {
    checker::SortedClause p{Lit::pos(static_cast<Var>(i)),
                            Lit::neg(static_cast<Var>(base_len + 2 * i)),
                            Lit::neg(static_cast<Var>(base_len + 2 * i + 1))};
    std::sort(p.begin(), p.end());
    c.partners.push_back(std::move(p));
  }
  return c;
}

void BM_ResolveSortedMerge(benchmark::State& state) {
  const Chain chain =
      make_chain(static_cast<std::size_t>(state.range(0)), 64);
  checker::SortedClause current, next;
  for (auto _ : state) {
    current = chain.base;
    for (const auto& p : chain.partners) {
      const auto r = checker::resolve(current, p, next);
      if (r.status != checker::ResolveStatus::Ok) state.SkipWithError("bad");
      current.swap(next);
    }
    benchmark::DoNotOptimize(current.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ResolveSortedMerge)->Arg(64)->Arg(512)->Arg(4096);

void BM_ChainResolver(benchmark::State& state) {
  const Chain chain =
      make_chain(static_cast<std::size_t>(state.range(0)), 64);
  checker::ChainResolver resolver;
  // Warm up to steady state before timing: pre-size the mark table for
  // every variable the chain touches and run one untimed chain, so the
  // first measured iteration doesn't pay the one-time mark-array growth
  // the replay backends amortize with reserve_vars().
  resolver.reserve_vars(static_cast<Var>(state.range(0) + 2 * 64));
  resolver.start(chain.base);
  for (const auto& p : chain.partners) (void)resolver.step(p);
  for (auto _ : state) {
    resolver.start(chain.base);
    for (const auto& p : chain.partners) {
      const auto r = resolver.step(p);
      if (r.status != checker::ResolveStatus::Ok) state.SkipWithError("bad");
    }
    benchmark::DoNotOptimize(resolver.lits().data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChainResolver)->Arg(64)->Arg(512)->Arg(4096);

void BM_SolverBcpThroughput(benchmark::State& state) {
  // Full solve of a propagation-heavy instance; items = propagations.
  std::uint64_t props = 0;
  for (auto _ : state) {
    solver::Solver s;
    s.add_formula(encode::pigeonhole(6));
    benchmark::DoNotOptimize(s.solve());
    props += s.stats().propagations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(props));
}
BENCHMARK(BM_SolverBcpThroughput);

void BM_SolveRandomKsat(benchmark::State& state) {
  const Formula f = encode::random_ksat(60, 256, 3, 1234);
  for (auto _ : state) {
    solver::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SolveRandomKsat);

void BM_VarintRoundTrip(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::uint64_t> values(4096);
  for (auto& v : values) v = rng.next_u64() >> (rng.next_below(60));
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    for (const auto v : values) util::append_varint(buf, v);
    std::size_t pos = 0;
    std::uint64_t sum = 0;
    while (pos < buf.size()) sum += util::decode_varint(buf, pos);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintRoundTrip);

void BM_Canonicalize(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<Lit> lits;
  for (int i = 0; i < 256; ++i) {
    lits.push_back(Lit(static_cast<Var>(rng.next_below(128)),
                       rng.next_bool()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::canonicalize(lits).data());
  }
}
BENCHMARK(BM_Canonicalize);

void BM_DimacsParse(benchmark::State& state) {
  std::ostringstream out;
  dimacs::write(out, encode::random_ksat(500, 2000, 3, 99));
  const std::string text = out.str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dimacs::parse_string(text).num_clauses());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_DimacsParse);

void BM_TseitinMultiplierMiter(benchmark::State& state) {
  for (auto _ : state) {
    circuit::Netlist n;
    const auto a = circuit::input_word(n, 8);
    const auto b = circuit::input_word(n, 8);
    const auto m1 = circuit::array_multiplier(n, a, b);
    const auto m2 = circuit::multiplier_commuted(n, a, b);
    const auto m = circuit::build_miter(n, m1, m2);
    benchmark::DoNotOptimize(circuit::miter_to_cnf(n, m).num_clauses());
  }
}
BENCHMARK(BM_TseitinMultiplierMiter);

}  // namespace

BENCHMARK_MAIN();
