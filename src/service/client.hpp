#pragma once

#include <cstdint>
#include <string>

#include "src/service/protocol.hpp"
#include "src/service/run_check.hpp"
#include "src/util/socket.hpp"

namespace satproof::service {

/// Client half of the service protocol: connects, streams a CNF + trace
/// pair in frames, and decodes the reply. One Client may submit any number
/// of jobs sequentially over its connection.
class Client {
 public:
  /// Connect helpers; both throw std::runtime_error on failure.
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(std::uint16_t port);

  /// Upload chunk size; exposed so tests can cover multi-chunk uploads
  /// without gigantic fixtures.
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  struct SubmitReply {
    bool transport_ok = false;  ///< frames flowed both ways
    bool accepted = false;      ///< server enqueued the job
    bool busy = false;          ///< rejected with BUSY (queue full)
    std::uint64_t job_id = 0;
    std::string error;  ///< transport/protocol/typed-error description

    /// Filled only for wait-mode submits.
    bool have_result = false;
    JobStatus status = JobStatus::kError;
    std::string verdict;
    std::string result_json;

    /// Filled for certify submits whose result was ok: the text LRAT
    /// certificate bytes from the RESULT_CERT frame.
    bool have_certificate = false;
    std::string certificate;
  };

  /// Submits one job. With `wait`, blocks until the server delivers the
  /// result frame. With `certify` (requires `wait`, df/hybrid backends),
  /// asks for an LRAT certificate and reads the RESULT_CERT frame that
  /// follows an ok result. Transport errors come back in the reply (never
  /// thrown).
  SubmitReply submit(const std::string& cnf_path,
                     const std::string& trace_path, Backend backend,
                     bool wait, unsigned jobs = 0,
                     std::uint32_t timeout_ms = 0, bool certify = false);

  /// Requests a metrics snapshot; empty string + `error` filled on failure.
  std::string stats_json(std::string* error = nullptr);

  /// Requests the snapshot in Prometheus text exposition format; empty
  /// string + `error` filled on failure.
  std::string stats_prometheus(std::string* error = nullptr);

  /// Raw socket access for protocol tests.
  [[nodiscard]] util::Socket& socket() { return sock_; }

 private:
  explicit Client(util::Socket sock) : sock_(std::move(sock)) {}

  /// Streams a file as data frames of `tag`; false on I/O failure.
  bool send_file(const std::string& path, FrameTag tag);

  util::Socket sock_;
};

}  // namespace satproof::service
