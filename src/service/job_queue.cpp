#include "src/service/job_queue.hpp"

#include <algorithm>

namespace satproof::service {

ShardedJobQueue::ShardedJobQueue(unsigned shards, std::size_t capacity)
    : capacity_(capacity), shards_(std::max(1u, shards)) {}

ShardedJobQueue::EnqueueResult ShardedJobQueue::try_enqueue(QueuedJob&& job) {
  if (closed_.load(std::memory_order_acquire)) {
    return EnqueueResult::kClosed;
  }
  // Reserve a slot before touching any shard. With concurrent producers
  // the fetch_add can transiently overshoot capacity_, in which case the
  // loser rolls back and reports kFull — admission never exceeds the cap.
  const std::size_t prior = size_.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= capacity_) {
    size_.fetch_sub(1, std::memory_order_acq_rel);
    return EnqueueResult::kFull;
  }

  const auto shard_index = static_cast<std::size_t>(
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size());
  Shard& s = shards_[shard_index];
  {
    std::lock_guard lock(s.mutex);
    if (closed_.load(std::memory_order_acquire)) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return EnqueueResult::kClosed;
    }
    if (job.lane == Lane::kBulk) {
      s.bulk.push_back(std::move(job));
      ++s.enqueued_bulk;
    } else {
      s.fast.push_back(std::move(job));
      ++s.enqueued_fast;
    }
  }
  {
    // Touch the sleep mutex before notifying so a worker that found
    // size_ == 0 under it is guaranteed to be in wait() by now.
    std::lock_guard lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
  return EnqueueResult::kAccepted;
}

std::optional<QueuedJob> ShardedJobQueue::take(Shard& s, Lane lane,
                                               bool from_back) {
  std::deque<QueuedJob>& q = lane == Lane::kFast ? s.fast : s.bulk;
  if (q.empty()) return std::nullopt;
  std::optional<QueuedJob> job;
  if (from_back) {
    job.emplace(std::move(q.back()));
    q.pop_back();
  } else {
    job.emplace(std::move(q.front()));
    q.pop_front();
  }
  size_.fetch_sub(1, std::memory_order_acq_rel);
  return job;
}

std::optional<QueuedJob> ShardedJobQueue::try_pop(unsigned worker) {
  const auto n = shards_.size();
  const auto own = static_cast<std::size_t>(worker) % n;

  // Strict lane priority across the whole queue: any fast-lane job on any
  // shard beats any bulk job, so a burst of multi-MB uploads can never
  // make a small submission wait behind them. Within a lane the own shard
  // is tried first (front; oldest), then victims in ring order (back).
  // Thieves take from the back, owners from the front — under contention
  // they meet in the middle instead of fighting over the same element.
  for (const Lane lane : {Lane::kFast, Lane::kBulk}) {
    {
      Shard& s = shards_[own];
      std::lock_guard lock(s.mutex);
      if (auto job = take(s, lane, /*from_back=*/false)) return job;
    }
    for (std::size_t k = 1; k < n; ++k) {
      Shard& victim = shards_[(own + k) % n];
      std::optional<QueuedJob> job;
      {
        std::lock_guard lock(victim.mutex);
        job = take(victim, lane, /*from_back=*/true);
      }
      if (job) {
        Shard& s = shards_[own];
        std::lock_guard lock(s.mutex);
        ++s.steals;
        return job;
      }
    }
  }
  return std::nullopt;
}

std::optional<QueuedJob> ShardedJobQueue::pop_blocking(unsigned worker) {
  for (;;) {
    if (auto job = try_pop(worker)) return job;
    std::unique_lock lock(sleep_mutex_);
    if (size_.load(std::memory_order_acquire) > 0) continue;
    if (closed_.load(std::memory_order_acquire)) return std::nullopt;
    sleep_cv_.wait(lock, [this] {
      return size_.load(std::memory_order_acquire) > 0 ||
             closed_.load(std::memory_order_acquire);
    });
  }
}

void ShardedJobQueue::close() {
  closed_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
}

ShardedJobQueue::ShardSnapshot ShardedJobQueue::shard_snapshot(
    unsigned shard) const {
  const Shard& s = shards_[shard % shards_.size()];
  std::lock_guard lock(s.mutex);
  ShardSnapshot out;
  out.depth_fast = s.fast.size();
  out.depth_bulk = s.bulk.size();
  out.enqueued_fast = s.enqueued_fast;
  out.enqueued_bulk = s.enqueued_bulk;
  out.steals = s.steals;
  return out;
}

}  // namespace satproof::service
