// Ablation H: the paper's trace format vs DRUP, its modern descendant.
//
// The paper's trace records every learned clause's resolve sources; a DRUP
// proof records only the clause literals (and deletions). Emitting both
// from the same runs quantifies the trade: DRUP files are smaller and
// format-agnostic, but forward DRUP checking must re-derive every clause
// by unit propagation, while the paper's checker just replays the recorded
// resolutions — the asymmetry that motivated recording sources in the
// first place (and, two decades later, the LRAT format's return to
// recorded antecedents).

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/memory.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;

  // Forward DRUP checking is the slow side; cap the hard tail and say so.
  constexpr std::uint64_t kMaxDerivations = 20000;
  std::vector<std::string> skipped;

  util::Table table({"Instance", "Trace (KB)", "DRUP (KB)", "Res Check (s)",
                     "DRUP Check (s)", "DRUP/Res"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    // One run, all three outputs.
    std::ostringstream ascii_out, drup_out;
    trace::AsciiTraceWriter trace_writer(ascii_out);
    trace::DrupWriter drup_writer(drup_out);
    trace::MemoryTraceWriter memory_writer;
    struct Tee final : trace::TraceWriter {
      trace::TraceWriter* a;
      trace::TraceWriter* b;
      void begin(Var v, ClauseId o) override {
        a->begin(v, o);
        b->begin(v, o);
      }
      void derivation(ClauseId id, std::span<const ClauseId> s) override {
        a->derivation(id, s);
        b->derivation(id, s);
      }
      void final_conflict(ClauseId id) override {
        a->final_conflict(id);
        b->final_conflict(id);
      }
      void level0(Var v, bool val, ClauseId ante) override {
        a->level0(v, val, ante);
        b->level0(v, val, ante);
      }
      void assumption(Var v, bool val) override {
        a->assumption(v, val);
        b->assumption(v, val);
      }
      void end() override {
        a->end();
        b->end();
      }
    } tee{};
    tee.a = &trace_writer;
    tee.b = &memory_writer;

    solver::Solver s;
    s.add_formula(inst.formula);
    s.set_trace_writer(&tee);
    s.set_drup_writer(&drup_writer);
    if (s.solve() != solver::SolveResult::Unsatisfiable) {
      std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
      return 1;
    }
    if (s.stats().learned_clauses > kMaxDerivations) {
      skipped.push_back(inst.name);
      continue;
    }

    double res_secs = 0.0;
    {
      const trace::MemoryTrace t = memory_writer.take();
      trace::MemoryTraceReader r(t);
      util::Timer timer;
      const checker::CheckResult res =
          checker::check_depth_first(inst.formula, r);
      res_secs = timer.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: resolution check failed on " << inst.name
                  << ": " << res.error << "\n";
        return 1;
      }
    }

    double drup_secs = 0.0;
    {
      std::istringstream proof(drup_out.str());
      util::Timer timer;
      const checker::DrupCheckResult res =
          checker::check_drup(inst.formula, proof);
      drup_secs = timer.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: DRUP check failed on " << inst.name << ": "
                  << res.error << "\n";
        return 1;
      }
    }

    table.add_row({inst.name, util::format_kb(ascii_out.str().size()),
                   util::format_kb(drup_out.str().size()),
                   util::format_double(res_secs, 3),
                   util::format_double(drup_secs, 3),
                   res_secs > 0.0
                       ? util::format_double(drup_secs / res_secs, 1) + "x"
                       : "n/a"});
  }

  std::cout << "Ablation H: the paper's resolution trace vs DRUP\n"
            << "(record-the-sources vs record-the-clauses: size vs checking "
               "effort)\n\n"
            << table.to_string();
  if (!skipped.empty()) {
    std::cout << "\nskipped (proof > " << kMaxDerivations
              << " derivations):";
    for (const auto& name : skipped) std::cout << ' ' << name;
    std::cout << "\n";
  }
  return 0;
}
