// Ablation D: resolution replay vs reverse-unit-propagation (RUP)
// cross-validation. The paper's approach replays the recorded resolution
// steps; its contemporaries (Van Gelder [13], Goldberg & Novikov) verify
// each derived clause semantically via unit propagation, the style that
// became DRUP/DRAT. Both run here over the same proofs:
// resolution checking is expected to be faster (it follows the recorded
// steps instead of re-deriving), while RUP needs no resolve-source lists
// at all — only the clauses themselves.

#include <iostream>

#include "bench/suite_runner.hpp"
#include "src/checker/depth_first.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/proof/rup.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Resolution Check (s)", "RUP Check (s)",
                     "RUP/Res", "RUP Propagations"});

  // RUP re-derives every clause semantically, which gets expensive on the
  // largest proofs (it is 1-2 orders slower than replaying the recorded
  // resolutions — that asymmetry is this ablation's result). Cap the rows
  // and say so, rather than silently hiding a 40-second tail.
  constexpr std::uint64_t kMaxDerivations = 20000;
  std::vector<std::string> skipped;

  for (auto& solved : bench::solve_suite(encode::SuiteScale::Standard)) {
    if (solved.trace.derivations.size() > kMaxDerivations) {
      skipped.push_back(solved.instance.name);
      continue;
    }
    const Formula& f = solved.instance.formula;

    double res_secs = 0.0;
    {
      trace::MemoryTraceReader reader(solved.trace);
      util::Timer t;
      const checker::CheckResult res = checker::check_depth_first(f, reader);
      res_secs = t.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: resolution check failed on "
                  << solved.instance.name << ": " << res.error << "\n";
        return 1;
      }
    }

    double rup_secs = 0.0;
    proof::RupResult rup;
    {
      // DAG extraction is shared infrastructure; time only the RUP part.
      trace::MemoryTraceReader reader(solved.trace);
      const proof::ProofDag dag = proof::extract_proof(f, reader);
      util::Timer t;
      rup = proof::check_rup(f, dag);
      rup_secs = t.elapsed_seconds();
      if (!rup.ok) {
        std::cerr << "FATAL: RUP check failed on " << solved.instance.name
                  << ": " << rup.error << "\n";
        return 1;
      }
    }

    table.add_row({solved.instance.name, util::format_double(res_secs, 3),
                   util::format_double(rup_secs, 3),
                   res_secs > 0.0
                       ? util::format_double(rup_secs / res_secs, 1) + "x"
                       : "n/a",
                   std::to_string(rup.propagations)});
  }

  std::cout << "Ablation D: resolution replay vs RUP cross-validation\n"
            << "(two methodologically independent verifications of the same "
               "proofs)\n\n"
            << table.to_string();
  if (!skipped.empty()) {
    std::cout << "\nskipped (proof > " << kMaxDerivations
              << " derivations; RUP cost grows superlinearly):";
    for (const auto& name : skipped) std::cout << ' ' << name;
    std::cout << "\n";
  }
  return 0;
}
