// Robustness fuzzing: checkers and trace readers must survive arbitrary
// corruption of trace bytes and of DIMACS text — either accepting a
// still-valid proof or rejecting with a diagnostic, but never crashing or
// hanging. (A validation tool that can be crashed by the artifact it is
// validating defeats its own purpose.)

#include <gtest/gtest.h>

#include <sstream>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/hybrid.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/ascii.hpp"
#include "src/trace/binary.hpp"
#include "src/util/rng.hpp"

namespace satproof {
namespace {

struct BaseTrace {
  Formula formula;
  std::string ascii;
  std::string binary;
};

const BaseTrace& base_trace() {
  static const BaseTrace base = [] {
    BaseTrace b;
    b.formula = encode::pigeonhole(4);
    std::ostringstream ascii, binary;
    trace::AsciiTraceWriter wa(ascii);
    trace::BinaryTraceWriter wb(binary);
    for (trace::TraceWriter* w :
         std::initializer_list<trace::TraceWriter*>{&wa, &wb}) {
      solver::Solver s;
      s.add_formula(b.formula);
      s.set_trace_writer(w);
      EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
    }
    b.ascii = ascii.str();
    b.binary = binary.str();
    return b;
  }();
  return base;
}

/// Runs every checker on the (possibly corrupt) trace text; the only
/// acceptable outcomes are a clean accept or a clean reject.
void check_all_survive(const std::string& text, bool binary) {
  const Formula& f = base_trace().formula;
  for (int which = 0; which < 3; ++which) {
    std::istringstream in(text);
    try {
      std::unique_ptr<trace::TraceReader> reader;
      if (binary) {
        reader = std::make_unique<trace::BinaryTraceReader>(in);
      } else {
        reader = std::make_unique<trace::AsciiTraceReader>(in);
      }
      checker::CheckResult res;
      switch (which) {
        case 0:
          res = checker::check_depth_first(f, *reader);
          break;
        case 1:
          res = checker::check_breadth_first(f, *reader);
          break;
        default:
          res = checker::check_hybrid(f, *reader);
          break;
      }
      if (!res.ok) {
        EXPECT_FALSE(res.error.empty());
      }
    } catch (const std::exception&) {
      // Header-parse failures surface as exceptions from the reader
      // constructor; that is a clean reject too.
    }
  }
}

class AsciiFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsciiFuzz, ByteFlipsNeverCrashCheckers) {
  util::Rng rng(GetParam());
  const std::string& base = base_trace().ascii;
  for (int round = 0; round < 60; ++round) {
    std::string corrupt = base;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.next_below(corrupt.size());
      corrupt[pos] = static_cast<char>(' ' + rng.next_below(95));
    }
    check_all_survive(corrupt, /*binary=*/false);
  }
}

TEST_P(AsciiFuzz, TruncationsNeverCrashCheckers) {
  util::Rng rng(GetParam());
  const std::string& base = base_trace().ascii;
  for (int round = 0; round < 20; ++round) {
    const std::size_t keep = rng.next_below(base.size());
    check_all_survive(base.substr(0, keep), /*binary=*/false);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsciiFuzz, ::testing::Values(1, 2, 3));

class BinaryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryFuzz, ByteFlipsNeverCrashCheckers) {
  util::Rng rng(GetParam());
  const std::string& base = base_trace().binary;
  for (int round = 0; round < 60; ++round) {
    std::string corrupt = base;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.next_below(corrupt.size());
      corrupt[pos] = static_cast<char>(rng.next_below(256));
    }
    check_all_survive(corrupt, /*binary=*/true);
  }
}

TEST_P(BinaryFuzz, TruncationsNeverCrashCheckers) {
  util::Rng rng(GetParam());
  const std::string& base = base_trace().binary;
  for (int round = 0; round < 20; ++round) {
    const std::size_t keep = rng.next_below(base.size());
    check_all_survive(base.substr(0, keep), /*binary=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryFuzz, ::testing::Values(4, 5, 6));

class DimacsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DimacsFuzz, CorruptedCnfTextNeverCrashesParser) {
  util::Rng rng(GetParam());
  std::ostringstream base_out;
  dimacs::write(base_out, encode::pigeonhole(3));
  const std::string base = base_out.str();
  for (int round = 0; round < 80; ++round) {
    std::string corrupt = base;
    const int flips = 1 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < flips; ++i) {
      corrupt[rng.next_below(corrupt.size())] =
          static_cast<char>(' ' + rng.next_below(95));
    }
    try {
      const Formula f = dimacs::parse_string(corrupt);
      (void)f.num_clauses();  // parsed fine: the corruption was benign
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find("dimacs"), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimacsFuzz, ::testing::Values(7, 8));

}  // namespace
}  // namespace satproof
