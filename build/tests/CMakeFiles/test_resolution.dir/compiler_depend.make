# Empty compiler generated dependencies file for test_resolution.
# This may be replaced when dependencies are built.
