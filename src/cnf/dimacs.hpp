#pragma once

#include <iosfwd>
#include <string>

#include "src/cnf/formula.hpp"

namespace satproof::dimacs {

/// Parses a DIMACS CNF stream.
///
/// Accepts the standard format: optional comment lines (`c ...`), a header
/// `p cnf <vars> <clauses>`, then whitespace-separated signed literals with
/// clauses terminated by 0. The header's variable count is honoured even
/// when some variables never occur (the paper's Table 1/Table 3 discussion
/// distinguishes declared from used variables). Throws std::runtime_error
/// with a line number on malformed input.
[[nodiscard]] Formula parse(std::istream& in);

/// Parses a DIMACS CNF string.
[[nodiscard]] Formula parse_string(const std::string& text);

/// Parses a DIMACS CNF file; throws std::runtime_error if unreadable.
[[nodiscard]] Formula parse_file(const std::string& path);

/// Writes `f` in DIMACS CNF format, with an optional comment block.
void write(std::ostream& out, const Formula& f, const std::string& comment = "");

/// Writes `f` to `path`; throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const Formula& f,
                const std::string& comment = "");

}  // namespace satproof::dimacs
