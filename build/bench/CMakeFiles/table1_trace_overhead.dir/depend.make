# Empty dependencies file for table1_trace_overhead.
# This may be replaced when dependencies are built.
