file(REMOVE_RECURSE
  "libsatproof_encode.a"
)
