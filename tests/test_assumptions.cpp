// Tests for solving under assumptions with checkable refutation proofs —
// the validated-incremental-query extension.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/hybrid.hpp"
#include "src/cnf/model.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/rng.hpp"

namespace satproof {
namespace {

using solver::SolveResult;

/// x0 -> x1 -> x2 chain plus a free variable.
Formula implication_chain() {
  Formula f(4);
  f.add_clause({Lit::neg(0), Lit::pos(1)});
  f.add_clause({Lit::neg(1), Lit::pos(2)});
  return f;
}

TEST(Assumptions, SatWhenConsistent) {
  solver::Solver s;
  s.add_formula(implication_chain());
  const Lit assume[] = {Lit::pos(0), Lit::pos(2)};
  ASSERT_EQ(s.solve(assume), SolveResult::Satisfiable);
  EXPECT_EQ(s.model()[0], LBool::True);
  EXPECT_EQ(s.model()[2], LBool::True);
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(Assumptions, ModelRespectsAssumedPolarity) {
  solver::Solver s;
  s.add_formula(implication_chain());
  const Lit assume[] = {Lit::neg(3)};
  ASSERT_EQ(s.solve(assume), SolveResult::Satisfiable);
  EXPECT_EQ(s.model()[3], LBool::False);
}

TEST(Assumptions, UnsatWithFailedSubset) {
  // Assume x0 and ~x2: the chain forces x2, so both are responsible.
  solver::Solver s;
  s.add_formula(implication_chain());
  const Lit assume[] = {Lit::pos(0), Lit::neg(2)};
  ASSERT_EQ(s.solve(assume), SolveResult::Unsatisfiable);
  const auto& failed = s.failed_assumptions();
  ASSERT_FALSE(failed.empty());
  // Every failed literal is one of the input assumptions.
  for (const Lit l : failed) {
    EXPECT_TRUE(l == Lit::pos(0) || l == Lit::neg(2)) << to_string(l);
  }
  // The failing assumption itself is always included.
  EXPECT_NE(std::find(failed.begin(), failed.end(), Lit::neg(2)),
            failed.end());
}

TEST(Assumptions, AllCheckersValidateTheRefutation) {
  solver::Solver s;
  s.add_formula(implication_chain());
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  const Lit assume[] = {Lit::pos(0), Lit::neg(2)};
  ASSERT_EQ(s.solve(assume), SolveResult::Unsatisfiable);
  const Formula f = implication_chain();
  const trace::MemoryTrace t = w.take();

  trace::MemoryTraceReader r1(t), r2(t), r3(t);
  const checker::CheckResult df = checker::check_depth_first(f, r1);
  const checker::CheckResult bf = checker::check_breadth_first(f, r2);
  const checker::CheckResult hy = checker::check_hybrid(f, r3);
  for (const auto* res : {&df, &bf, &hy}) {
    ASSERT_TRUE(res->ok) << res->error;
    // The derived clause refutes the assumption subset: its literals are
    // negations of assumed literals.
    ASSERT_FALSE(res->failed_assumption_clause.empty());
    for (const Lit l : res->failed_assumption_clause) {
      EXPECT_TRUE(l == Lit::neg(0) || l == Lit::pos(2)) << to_string(l);
    }
  }
  EXPECT_EQ(df.failed_assumption_clause, bf.failed_assumption_clause);
  EXPECT_EQ(df.failed_assumption_clause, hy.failed_assumption_clause);
}

TEST(Assumptions, FailureAtLevelZeroImplication) {
  // x0 is forced false by unit clauses; assuming x0 fails immediately with
  // a proof that resolves down to {~x0}.
  Formula f(1);
  f.add_clause({Lit::neg(0)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  const Lit assume[] = {Lit::pos(0)};
  ASSERT_EQ(s.solve(assume), SolveResult::Unsatisfiable);
  ASSERT_EQ(s.failed_assumptions().size(), 1u);
  EXPECT_EQ(s.failed_assumptions()[0], Lit::pos(0));

  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  const checker::CheckResult df = checker::check_depth_first(f, r);
  ASSERT_TRUE(df.ok) << df.error;
  ASSERT_EQ(df.failed_assumption_clause.size(), 1u);
  EXPECT_EQ(df.failed_assumption_clause[0], Lit::neg(0));
}

TEST(Assumptions, UnconditionalUnsatHasEmptyFailedSet) {
  solver::Solver s;
  s.add_formula(encode::pigeonhole(4));
  const Lit assume[] = {Lit::pos(0)};
  ASSERT_EQ(s.solve(assume), SolveResult::Unsatisfiable);
  // The formula is UNSAT regardless of the assumption... unless the
  // search happened to trip over the assumption first. Either way the
  // reported failed set must be consistent with the trace mode.
  if (s.failed_assumptions().empty()) {
    SUCCEED();
  } else {
    EXPECT_EQ(s.failed_assumptions()[0].var(), 0u);
  }
}

TEST(Assumptions, DuplicateVariableRejected) {
  solver::Solver s;
  s.add_formula(implication_chain());
  const Lit assume[] = {Lit::pos(0), Lit::neg(0)};
  EXPECT_THROW((void)s.solve(assume), std::invalid_argument);
  const Lit assume2[] = {Lit::pos(1), Lit::pos(1)};
  solver::Solver s2;
  s2.add_formula(implication_chain());
  EXPECT_THROW((void)s2.solve(assume2), std::invalid_argument);
}

TEST(Assumptions, UnknownVariablesBecomeFresh) {
  Formula f(1);
  f.add_clause({Lit::pos(0)});
  solver::Solver s;
  s.add_formula(f);
  const Lit assume[] = {Lit::neg(7)};
  ASSERT_EQ(s.solve(assume), SolveResult::Satisfiable);
  EXPECT_EQ(s.num_vars(), 8u);
  EXPECT_EQ(s.model()[7], LBool::False);
}

TEST(Assumptions, AssumptionSubsetIsReallyRefuted) {
  // Re-solve with only the failed subset assumed: still UNSAT — the
  // defining property of the failed-assumption set.
  const Formula f = encode::random_ksat(20, 70, 3, 404);
  solver::Solver probe;
  probe.add_formula(f);
  if (probe.solve() != SolveResult::Satisfiable) {
    GTEST_SKIP() << "need a satisfiable base formula";
  }

  // Assume the negation of the found model on the first 6 variables: that
  // exact combination is excluded together with the rest of the model, but
  // alone it may be SAT or UNSAT; try until an UNSAT case shows up.
  util::Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<Lit> assume;
    for (Var v = 0; v < 8; ++v) {
      assume.push_back(Lit(v, rng.next_bool()));
    }
    solver::Solver s;
    s.add_formula(f);
    if (s.solve(assume) != SolveResult::Unsatisfiable) continue;
    const std::vector<Lit> failed = s.failed_assumptions();
    ASSERT_FALSE(failed.empty());

    solver::Solver recheck;
    recheck.add_formula(f);
    EXPECT_EQ(recheck.solve(failed), SolveResult::Unsatisfiable);
    return;
  }
  GTEST_SKIP() << "no UNSAT assumption draw found";
}

/// Property sweep: random assumption queries over random formulas, with
/// every UNSAT answer's trace validated by all three checkers and every
/// SAT answer's model honouring the assumptions.
class AssumptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssumptionSweep, TracesValidateAndModelsHonourAssumptions) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    const unsigned n = 15 + static_cast<unsigned>(rng.next_below(10));
    const Formula f = encode::random_ksat(
        n, static_cast<unsigned>(n * 4.0), 3, rng.next_u64());

    std::vector<Var> vars(n);
    for (Var v = 0; v < n; ++v) vars[v] = v;
    rng.shuffle(vars.begin(), vars.end());
    std::vector<Lit> assume;
    const std::size_t k = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < k; ++i) {
      assume.push_back(Lit(vars[i], rng.next_bool()));
    }

    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter w;
    s.set_trace_writer(&w);
    const SolveResult res = s.solve(assume);

    if (res == SolveResult::Satisfiable) {
      EXPECT_TRUE(satisfies(f, s.model()));
      for (const Lit a : assume) {
        EXPECT_EQ(value_of(a, s.model()), LBool::True) << to_string(a);
      }
      continue;
    }
    ASSERT_EQ(res, SolveResult::Unsatisfiable);
    const trace::MemoryTrace t = w.take();
    trace::MemoryTraceReader r1(t), r2(t), r3(t);
    const checker::CheckResult df = checker::check_depth_first(f, r1);
    const checker::CheckResult bf = checker::check_breadth_first(f, r2);
    const checker::CheckResult hy = checker::check_hybrid(f, r3);
    EXPECT_TRUE(df.ok) << df.error;
    EXPECT_TRUE(bf.ok) << bf.error;
    EXPECT_TRUE(hy.ok) << hy.error;

    // The checker-derived refutation must cover a subset of the negated
    // assumptions, consistent with the solver's own failed set.
    for (const Lit l : df.failed_assumption_clause) {
      const auto hit = std::find_if(
          assume.begin(), assume.end(),
          [l](Lit a) { return a == ~l; });
      EXPECT_NE(hit, assume.end()) << to_string(l);
    }
    if (!df.failed_assumption_clause.empty()) {
      // Negations of the solver's failed set == checker's derived clause,
      // up to ordering.
      std::vector<Lit> negated;
      for (const Lit a : s.failed_assumptions()) negated.push_back(~a);
      std::sort(negated.begin(), negated.end());
      std::vector<Lit> derived = df.failed_assumption_clause;
      std::sort(derived.begin(), derived.end());
      // The checker's clause can be a subset (the solver's marking may
      // over-approximate), never the other way round... both derive from
      // the same antecedent cone, so in practice they coincide; assert
      // subset to stay robust.
      for (const Lit l : derived) {
        EXPECT_TRUE(std::binary_search(negated.begin(), negated.end(), l))
            << to_string(l);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssumptionSweep,
                         ::testing::Values(21, 42, 63, 84, 105, 126));

}  // namespace
}  // namespace satproof
