file(REMOVE_RECURSE
  "libsatproof_util.a"
)
