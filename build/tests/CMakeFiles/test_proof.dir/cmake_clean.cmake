file(REMOVE_RECURSE
  "CMakeFiles/test_proof.dir/test_proof.cpp.o"
  "CMakeFiles/test_proof.dir/test_proof.cpp.o.d"
  "test_proof"
  "test_proof.pdb"
  "test_proof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
