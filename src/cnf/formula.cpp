#include "src/cnf/formula.hpp"

#include <stdexcept>

namespace satproof {

ClauseId Formula::add_clause(std::span<const Lit> lits) {
  for (const Lit lit : lits) {
    if (lit == Lit::invalid()) {
      throw std::invalid_argument("Formula::add_clause: invalid literal");
    }
    ensure_var(lit.var());
  }
  const ClauseId id = offsets_.size();
  offsets_.push_back(pool_.size());
  sizes_.push_back(static_cast<std::uint32_t>(lits.size()));
  pool_.insert(pool_.end(), lits.begin(), lits.end());
  return id;
}

std::span<const Lit> Formula::clause(ClauseId id) const {
  if (id >= offsets_.size()) {
    throw std::out_of_range("Formula::clause: id out of range");
  }
  return {pool_.data() + offsets_[id], sizes_[id]};
}

std::size_t Formula::num_used_vars() const {
  std::vector<bool> used(num_vars_, false);
  for (const Lit lit : pool_) used[lit.var()] = true;
  std::size_t n = 0;
  for (const bool u : used) n += u ? 1 : 0;
  return n;
}

Formula Formula::subformula(std::span<const ClauseId> ids) const {
  Formula sub(num_vars_);
  for (const ClauseId id : ids) sub.add_clause(clause(id));
  return sub;
}

}  // namespace satproof
