# CMake generated Testfile for 
# Source directory: /root/repo/src/simplify
# Build directory: /root/repo/build/src/simplify
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
