// Corrupt-certificate rejection sweep for the trusted kernel: every
// tampering mode — altered hints, reordered steps, bad or missing
// deletions, truncated files, a certificate that never derives the empty
// clause — must REJECT with a diagnostic naming the offending line (text)
// or record index (binary). The kernel is the trust anchor of the whole
// certificate pipeline, so its rejection behavior is pinned as precisely
// as its acceptance behavior.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/cert/kernel.hpp"

namespace satproof {
namespace {

// An 8-clause UNSAT fixture (every assignment falsified by construction).
constexpr const char* kCnf =
    "p cnf 4 8\n"
    "1 2 0\n"
    "1 -2 0\n"
    "-1 3 0\n"
    "-1 -3 0\n"
    "2 4 0\n"
    "-2 -4 0\n"
    "3 -4 0\n"
    "-3 4 0\n";

// The canonical valid certificate: derive {1} from clauses 1,2, then the
// empty clause from 9 (unit) and clauses 3,4.
constexpr const char* kValidCert =
    "9 1 0 1 2 0\n"
    "10 0 9 3 4 0\n";

kern::VerifyResult verify(const std::string& cert,
                          const std::string& cnf = kCnf) {
  std::istringstream cnf_in(cnf);
  std::istringstream cert_in(cert);
  return kern::verify_lrat(cnf_in, cert_in);
}

TEST(CertCorrupt, ValidBaselineVerifies) {
  const kern::VerifyResult r = verify(kValidCert);
  EXPECT_TRUE(r.verified) << r.error;
  EXPECT_EQ(r.additions, 2u);
  EXPECT_EQ(r.deletions, 0u);
}

// --- tampered hints ----------------------------------------------------

TEST(CertCorrupt, SatisfiedHintRejects) {
  // Hint 3 is {-1, 3}; under the assignment falsifying {1}, -1 is true.
  const kern::VerifyResult r = verify("9 1 0 1 3 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("satisfied"), std::string::npos) << r.error;
}

TEST(CertCorrupt, NonUnitHintRejects) {
  // Deriving the empty clause directly: hint 3 = {-1, 3} has two
  // unassigned literals under the empty assignment.
  const kern::VerifyResult r = verify("9 0 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("neither unit nor falsified"), std::string::npos)
      << r.error;
}

TEST(CertCorrupt, HintsEndingWithoutConflictReject) {
  const kern::VerifyResult r = verify("9 1 0 1 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("without reaching a conflict"), std::string::npos)
      << r.error;
}

TEST(CertCorrupt, UnknownHintRejects) {
  const kern::VerifyResult r = verify("9 1 0 1 42 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("unknown clause 42"), std::string::npos) << r.error;
}

TEST(CertCorrupt, NegativeRatHintRejects) {
  const kern::VerifyResult r = verify("9 1 0 -1 2 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("RAT"), std::string::npos) << r.error;
}

// --- reordered steps ---------------------------------------------------

TEST(CertCorrupt, ReorderedStepsReject) {
  // Swapping the two additions makes line 1 reference clause 9 before it
  // exists.
  const kern::VerifyResult r = verify("10 0 9 3 4 0\n9 1 0 1 2 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("unknown clause 9"), std::string::npos) << r.error;
}

TEST(CertCorrupt, NonIncreasingIdRejects) {
  const kern::VerifyResult r = verify("9 1 0 1 2 0\n5 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 2u);
  EXPECT_NE(r.error.find("does not exceed"), std::string::npos) << r.error;
}

// --- deletions ---------------------------------------------------------

TEST(CertCorrupt, UseAfterDeleteRejects) {
  // A deletion the emitter would never write: clause 9 is still needed.
  const kern::VerifyResult r =
      verify("9 1 0 1 2 0\n9 d 9 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 3u);
  EXPECT_NE(r.error.find("deleted clause 9"), std::string::npos) << r.error;
}

TEST(CertCorrupt, DeleteUnknownClauseRejects) {
  const kern::VerifyResult r =
      verify("9 1 0 1 2 0\n9 d 42 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 2u);
  EXPECT_NE(r.error.find("unknown clause 42"), std::string::npos) << r.error;
}

TEST(CertCorrupt, DoubleDeleteRejects) {
  const kern::VerifyResult r =
      verify("9 1 0 1 2 0\n9 d 5 0\n9 d 5 0\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 3u);
  EXPECT_NE(r.error.find("already deleted"), std::string::npos) << r.error;
}

TEST(CertCorrupt, DeletingUnusedClauseStillVerifies) {
  // Deleting a clause the rest of the proof never touches is legal; the
  // rejection cases above are about *misuse*, not deletion per se.
  const kern::VerifyResult r =
      verify("9 1 0 1 2 0\n9 d 5 6 0\n10 0 9 3 4 0\n");
  EXPECT_TRUE(r.verified) << r.error;
  EXPECT_EQ(r.deletions, 2u);
}

// --- truncation and malformed records ----------------------------------

TEST(CertCorrupt, TruncatedHintListRejects) {
  const kern::VerifyResult r = verify("9 1 0 1 2 0\n10 0 9 3");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 2u);
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
}

TEST(CertCorrupt, TruncatedLiteralListRejects) {
  const kern::VerifyResult r = verify("9 1");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
}

TEST(CertCorrupt, TrailingTokensReject) {
  const kern::VerifyResult r = verify("9 1 0 1 2 0 7\n10 0 9 3 4 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("trailing tokens"), std::string::npos) << r.error;
}

TEST(CertCorrupt, EmptyCertificateRejects) {
  const kern::VerifyResult r = verify("");
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.error.find("empty"), std::string::npos) << r.error;
}

// --- certificates that never reach the empty clause --------------------

TEST(CertCorrupt, MissingFinalEmptyClauseRejects) {
  const kern::VerifyResult r = verify("9 1 0 1 2 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("without deriving the empty clause"),
            std::string::npos)
      << r.error;
}

TEST(CertCorrupt, NonEmptyFinalClauseRejects) {
  // Both steps check, but the last derived clause is {1}, not {} — the
  // certificate proves nothing about unconditional unsatisfiability.
  const kern::VerifyResult r = verify("9 1 0 1 2 0\n10 1 0 9 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 2u);
  EXPECT_NE(r.error.find("without deriving the empty clause"),
            std::string::npos)
      << r.error;
}

// --- binary (GRIT-style) variant ---------------------------------------

// The fixture's valid binary certificate (same proof, varint-encoded).
std::string valid_binary() {
  return std::string("\x61\x09\x02\x00\x01\x02\x00"
                     "\x61\x0a\x00\x09\x03\x04\x00",
                     14);
}

TEST(CertCorrupt, ValidBinaryVerifies) {
  const kern::VerifyResult r = verify(valid_binary());
  EXPECT_TRUE(r.verified) << r.error;
  EXPECT_EQ(r.additions, 2u);
}

TEST(CertCorrupt, TruncatedBinaryRejects) {
  std::string cert = valid_binary();
  cert.resize(cert.size() - 3);  // cut mid-record
  const kern::VerifyResult r = verify(cert);
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 2u);  // record index, not byte offset
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
}

TEST(CertCorrupt, BinaryUnknownTagRejects) {
  std::string cert = valid_binary();
  cert[7] = 'x';  // second record's tag byte
  const kern::VerifyResult r = verify(cert);
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 2u);
  EXPECT_NE(r.error.find("unknown record tag"), std::string::npos)
      << r.error;
}

TEST(CertCorrupt, BinaryBadLiteralEncodingRejects) {
  std::string cert = valid_binary();
  cert[2] = '\x01';  // literal varint 1 => magnitude 0: invalid
  const kern::VerifyResult r = verify(cert);
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
}

TEST(CertCorrupt, BinaryTamperedHintRejects) {
  std::string cert = valid_binary();
  cert[4] = '\x03';  // first record's hints become 3,2: hint 3 satisfied
  const kern::VerifyResult r = verify(cert);
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.line, 1u);
  EXPECT_NE(r.error.find("satisfied"), std::string::npos) << r.error;
}

// --- hostile CNF input -------------------------------------------------

TEST(CertCorrupt, CnfLiteralOutOfRangeRejects) {
  const kern::VerifyResult r =
      verify(kValidCert, "p cnf 2 1\n1 5 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.error.find("exceeds the declared variable count"),
            std::string::npos)
      << r.error;
}

TEST(CertCorrupt, CnfClauseCountMismatchRejects) {
  const kern::VerifyResult r = verify(kValidCert, "p cnf 2 3\n1 2 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.error.find("declares 3 clauses"), std::string::npos)
      << r.error;
}

TEST(CertCorrupt, CnfMissingHeaderRejects) {
  const kern::VerifyResult r = verify(kValidCert, "1 2 0\n");
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.error.find("problem line"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace satproof
