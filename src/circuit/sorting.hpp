#pragma once

#include "src/circuit/words.hpp"

namespace satproof::circuit {

/// Sorting networks over single-bit signals. A comparator on bits is just
/// (max, min) = (OR, AND), and by the 0-1 principle a comparator network
/// that sorts every bit vector sorts everything — which the tests verify
/// exhaustively.
///
/// The two constructions are the classic structurally-distant pair:
/// Batcher's odd-even mergesort uses O(n log^2 n) comparators in a
/// recursive merge pattern, odd-even transposition sort uses n rounds of
/// neighbour exchanges (O(n^2)). Miters of the two are equivalence
/// instances with no arithmetic structure at all, complementing the
/// adder/multiplier families.

/// Sorts `in` descending (out[0] is the OR-max) with Batcher's odd-even
/// mergesort. The width must be a power of two.
[[nodiscard]] Word odd_even_mergesort(Netlist& n, const Word& in);

/// Sorts `in` descending with odd-even transposition (bubble) rounds.
/// Any width.
[[nodiscard]] Word transposition_sort(Netlist& n, const Word& in);

}  // namespace satproof::circuit
