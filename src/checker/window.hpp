#pragma once

#include "src/checker/common.hpp"
#include "src/checker/use_count.hpp"

namespace satproof::checker {

/// Options for the window-shifting checker.
struct WindowOptions {
  /// Memory budget in bytes for the checker's trace-derived structures:
  /// the resident index (derivation IDs, use counts, reachability bits,
  /// the level-0 table) plus one shifting window of derivation source
  /// lists. The budget decides how the trace is partitioned into windows;
  /// a budget the resident index alone exceeds fails gracefully with a
  /// diagnostic naming the shortfall. The live-clause frontier is the
  /// proof's own working set (the same bound the breadth-first checker
  /// carries) and is not charged against the budget. 0 = unlimited, which
  /// degenerates to a single window.
  std::size_t mem_limit_bytes = 256u << 20;

  /// Use-count storage, as in the breadth-first checker.
  UseCountMode use_counts = UseCountMode::InMemory;

  /// When non-null, clause storage borrows this arena instead of growing a
  /// private one (see DepthFirstOptions::recycle_arena).
  util::ClauseArena* recycle_arena = nullptr;

  /// When true and the check succeeds, CheckResult::core is filled with
  /// the sorted original-clause IDs of the unsatisfiable core —
  /// byte-identical to the depth-first checker's core for the same trace.
  bool collect_core = false;
};

/// Window-shifting proof checking (Chen, "Fast Verifying Proofs of
/// Propositional Unsatisfiability via Window Shifting"): most of the
/// depth-first checker's speed at a fixed memory budget, for traces far
/// larger than RAM.
///
/// The hybrid checker already builds only the clauses reachable from the
/// final conflict and releases each when its use count exhausts — but its
/// pass 1 keeps the *entire* DAG structure (every derivation's source
/// list) resident, which for a multi-GB trace is itself gigabytes. This
/// checker keeps only a few bytes per derivation resident (its ID, its use
/// count, one reachability bit) and partitions the source lists into
/// *windows* sized to the budget:
///
///   A. stream the trace once, validating structure and recording window
///      boundaries so each window's source lists fit the budget;
///   B. sweep the windows backward — seek to each window, reload just its
///      source lists, and settle reachability + use counts (sources always
///      precede consumers, so one reverse sweep suffices) — releasing each
///      window's trace pages as the sweep shifts past them;
///   C. stream the trace forward again, replaying reachable derivations
///      against the frontier of clauses still referenced by later windows
///      (clauses leave the arena the moment their reachable uses are
///      behind), releasing trace pages as the window shifts.
///
/// Verdicts, cores, and stats match the depth-first checker: when the
/// final derivation used antecedents differ from the pinned set, a last
/// backward structural sweep (same windowed discipline) recomputes the
/// exact depth-first cone for clauses_built / resolutions / core.
///
/// Peak memory: resident index + one window + the clause frontier —
/// independent of trace length for a fixed budget and frontier.
[[nodiscard]] CheckResult check_window(const Formula& f,
                                       trace::TraceReader& reader,
                                       const WindowOptions& options = {});

}  // namespace satproof::checker
