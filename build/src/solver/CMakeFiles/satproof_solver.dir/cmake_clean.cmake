file(REMOVE_RECURSE
  "CMakeFiles/satproof_solver.dir/clause_db.cpp.o"
  "CMakeFiles/satproof_solver.dir/clause_db.cpp.o.d"
  "CMakeFiles/satproof_solver.dir/solver.cpp.o"
  "CMakeFiles/satproof_solver.dir/solver.cpp.o.d"
  "CMakeFiles/satproof_solver.dir/var_order.cpp.o"
  "CMakeFiles/satproof_solver.dir/var_order.cpp.o.d"
  "libsatproof_solver.a"
  "libsatproof_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
