// Validated incremental queries — what-if analysis over one formula.
//
// A router explores placement hypotheses against a fixed channel: "what if
// net 0 went on track 2 and net 3 on track 2 as well?" Each hypothesis is
// an assumption query against the same CNF; an UNSAT answer comes with a
// resolution proof that the formula refutes exactly that assumption
// subset, validated by the independent checker before the router trusts
// it. (The paper validates one-shot UNSAT answers; this extends the same
// trace format to UNSAT-under-assumptions.)

#include <iostream>
#include <vector>

#include "src/checker/depth_first.hpp"
#include "src/encode/fpga_routing.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

int main() {
  using namespace satproof;

  constexpr unsigned kNets = 8;
  constexpr unsigned kTracks = 4;
  // Uncongested channel: routable, so every failure below is caused by the
  // hypotheses, not the channel.
  const Formula f =
      encode::fpga_routing(kNets, kTracks, 16, 99, /*congested=*/false);
  const auto track_var = [](unsigned net, unsigned track) {
    return static_cast<Var>(net * kTracks + track);
  };
  std::cout << "Channel: " << kNets << " nets, " << kTracks
            << " tracks (routable as-is)\n\n";

  struct Query {
    const char* what;
    std::vector<Lit> assume;
  };
  const Query queries[] = {
      {"net 0 on track 1",
       {Lit::pos(track_var(0, 1))}},
      {"nets 0 and 1 both on track 2",
       {Lit::pos(track_var(0, 2)), Lit::pos(track_var(1, 2))}},
      {"net 2 banned from tracks 0-2",
       {Lit::neg(track_var(2, 0)), Lit::neg(track_var(2, 1)),
        Lit::neg(track_var(2, 2))}},
      {"net 3 pinned to track 0, net 4 pinned to track 1",
       {Lit::pos(track_var(3, 0)), Lit::neg(track_var(3, 1)),
        Lit::neg(track_var(3, 2)), Lit::neg(track_var(3, 3)),
        Lit::neg(track_var(4, 0)), Lit::pos(track_var(4, 1))}},
  };

  for (const Query& q : queries) {
    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter w;
    s.set_trace_writer(&w);
    const auto res = s.solve(q.assume);
    std::cout << "query: " << q.what << "\n";
    if (res == solver::SolveResult::Satisfiable) {
      std::cout << "  feasible; routing found\n\n";
      continue;
    }
    std::cout << "  infeasible; failed hypothesis literals:";
    for (const Lit l : s.failed_assumptions()) std::cout << ' '
                                                         << l.to_dimacs();
    std::cout << "\n";

    // Do not trust the refutation until the independent checker replays
    // its resolution proof.
    const trace::MemoryTrace t = w.take();
    trace::MemoryTraceReader reader(t);
    const checker::CheckResult check = checker::check_depth_first(f, reader);
    if (!check.ok) {
      std::cout << "  PROOF CHECK FAILED: " << check.error << "\n";
      return 1;
    }
    std::cout << "  refutation proof validated ("
              << check.stats.resolutions << " resolutions); derived clause:";
    for (const Lit l : check.failed_assumption_clause) {
      std::cout << ' ' << l.to_dimacs();
    }
    std::cout << "\n\n";
  }
  return 0;
}
