file(REMOVE_RECURSE
  "CMakeFiles/test_checker_components.dir/test_checker_components.cpp.o"
  "CMakeFiles/test_checker_components.dir/test_checker_components.cpp.o.d"
  "test_checker_components"
  "test_checker_components.pdb"
  "test_checker_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
