file(REMOVE_RECURSE
  "CMakeFiles/bmc_demo.dir/bmc_demo.cpp.o"
  "CMakeFiles/bmc_demo.dir/bmc_demo.cpp.o.d"
  "bmc_demo"
  "bmc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
