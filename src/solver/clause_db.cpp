#include "src/solver/clause_db.hpp"

namespace satproof::solver {

ClauseSlot ClauseDb::alloc(std::span<const Lit> lits, ClauseId id,
                           bool learned) {
  ClauseSlot slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
  } else {
    slot = static_cast<ClauseSlot>(slots_.size());
    slots_.emplace_back();
  }
  DbClause& c = slots_[slot];
  c.id = id;
  c.activity = 0.0f;
  c.learned = learned;
  c.live = true;
  c.lits.assign(lits.begin(), lits.end());
  if (learned) ++num_learned_;
  mem_.add(util::clause_footprint_bytes(lits.size()));
  return slot;
}

void ClauseDb::free(ClauseSlot slot) {
  DbClause& c = slots_[slot];
  mem_.remove(util::clause_footprint_bytes(c.lits.size()));
  if (c.learned) --num_learned_;
  c.live = false;
  c.id = kInvalidClauseId;
  c.lits.clear();
  c.lits.shrink_to_fit();
  free_list_.push_back(slot);
}

std::vector<ClauseSlot> ClauseDb::live_slots() const {
  std::vector<ClauseSlot> out;
  out.reserve(slots_.size());
  for (ClauseSlot s = 0; s < slots_.size(); ++s) {
    if (slots_[s].live) out.push_back(s);
  }
  return out;
}

}  // namespace satproof::solver
