// Tests for the benchmark generators: structural properties and known
// SAT/UNSAT statuses at boundary parameters (solver as oracle, small sizes).

#include <gtest/gtest.h>

#include "src/cnf/model.hpp"
#include "src/encode/coloring.hpp"
#include "src/encode/fpga_routing.hpp"
#include "src/encode/parity.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/planning.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"

namespace satproof::encode {
namespace {

solver::SolveResult solve(const Formula& f) {
  solver::Solver s;
  s.add_formula(f);
  const auto r = s.solve();
  if (r == solver::SolveResult::Satisfiable) {
    EXPECT_TRUE(satisfies(f, s.model()));
  }
  return r;
}

TEST(Pigeonhole, StructureAndStatus) {
  const Formula f = pigeonhole(4);
  EXPECT_EQ(f.num_vars(), 5u * 4u);
  // 5 at-least-one clauses + 4 * C(5,2) at-most-one clauses.
  EXPECT_EQ(f.num_clauses(), 5u + 4u * 10u);
  EXPECT_EQ(solve(f), solver::SolveResult::Unsatisfiable);
}

TEST(XorChain, AlwaysUnsat) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Formula f = xor_chain(10, seed);
    EXPECT_EQ(f.num_clauses(), 20u);  // 2 clauses per XOR constraint
    EXPECT_EQ(solve(f), solver::SolveResult::Unsatisfiable) << seed;
  }
}

TEST(XorChain, RejectsTinyN) {
  EXPECT_THROW(xor_chain(2, 1), std::invalid_argument);
}

TEST(RandomXor3, AlwaysUnsat) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const Formula f = random_xor3(12, 16, seed);
    EXPECT_EQ(solve(f), solver::SolveResult::Unsatisfiable) << seed;
  }
}

TEST(TseitinTorus, AlwaysUnsatAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 99ull}) {
    const Formula f = tseitin_torus(3, 3, seed);
    EXPECT_EQ(f.num_vars(), 18u);           // 2 * 3 * 3 edges
    EXPECT_EQ(f.num_clauses(), 9u * 8u);    // 8 clauses per degree-4 vertex
    EXPECT_EQ(solve(f), solver::SolveResult::Unsatisfiable) << seed;
  }
}

TEST(TseitinTorus, RejectsTinyGrids) {
  EXPECT_THROW(tseitin_torus(2, 5, 1), std::invalid_argument);
}

TEST(RandomKsat, RespectsShape) {
  const Formula f = random_ksat(20, 50, 3, 7);
  EXPECT_EQ(f.num_clauses(), 50u);
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    const auto c = f.clause(id);
    ASSERT_EQ(c.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(c[0].var(), c[1].var());
    EXPECT_NE(c[0].var(), c[2].var());
    EXPECT_NE(c[1].var(), c[2].var());
  }
}

TEST(RandomKsat, LowRatioSatHighRatioUnsat) {
  // Far below the 3-SAT threshold: SAT; far above: UNSAT.
  EXPECT_EQ(solve(random_ksat(30, 60, 3, 11)),
            solver::SolveResult::Satisfiable);
  EXPECT_EQ(solve(random_ksat(30, 240, 3, 11)),
            solver::SolveResult::Unsatisfiable);
}

TEST(RandomKsat, RejectsBadK) {
  EXPECT_THROW(random_ksat(3, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(random_ksat(3, 5, 4, 1), std::invalid_argument);
}

TEST(Coloring, CliqueBoundary) {
  EXPECT_EQ(solve(clique_coloring(5, 5)), solver::SolveResult::Satisfiable);
  EXPECT_EQ(solve(clique_coloring(5, 4)), solver::SolveResult::Unsatisfiable);
}

TEST(Coloring, RandomGraphEdgeDensityExtremes) {
  // Density 0: no edges, 1 color suffices. Density 1: clique.
  EXPECT_EQ(solve(random_graph_coloring(6, 0.0, 1, 5)),
            solver::SolveResult::Satisfiable);
  EXPECT_EQ(solve(random_graph_coloring(6, 1.0, 5, 5)),
            solver::SolveResult::Unsatisfiable);
}

TEST(FpgaRouting, CongestedChannelUnsat) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(solve(fpga_routing(8, 3, 12, seed)),
              solver::SolveResult::Unsatisfiable)
        << seed;
  }
}

TEST(FpgaRouting, EnoughTracksSat) {
  // Without a planted hot spot and with as many tracks as nets, routing
  // always succeeds.
  Formula f = fpga_routing(5, 5, 12, 9, /*congested=*/false);
  EXPECT_EQ(solve(f), solver::SolveResult::Satisfiable);
}

TEST(FpgaRouting, ParameterValidation) {
  EXPECT_THROW(fpga_routing(3, 3, 12, 1), std::invalid_argument);
  EXPECT_THROW(fpga_routing(9, 4, 2, 1), std::invalid_argument);
}

TEST(BlocksWorld, ReversalBoundaryMatchesTheory) {
  for (unsigned blocks = 2; blocks <= 5; ++blocks) {
    const unsigned min = blocks_world_min_steps(blocks);
    EXPECT_EQ(solve(blocks_world_reversal(blocks, min)),
              solver::SolveResult::Satisfiable)
        << blocks;
    EXPECT_EQ(solve(blocks_world_reversal(blocks, min - 1)),
              solver::SolveResult::Unsatisfiable)
        << blocks;
  }
}

TEST(BlocksWorld, OptimalMatchesSatBoundary) {
  // The SAT encoding and the BFS ground truth must agree exactly.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    const BlocksWorldInstance sat = blocks_world_random(4, 0, seed);
    EXPECT_EQ(solve(sat.formula), solver::SolveResult::Satisfiable) << seed;
    const BlocksWorldInstance unsat = blocks_world_random(4, -1, seed);
    EXPECT_EQ(solve(unsat.formula), solver::SolveResult::Unsatisfiable)
        << seed;
  }
}

TEST(BlocksWorld, OptimalOfIdentityIsZero) {
  const BlocksConfig cfg{4, 4, 4, 4};  // all four blocks on the table
  EXPECT_EQ(blocks_world_optimal(cfg, cfg), 0u);
}

TEST(BlocksWorld, OptimalOfSingleMove) {
  const BlocksConfig init{2, 2};  // both on table
  const BlocksConfig goal{1, 2};  // 0 on 1
  EXPECT_EQ(blocks_world_optimal(init, goal), 1u);
}

TEST(BlocksWorld, RejectsMalformedConfigs) {
  EXPECT_THROW(blocks_world({0, 0}, {2, 2}, 2), std::invalid_argument);
  EXPECT_THROW(blocks_world({1, 0}, {2, 2}, 2), std::invalid_argument);
  const BlocksConfig three_on_one{2, 2, 1};  // blocks 0,1... fine
  const BlocksConfig both_on_2{2, 2, 3};
  const BlocksConfig dup{1, 3, 1, 4};  // 0 and 2 both on block 1
  EXPECT_THROW(blocks_world(dup, dup, 2), std::invalid_argument);
}

TEST(Suite, SmallScaleSolvesQuicklyAndUnsat) {
  for (const auto& inst : unsat_suite(SuiteScale::Small)) {
    EXPECT_EQ(solve(inst.formula), solver::SolveResult::Unsatisfiable)
        << inst.name;
    EXPECT_FALSE(inst.name.empty());
    EXPECT_FALSE(inst.family.empty());
  }
}

TEST(Suite, StandardScaleHasTwelveRowsAcrossFamilies) {
  const auto suite = unsat_suite(SuiteScale::Standard);
  EXPECT_EQ(suite.size(), 12u);
  std::set<std::string> families;
  for (const auto& inst : suite) families.insert(inst.family);
  EXPECT_GE(families.size(), 6u);  // paper-like domain mix
}

}  // namespace
}  // namespace satproof::encode
