#include "src/circuit/rewrite.hpp"

#include "src/circuit/miter.hpp"
#include "src/util/rng.hpp"

namespace satproof::circuit {

RewriteResult rewrite(const Netlist& n, const RewriteOptions& options) {
  util::Rng rng(options.seed);
  RewriteResult out;
  Netlist& d = out.netlist;
  out.wire_map.assign(n.num_wires(), kInvalidWire);

  const auto maybe_double_negate = [&](Wire w) {
    if (rng.next_bool(options.double_negation_freq)) {
      return d.make_not(d.make_not(w));
    }
    return w;
  };

  for (Wire w = 0; w < n.num_wires(); ++w) {
    const Gate& g = n.gate(w);
    const auto m = [&](Wire x) { return out.wire_map[x]; };
    Wire nw = kInvalidWire;
    switch (g.kind) {
      case GateKind::Input:
        nw = d.add_input();
        break;
      case GateKind::ConstFalse:
        nw = d.constant(false);
        break;
      case GateKind::ConstTrue:
        nw = d.constant(true);
        break;
      case GateKind::Not:
        nw = d.make_not(m(g.a));
        break;
      case GateKind::And:
        if (options.demorgan && rng.next_bool(options.rewrite_freq)) {
          // a & b == ~(~a | ~b)
          nw = d.make_not(d.make_or(d.make_not(m(g.a)), d.make_not(m(g.b))));
        } else {
          nw = d.make_and(m(g.a), m(g.b));
        }
        break;
      case GateKind::Or:
        if (options.demorgan && rng.next_bool(options.rewrite_freq)) {
          // a | b == ~(~a & ~b)
          nw = d.make_not(d.make_and(d.make_not(m(g.a)), d.make_not(m(g.b))));
        } else {
          nw = d.make_or(m(g.a), m(g.b));
        }
        break;
      case GateKind::Xor:
        if (options.xor_decompose && rng.next_bool(options.rewrite_freq)) {
          // a ^ b == (a & ~b) | (~a & b)
          nw = d.make_or(d.make_and(m(g.a), d.make_not(m(g.b))),
                         d.make_and(d.make_not(m(g.a)), m(g.b)));
        } else {
          nw = d.make_xor(m(g.a), m(g.b));
        }
        break;
      case GateKind::Mux:
        if (options.mux_decompose && rng.next_bool(options.rewrite_freq)) {
          // s ? t : e == (s & t) | (~s & e)
          nw = d.make_or(d.make_and(m(g.a), m(g.b)),
                         d.make_and(d.make_not(m(g.a)), m(g.c)));
        } else {
          nw = d.make_mux(m(g.a), m(g.b), m(g.c));
        }
        break;
    }
    if (g.kind != GateKind::Input && g.kind != GateKind::ConstFalse &&
        g.kind != GateKind::ConstTrue) {
      nw = maybe_double_negate(nw);
    }
    out.wire_map[w] = nw;
  }
  return out;
}

RewrittenMiter rewrite_miter(const Netlist& n, const std::vector<Wire>& outputs,
                             const RewriteOptions& options) {
  const RewriteResult rw = rewrite(n, options);

  RewrittenMiter out;
  Netlist& d = out.netlist;
  // Shared inputs.
  std::vector<Wire> shared_inputs(n.num_wires(), kInvalidWire);
  for (const Wire w : n.inputs()) shared_inputs[w] = d.add_input();
  // Instance 1: the original.
  const std::vector<Wire> map1 = copy_into(d, n, shared_inputs);
  // Instance 2: the rewrite, with its inputs bound to the same wires. The
  // rewrite preserves input order, so map its input list positionally.
  std::vector<Wire> rewrite_inputs(rw.netlist.num_wires(), kInvalidWire);
  for (std::size_t i = 0; i < n.inputs().size(); ++i) {
    rewrite_inputs[rw.netlist.inputs()[i]] = shared_inputs[n.inputs()[i]];
  }
  const std::vector<Wire> map2 = copy_into(d, rw.netlist, rewrite_inputs);

  std::vector<Wire> outs_a, outs_b;
  outs_a.reserve(outputs.size());
  outs_b.reserve(outputs.size());
  for (const Wire w : outputs) {
    outs_a.push_back(map1[w]);
    outs_b.push_back(map2[rw.wire_map[w]]);
  }
  out.miter_out = build_miter(d, outs_a, outs_b);
  return out;
}

}  // namespace satproof::circuit
