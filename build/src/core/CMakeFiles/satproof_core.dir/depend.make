# Empty dependencies file for satproof_core.
# This may be replaced when dependencies are built.
