file(REMOVE_RECURSE
  "CMakeFiles/incremental_routing.dir/incremental_routing.cpp.o"
  "CMakeFiles/incremental_routing.dir/incremental_routing.cpp.o.d"
  "incremental_routing"
  "incremental_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
