// Tests for the wavefront-parallel checker: agreement with the sequential
// depth-first checker on verdict, unsat core and stats; byte-identical
// determinism across worker counts and repeated runs; rejection of
// corrupted traces; and assumption-trace support.

#include <gtest/gtest.h>

#include <sstream>

#include "src/checker/depth_first.hpp"
#include "src/checker/parallel.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/parity.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/fault_injector.hpp"
#include "src/trace/memory.hpp"

namespace satproof::checker {
namespace {

struct SolvedUnsat {
  Formula formula;
  trace::MemoryTrace trace;
};

SolvedUnsat solve_unsat(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), w.take()};
}

CheckResult run_parallel(const SolvedUnsat& su, unsigned jobs) {
  trace::MemoryTraceReader r(su.trace);
  ParallelOptions opts;
  opts.jobs = jobs;
  return check_parallel(su.formula, r, opts);
}

/// Serializes a core exactly as a file dump would, to compare byte-for-byte.
std::string core_bytes(const CheckResult& res) {
  std::ostringstream out;
  for (const ClauseId id : res.core) out << id << '\n';
  return out.str();
}

TEST(ParallelChecker, MatchesDepthFirstOnVerdictCoreAndStats) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(6));
  trace::MemoryTraceReader r(su.trace);
  const CheckResult df = check_depth_first(su.formula, r);
  ASSERT_TRUE(df.ok) << df.error;
  const CheckResult par = run_parallel(su, 4);
  ASSERT_TRUE(par.ok) << par.error;

  EXPECT_EQ(par.core, df.core);
  EXPECT_EQ(par.stats.total_derivations, df.stats.total_derivations);
  EXPECT_EQ(par.stats.clauses_built, df.stats.clauses_built);
  EXPECT_EQ(par.stats.resolutions, df.stats.resolutions);
  EXPECT_EQ(par.stats.core_original_clauses, df.stats.core_original_clauses);
  // Identical built set and identical accounting rules => identical peak.
  EXPECT_EQ(par.stats.peak_mem_bytes, df.stats.peak_mem_bytes);
}

TEST(ParallelChecker, MatchesDepthFirstAcrossTheSmallSuite) {
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    const SolvedUnsat su = solve_unsat(inst.formula);
    trace::MemoryTraceReader r(su.trace);
    const CheckResult df = check_depth_first(su.formula, r);
    ASSERT_TRUE(df.ok) << inst.name << ": " << df.error;
    const CheckResult par = run_parallel(su, 3);
    ASSERT_TRUE(par.ok) << inst.name << ": " << par.error;
    EXPECT_EQ(par.core, df.core) << inst.name;
    EXPECT_EQ(par.stats.resolutions, df.stats.resolutions) << inst.name;
  }
}

TEST(ParallelChecker, DeterministicCoreAcrossJobsAndRepeats) {
  // The determinism regression of the issue: 20 runs spread over
  // --jobs ∈ {1, 2, 4, 8} must produce byte-identical unsat-core output.
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(6));
  const CheckResult first = run_parallel(su, 1);
  ASSERT_TRUE(first.ok) << first.error;
  const std::string reference = core_bytes(first);
  ASSERT_FALSE(reference.empty());
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    for (int repeat = 0; repeat < 5; ++repeat) {
      const CheckResult res = run_parallel(su, jobs);
      ASSERT_TRUE(res.ok) << "jobs=" << jobs << ": " << res.error;
      EXPECT_EQ(core_bytes(res), reference)
          << "jobs=" << jobs << " repeat=" << repeat;
    }
  }
}

TEST(ParallelChecker, JobsZeroMeansHardwareConcurrency) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(4));
  const CheckResult res = run_parallel(su, 0);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(ParallelChecker, CoreCollectionCanBeDisabled) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(4));
  trace::MemoryTraceReader r(su.trace);
  ParallelOptions opts;
  opts.jobs = 2;
  opts.collect_core = false;
  const CheckResult res = check_parallel(su.formula, r, opts);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.core.empty());
  EXPECT_GT(res.stats.core_original_clauses, 0u);
}

TEST(ParallelChecker, TrivialPreprocessingConflictAccepted) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  const SolvedUnsat su = solve_unsat(std::move(f));
  EXPECT_TRUE(su.trace.derivations.empty());
  EXPECT_TRUE(run_parallel(su, 4).ok);
}

TEST(ParallelChecker, EmptyInputClauseAccepted) {
  Formula f;
  f.add_clause(std::initializer_list<Lit>{});
  const SolvedUnsat su = solve_unsat(std::move(f));
  EXPECT_TRUE(run_parallel(su, 4).ok);
}

TEST(ParallelChecker, RejectSatRunTrace) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  const CheckResult res = check_parallel(f, r);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("final"), std::string::npos);
}

TEST(ParallelChecker, RejectTraceForDifferentFormula) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(5));
  const Formula other = encode::pigeonhole(6);
  trace::MemoryTraceReader r(su.trace);
  const CheckResult res = check_parallel(other, r);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("original clauses"), std::string::npos);
}

TEST(ParallelChecker, RejectionDiagnosticIsDeterministicAcrossJobs) {
  // Corrupt one derivation source; every worker count must reject with the
  // same diagnostic (the lowest failing clause ID wins, not a thread race).
  const Formula f = encode::pigeonhole(5);
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter inner;
  trace::FaultInjector injector(inner, trace::FaultKind::DropSource,
                                /*seed=*/7, /*target_index=*/5);
  s.set_trace_writer(&injector);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  ASSERT_TRUE(injector.fired());
  const trace::MemoryTrace t = inner.take();

  std::string reference;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    trace::MemoryTraceReader r(t);
    ParallelOptions opts;
    opts.jobs = jobs;
    const CheckResult res = check_parallel(f, r, opts);
    ASSERT_FALSE(res.ok) << "jobs=" << jobs;
    ASSERT_FALSE(res.error.empty());
    if (reference.empty()) {
      reference = res.error;
    } else {
      EXPECT_EQ(res.error, reference) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelChecker, ValidatesAssumptionRefutationTrace) {
  // x0 -> x1 -> x2; assuming x0 and ~x2 is refutable.
  Formula f(3);
  f.add_clause({Lit::neg(0), Lit::pos(1)});
  f.add_clause({Lit::neg(1), Lit::pos(2)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  const Lit assume[] = {Lit::pos(0), Lit::neg(2)};
  ASSERT_EQ(s.solve(assume), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();

  trace::MemoryTraceReader r1(t);
  const CheckResult df = check_depth_first(f, r1);
  ASSERT_TRUE(df.ok) << df.error;
  trace::MemoryTraceReader r2(t);
  ParallelOptions opts;
  opts.jobs = 4;
  const CheckResult par = check_parallel(f, r2, opts);
  ASSERT_TRUE(par.ok) << par.error;
  EXPECT_FALSE(par.failed_assumption_clause.empty());
  EXPECT_EQ(par.failed_assumption_clause, df.failed_assumption_clause);
}

TEST(ParallelChecker, BigTseitinTraceMatchesDepthFirst) {
  // A heavier instance with deep derivation chains, exercising multi-level
  // wavefronts and antecedent-closure rebuilds during the final derivation.
  const SolvedUnsat su = solve_unsat(encode::tseitin_torus(3, 3, 11));
  trace::MemoryTraceReader r(su.trace);
  const CheckResult df = check_depth_first(su.formula, r);
  ASSERT_TRUE(df.ok) << df.error;
  const CheckResult par = run_parallel(su, 4);
  ASSERT_TRUE(par.ok) << par.error;
  EXPECT_EQ(par.core, df.core);
  EXPECT_EQ(par.stats.resolutions, df.stats.resolutions);
}

}  // namespace
}  // namespace satproof::checker
