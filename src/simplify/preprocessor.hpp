#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cnf/formula.hpp"
#include "src/cnf/model.hpp"
#include "src/trace/events.hpp"

namespace satproof::simplify {

/// Preprocessing knobs (SatELite-style, Een & Biere 2005 — the
/// simplification layer the zchaff generation of solvers grew next).
struct PreprocessOptions {
  /// Remove clauses subsumed by another clause.
  bool enable_subsumption = true;
  /// Strengthen clauses by self-subsuming resolution (each strengthening
  /// is one recorded resolution).
  bool enable_self_subsumption = true;
  /// Eliminate variables by resolution when the resolvent set is no larger
  /// than the clauses it replaces (each resolvent is one recorded
  /// resolution).
  bool enable_bve = true;
  /// Do not attempt to eliminate variables occurring more often than this.
  std::size_t bve_max_occurrences = 16;
  /// Allow the clause count to grow by this much per elimination.
  int bve_max_growth = 0;
  /// Simplification rounds (each round: subsumption, strengthening, BVE).
  unsigned rounds = 3;
};

/// Preprocessing counters.
struct PreprocessStats {
  std::uint64_t subsumed = 0;             ///< clauses removed by subsumption
  std::uint64_t strengthened = 0;         ///< literals removed by self-subsumption
  std::uint64_t eliminated_vars = 0;      ///< variables eliminated by BVE
  std::uint64_t resolvents_added = 0;     ///< BVE resolvents kept
  std::uint64_t clauses_removed = 0;      ///< clauses dropped by BVE
};

/// The preprocessed problem.
///
/// Every derived clause (strengthened clause or BVE resolvent) carries a
/// fresh ID whose derivation record was emitted to the trace writer, so an
/// UNSAT run of the solver on `clauses` produces a trace that checks
/// against the *original* formula unchanged: the checkers cannot tell
/// preprocessing and search apart — both just derive clauses by resolution.
/// (Clause *removals* need no justification: a proof from a subset of the
/// derivable clauses is a proof from the original.)
struct PreprocessResult {
  /// Active clauses after simplification: (ID, literals).
  struct ActiveClause {
    ClauseId id;
    std::vector<Lit> lits;
  };
  std::vector<ActiveClause> clauses;

  /// First ID the solver may use for learned clauses.
  ClauseId next_id = 0;

  /// Number of variables (unchanged from the input formula).
  Var num_vars = 0;

  /// True when preprocessing alone derived the empty clause; the trace is
  /// already complete (final conflict emitted) and the formula is proven
  /// unsatisfiable.
  bool proved_unsat = false;

  PreprocessStats stats;

  /// Witness-reconstruction stack for BVE (Een & Biere): eliminated
  /// variables with the clauses that mentioned them, in elimination order.
  struct Elimination {
    Var var;
    std::vector<std::vector<Lit>> removed_clauses;
  };
  std::vector<Elimination> eliminations;

  /// Extends a model of the preprocessed clauses to a model of the
  /// original formula by assigning each eliminated variable (in reverse
  /// elimination order) the value its removed clauses require.
  void reconstruct_model(Model& model) const;
};

/// Runs the preprocessor on `f`. When `writer` is non-null, begin() is
/// emitted (declaring f.num_clauses() originals) and every derived clause's
/// resolution is recorded; on proved_unsat the final-conflict section is
/// emitted too, completing the trace. The caller then feeds the active
/// clauses to a solver in external-ID mode with the same writer (see
/// simplify::solve_simplified for the packaged pipeline).
[[nodiscard]] PreprocessResult preprocess(const Formula& f,
                                          const PreprocessOptions& options,
                                          trace::TraceWriter* writer);

}  // namespace satproof::simplify
