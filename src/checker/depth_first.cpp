#include "src/checker/depth_first.hpp"

#include <algorithm>
#include <optional>

#include "src/obs/trace.hpp"

namespace satproof::checker {

namespace {

class DepthFirstChecker {
 public:
  DepthFirstChecker(const Formula& f, trace::TraceReader& reader,
                    util::ClauseArena* recycle_arena)
      : formula_(&f),
        reader_(&reader),
        level0_(reader.num_vars()),
        derivations_(reader.num_original()),
        store_(recycle_arena) {}

  CheckResult run(const DepthFirstOptions& options) {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      final_id_ =
          load_full_trace(*reader_, derivations_, level0_, mem_, stats_);
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      observer_ = options.observer;
      chain_.reserve_vars(reader_->num_vars());
      {
        obs::Span span("index");
        store_.reserve(std::max<ClauseId>(num_original(),
                                          derivations_.num_records() != 0
                                              ? derivations_.max_id() + 1
                                              : 0));
        if (options.streaming_replay) {
          planned_.assign(store_.id_limit(), 0);
          plan_.reserve(derivations_.num_records());
          plan_cone(*final_id_);
        }
      }
      {
        // Linear sweep over the planned cone: clauses are built in
        // first-use order, so arena writes stream and the sources of the
        // next derivations are prefetched while the current one folds.
        obs::Span replay_span("replay");
        execute_plan();
      }
      const ClauseFetcher fetch =
          options.streaming_replay
              ? ClauseFetcher([this](ClauseId id) { return fetch_streamed(id); })
              : ClauseFetcher([this](ClauseId id) { return build(id); });
      SortedClause remaining;
      {
        // With streaming_replay the trail-antecedent cones outside the
        // final-conflict cone are planned and streamed here, on first
        // fetch — the same schedule-then-sweep discipline as the replay
        // span, building exactly the clauses the lazy walk would.
        obs::Span final_span("final_derivation");
        std::vector<ClauseId> final_antecedents;
        remaining = derive_final_clause(
            *final_id_, fetch, level0_, stats_,
            observer_ != nullptr ? &final_antecedents : nullptr);
        if (observer_ != nullptr && remaining.empty()) {
          observer_->on_final(*final_id_, final_antecedents);
        }
      }
      planned_ = {};  // plan bookkeeping is dead weight past this point
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    const util::ClauseArena& arena = store_.arena();
    stats_.peak_mem_bytes = mem_.peak_bytes() + arena.peak_bytes();
    stats_.arena_allocated_bytes = arena.allocated_bytes();
    stats_.arena_recycled_bytes = arena.recycled_bytes();
    stats_.arena_peak_bytes = arena.peak_bytes();
    obs::Span core_span("core");
    // The ref table is ID-ordered, so one ascending scan of the original-ID
    // prefix yields the core already sorted.
    const ClauseId originals =
        std::min<ClauseId>(num_original(), store_.id_limit());
    for (ClauseId id = 0; id < originals; ++id) {
      if (store_.contains(id)) ++stats_.core_original_clauses;
    }
    result.stats = stats_;
    if (result.ok && options.collect_core) {
      result.core.reserve(stats_.core_original_clauses);
      for (ClauseId id = 0; id < originals; ++id) {
        if (store_.contains(id)) result.core.push_back(id);
      }
    }
    return result;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  /// Returns the canonical clause for `id`, building it (and, recursively,
  /// its sources) on demand — recursive_build() of Fig. 3, with an explicit
  /// stack so pathological traces cannot overflow the call stack.
  ClauseView build(ClauseId id) {
    if (store_.contains(id)) return store_.view(id);
    if (id < num_original()) return build_original(id);

    struct Frame {
      ClauseId id;
      std::span<const std::uint32_t> sources;
      std::size_t scan = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({id, derivations_.sources_of(id)});
    while (!stack.empty()) {
      Frame& f = stack.back();
      bool descended = false;
      while (f.scan < f.sources.size()) {
        const ClauseId s = f.sources[f.scan];
        if (store_.contains(s)) {
          ++f.scan;
          continue;
        }
        if (s < num_original()) {
          build_original(s);
          ++f.scan;
          continue;
        }
        // Sources strictly precede the derived ID (validated at load), so
        // this descent terminates.
        stack.push_back({s, derivations_.sources_of(s)});
        descended = true;
        break;
      }
      if (descended) continue;
      fold_sources(f.id, f.sources);
      stack.pop_back();
    }
    return store_.view(id);
  }

  /// Plans the exact traversal build(root) would perform — same explicit
  /// stack, same skip rules, with a planned bitmap standing in for the
  /// (still empty) store — and records it as a flat build schedule.
  /// Structural errors (unknown sources) surface here with the same
  /// diagnostics the lazy walk raises; content errors (tautological
  /// originals, failed resolutions) surface when the schedule runs.
  /// Cones planned earlier are skipped, so repeated calls (one per
  /// trail-antecedent fetch during the final derivation) schedule each
  /// clause exactly once across the whole run.
  void plan_cone(ClauseId root) {
    if (root < planned_.size() && planned_[root] != 0) return;
    if (root < num_original()) {
      plan_.push_back(root);
      planned_[root] = 1;
      return;
    }
    struct PlanFrame {
      ClauseId id;
      std::span<const std::uint32_t> sources;
      std::size_t scan = 0;
    };
    std::vector<PlanFrame> stack;
    stack.push_back({root, derivations_.sources_of(root)});
    while (!stack.empty()) {
      PlanFrame& f = stack.back();
      bool descended = false;
      while (f.scan < f.sources.size()) {
        const ClauseId s = f.sources[f.scan];
        if (planned_[s] != 0) {
          ++f.scan;
          continue;
        }
        if (s < num_original()) {
          plan_.push_back(s);
          planned_[s] = 1;
          ++f.scan;
          continue;
        }
        stack.push_back({s, derivations_.sources_of(s)});
        descended = true;
        break;
      }
      if (descended) continue;
      plan_.push_back(f.id);
      planned_[f.id] = 1;
      stack.pop_back();
    }
  }

  /// Runs the build schedule as one linear sweep. Every entry's sources
  /// precede it in the plan (DFS postorder), so each step is a plain fold
  /// over already-stored clauses; the next entries' first sources are
  /// prefetched while this one resolves.
  void execute_plan() {
    const std::size_t n = plan_.size();
    for (std::size_t k = 0; k < n; ++k) {
      if (k + 2 < n) prefetch_sources(plan_[k + 2]);
      const ClauseId id = plan_[k];
      if (id < num_original()) {
        build_original(id);
        continue;
      }
      fold_sources(id, derivations_.sources_of(id));
    }
    plan_.clear();  // consumed; later plan_cone calls start fresh
  }

  /// Streaming-mode fetcher for derive_final_clause: a planned clause is
  /// already stored; anything else (a trail-antecedent cone disjoint from
  /// the final-conflict cone) is planned and streamed on the spot. Builds
  /// the same clause set, in the same order, with the same diagnostics as
  /// the lazy build() fallback.
  ClauseView fetch_streamed(ClauseId id) {
    if (id < planned_.size() && planned_[id] != 0) return store_.view(id);
    plan_cone(id);
    execute_plan();
    return store_.view(id);
  }

  /// Warms the cache lines of `id`'s leading source blocks ahead of its
  /// fold. A source still being built right now is simply skipped.
  /// (A wider window was tried and measured slower: issuing a prefetch
  /// per source costs a ref decode each, and on the short-chain instances
  /// the data is usually still warm from the postorder sweep.)
  void prefetch_sources(ClauseId id) {
    if (id < num_original()) return;
    const std::span<const std::uint32_t> srcs = derivations_.sources_of(id);
    store_.prefetch(srcs[0]);
    if (srcs.size() > 1) store_.prefetch(srcs[1]);
  }

  ClauseView build_original(ClauseId id) {
    // Canonicalize into a reused scratch buffer: thousands of originals
    // would otherwise each pay a vector allocation.
    const ClauseView raw = formula_->clause(id);
    scratch_.assign(raw.begin(), raw.end());
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    if (is_tautology(scratch_)) {
      throw CheckFailure("original clause " + std::to_string(id) +
                         " is tautological and cannot be a resolution source");
    }
    store_.put(id, scratch_);
    return store_.view(id);
  }

  /// Replays one derivation: left-fold resolution over the sources, which
  /// must all be stored by now.
  void fold_sources(ClauseId id, std::span<const std::uint32_t> sources) {
    chain_.start(store_.view(sources[0]));
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const ResolveResult r = chain_.step(store_.view(sources[i]));
      ++stats_.resolutions;
      if (r.status != ResolveStatus::Ok) {
        throw CheckFailure(
            "derivation of clause " + std::to_string(id) + ": resolving with "
            "source " + std::to_string(sources[i]) + " (step " +
            std::to_string(i) + ") failed: " +
            (r.status == ResolveStatus::NoClash
                 ? "no clashing variable"
                 : "more than one clashing variable"));
      }
    }
    // Copy the resolver's buffer straight into the arena, unsorted:
    // nothing downstream needs stored clauses ordered (resolution is
    // set-based and the failed-assumption clause is sorted where it is
    // produced), and skipping the per-derivation sort is a measurable
    // slice of replay time.
    store_.put(id, chain_.lits());
    ++stats_.clauses_built;
    if (observer_ != nullptr) observer_->on_derived(id, chain_.lits(), sources);
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  Level0Table level0_;
  std::optional<ClauseId> final_id_;
  DerivationIndex derivations_;
  ClauseStore store_;
  ChainResolver chain_;
  CertObserver* observer_ = nullptr;
  util::MemTracker mem_;
  CheckStats stats_;
  std::vector<ClauseId> plan_;          ///< build schedule, first-use order
  std::vector<std::uint8_t> planned_;   ///< per-ID scheduled bits (streaming)
  SortedClause scratch_;                ///< build_original's canonical buffer
};

}  // namespace

CheckResult check_depth_first(const Formula& f, trace::TraceReader& reader,
                              const DepthFirstOptions& options) {
  DepthFirstChecker checker(f, reader, options.recycle_arena);
  return checker.run(options);
}

}  // namespace satproof::checker
