file(REMOVE_RECURSE
  "libsatproof_trace.a"
)
