# Empty compiler generated dependencies file for satproof_encode.
# This may be replaced when dependencies are built.
