#include "src/circuit/words.hpp"

#include <stdexcept>

namespace satproof::circuit {

Word input_word(Netlist& n, std::size_t width) {
  Word w(width);
  for (auto& wire : w) wire = n.add_input();
  return w;
}

Word constant_word(Netlist& n, std::uint64_t value, std::size_t width) {
  Word w(width);
  for (std::size_t i = 0; i < width; ++i) {
    w[i] = n.constant(((value >> i) & 1) != 0);
  }
  return w;
}

namespace {

/// One full adder: sum = a ^ b ^ cin, cout = majority(a, b, cin).
struct FullAdd {
  Wire sum;
  Wire cout;
};

FullAdd full_adder(Netlist& n, Wire a, Wire b, Wire cin) {
  const Wire axb = n.make_xor(a, b);
  const Wire sum = n.make_xor(axb, cin);
  const Wire cout = n.make_or(n.make_and(a, b), n.make_and(axb, cin));
  return {sum, cout};
}

}  // namespace

AdderResult ripple_carry_adder(Netlist& n, const Word& a, const Word& b,
                               Wire carry_in) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("ripple_carry_adder: width mismatch");
  }
  AdderResult out;
  out.sum.resize(a.size());
  Wire carry = carry_in == kInvalidWire ? n.constant(false) : carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FullAdd fa = full_adder(n, a[i], b[i], carry);
    out.sum[i] = fa.sum;
    carry = fa.cout;
  }
  out.carry_out = carry;
  return out;
}

AdderResult carry_select_adder(Netlist& n, const Word& a, const Word& b,
                               std::size_t block_width) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("carry_select_adder: width mismatch");
  }
  if (block_width == 0) {
    throw std::invalid_argument("carry_select_adder: zero block width");
  }
  AdderResult out;
  out.sum.resize(a.size());
  Wire carry = n.constant(false);
  for (std::size_t lo = 0; lo < a.size(); lo += block_width) {
    const std::size_t hi = std::min(lo + block_width, a.size());
    const Word block_a(a.begin() + static_cast<std::ptrdiff_t>(lo),
                       a.begin() + static_cast<std::ptrdiff_t>(hi));
    const Word block_b(b.begin() + static_cast<std::ptrdiff_t>(lo),
                       b.begin() + static_cast<std::ptrdiff_t>(hi));
    // Compute the block twice, once per assumed carry-in, and select.
    const AdderResult with0 =
        ripple_carry_adder(n, block_a, block_b, n.constant(false));
    const AdderResult with1 =
        ripple_carry_adder(n, block_a, block_b, n.constant(true));
    for (std::size_t i = 0; i < block_a.size(); ++i) {
      out.sum[lo + i] = n.make_mux(carry, with1.sum[i], with0.sum[i]);
    }
    carry = n.make_mux(carry, with1.carry_out, with0.carry_out);
  }
  out.carry_out = carry;
  return out;
}

AdderResult kogge_stone_adder(Netlist& n, const Word& a, const Word& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("kogge_stone_adder: width mismatch");
  }
  const std::size_t width = a.size();
  AdderResult out;
  out.sum.resize(width);
  if (width == 0) {
    out.carry_out = n.constant(false);
    return out;
  }

  // Per-bit generate/propagate.
  std::vector<Wire> g(width), p(width);
  for (std::size_t i = 0; i < width; ++i) {
    g[i] = n.make_and(a[i], b[i]);
    p[i] = n.make_xor(a[i], b[i]);
  }

  // Parallel-prefix combination: after the stage with span s, (g[i], p[i])
  // describes the window [i-2s+1, i].
  std::vector<Wire> gg = g, pp = p;
  for (std::size_t span = 1; span < width; span *= 2) {
    std::vector<Wire> g2 = gg, p2 = pp;
    for (std::size_t i = span; i < width; ++i) {
      // (g, p) o (g', p') = (g | (p & g'), p & p')
      g2[i] = n.make_or(gg[i], n.make_and(pp[i], gg[i - span]));
      p2[i] = n.make_and(pp[i], pp[i - span]);
    }
    gg = std::move(g2);
    pp = std::move(p2);
  }

  // Carry into bit i is the group generate of [0, i-1]; carry-in is zero.
  out.sum[0] = p[0];
  for (std::size_t i = 1; i < width; ++i) {
    out.sum[i] = n.make_xor(p[i], gg[i - 1]);
  }
  out.carry_out = gg[width - 1];
  return out;
}

Word array_multiplier(Netlist& n, const Word& a, const Word& b) {
  const std::size_t wa = a.size(), wb = b.size();
  // Accumulate shifted partial products a * b[j] with ripple adders.
  Word acc = constant_word(n, 0, wa + wb);
  for (std::size_t j = 0; j < wb; ++j) {
    Word partial = constant_word(n, 0, wa + wb);
    for (std::size_t i = 0; i < wa; ++i) {
      partial[i + j] = n.make_and(a[i], b[j]);
    }
    acc = ripple_carry_adder(n, acc, partial).sum;
  }
  return acc;
}

Word multiplier_commuted(Netlist& n, const Word& a, const Word& b) {
  const std::size_t wa = a.size(), wb = b.size();
  // b * a instead of a * b, accumulated with carry-select adders: same
  // function, different gate structure.
  Word acc = constant_word(n, 0, wa + wb);
  for (std::size_t i = 0; i < wa; ++i) {
    Word partial = constant_word(n, 0, wa + wb);
    for (std::size_t j = 0; j < wb; ++j) {
      partial[i + j] = n.make_and(b[j], a[i]);
    }
    acc = carry_select_adder(n, acc, partial, 3).sum;
  }
  return acc;
}

Word barrel_rotate_left(Netlist& n, const Word& value, const Word& amount) {
  Word current = value;
  const std::size_t width = value.size();
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const std::size_t shift = std::size_t{1} << stage;
    if (shift % width == 0) break;  // further stages are identities
    Word rotated(width);
    for (std::size_t i = 0; i < width; ++i) {
      rotated[i] = current[(i + width - (shift % width)) % width];
    }
    Word next(width);
    for (std::size_t i = 0; i < width; ++i) {
      next[i] = n.make_mux(amount[stage], rotated[i], current[i]);
    }
    current = std::move(next);
  }
  return current;
}

Wire word_equal(Netlist& n, const Word& a, const Word& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("word_equal: width mismatch");
  }
  std::vector<Wire> bits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits[i] = n.make_xnor(a[i], b[i]);
  }
  return n.reduce_and(bits);
}

Word incrementer(Netlist& n, const Word& a) {
  Word out(a.size());
  Wire carry = n.constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = n.make_xor(a[i], carry);
    carry = n.make_and(a[i], carry);
  }
  return out;
}

}  // namespace satproof::circuit
