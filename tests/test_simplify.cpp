// Tests for the traceable preprocessor (subsumption, self-subsuming
// resolution, bounded variable elimination) and the preprocess-then-solve
// pipeline: answers must match plain solving, SAT models must satisfy the
// original formula after reconstruction, and UNSAT traces must check
// against the original formula.

#include <gtest/gtest.h>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/encode/suite.hpp"
#include "src/simplify/pipeline.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/rng.hpp"

namespace satproof::simplify {
namespace {

Formula from_dimacs_clauses(
    std::initializer_list<std::initializer_list<int>> clauses, Var vars) {
  Formula f(vars);
  for (const auto& c : clauses) {
    std::vector<Lit> lits;
    for (const int d : c) lits.push_back(Lit::from_dimacs(d));
    f.add_clause(lits);
  }
  return f;
}

TEST(Preprocessor, SubsumptionRemovesSupersets) {
  // (1 2) subsumes (1 2 3) and (1 2 -4).
  const Formula f =
      from_dimacs_clauses({{1, 2}, {1, 2, 3}, {1, 2, -4}, {-1, 4}}, 4);
  PreprocessOptions opts;
  opts.enable_bve = false;
  opts.enable_self_subsumption = false;
  const PreprocessResult pre = preprocess(f, opts, nullptr);
  EXPECT_EQ(pre.stats.subsumed, 2u);
  EXPECT_EQ(pre.clauses.size(), 2u);
}

TEST(Preprocessor, SelfSubsumptionStrengthens) {
  // (1 2) against (-1 2 3): strengthen to (2 3).
  const Formula f = from_dimacs_clauses({{1, 2}, {-1, 2, 3}}, 3);
  PreprocessOptions opts;
  opts.enable_bve = false;
  trace::MemoryTraceWriter w;
  const PreprocessResult pre = preprocess(f, opts, &w);
  EXPECT_EQ(pre.stats.strengthened, 1u);
  // The strengthened clause carries a fresh ID with a derivation record.
  ASSERT_EQ(w.trace().derivations.size(), 1u);
  EXPECT_EQ(w.trace().derivations[0].id, 2u);
  EXPECT_EQ(w.trace().derivations[0].sources,
            (std::vector<ClauseId>{1, 0}));
  bool found = false;
  for (const auto& c : pre.clauses) {
    if (c.id == 2) {
      found = true;
      EXPECT_EQ(c.lits.size(), 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Preprocessor, BveEliminatesLowOccurrenceVars) {
  // x1 appears once positively, once negatively: eliminated, one resolvent.
  const Formula f = from_dimacs_clauses({{1, 2}, {-1, 3}, {2, 3, 4}}, 4);
  PreprocessOptions opts;
  opts.enable_subsumption = false;
  opts.enable_self_subsumption = false;
  const PreprocessResult pre = preprocess(f, opts, nullptr);
  EXPECT_GE(pre.stats.eliminated_vars, 1u);
  for (const auto& c : pre.clauses) {
    for (const Lit lit : c.lits) EXPECT_NE(lit.var(), 0u);
  }
  ASSERT_FALSE(pre.eliminations.empty());
}

TEST(Preprocessor, PureLiteralEliminatedWithoutResolvents) {
  // x1 occurs only positively.
  const Formula f = from_dimacs_clauses({{1, 2}, {1, -3}, {2, 3}}, 3);
  const PreprocessResult pre = preprocess(f, PreprocessOptions{}, nullptr);
  EXPECT_GE(pre.stats.eliminated_vars, 1u);
  EXPECT_GE(pre.stats.clauses_removed, 2u);
}

TEST(Preprocessor, DirectContradictionProvedDuringPreprocessing) {
  const Formula f = from_dimacs_clauses({{1}, {-1}}, 1);
  trace::MemoryTraceWriter w;
  const PreprocessResult pre = preprocess(f, PreprocessOptions{}, &w);
  EXPECT_TRUE(pre.proved_unsat);
  EXPECT_TRUE(w.trace().has_final);

  // The completed trace must check against the original formula.
  trace::MemoryTraceReader r(w.trace());
  const checker::CheckResult res = checker::check_depth_first(f, r);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Preprocessor, TautologiesDropped) {
  const Formula f = from_dimacs_clauses({{1, -1, 2}, {2, 3}}, 3);
  PreprocessOptions opts;
  opts.enable_bve = false;
  const PreprocessResult pre = preprocess(f, opts, nullptr);
  for (const auto& c : pre.clauses) EXPECT_NE(c.id, 0u);
}

TEST(Pipeline, UnsatTraceChecksAgainstOriginalFormula) {
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    trace::MemoryTraceWriter w;
    const SimplifiedSolveResult res =
        solve_simplified(inst.formula, {}, {}, &w);
    ASSERT_EQ(res.result, solver::SolveResult::Unsatisfiable) << inst.name;

    trace::MemoryTraceReader r1(w.trace());
    const checker::CheckResult df =
        checker::check_depth_first(inst.formula, r1);
    EXPECT_TRUE(df.ok) << inst.name << ": " << df.error;
    trace::MemoryTraceReader r2(w.trace());
    const checker::CheckResult bf =
        checker::check_breadth_first(inst.formula, r2);
    EXPECT_TRUE(bf.ok) << inst.name << ": " << bf.error;
  }
}

TEST(Pipeline, PreprocessingActuallyDoesSomethingOnTheSuite) {
  std::uint64_t total_work = 0;
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    const PreprocessResult pre =
        preprocess(inst.formula, PreprocessOptions{}, nullptr);
    total_work += pre.stats.subsumed + pre.stats.strengthened +
                  pre.stats.eliminated_vars;
  }
  EXPECT_GT(total_work, 0u);
}

TEST(Pipeline, SatModelsReconstructThroughEliminations) {
  util::Rng rng(512);
  int sat_seen = 0;
  for (int round = 0; round < 30; ++round) {
    const unsigned n = 20 + static_cast<unsigned>(rng.next_below(15));
    const Formula f = encode::random_ksat(
        n, static_cast<unsigned>(n * 3.0), 3, rng.next_u64());
    const SimplifiedSolveResult res = solve_simplified(f);
    if (res.result != solver::SolveResult::Satisfiable) continue;
    ++sat_seen;
    EXPECT_TRUE(satisfies(f, res.model)) << "round " << round;
  }
  EXPECT_GT(sat_seen, 5);
}

/// Property: pipeline answers agree with the plain solver, and pipeline
/// UNSAT traces check against the original formula.
class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSweep, AgreesWithPlainSolvingAndTracesCheck) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const unsigned n = 15 + static_cast<unsigned>(rng.next_below(12));
    const Formula f = encode::random_ksat(
        n, static_cast<unsigned>(n * 4.27), 3, rng.next_u64());

    solver::Solver plain;
    plain.add_formula(f);
    const auto expected = plain.solve();

    trace::MemoryTraceWriter w;
    const SimplifiedSolveResult res = solve_simplified(f, {}, {}, &w);
    ASSERT_EQ(res.result, expected) << "round " << round;

    if (res.result == solver::SolveResult::Satisfiable) {
      EXPECT_TRUE(satisfies(f, res.model));
    } else {
      trace::MemoryTraceReader r(w.trace());
      const checker::CheckResult check = checker::check_depth_first(f, r);
      EXPECT_TRUE(check.ok) << check.error;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Values(17, 34, 51, 68, 85));

TEST(Pipeline, PigeonholeSurvivesAggressivePreprocessing) {
  PreprocessOptions popts;
  popts.bve_max_occurrences = 64;
  popts.bve_max_growth = 4;
  popts.rounds = 10;
  trace::MemoryTraceWriter w;
  const Formula f = encode::pigeonhole(5);
  const SimplifiedSolveResult res = solve_simplified(f, {}, popts, &w);
  ASSERT_EQ(res.result, solver::SolveResult::Unsatisfiable);
  trace::MemoryTraceReader r(w.trace());
  const checker::CheckResult check = checker::check_breadth_first(f, r);
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace satproof::simplify
