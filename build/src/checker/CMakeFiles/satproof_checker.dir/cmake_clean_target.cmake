file(REMOVE_RECURSE
  "libsatproof_checker.a"
)
