// Tests for the BMC substrate: the sequential-circuit model, unrolling,
// and the rotator benchmark family — cross-validated against simulation.

#include <gtest/gtest.h>

#include "src/bmc/counter.hpp"
#include "src/bmc/rotator.hpp"
#include "src/bmc/unroll.hpp"
#include "src/checker/depth_first.hpp"
#include "src/cnf/model.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/rng.hpp"

namespace satproof::bmc {
namespace {

TEST(Rotator, InvariantHoldsUnderSimulation) {
  const SequentialCircuit seq = make_rotator(8);
  util::Rng rng(17);
  const std::size_t num_free = seq.free_inputs().size();
  ASSERT_EQ(num_free, 3u);  // enable + 2 amount bits
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<bool>> inputs(12, std::vector<bool>(num_free));
    for (auto& frame : inputs) {
      for (std::size_t i = 0; i < num_free; ++i) frame[i] = rng.next_bool();
    }
    EXPECT_FALSE(seq.simulate_reaches_bad(inputs));
  }
}

TEST(Rotator, BrokenVariantReachesBadUnderSimulation) {
  const SequentialCircuit seq = make_rotator(4, /*break_invariant=*/true);
  const std::size_t num_free = seq.free_inputs().size();
  ASSERT_EQ(num_free, 4u);  // enable + 2 amount bits + corrupt
  // Rotate once (so the token leaves bit 0), then corrupt bit 0: two tokens.
  std::vector<std::vector<bool>> inputs;
  inputs.push_back({true, true, false, false});   // rotate by 1
  inputs.push_back({false, false, false, true});  // corrupt
  inputs.push_back({false, false, false, false}); // observe
  EXPECT_TRUE(seq.simulate_reaches_bad(inputs));
}

TEST(Unroll, SafeRotatorUnsatAtSeveralBounds) {
  const SequentialCircuit seq = make_rotator(4);
  for (const unsigned k : {0u, 1u, 3u, 6u}) {
    solver::Solver s;
    s.add_formula(unroll(seq, k));
    EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable) << "k=" << k;
  }
}

TEST(Unroll, BrokenRotatorSatAndModelReplays) {
  const SequentialCircuit seq = make_rotator(4, /*break_invariant=*/true);
  const unsigned k = 4;
  const UnrollResult u = unroll_detailed(seq, k);
  solver::Solver s;
  s.add_formula(u.formula);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  ASSERT_TRUE(satisfies(u.formula, s.model()));

  // Decode the model into per-frame free-input values and replay them on
  // the sequential simulator: the bad state must really be reached.
  std::vector<std::vector<bool>> inputs;
  for (const auto& frame : u.frame_inputs) {
    std::vector<bool> vals;
    for (const Var v : frame) {
      vals.push_back(s.model()[v] == LBool::True);
    }
    inputs.push_back(std::move(vals));
  }
  EXPECT_TRUE(seq.simulate_reaches_bad(inputs));
}

TEST(Unroll, FrameInputCountsMatchFreeInputs) {
  const SequentialCircuit seq = make_rotator(8);
  const UnrollResult u = unroll_detailed(seq, 3);
  ASSERT_EQ(u.frame_inputs.size(), 4u);
  for (const auto& frame : u.frame_inputs) {
    EXPECT_EQ(frame.size(), seq.free_inputs().size());
  }
}

TEST(Unroll, BoundZeroChecksOnlyInitialState) {
  // At k = 0 the initial one-hot state satisfies the invariant: UNSAT.
  const SequentialCircuit seq = make_rotator(8);
  solver::Solver s;
  s.add_formula(unroll(seq, 0));
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
}

TEST(Counter, SatUnsatFrontierIsExactlyBadValue) {
  // Reaching value V needs exactly V enabled cycles.
  constexpr std::uint64_t kBad = 5;
  const SequentialCircuit seq = make_counter(4, kBad);
  for (unsigned k = 0; k <= 7; ++k) {
    solver::Solver s;
    s.add_formula(unroll(seq, k));
    const auto expect = k >= kBad ? solver::SolveResult::Satisfiable
                                  : solver::SolveResult::Unsatisfiable;
    EXPECT_EQ(s.solve(), expect) << "k=" << k;
  }
}

TEST(Counter, CounterexampleReplaysOnSimulator) {
  const SequentialCircuit seq = make_counter(4, 3);
  const UnrollResult u = unroll_detailed(seq, 5);
  solver::Solver s;
  s.add_formula(u.formula);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  std::vector<std::vector<bool>> stimulus;
  for (const auto& frame : u.frame_inputs) {
    std::vector<bool> vals;
    for (const Var v : frame) vals.push_back(s.model()[v] == LBool::True);
    stimulus.push_back(std::move(vals));
  }
  EXPECT_TRUE(seq.simulate_reaches_bad(stimulus));
}

TEST(Counter, SimulationCountsEnabledCyclesOnly) {
  const SequentialCircuit seq = make_counter(4, 2);
  // enable pattern: on, off, on, observe -> counter hits 2 at cycle 3.
  std::vector<std::vector<bool>> stimulus{{true}, {false}, {true}, {false}};
  EXPECT_TRUE(seq.simulate_reaches_bad(stimulus));
  std::vector<std::vector<bool>> too_short{{true}, {false}, {false}};
  EXPECT_FALSE(seq.simulate_reaches_bad(too_short));
}

TEST(Counter, ParameterValidation) {
  EXPECT_THROW(make_counter(0, 0), std::invalid_argument);
  EXPECT_THROW(make_counter(3, 8), std::invalid_argument);
}

TEST(Counter, UnsatSideProofChecks) {
  // The UNSAT side of the frontier yields a checkable proof like any other
  // suite instance.
  const Formula f = unroll(make_counter(4, 6), 4);
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader reader(t);
  EXPECT_TRUE(checker::check_depth_first(f, reader).ok);
}

TEST(Sequential, FreeInputsExcludeRegisterOutputs) {
  const SequentialCircuit seq = make_rotator(8);
  const auto free = seq.free_inputs();
  for (const auto& reg : seq.registers) {
    for (const circuit::Wire w : free) EXPECT_NE(w, reg.q);
  }
  EXPECT_EQ(free.size() + seq.registers.size(), seq.comb.num_inputs());
}

TEST(Sequential, SimulateRejectsShortInputVectors) {
  const SequentialCircuit seq = make_rotator(4);
  std::vector<std::vector<bool>> inputs{{true}};  // too few values
  EXPECT_THROW(seq.simulate_reaches_bad(inputs), std::invalid_argument);
}

}  // namespace
}  // namespace satproof::bmc
