#pragma once

#include "src/bmc/sequential.hpp"
#include "src/cnf/formula.hpp"

namespace satproof::bmc {

/// Bounded model checking unrolling (Biere et al., the technique behind the
/// paper's barrel/longmult rows): builds a CNF that is satisfiable iff the
/// circuit's `bad` wire can be asserted within `k` transitions of the reset
/// state (i.e. at any of time frames 0..k). An UNSAT answer — the
/// interesting case for proof checking — certifies the property holds up to
/// the bound.
[[nodiscard]] Formula unroll(const SequentialCircuit& seq, unsigned k);

/// unroll() plus the variable map needed to decode counterexamples.
struct UnrollResult {
  Formula formula;
  /// frame_inputs[t][i] is the CNF variable of the i-th free input (in
  /// SequentialCircuit::free_inputs() order) at time frame t.
  std::vector<std::vector<Var>> frame_inputs;
};

/// As unroll(), also returning the per-frame free-input variables so a
/// satisfying model can be replayed as a concrete input sequence (see
/// examples/bmc_demo.cpp and the BMC tests, which cross-check the model
/// against SequentialCircuit::simulate_reaches_bad).
[[nodiscard]] UnrollResult unroll_detailed(const SequentialCircuit& seq,
                                           unsigned k);

}  // namespace satproof::bmc
