# Empty compiler generated dependencies file for buggy_solver.
# This may be replaced when dependencies are built.
