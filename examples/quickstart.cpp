// Quickstart: solve a CNF formula and validate the result — the full
// workflow of the paper in ~60 lines.
//
//   ./quickstart               solves a built-in example
//   ./quickstart file.cnf      solves a DIMACS file
//
// If the solver answers SAT, the model is verified directly (linear time).
// If it answers UNSAT, the resolution trace is replayed by the independent
// depth-first checker, and the size of the extracted unsatisfiable core is
// reported.

#include <iostream>

#include "src/checker/depth_first.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/cnf/model.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

int main(int argc, char** argv) {
  using namespace satproof;

  Formula formula;
  if (argc > 1) {
    formula = dimacs::parse_file(argv[1]);
  } else {
    // (x0 | x1) & (~x0 | x1) & (x0 | ~x1) & (~x0 | ~x1): a tiny UNSAT core.
    formula = dimacs::parse_string(
        "p cnf 2 4\n"
        "1 2 0\n"
        "-1 2 0\n"
        "1 -2 0\n"
        "-1 -2 0\n");
  }
  std::cout << "Instance: " << formula.num_vars() << " variables, "
            << formula.num_clauses() << " clauses\n";

  solver::Solver solver;
  solver.add_formula(formula);
  trace::MemoryTraceWriter trace_writer;
  solver.set_trace_writer(&trace_writer);

  switch (solver.solve()) {
    case solver::SolveResult::Satisfiable: {
      std::cout << "Result: SATISFIABLE\n";
      // The easy direction of solver validation: check the model.
      if (satisfies(formula, solver.model())) {
        std::cout << "Model verified: every clause is satisfied.\n";
      } else {
        std::cout << "BUG: the claimed model does not satisfy the formula!\n";
        return 1;
      }
      break;
    }
    case solver::SolveResult::Unsatisfiable: {
      std::cout << "Result: UNSATISFIABLE ("
                << solver.stats().learned_clauses << " learned clauses, "
                << solver.stats().conflicts << " conflicts)\n";
      // The hard direction: replay the resolution trace independently.
      const trace::MemoryTrace t = trace_writer.take();
      trace::MemoryTraceReader reader(t);
      const checker::CheckResult check =
          checker::check_depth_first(formula, reader);
      if (check.ok) {
        std::cout << "Proof verified: the empty clause was derived by "
                  << check.stats.resolutions << " resolution steps using "
                  << check.stats.clauses_built << " of "
                  << check.stats.total_derivations
                  << " learned clauses.\nUnsatisfiable core: "
                  << check.core.size() << " of " << formula.num_clauses()
                  << " original clauses.\n";
      } else {
        std::cout << "BUG: proof check failed: " << check.error << "\n";
        return 1;
      }
      break;
    }
    case solver::SolveResult::Unknown:
      std::cout << "Result: UNKNOWN (budget exhausted)\n";
      break;
  }
  return 0;
}
