#include "src/encode/coloring.hpp"

#include <vector>

#include "src/util/rng.hpp"

namespace satproof::encode {

namespace {

void add_vertex_constraints(Formula& f, unsigned n, unsigned colors) {
  const auto var = [colors](unsigned v, unsigned k) {
    return static_cast<Var>(v * colors + k);
  };
  std::vector<Lit> clause;
  for (unsigned v = 0; v < n; ++v) {
    clause.clear();
    for (unsigned k = 0; k < colors; ++k) clause.push_back(Lit::pos(var(v, k)));
    f.add_clause(clause);
    for (unsigned k1 = 0; k1 < colors; ++k1) {
      for (unsigned k2 = k1 + 1; k2 < colors; ++k2) {
        f.add_clause({Lit::neg(var(v, k1)), Lit::neg(var(v, k2))});
      }
    }
  }
}

void add_edge(Formula& f, unsigned colors, unsigned u, unsigned v) {
  const auto var = [colors](unsigned vertex, unsigned k) {
    return static_cast<Var>(vertex * colors + k);
  };
  for (unsigned k = 0; k < colors; ++k) {
    f.add_clause({Lit::neg(var(u, k)), Lit::neg(var(v, k))});
  }
}

}  // namespace

Formula clique_coloring(unsigned n, unsigned colors) {
  Formula f(n * colors);
  add_vertex_constraints(f, n, colors);
  for (unsigned u = 0; u < n; ++u) {
    for (unsigned v = u + 1; v < n; ++v) add_edge(f, colors, u, v);
  }
  return f;
}

Formula random_graph_coloring(unsigned n, double density, unsigned colors,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  Formula f(n * colors);
  add_vertex_constraints(f, n, colors);
  for (unsigned u = 0; u < n; ++u) {
    for (unsigned v = u + 1; v < n; ++v) {
      if (rng.next_bool(density)) add_edge(f, colors, u, v);
    }
  }
  return f;
}

}  // namespace satproof::encode
