#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <vector>

#include "src/cnf/types.hpp"
#include "src/util/temp_file.hpp"

namespace satproof::checker {

/// Storage for the per-learned-clause use counts of the breadth-first
/// checker (paper Section 3.3).
///
/// "A first pass through the trace can determine the number of times a
///  clause is used as a resolve source. During the resolution process, the
///  checker tracks the number of times the clause has been used ... and
///  when its use is complete, the clause can be deleted safely."
///
/// The paper further notes that "the clause's total use count is stored in
/// a temporary file because there is a possibility that even keeping just
/// one counter for each learned clause in main memory is still not
/// feasible" — hence the file-backed implementation — and that the counting
/// pass may need to be split into several passes over ID ranges, which the
/// breadth-first checker drives through ranged counting (see
/// BreadthFirstOptions::count_range).
///
/// Counts are indexed by learned-clause ordinal (id - num_original).
class UseCountStore {
 public:
  virtual ~UseCountStore() = default;

  /// Grows the store to hold `n` counters, all zero.
  virtual void resize(std::uint64_t n) = 0;

  /// Adds one use to counter `index`.
  virtual void increment(std::uint64_t index) = 0;

  /// Removes one use from counter `index` and returns the new value.
  /// The counter must be positive.
  virtual std::uint32_t decrement(std::uint64_t index) = 0;

  /// Removes one use from each counter in `indices` (in order, so repeated
  /// indices decrement repeatedly), appending every index whose counter
  /// reached zero to `exhausted` in that same order. One virtual call per
  /// chain instead of one per antecedent; implementations additionally
  /// batch their own bookkeeping (e.g. a single page-residency check per
  /// run of nearby indices).
  virtual void decrement_batch(std::span<const std::uint64_t> indices,
                               std::vector<std::uint64_t>& exhausted) {
    for (const std::uint64_t index : indices) {
      if (decrement(index) == 0) exhausted.push_back(index);
    }
  }

  /// Current value of counter `index`.
  [[nodiscard]] virtual std::uint32_t get(std::uint64_t index) = 0;

  /// Bytes of main memory this store occupies (for peak accounting).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
};

/// Plain in-memory counters: one 32-bit counter per learned clause.
class InMemoryUseCounts final : public UseCountStore {
 public:
  void resize(std::uint64_t n) override;
  void increment(std::uint64_t index) override;
  std::uint32_t decrement(std::uint64_t index) override;
  void decrement_batch(std::span<const std::uint64_t> indices,
                       std::vector<std::uint64_t>& exhausted) override;
  [[nodiscard]] std::uint32_t get(std::uint64_t index) override;
  [[nodiscard]] std::size_t memory_bytes() const override;

 private:
  std::vector<std::uint32_t> counts_;
};

/// File-backed counters: fixed-width 32-bit records in a temporary file,
/// with a single cached page so sequential access patterns (which is what
/// both checker passes produce) stay cheap. Only the page occupies main
/// memory.
class FileBackedUseCounts final : public UseCountStore {
 public:
  /// `page_entries` counters are cached in memory at a time.
  explicit FileBackedUseCounts(std::size_t page_entries = 4096);
  ~FileBackedUseCounts() override;

  void resize(std::uint64_t n) override;
  void increment(std::uint64_t index) override;
  std::uint32_t decrement(std::uint64_t index) override;
  [[nodiscard]] std::uint32_t get(std::uint64_t index) override;
  [[nodiscard]] std::size_t memory_bytes() const override;

 private:
  void load_page(std::uint64_t page);
  void flush_page();
  std::uint32_t& slot(std::uint64_t index);

  util::TempFile file_;
  std::fstream io_;
  std::uint64_t size_ = 0;
  std::size_t page_entries_;
  std::vector<std::uint32_t> page_;
  std::uint64_t page_index_ = ~std::uint64_t{0};
  bool page_dirty_ = false;
};

/// Which use-count store the breadth-first checker builds.
enum class UseCountMode : std::uint8_t {
  InMemory,    ///< one counter per learned clause in RAM
  FileBacked,  ///< counters in a temp file (paper's low-memory variant)
};

/// Factory for the configured store.
[[nodiscard]] std::unique_ptr<UseCountStore> make_use_count_store(
    UseCountMode mode);

}  // namespace satproof::checker
