# Empty dependencies file for test_rup.
# This may be replaced when dependencies are built.
