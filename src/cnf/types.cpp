#include "src/cnf/types.hpp"

namespace satproof {

std::string to_string(Lit lit) {
  if (lit == Lit::invalid()) return "<invalid>";
  std::string s = lit.negated() ? "~x" : "x";
  s += std::to_string(lit.var());
  return s;
}

std::string to_string(LBool b) {
  switch (b) {
    case LBool::False:
      return "F";
    case LBool::True:
      return "T";
    case LBool::Undef:
      return "U";
  }
  return "?";
}

}  // namespace satproof
