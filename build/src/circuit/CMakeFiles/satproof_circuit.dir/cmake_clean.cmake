file(REMOVE_RECURSE
  "CMakeFiles/satproof_circuit.dir/miter.cpp.o"
  "CMakeFiles/satproof_circuit.dir/miter.cpp.o.d"
  "CMakeFiles/satproof_circuit.dir/netlist.cpp.o"
  "CMakeFiles/satproof_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/satproof_circuit.dir/rewrite.cpp.o"
  "CMakeFiles/satproof_circuit.dir/rewrite.cpp.o.d"
  "CMakeFiles/satproof_circuit.dir/sorting.cpp.o"
  "CMakeFiles/satproof_circuit.dir/sorting.cpp.o.d"
  "CMakeFiles/satproof_circuit.dir/tseitin.cpp.o"
  "CMakeFiles/satproof_circuit.dir/tseitin.cpp.o.d"
  "CMakeFiles/satproof_circuit.dir/words.cpp.o"
  "CMakeFiles/satproof_circuit.dir/words.cpp.o.d"
  "libsatproof_circuit.a"
  "libsatproof_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
