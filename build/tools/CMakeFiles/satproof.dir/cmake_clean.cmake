file(REMOVE_RECURSE
  "CMakeFiles/satproof.dir/satproof_main.cpp.o"
  "CMakeFiles/satproof.dir/satproof_main.cpp.o.d"
  "satproof"
  "satproof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
