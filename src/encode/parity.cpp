#include "src/encode/parity.hpp"

#include <stdexcept>
#include <vector>

#include "src/util/rng.hpp"

namespace satproof::encode {

namespace {

/// Adds CNF clauses for x XOR y = parity.
void add_xor2(Formula& f, Var x, Var y, bool parity) {
  if (parity) {
    f.add_clause({Lit::pos(x), Lit::pos(y)});
    f.add_clause({Lit::neg(x), Lit::neg(y)});
  } else {
    f.add_clause({Lit::pos(x), Lit::neg(y)});
    f.add_clause({Lit::neg(x), Lit::pos(y)});
  }
}

/// Adds CNF clauses for x XOR y XOR z = parity (4 clauses: those literal
/// sign patterns whose parity of negations contradicts the constraint).
void add_xor3(Formula& f, Var x, Var y, Var z, bool parity) {
  for (unsigned mask = 0; mask < 8; ++mask) {
    const bool p = ((mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1)) % 2;
    // Assignments with parity != `parity` must be forbidden: the clause is
    // the negation of the forbidden point.
    if (p == parity) continue;
    f.add_clause({Lit(x, (mask & 1) != 0), Lit(y, (mask & 2) != 0),
                  Lit(z, (mask & 4) != 0)});
  }
}

/// GF(2) consistency test for a sparse XOR system.
struct Xor3Row {
  Var v[3];
  bool parity;
};

bool consistent(const std::vector<Xor3Row>& rows, unsigned n) {
  const std::size_t words = (n + 64) / 64;  // one spare bit for the parity
  std::vector<std::vector<std::uint64_t>> mat;
  mat.reserve(rows.size());
  for (const Xor3Row& r : rows) {
    std::vector<std::uint64_t> row(words + 1, 0);
    for (const Var v : r.v) row[v / 64] ^= std::uint64_t{1} << (v % 64);
    row[words] = r.parity ? 1 : 0;
    mat.push_back(std::move(row));
  }
  std::size_t rank_row = 0;
  for (unsigned col = 0; col < n && rank_row < mat.size(); ++col) {
    std::size_t pivot = rank_row;
    while (pivot < mat.size() &&
           ((mat[pivot][col / 64] >> (col % 64)) & 1) == 0) {
      ++pivot;
    }
    if (pivot == mat.size()) continue;
    std::swap(mat[rank_row], mat[pivot]);
    for (std::size_t r = 0; r < mat.size(); ++r) {
      if (r != rank_row && ((mat[r][col / 64] >> (col % 64)) & 1) != 0) {
        for (std::size_t w = 0; w <= words; ++w) mat[r][w] ^= mat[rank_row][w];
      }
    }
    ++rank_row;
  }
  // Inconsistent iff some row is all-zero on the left with parity 1.
  for (const auto& row : mat) {
    bool zero_lhs = true;
    for (std::size_t w = 0; w < words; ++w) {
      if (row[w] != 0) {
        zero_lhs = false;
        break;
      }
    }
    if (zero_lhs && row[words] != 0) return false;
  }
  return true;
}

}  // namespace

Formula xor_chain(unsigned n, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("xor_chain: need at least 3 vars");
  util::Rng rng(seed);
  std::vector<bool> parity(n);
  bool total = false;
  for (unsigned i = 0; i < n; ++i) {
    parity[i] = rng.next_bool();
    total = total != parity[i];
  }
  if (!total) parity[0] = !parity[0];  // force odd total parity: UNSAT

  Formula f(n);
  for (unsigned i = 0; i < n; ++i) {
    add_xor2(f, i, (i + 1) % n, parity[i]);
  }
  return f;
}

namespace {

/// Adds CNF clauses for the XOR of `vars` equal to `parity` (2^(k-1)
/// clauses for k variables; keep k small).
void add_xor_k(Formula& f, const std::vector<Var>& vars, bool parity) {
  const unsigned k = static_cast<unsigned>(vars.size());
  std::vector<Lit> clause(k);
  for (unsigned mask = 0; mask < (1u << k); ++mask) {
    bool p = false;
    for (unsigned i = 0; i < k; ++i) p = p != (((mask >> i) & 1) != 0);
    if (p == parity) continue;  // consistent points stay allowed
    for (unsigned i = 0; i < k; ++i) {
      clause[i] = Lit(vars[i], ((mask >> i) & 1) != 0);
    }
    f.add_clause(clause);
  }
}

}  // namespace

Formula tseitin_torus(unsigned rows, unsigned cols, std::uint64_t seed) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("tseitin_torus: need rows, cols >= 3");
  }
  util::Rng rng(seed);
  // Edge variables: horizontal edge (r,c)-(r,c+1) and vertical edge
  // (r,c)-(r+1,c), indices modulo the grid.
  const auto h_edge = [cols](unsigned r, unsigned c) {
    return static_cast<Var>(2 * (r * cols + c));
  };
  const auto v_edge = [cols](unsigned r, unsigned c) {
    return static_cast<Var>(2 * (r * cols + c) + 1);
  };

  std::vector<bool> charge(rows * cols);
  bool total = false;
  for (auto&& ch : charge) {
    const bool bit = rng.next_bool();
    ch = bit;
    total = total != bit;
  }
  if (!total) charge[0] = !charge[0];  // odd total charge: unsatisfiable

  Formula f(2 * rows * cols);
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      const std::vector<Var> incident = {
          h_edge(r, c),
          h_edge(r, (c + cols - 1) % cols),
          v_edge(r, c),
          v_edge((r + rows - 1) % rows, c),
      };
      add_xor_k(f, incident, charge[r * cols + c]);
    }
  }
  return f;
}

Formula random_xor3(unsigned n, unsigned m, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("random_xor3: need at least 3 vars");
  util::Rng rng(seed);
  std::vector<Xor3Row> rows;
  // Regenerate until the GF(2) system is inconsistent (for m comfortably
  // above n this succeeds almost immediately).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    rows.clear();
    for (unsigned i = 0; i < m; ++i) {
      Var a = static_cast<Var>(rng.next_below(n));
      Var b, c;
      do {
        b = static_cast<Var>(rng.next_below(n));
      } while (b == a);
      do {
        c = static_cast<Var>(rng.next_below(n));
      } while (c == a || c == b);
      rows.push_back({{a, b, c}, rng.next_bool()});
    }
    if (consistent(rows, n)) {
      // Try the cheap fix first: flipping one parity makes the system
      // inconsistent whenever that row is linearly dependent on the rest.
      rows.back().parity = !rows.back().parity;
      if (consistent(rows, n)) continue;
    }
    Formula f(n);
    for (const Xor3Row& r : rows) {
      add_xor3(f, r.v[0], r.v[1], r.v[2], r.parity);
    }
    return f;
  }
  throw std::runtime_error(
      "random_xor3: could not generate an inconsistent system; increase m");
}

}  // namespace satproof::encode
