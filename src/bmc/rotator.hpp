#pragma once

#include "src/bmc/sequential.hpp"

namespace satproof::bmc {

/// The `barrel`-style BMC instance: a one-hot token register rotated
/// through a barrel shifter.
///
/// A `width`-bit register is initialized one-hot (bit 0 set). Each cycle,
/// an enable input chooses between rotating the token left by a
/// 2-bit-controlled barrel shifter (the rotate amount is a free input) and
/// holding it. The `bad` wire asserts when the one-hot invariant breaks:
/// zero tokens or two or more tokens. Rotation and hold both preserve
/// one-hotness, so `bad` is unreachable and unroll(k) is UNSAT for every k
/// — the shape of the paper's `barrel` row. `width` should be a power of
/// two so rotation amounts wrap cleanly.
///
/// With `break_invariant` set, the circuit gains a free input that, when
/// asserted, *sets* bit 0 regardless of the rotation — making `bad`
/// reachable (a SAT instance) and giving the tests a counterexample case.
[[nodiscard]] SequentialCircuit make_rotator(unsigned width,
                                             bool break_invariant = false);

}  // namespace satproof::bmc
