#pragma once

#include <cstddef>
#include <cstdint>

namespace satproof::util {

/// Byte-accounting tracker for the "Peak Mem" columns of the paper's
/// Table 2.
///
/// The paper reports process peak memory on a PIII with an 800 MB limit.
/// Process RSS is neither portable nor deterministic, so every component
/// that retains clauses (the solver's clause database, the depth-first
/// checker's memo table, the breadth-first checker's live-clause window)
/// accounts the bytes it holds through one of these trackers. The resulting
/// numbers are exactly reproducible and preserve the paper's *shape*:
/// depth-first peak >> breadth-first peak, and breadth-first peak bounded
/// by the solver's own peak (Section 3.3 of the paper).
class MemTracker {
 public:
  /// Records an allocation of `bytes`.
  void add(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Records a release of `bytes`. `bytes` must not exceed the current
  /// footprint; accounting errors indicate a bookkeeping bug upstream.
  void remove(std::size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  /// Currently accounted bytes.
  [[nodiscard]] std::size_t current_bytes() const { return current_; }

  /// High-water mark since construction (or the last reset()).
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }

  /// Clears both the current footprint and the high-water mark.
  void reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// Estimated heap footprint of a clause of `num_lits` literals: the literal
/// payload plus a fixed per-clause overhead (header, allocator bookkeeping).
/// Used consistently by the solver and both checkers so their peak-memory
/// numbers are directly comparable.
[[nodiscard]] std::size_t clause_footprint_bytes(std::size_t num_lits);

}  // namespace satproof::util
