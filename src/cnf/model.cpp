#include "src/cnf/model.hpp"

namespace satproof {

LBool value_of(Lit lit, const Model& model) {
  if (lit.var() >= model.size()) return LBool::Undef;
  const LBool v = model[lit.var()];
  if (v == LBool::Undef) return LBool::Undef;
  return lit.negated() ? ~v : v;
}

std::optional<ClauseId> first_falsified_clause(const Formula& f,
                                               const Model& model) {
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    bool satisfied = false;
    for (const Lit lit : f.clause(id)) {
      if (value_of(lit, model) == LBool::True) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return id;
  }
  return std::nullopt;
}

bool satisfies(const Formula& f, const Model& model) {
  return !first_falsified_clause(f, model).has_value();
}

}  // namespace satproof
