// Tests for the depth-first and breadth-first checkers: acceptance of
// genuine solver traces, rejection of corrupted ones (every FaultKind),
// option coverage, and the Section 3.3 memory guarantee.

#include <gtest/gtest.h>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/fault_injector.hpp"
#include "src/trace/memory.hpp"

namespace satproof::checker {
namespace {

struct SolvedUnsat {
  Formula formula;
  trace::MemoryTrace trace;
  solver::SolverStats stats;
};

SolvedUnsat solve_unsat(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), w.take(), s.stats()};
}

TEST(Checkers, AcceptGenuineTraceAndAgree) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(6));
  trace::MemoryTraceReader r1(su.trace);
  const CheckResult df = check_depth_first(su.formula, r1);
  ASSERT_TRUE(df.ok) << df.error;
  trace::MemoryTraceReader r2(su.trace);
  const CheckResult bf = check_breadth_first(su.formula, r2);
  ASSERT_TRUE(bf.ok) << bf.error;

  EXPECT_EQ(df.stats.total_derivations, bf.stats.total_derivations);
  // BF builds everything, DF only the reachable subgraph.
  EXPECT_EQ(bf.stats.clauses_built, bf.stats.total_derivations);
  EXPECT_LE(df.stats.clauses_built, bf.stats.clauses_built);
  EXPECT_GT(df.stats.clauses_built, 0u);
}

TEST(Checkers, DepthFirstCoreIsSortedSubsetOfOriginals) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(5));
  trace::MemoryTraceReader r(su.trace);
  const CheckResult df = check_depth_first(su.formula, r);
  ASSERT_TRUE(df.ok);
  ASSERT_FALSE(df.core.empty());
  EXPECT_EQ(df.core.size(), df.stats.core_original_clauses);
  EXPECT_TRUE(std::is_sorted(df.core.begin(), df.core.end()));
  EXPECT_LT(df.core.back(), su.formula.num_clauses());
}

TEST(Checkers, CoreCollectionCanBeDisabled) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(4));
  trace::MemoryTraceReader r(su.trace);
  DepthFirstOptions opts;
  opts.collect_core = false;
  const CheckResult df = check_depth_first(su.formula, r, opts);
  ASSERT_TRUE(df.ok);
  EXPECT_TRUE(df.core.empty());
  EXPECT_GT(df.stats.core_original_clauses, 0u);
}

TEST(Checkers, TrivialPreprocessingConflictAccepted) {
  // Contradictory unit clauses: the trace has no derivations at all.
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  const SolvedUnsat su = solve_unsat(std::move(f));
  EXPECT_TRUE(su.trace.derivations.empty());
  trace::MemoryTraceReader r1(su.trace);
  EXPECT_TRUE(check_depth_first(su.formula, r1).ok);
  trace::MemoryTraceReader r2(su.trace);
  EXPECT_TRUE(check_breadth_first(su.formula, r2).ok);
}

TEST(Checkers, EmptyInputClauseAccepted) {
  Formula f;
  f.add_clause(std::initializer_list<Lit>{});
  const SolvedUnsat su = solve_unsat(std::move(f));
  trace::MemoryTraceReader r1(su.trace);
  EXPECT_TRUE(check_depth_first(su.formula, r1).ok);
  trace::MemoryTraceReader r2(su.trace);
  EXPECT_TRUE(check_breadth_first(su.formula, r2).ok);
}

TEST(Checkers, RejectSatRunTrace) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  const CheckResult df = check_depth_first(f, r1);
  EXPECT_FALSE(df.ok);
  EXPECT_NE(df.error.find("final"), std::string::npos);
  trace::MemoryTraceReader r2(t);
  EXPECT_FALSE(check_breadth_first(f, r2).ok);
}

TEST(Checkers, RejectTraceForDifferentFormula) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(5));
  const Formula other = encode::pigeonhole(6);  // different clause count
  trace::MemoryTraceReader r1(su.trace);
  const CheckResult df = check_depth_first(other, r1);
  EXPECT_FALSE(df.ok);
  EXPECT_NE(df.error.find("original clauses"), std::string::npos);
  trace::MemoryTraceReader r2(su.trace);
  EXPECT_FALSE(check_breadth_first(other, r2).ok);
}

TEST(Checkers, BreadthFirstMemoryNeverExceedsSolver) {
  // Section 3.3: "the checker will never keep more clauses in the memory
  // than the SAT solver did when producing the trace".
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    const SolvedUnsat su = solve_unsat(inst.formula);
    trace::MemoryTraceReader r(su.trace);
    const CheckResult bf = check_breadth_first(su.formula, r);
    ASSERT_TRUE(bf.ok) << inst.name << ": " << bf.error;
    EXPECT_LE(bf.stats.peak_mem_bytes, su.stats.peak_clause_bytes)
        << inst.name;
  }
}

TEST(Checkers, DepthFirstUsesMoreMemoryThanBreadthFirstOnBigTraces) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(7));
  trace::MemoryTraceReader r1(su.trace);
  const CheckResult df = check_depth_first(su.formula, r1);
  trace::MemoryTraceReader r2(su.trace);
  const CheckResult bf = check_breadth_first(su.formula, r2);
  ASSERT_TRUE(df.ok);
  ASSERT_TRUE(bf.ok);
  EXPECT_GT(df.stats.peak_mem_bytes, bf.stats.peak_mem_bytes);
}

TEST(Checkers, BreadthFirstUseCountStoreVariantsAgree) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(5));
  CheckResult results[3];
  BreadthFirstOptions opts[3];
  opts[0].use_counts = UseCountMode::InMemory;
  opts[1].use_counts = UseCountMode::FileBacked;
  opts[2].use_counts = UseCountMode::FileBacked;
  opts[2].count_range = 64;  // multi-pass ranged counting
  for (int i = 0; i < 3; ++i) {
    trace::MemoryTraceReader r(su.trace);
    results[i] = check_breadth_first(su.formula, r, opts[i]);
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
  }
  EXPECT_EQ(results[0].stats.clauses_built, results[1].stats.clauses_built);
  EXPECT_EQ(results[0].stats.resolutions, results[1].stats.resolutions);
  EXPECT_EQ(results[0].stats.resolutions, results[2].stats.resolutions);
}

TEST(Checkers, RangedCountingWithTinyRange) {
  const SolvedUnsat su = solve_unsat(encode::pigeonhole(4));
  BreadthFirstOptions opts;
  opts.count_range = 1;  // one pass per learned clause: worst case
  trace::MemoryTraceReader r(su.trace);
  const CheckResult bf = check_breadth_first(su.formula, r, opts);
  EXPECT_TRUE(bf.ok) << bf.error;
}

TEST(Checkers, RejectTautologicalOriginalAsSource) {
  // Hand-build a trace whose proof path runs through a tautological
  // original clause (the final conflict IS the bogus derivation, so both
  // checkers must visit it).
  Formula f;
  f.add_clause({Lit::pos(0), Lit::neg(0)});  // clause 0: tautology
  f.add_clause({Lit::pos(0)});               // clause 1
  f.add_clause({Lit::neg(0)});               // clause 2
  trace::MemoryTraceWriter w;
  w.begin(1, 3);
  const ClauseId src[] = {0, 2};
  w.derivation(3, src);
  w.final_conflict(3);
  w.level0(0, true, 1);
  w.end();
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  const CheckResult df = check_depth_first(f, r1);
  EXPECT_FALSE(df.ok);
  EXPECT_NE(df.error.find("tautolog"), std::string::npos);
  trace::MemoryTraceReader r2(t);
  EXPECT_FALSE(check_breadth_first(f, r2).ok);
}

TEST(Checkers, RejectForwardReferenceInDerivation) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  trace::MemoryTraceWriter w;
  w.begin(1, 2);
  const ClauseId src[] = {0, 3};  // 3 does not precede 2
  w.derivation(2, src);
  w.final_conflict(1);
  w.level0(0, true, 0);
  w.end();
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  EXPECT_FALSE(check_depth_first(f, r1).ok);
  trace::MemoryTraceReader r2(t);
  EXPECT_FALSE(check_breadth_first(f, r2).ok);
}

TEST(Checkers, RejectDerivationReusingOriginalId) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  trace::MemoryTraceWriter w;
  w.begin(1, 2);
  const ClauseId src[] = {0, 1};
  w.derivation(1, src);  // ID 1 is an original clause
  w.final_conflict(1);
  w.level0(0, true, 0);
  w.end();
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  EXPECT_FALSE(check_depth_first(f, r1).ok);
  trace::MemoryTraceReader r2(t);
  EXPECT_FALSE(check_breadth_first(f, r2).ok);
}

TEST(Checkers, RejectNonConflictingFinalClause) {
  Formula f;
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  trace::MemoryTraceWriter w;
  w.begin(1, 2);
  w.final_conflict(0);  // clause 0 is satisfied by the level-0 assignment
  w.level0(0, true, 0);
  w.end();
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  const CheckResult df = check_depth_first(f, r1);
  EXPECT_FALSE(df.ok);
  EXPECT_NE(df.error.find("not conflicting"), std::string::npos);
}

/// Fault-injection sweep: every fault kind must be rejected by both
/// checkers on this fixed instance/seed. (A few kinds can in principle
/// corrupt a trace into a different-but-valid proof; the instance and
/// target indices here are chosen so each fault genuinely breaks it —
/// verified by the assertions below, which would fail loudly otherwise.)
class FaultSweep : public ::testing::TestWithParam<trace::FaultKind> {};

TEST_P(FaultSweep, BothCheckersRejectCorruptedTrace) {
  const trace::FaultKind kind = GetParam();
  const Formula f = encode::pigeonhole(5);

  // Inject at a mid-trace opportunity so the corruption lands on a record
  // that matters for the proof.
  for (const std::uint64_t target : {5ull, 0ull, 50ull}) {
    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter inner;
    trace::FaultInjector injector(inner, kind, /*seed=*/7, target);
    s.set_trace_writer(&injector);
    ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
    if (!injector.fired()) continue;  // no eligible record at this index

    const trace::MemoryTrace t = inner.take();
    trace::MemoryTraceReader r1(t);
    const CheckResult df = check_depth_first(f, r1);
    trace::MemoryTraceReader r2(t);
    const CheckResult bf = check_breadth_first(f, r2);
    EXPECT_FALSE(df.ok) << "depth-first accepted fault "
                        << trace::to_string(kind) << " at target " << target;
    EXPECT_FALSE(bf.ok) << "breadth-first accepted fault "
                        << trace::to_string(kind) << " at target " << target;
    if (!df.ok) {
      EXPECT_FALSE(df.error.empty());
    }
    if (!bf.ok) {
      EXPECT_FALSE(bf.error.empty());
    }
    return;  // one fired fault checked is enough per kind
  }
  FAIL() << "fault " << trace::to_string(kind)
         << " never fired on any target index";
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultSweep,
    ::testing::Values(trace::FaultKind::DropSource,
                      trace::FaultKind::DuplicateSource,
                      trace::FaultKind::ShuffleSources,
                      trace::FaultKind::WrongSource,
                      trace::FaultKind::DropDerivation,
                      trace::FaultKind::WrongFinal,
                      trace::FaultKind::FlipLevel0Value,
                      trace::FaultKind::WrongAntecedent,
                      trace::FaultKind::DropLevel0,
                      trace::FaultKind::TruncateTrace),
    [](const auto& info) {
      std::string name = trace::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FaultInjector, NoneModePassesThrough) {
  const Formula f = encode::pigeonhole(4);
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter inner;
  trace::FaultInjector injector(inner, trace::FaultKind::None);
  s.set_trace_writer(&injector);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  EXPECT_FALSE(injector.fired());
  const trace::MemoryTrace t = inner.take();
  trace::MemoryTraceReader r(t);
  EXPECT_TRUE(check_depth_first(f, r).ok);
}

}  // namespace
}  // namespace satproof::checker
