file(REMOVE_RECURSE
  "CMakeFiles/ablation_rup.dir/ablation_rup.cpp.o"
  "CMakeFiles/ablation_rup.dir/ablation_rup.cpp.o.d"
  "ablation_rup"
  "ablation_rup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
