
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encode/cardinality.cpp" "src/encode/CMakeFiles/satproof_encode.dir/cardinality.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/cardinality.cpp.o.d"
  "/root/repo/src/encode/coloring.cpp" "src/encode/CMakeFiles/satproof_encode.dir/coloring.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/coloring.cpp.o.d"
  "/root/repo/src/encode/fpga_routing.cpp" "src/encode/CMakeFiles/satproof_encode.dir/fpga_routing.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/fpga_routing.cpp.o.d"
  "/root/repo/src/encode/parity.cpp" "src/encode/CMakeFiles/satproof_encode.dir/parity.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/parity.cpp.o.d"
  "/root/repo/src/encode/pigeonhole.cpp" "src/encode/CMakeFiles/satproof_encode.dir/pigeonhole.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/pigeonhole.cpp.o.d"
  "/root/repo/src/encode/planning.cpp" "src/encode/CMakeFiles/satproof_encode.dir/planning.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/planning.cpp.o.d"
  "/root/repo/src/encode/random_ksat.cpp" "src/encode/CMakeFiles/satproof_encode.dir/random_ksat.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/random_ksat.cpp.o.d"
  "/root/repo/src/encode/suite.cpp" "src/encode/CMakeFiles/satproof_encode.dir/suite.cpp.o" "gcc" "src/encode/CMakeFiles/satproof_encode.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/satproof_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/bmc/CMakeFiles/satproof_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
