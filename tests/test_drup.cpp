// Tests for DRUP emission and forward DRUP checking — the modern proof
// format descended from the paper's trace, validated side by side with it.

#include <gtest/gtest.h>

#include <sstream>

#include "src/checker/drup.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/drup.hpp"
#include "src/util/rng.hpp"

namespace satproof::checker {
namespace {

/// Solves `f` with DRUP emission; expects UNSAT; returns the proof text.
std::string solve_drup(const Formula& f, solver::SolverOptions opts = {}) {
  std::ostringstream out;
  trace::DrupWriter w(out);
  solver::Solver s(opts);
  s.add_formula(f);
  s.set_drup_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return out.str();
}

TEST(Drup, SuiteProofsVerify) {
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    const std::string proof = solve_drup(inst.formula);
    std::istringstream in(proof);
    const DrupCheckResult res = check_drup(inst.formula, in);
    EXPECT_TRUE(res.ok) << inst.name << ": " << res.error;
    EXPECT_GT(res.clauses_checked, 0u) << inst.name;
  }
}

TEST(Drup, DeletionHeavyProofsVerify) {
  solver::SolverOptions opts;
  opts.learned_size_factor = 0.001;  // force aggressive deletion
  const Formula f = encode::pigeonhole(7);
  const std::string proof = solve_drup(f, opts);
  EXPECT_NE(proof.find("d "), std::string::npos)
      << "expected deletion lines in the proof";
  std::istringstream in(proof);
  const DrupCheckResult res = check_drup(f, in);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.deletions, 0u);
}

TEST(Drup, EndsWithEmptyClause) {
  const std::string proof = solve_drup(encode::pigeonhole(4));
  // The last line is "0".
  const auto pos = proof.rfind('\n', proof.size() - 2);
  EXPECT_EQ(proof.substr(pos + 1), "0\n");
}

TEST(Drup, TrivialContradictionProof) {
  Formula f(1);
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  const std::string proof = solve_drup(f);
  std::istringstream in(proof);
  const DrupCheckResult res = check_drup(f, in);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Drup, CorruptedClauseRejected) {
  const Formula f = encode::pigeonhole(4);
  std::string proof = solve_drup(f);
  // Flip the sign of the first literal of the first added clause.
  const std::size_t pos = proof.find_first_of("-123456789");
  ASSERT_NE(pos, std::string::npos);
  if (proof[pos] == '-') {
    proof.erase(pos, 1);
  } else {
    proof.insert(pos, "-");
  }
  std::istringstream in(proof);
  const DrupCheckResult res = check_drup(f, in);
  // Either the flipped clause is no longer RUP, or some later step fails.
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(Drup, MissingEmptyClauseRejected) {
  const Formula f = encode::pigeonhole(4);
  std::string proof = solve_drup(f);
  proof.resize(proof.rfind("0\n"));  // drop the final empty clause
  std::istringstream in(proof);
  const DrupCheckResult res = check_drup(f, in);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("empty clause"), std::string::npos);
}

TEST(Drup, BogusDeletionRejected) {
  const Formula f = encode::pigeonhole(4);
  const std::string proof = "d 1 2 3 4 99 0\n" + solve_drup(f);
  std::istringstream in(proof);
  const DrupCheckResult res = check_drup(f, in);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("deletion"), std::string::npos);
}

TEST(Drup, UnterminatedLineRejected) {
  const Formula f = encode::pigeonhole(3);
  std::istringstream in("1 2 3\n");
  const DrupCheckResult res = check_drup(f, in);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("terminated"), std::string::npos);
}

class DrupSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DrupSweep, RandomUnsatInstancesVerify) {
  util::Rng rng(GetParam());
  int done = 0;
  for (int round = 0; round < 16 && done < 5; ++round) {
    const unsigned n = 16 + static_cast<unsigned>(rng.next_below(8));
    const Formula f = encode::random_ksat(
        n, static_cast<unsigned>(n * 5.0), 3, rng.next_u64());
    solver::Solver probe;
    probe.add_formula(f);
    std::ostringstream out;
    trace::DrupWriter w(out);
    probe.set_drup_writer(&w);
    if (probe.solve() != solver::SolveResult::Unsatisfiable) continue;
    ++done;
    std::istringstream in(out.str());
    const DrupCheckResult res = check_drup(f, in);
    EXPECT_TRUE(res.ok) << res.error;
  }
  EXPECT_GT(done, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrupSweep, ::testing::Values(19, 38, 57));

}  // namespace
}  // namespace satproof::checker
