#include "src/bmc/sequential.hpp"

#include <stdexcept>

namespace satproof::bmc {

std::vector<circuit::Wire> SequentialCircuit::free_inputs() const {
  std::vector<bool> is_reg(comb.num_wires(), false);
  for (const Register& r : registers) is_reg[r.q] = true;
  std::vector<circuit::Wire> out;
  for (const circuit::Wire w : comb.inputs()) {
    if (!is_reg[w]) out.push_back(w);
  }
  return out;
}

bool SequentialCircuit::simulate_reaches_bad(
    const std::vector<std::vector<bool>>& input_values) const {
  // Map each combinational primary input to either a register or a free
  // input position.
  std::vector<std::size_t> reg_of(comb.num_wires(), ~std::size_t{0});
  for (std::size_t r = 0; r < registers.size(); ++r) {
    reg_of[registers[r].q] = r;
  }

  std::vector<bool> state(registers.size());
  for (std::size_t r = 0; r < registers.size(); ++r) {
    state[r] = registers[r].init;
  }

  for (std::size_t t = 0; t < input_values.size(); ++t) {
    std::vector<bool> inputs;
    inputs.reserve(comb.num_inputs());
    std::size_t free_pos = 0;
    for (const circuit::Wire w : comb.inputs()) {
      if (reg_of[w] != ~std::size_t{0}) {
        inputs.push_back(state[reg_of[w]]);
      } else {
        if (free_pos >= input_values[t].size()) {
          throw std::invalid_argument(
              "simulate_reaches_bad: too few free-input values");
        }
        inputs.push_back(input_values[t][free_pos++]);
      }
    }
    const std::vector<bool> values = comb.simulate(inputs);
    if (values[bad]) return true;
    for (std::size_t r = 0; r < registers.size(); ++r) {
      state[r] = values[registers[r].next];
    }
  }
  return false;
}

}  // namespace satproof::bmc
